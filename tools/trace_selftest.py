#!/usr/bin/env python3
"""End-to-end selftest of the crmd_trace analyzer against real traces.

Usage: trace_selftest.py CRMD_CLI_BINARY CRMD_TRACE_BINARY

Generates JSONL traces with crmd_cli, then checks:
  1. `summary` runs and reports the exact event count of the file.
  2. `diff` of a trace against itself exits 0 ("identical").
  3. `diff` of a base run vs. a run with one seeded perturbation
     (--fault-loss) exits 1 and reports the first divergent slot that this
     script computes independently from the raw JSONL.
  4. `coverage --protocol=punctual --strict` reaches 100% kind coverage on
     a mixed-window general workload with elections enabled
     (--claim-scale).
  5. `coverage --require=fault --strict` on the fault-free trace exits 1
     (the deliberately-unreachable event is flagged, not ignored).
  6. a saturated run on the capture channel with a collision cost fires
     both conditional channel kinds: `coverage
     --require=capture-win,cost-slot --strict` exits 0, and the same
     requirement fails on the plain-ternary base trace.
  7. a sleeping protocol (energy_beb) fires both radio transitions:
     `coverage --require=radio-sleep,radio-wake --strict` exits 0 on its
     trace, and the same requirement fails on the always-listening
     PUNCTUAL base trace (which never turns its radio off).

Exits nonzero with a one-line FAIL per broken property.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

failures = []


def check(name, ok, detail=""):
    if ok:
        print(f"ok: {name}")
    else:
        failures.append(name)
        print(f"FAIL: {name}{': ' + detail if detail else ''}")


def run(cmd, **kwargs):
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, **kwargs
    )


def load_events(path):
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def first_divergent_slot(a, b):
    """Slot of the earliest differing event (None when streams match)."""
    for ev_a, ev_b in zip(a, b):
        if ev_a != ev_b:
            return min(ev_a["slot"], ev_b["slot"])
    if len(a) != len(b):
        longer = a if len(a) > len(b) else b
        return longer[min(len(a), len(b))]["slot"]
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    cli, trace_tool = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="crmd_trace_selftest.") as tmp:
        tmp = Path(tmp)
        base = tmp / "base.jsonl"
        perturbed = tmp / "perturbed.jsonl"
        punctual = tmp / "punctual.jsonl"

        # Base and perturbed runs: identical except for one fault knob.
        common = [
            cli,
            "--protocol=punctual",
            "--workload=batch",
            "--n=24",
            "--window=2048",
            "--reps=1",
            "--seed=11",
        ]
        r = run(common + [f"--trace-jsonl={base}"])
        check("base run exits 0", r.returncode == 0, r.stderr.strip())
        r = run(common + [f"--trace-jsonl={perturbed}", "--fault-loss=0.02"])
        check("perturbed run exits 0", r.returncode == 0, r.stderr.strip())

        # 1. summary reports the exact event count.
        n_events = len(load_events(base))
        r = run([trace_tool, "summary", base])
        check(
            "summary exits 0 and counts events",
            r.returncode == 0
            and re.search(rf"events\s+{n_events}\b", r.stdout) is not None,
            f"rc={r.returncode}, expected 'events {n_events}' in output",
        )

        # 2. self-diff is identical.
        r = run([trace_tool, "diff", base, base])
        check(
            "self-diff exits 0 and says identical",
            r.returncode == 0 and "identical" in r.stdout,
            f"rc={r.returncode}: {r.stdout.strip()}",
        )

        # 3. diff pins the first divergent slot this script computes.
        expected_slot = first_divergent_slot(
            load_events(base), load_events(perturbed)
        )
        check(
            "perturbation actually diverges the streams",
            expected_slot is not None,
        )
        r = run([trace_tool, "diff", base, perturbed])
        check(
            "diff exits 1 on divergence",
            r.returncode == 1,
            f"rc={r.returncode}",
        )
        check(
            f"diff reports first divergent slot {expected_slot}",
            f"(slot {expected_slot})" in r.stdout,
            r.stdout.strip().splitlines()[0] if r.stdout.strip() else "",
        )

        # 4. PUNCTUAL over mixed window sizes with elections enabled: 100%
        # kind coverage. The general workload matters — window-trim only
        # fires when a job in recheck hears a leader whose deadline is at
        # least half its own but short of it, which needs heterogeneous
        # deadlines; a batch (uniform-window) run can never trim.
        r = run(
            [
                cli,
                "--protocol=punctual",
                "--workload=general",
                "--gamma=0.0625",
                "--horizon=16384",
                "--claim-scale=128",
                "--reps=1",
                "--seed=5",
                f"--trace-jsonl={punctual}",
            ]
        )
        check("coverage scenario run exits 0", r.returncode == 0)
        r = run(
            [trace_tool, "coverage", punctual, "--protocol=punctual",
             "--strict"]
        )
        check(
            "punctual coverage is 100% under --strict",
            r.returncode == 0 and "(100.0%)" in r.stdout,
            f"rc={r.returncode}\n{r.stdout}",
        )

        # 5. Requiring an event the scenario cannot fire must fail --strict.
        r = run(
            [trace_tool, "coverage", punctual, "--protocol=punctual",
             "--require=fault", "--strict"]
        )
        check(
            "--require=fault fails --strict on a fault-free trace",
            r.returncode == 1 and "MISSING kind: fault" in r.stdout,
            f"rc={r.returncode}",
        )

        # 6. Capture + collision-cost physics fire their conditional
        # channel kinds (capture-win, cost-slot) end to end: a saturated
        # batch collides constantly, capture:0.9 leaks winners, and
        # cost=3 freezes after the collisions that remain.
        capture = tmp / "capture.jsonl"
        r = run(
            [
                cli,
                "--protocol=beb",
                "--workload=batch",
                "--n=64",
                "--window=256",
                "--reps=1",
                "--seed=11",
                "--feedback=capture:0.9",
                "--collision-cost=3",
                f"--trace-jsonl={capture}",
            ]
        )
        check("capture scenario run exits 0", r.returncode == 0,
              r.stderr.strip())
        r = run(
            [trace_tool, "coverage", capture,
             "--require=capture-win,cost-slot", "--strict"]
        )
        check(
            "capture trace satisfies --require=capture-win,cost-slot",
            r.returncode == 0,
            f"rc={r.returncode}\n{r.stdout}",
        )
        r = run(
            [trace_tool, "coverage", base,
             "--require=capture-win,cost-slot", "--strict"]
        )
        check(
            "ternary base trace lacks the capture kinds under --strict",
            r.returncode == 1 and "MISSING kind: capture-win" in r.stdout,
            f"rc={r.returncode}",
        )

        # 7. Radio-state transitions (DESIGN.md §6k) fire end to end for a
        # sleeping protocol and never for an always-listening one. A
        # saturated ENERGY_BEB batch sleeps between attempts (radio-sleep)
        # and wakes for each retry (radio-wake); the PUNCTUAL base trace
        # keeps its radio on for every live slot, so the same requirement
        # must flag both kinds as missing.
        energy = tmp / "energy.jsonl"
        r = run(
            [
                cli,
                "--protocol=energy_beb",
                "--workload=batch",
                "--n=64",
                "--window=256",
                "--reps=1",
                "--seed=11",
                f"--trace-jsonl={energy}",
            ]
        )
        check("energy scenario run exits 0", r.returncode == 0,
              r.stderr.strip())
        r = run(
            [trace_tool, "coverage", energy,
             "--require=radio-sleep,radio-wake", "--strict"]
        )
        check(
            "energy_beb trace satisfies --require=radio-sleep,radio-wake",
            r.returncode == 0,
            f"rc={r.returncode}\n{r.stdout}",
        )
        r = run(
            [trace_tool, "coverage", base,
             "--require=radio-sleep,radio-wake", "--strict"]
        )
        check(
            "always-listening base trace lacks the radio kinds",
            r.returncode == 1 and "MISSING kind: radio-sleep" in r.stdout,
            f"rc={r.returncode}",
        )

    if failures:
        print(f"{len(failures)} selftest failure(s)")
        return 1
    print("crmd_trace selftest: all properties hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
