// crmd_trace — offline analytics over JSONL event streams (the
// --trace-jsonl format written by crmd_cli and obs::JsonlFileSink).
//
//   crmd_trace summary TRACE.jsonl
//       Per-kind roll-up: event counts, jobs, attempts, outcome tallies.
//
//   crmd_trace coverage TRACE.jsonl [--protocol=NAME] [--require=KIND,..]
//                       [--strict]
//       Audits the stream against the declared taxonomy (obs/taxonomy.hpp):
//       which expected kinds, stages, and transitions actually fired, which
//       never did. --protocol picks the family by longest-prefix match
//       (punctual, aligned, nocd, uniform; omit for channel-level only).
//       --require adds kinds that must appear regardless of family (e.g.
//       --require=fault for a fault-injection scenario). --strict exits 1
//       when any expected or required kind is missing.
//
//   crmd_trace diff A.jsonl B.jsonl
//       First-divergence comparison: exit 0 when the streams are
//       byte-equivalent event-for-event, exit 1 with the first divergent
//       event (index and slot) otherwise.
//
// Exit codes: 0 success / identical; 1 divergence or failed --strict;
// 2 usage or unreadable input.

#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/taxonomy.hpp"
#include "obs/trace_analysis.hpp"
#include "util/cli.hpp"

namespace {

using namespace crmd;

int usage() {
  std::cerr << "usage: crmd_trace summary TRACE.jsonl\n"
               "       crmd_trace coverage TRACE.jsonl [--protocol=NAME]\n"
               "                  [--require=KIND[,KIND...]] [--strict]\n"
               "       crmd_trace diff A.jsonl B.jsonl\n";
  return 2;
}

/// Splits a comma-separated --require list into EventKinds; returns false
/// (after printing the offender) on an unknown kind name.
bool parse_required(const std::string& spec,
                    std::vector<obs::EventKind>& out) {
  std::istringstream in(spec);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (name.empty()) {
      continue;
    }
    obs::EventKind kind;
    if (!obs::parse_event_kind(name.c_str(), kind)) {
      std::cerr << "crmd_trace: unknown event kind '" << name << "'\n";
      return false;
    }
    out.push_back(kind);
  }
  return true;
}

int cmd_summary(const std::string& path) {
  const auto events = obs::load_trace_file(path);
  const obs::TraceSummary summary = obs::summarize(events);
  std::cout << "trace: " << path << "\n";
  obs::write_summary(std::cout, summary);
  return 0;
}

int cmd_coverage(const std::string& path, const util::Args& args) {
  const auto events = obs::load_trace_file(path);
  const obs::ProtocolTaxonomy* taxonomy = nullptr;
  const std::string protocol = args.get("protocol", "");
  if (!protocol.empty()) {
    taxonomy = obs::taxonomy_for_protocol(protocol);
    if (taxonomy == nullptr) {
      std::cout << "(no declared taxonomy for '" << protocol
                << "'; auditing channel-level kinds only)\n";
    }
  }
  std::vector<obs::EventKind> required;
  if (!parse_required(args.get("require", ""), required)) {
    return 2;
  }
  const obs::CoverageReport report =
      obs::audit_coverage(events, taxonomy, required);
  std::cout << "trace: " << path << "\n";
  obs::write_coverage(std::cout, report);
  if (args.has("strict") && !report.missing_kinds.empty()) {
    std::cerr << "crmd_trace: --strict: "
              << report.missing_kinds.size()
              << " expected/required kind(s) never fired\n";
    return 1;
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const auto a = obs::load_trace_file(path_a);
  const auto b = obs::load_trace_file(path_b);
  const obs::Divergence div = obs::first_divergence(a, b);
  if (!div.diverged) {
    std::cout << "identical: " << a.size() << " events\n";
    return 0;
  }
  const auto describe = [](const std::optional<obs::ParsedEvent>& ev) {
    if (!ev.has_value()) {
      return std::string("<end of stream>");
    }
    std::ostringstream out;
    out << "slot " << ev->slot << " kind " << obs::to_string(ev->kind)
        << " seq " << ev->seq;
    if (ev->job != kNoJob) {
      out << " job " << ev->job;
    }
    out << " a=" << ev->a << " b=" << ev->b;
    if (!ev->label.empty()) {
      out << " label=" << ev->label;
    }
    return out.str();
  };
  // The first divergent *slot* is the earlier of the two sides' slots —
  // an insertion on one side shifts everything after it, but the earliest
  // differing event pins where the executions parted ways.
  Slot slot = -1;
  if (div.a.has_value()) {
    slot = div.a->slot;
  }
  if (div.b.has_value() && (slot < 0 || div.b->slot < slot)) {
    slot = div.b->slot;
  }
  std::cout << "diverged at event index " << div.index << " (slot " << slot
            << ")\n"
            << "  a: " << describe(div.a) << "\n"
            << "  b: " << describe(div.b) << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::vector<std::string>& pos = args.positional();
  if (pos.empty()) {
    return usage();
  }
  const std::string& command = pos[0];
  try {
    if (command == "summary" && pos.size() == 2) {
      return cmd_summary(pos[1]);
    }
    if (command == "coverage" && pos.size() == 2) {
      return cmd_coverage(pos[1], args);
    }
    if (command == "diff" && pos.size() == 3) {
      return cmd_diff(pos[1], pos[2]);
    }
  } catch (const std::exception& e) {
    std::cerr << "crmd_trace: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
