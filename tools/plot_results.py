#!/usr/bin/env python3
"""Plot a crmd bench table (any harness run with --csv=out.csv or
--json=out.json).

Usage:
    bench_punctual_success --csv=e12.csv
    tools/plot_results.py e12.csv --x=window --y="failure rate" \
        --series=gamma --logx --logy --out=e12.png

    bench_fault_matrix --json=faults.json
    tools/plot_results.py faults.json --x=intensity --y="delivery rate" \
        --series=fault --out=faults.png

The script is intentionally generic: pick the x column, the y column, and
optionally a series column; everything else is matplotlib defaults. Values
with thousands separators ("16,384") are parsed. The input format is picked
by extension: .json expects the Table::write_json array-of-objects shape,
anything else is read as CSV.

Timeline JSONs (--timeline=FILE, schema "crmd-timeline-v1") are also
accepted: each slot bucket becomes one row keyed by slot_lo/slot_hi, with
the prob_level histogram flattened to prob_level_0..15 and the derived
per-bucket columns mean_contention, attempts_per_slot, and success_rate:

    bench_jamming --timeline=tl.json
    tools/plot_results.py tl.json --x=slot_lo --y=attempts_per_slot

Bench JSONs whose meta carries a "per_shard" array (bench_megascale's
sharded scenarios) get those entries flattened into extra rows — one per
shard, each keyed by its "shard" column — so shard balance plots directly:

    bench_megascale --json=mega.json
    tools/plot_results.py mega.json --x=shard --y=slots_simulated
"""

import argparse
import csv
import json
import sys


def parse_number(text):
    text = text.strip().replace(",", "")
    try:
        return float(text)
    except ValueError:
        return None


def timeline_row(bucket):
    """Flattens one crmd-timeline-v1 bucket into a plottable row."""
    row = {}
    for key, value in bucket.items():
        if key == "prob_level":
            for level, count in enumerate(value):
                row[f"prob_level_{level}"] = str(count)
        else:
            row[key] = str(value)
    resolved = float(bucket.get("resolved_slots", 0))
    width = float(bucket["slot_hi"]) - float(bucket["slot_lo"]) + 1
    row["mean_contention"] = str(
        float(bucket.get("contention_sum", 0.0)) / resolved if resolved else 0.0
    )
    row["attempts_per_slot"] = str(float(bucket.get("attempts", 0)) / width)
    row["success_rate"] = str(
        float(bucket.get("true_success", 0)) / resolved if resolved else 0.0
    )
    return row


def load_rows(path):
    """Returns a list of {column: string-value} dicts from CSV or JSON.

    JSON accepts both Table::write_json shapes — the plain array of row
    objects and the meta-bearing {"meta": {...}, "rows": [...]} object
    emitted when a harness stamps profiler metadata — plus the
    {"meta": {...}, "buckets": [...]} timeline shape (one row per bucket).
    """
    if path.endswith(".json"):
        with open(path) as f:
            data = json.load(f)
        if (
            isinstance(data, dict)
            and isinstance(data.get("meta"), dict)
            and data["meta"].get("schema") == "crmd-timeline-v1"
        ):
            return [timeline_row(b) for b in data.get("buckets", [])]
        per_shard = []
        if isinstance(data, dict) and "rows" in data:
            meta = data.get("meta")
            if isinstance(meta, dict) and isinstance(
                    meta.get("per_shard"), list):
                # Flatten per-shard entries into rows of their own so a
                # shard-balance plot needs no preprocessing.
                per_shard = [
                    entry for entry in meta["per_shard"]
                    if isinstance(entry, dict)
                ]
            data = data["rows"]
        if not isinstance(data, list):
            sys.exit("json input must be an array of row objects or "
                     '{"meta": ..., "rows": [...]}')
        return [{str(k): str(v) for k, v in row.items()}
                for row in list(data) + per_shard]
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("table_path", help="bench output (.csv or .json)")
    parser.add_argument("--x", required=True, help="x-axis column name")
    parser.add_argument("--y", required=True, help="y-axis column name")
    parser.add_argument("--series", default=None,
                        help="optional column to split lines by")
    parser.add_argument("--logx", action="store_true")
    parser.add_argument("--logy", action="store_true")
    parser.add_argument("--out", default=None,
                        help="output image path (default: show window)")
    args = parser.parse_args()

    rows = load_rows(args.table_path)
    if not rows:
        sys.exit("empty table")
    # Flattened per-shard meta entries carry different columns than the
    # main rows, so require the requested columns on *some* row and skip
    # the rows that lack them rather than demanding a uniform schema.
    usable = [r for r in rows if args.x in r and args.y in r]
    if not usable:
        columns = sorted({k for r in rows for k in r})
        sys.exit(f"columns ({args.x!r}, {args.y!r}) not in any row; "
                 f"available: {columns}")

    series = {}
    for row in usable:
        key = row.get(args.series, "") if args.series else ""
        x = parse_number(row[args.x])
        y = parse_number(row[args.y])
        if x is None or y is None:
            continue
        series.setdefault(key, []).append((x, y))

    import matplotlib
    matplotlib.use("Agg" if args.out else matplotlib.get_backend())
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for key in sorted(series):
        pts = sorted(series[key])
        ax.plot([p[0] for p in pts], [p[1] for p in pts],
                marker="o", label=str(key) if key else None)
    ax.set_xlabel(args.x)
    ax.set_ylabel(args.y)
    if args.logx:
        ax.set_xscale("log", base=2)
    if args.logy:
        ax.set_yscale("log")
    if args.series:
        ax.legend(title=args.series)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if args.out:
        fig.savefig(args.out, dpi=150)
        print(f"wrote {args.out}")
    else:
        plt.show()


if __name__ == "__main__":
    main()
