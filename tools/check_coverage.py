#!/usr/bin/env python3
"""Ratcheted line-coverage gate for the CRMD coverage CI job.

Compares a gcovr --json-summary report (produced by the coverage job over
src/sim + src/core after running the unit + golden + property suites)
against the committed floor in bench/baselines/coverage.json. The gate is
a ratchet, not a target: the floor only ever moves up, and CI fails when
measured line coverage drops more than --tolerance points below it.

Baseline shape (bench/baselines/coverage.json):

    {
      "schema": "crmd-coverage-v1",
      "line_percent": 91.0,            // committed floor, percent of lines
      "tolerance_points": 0.5,         // allowed drop before CI fails
      "filters": ["src/sim/", "src/core/"],
      "suites": "ctest -L 'unit|golden|property'"
    }

The gcovr summary's top-level line_percent is the figure of merit; files[]
is printed (worst-covered first) on failure so the offending source is
obvious without downloading the HTML artifact.

When measured coverage exceeds the floor by more than the tolerance the
script stays green but prints the one-line baseline update to commit, so
genuine improvements get ratcheted in instead of eroding silently back to
the old floor.

Exit codes: 0 ok, 1 coverage regression or malformed input, 2 usage error.
"""

import argparse
import json
import sys

BASELINE_SCHEMA = "crmd-coverage-v1"


def fail(message):
    print(f"check_coverage: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def usage_error(message):
    print(f"check_coverage: usage error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        usage_error(f"cannot read {what} {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{what} {path} is not valid JSON: {exc}")


def get_percent(obj, key, path):
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{path}: '{key}' missing or non-numeric (got {value!r}); "
             "regenerate with gcovr --json-summary")
    if not 0.0 <= float(value) <= 100.0:
        fail(f"{path}: '{key}' = {value} is outside [0, 100]")
    return float(value)


def print_worst_files(summary, limit=10):
    files = summary.get("files")
    if not isinstance(files, list):
        return
    rows = []
    for entry in files:
        if not isinstance(entry, dict):
            continue
        name = entry.get("filename", "?")
        pct = entry.get("line_percent")
        if isinstance(pct, (int, float)) and not isinstance(pct, bool):
            rows.append((float(pct), name))
    rows.sort()
    if not rows:
        return
    print("worst-covered files:", file=sys.stderr)
    for pct, name in rows[:limit]:
        print(f"  {pct:6.1f}%  {name}", file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(
        description="Ratcheted line-coverage gate (see module docstring)")
    parser.add_argument("summary", help="gcovr --json-summary output")
    parser.add_argument("--baseline", required=True,
                        help="committed floor, e.g. bench/baselines/coverage.json")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed drop in points before failing "
                             "(default: baseline's tolerance_points, else 0.5)")
    args = parser.parse_args()

    summary = load_json(args.summary, "summary")
    baseline = load_json(args.baseline, "baseline")
    if not isinstance(summary, dict):
        fail(f"{args.summary}: expected a JSON object at top level")
    if not isinstance(baseline, dict):
        fail(f"{args.baseline}: expected a JSON object at top level")
    if baseline.get("schema") != BASELINE_SCHEMA:
        fail(f"{args.baseline}: schema is {baseline.get('schema')!r}, "
             f"expected {BASELINE_SCHEMA!r}")

    current = get_percent(summary, "line_percent", args.summary)
    floor = get_percent(baseline, "line_percent", args.baseline)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance_points", 0.5)
    if not isinstance(tolerance, (int, float)) or isinstance(tolerance, bool) \
            or tolerance < 0:
        usage_error(f"tolerance must be a non-negative number, got {tolerance!r}")
    tolerance = float(tolerance)

    delta = current - floor
    line = (f"line coverage {current:.1f}% vs committed floor {floor:.1f}% "
            f"(delta {delta:+.1f}pt, tolerance {tolerance:.1f}pt)")

    if current < floor - tolerance:
        print_worst_files(summary)
        fail(f"{line} — coverage regressed. Either cover the new code or, "
             "if the drop is a deliberate trade-off, lower 'line_percent' in "
             f"{args.baseline} in the same PR with a justification.")

    print(f"check_coverage: ok: {line}")
    if current > floor + tolerance:
        print(f"check_coverage: hint: coverage beat the floor by "
              f"{delta:.1f}pt — ratchet it in by setting "
              f"\"line_percent\": {current - tolerance:.1f} in {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
