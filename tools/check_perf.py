#!/usr/bin/env python3
"""Compare a bench_slot_engine --json result against a committed baseline.

The slot-engine harness (bench/bench_slot_engine.cpp) emits the shape every
crmd bench does: {"meta": {...}, "rows": [{...}, ...]} with string-valued
cells. Rows are keyed by (scenario, jobs); the figure of merit is
slots_per_sec.

Modes:
  check_perf.py result.json --check-only
      Validate the JSON shape only (meta present, required columns, positive
      throughput). Exit 1 on malformed output. This is the CI smoke gate.
      Timeline JSONs (--timeline=FILE, schema "crmd-timeline-v1") are
      recognized and get their own structural validation instead: bucket
      geometry (power-of-two width/count, contiguous slot windows),
      non-negative counters, and a prob_level histogram that sums to the
      bucket's attempts.

Every mode also honors repeatable --expect SUBSTR flags: each SUBSTR must
match at least one scenario key in the current file, so a sweep that
silently drops a point (a skipped protocol x feedback-model cell, a
renamed scenario) fails loudly instead of sailing through shape checks.

  check_perf.py result.json [--baseline bench/baselines/slot_engine.json]
                            [--threshold 0.35]
      For every sweep point present in both files, compute
      ratio = current / baseline slots_per_sec and fail (exit 1) when any
      ratio falls below the threshold. The default threshold is generous on
      purpose: CI machines differ wildly from the machine that produced the
      baseline, so this catches order-of-magnitude regressions (an
      accidental O(total jobs) slot cost), not few-percent drift. Track
      drift by diffing the uploaded JSON artifacts across runs instead.
      A candidate column missing from a shared baseline row fails loudly
      ("column X missing in baseline row N") — the baseline predates a
      schema change and must be regenerated.

  check_perf.py second.json --self-check first.json [--threshold 0.65]
      Self-relative gate: both files come from the SAME machine in the
      SAME CI job (the harness run twice back to back), so cross-machine
      variance is gone and the comparison can block. Every sweep point of
      the first run must be present in the second; fail (exit 1) when any
      point's second-run throughput collapses below threshold x the
      first run (default 0.65 = a >35% run-to-run drop, which on an idle
      runner means a real pathology — a warmup-order dependency, a leak,
      or state accumulated by the first run).

  check_perf.py mega.json --speedup-over dense.json --speedup-factor 10 \
                          [--speedup-match SUBSTR ...]
      Blocking same-machine speedup gate (the mega-scale acceptance
      criterion): every current row whose scenario contains one of the
      --speedup-match substrings (all rows when none are given) must reach
      at least speedup-factor x the BEST slots_per_sec of the reference
      file. Both files must come from the same machine/job, like
      --self-check; the reference is a dense-engine harness
      (bench_slot_engine), so row keys are not expected to match.

Every mode validates mega-scale meta when present: fast_forward_slots and
live_peak must be non-negative ints, shards a positive int. Repeatable
--require-meta KEY flags make a meta key's absence an error (exit 1) —
use them to pin that a harness actually stamps its provenance.

Exit codes: 0 ok, 1 regression or malformed input, 2 usage error.
"""

import argparse
import json
import sys

REQUIRED_COLUMNS = ("scenario", "jobs", "slots", "wall_ms", "slots_per_sec")

TIMELINE_SCHEMA = "crmd-timeline-v1"
TIMELINE_COUNT_FIELDS = (
    "resolved_slots", "live_job_slots", "attempts",
    "true_silence", "true_success", "true_noise",
    "seen_silence", "seen_success", "seen_noise",
    "activations", "retires", "expiries", "faults",
    "awake_job_slots", "radio_sleeps", "radio_wakes",
)
TIMELINE_PROB_LEVELS = 16


def validate_timeline(path, doc):
    """Structural check of a crmd-timeline-v1 document (see obs/timeline.hpp).

    Returns the number of populated buckets; raises ValueError on any shape
    violation.
    """
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        raise ValueError(f"{path}: timeline 'meta' is not an object")
    if meta.get("schema") != TIMELINE_SCHEMA:
        raise ValueError(f"{path}: timeline schema is {meta.get('schema')!r}, "
                         f"expected {TIMELINE_SCHEMA!r}")
    width = meta.get("bucket_width")
    count = meta.get("bucket_count")
    for name, value in (("bucket_width", width), ("bucket_count", count)):
        if not isinstance(value, int) or value < 1 or value & (value - 1):
            raise ValueError(f"{path}: meta.{name} must be a positive power "
                             f"of two, got {value!r}")
    if not isinstance(meta.get("events"), int) or meta["events"] < 0:
        raise ValueError(f"{path}: meta.events must be a non-negative int")
    buckets = doc.get("buckets")
    if not isinstance(buckets, list):
        raise ValueError(f"{path}: 'buckets' is not a list")
    if len(buckets) > count:
        raise ValueError(f"{path}: {len(buckets)} buckets exceed "
                         f"bucket_count {count}")
    for i, bucket in enumerate(buckets):
        lo, hi = bucket.get("slot_lo"), bucket.get("slot_hi")
        if lo != i * width or hi != lo + width - 1:
            raise ValueError(f"{path}: bucket {i} window [{lo}, {hi}] does "
                             f"not match contiguous width-{width} windows")
        for field in TIMELINE_COUNT_FIELDS:
            value = bucket.get(field)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{path}: bucket {i} field '{field}' must "
                                 f"be a non-negative int, got {value!r}")
        if not isinstance(bucket.get("contention_sum"), (int, float)):
            raise ValueError(f"{path}: bucket {i} contention_sum is not a "
                             f"number")
        levels = bucket.get("prob_level")
        if (not isinstance(levels, list)
                or len(levels) != TIMELINE_PROB_LEVELS
                or any(not isinstance(n, int) or n < 0 for n in levels)):
            raise ValueError(f"{path}: bucket {i} prob_level must be "
                             f"{TIMELINE_PROB_LEVELS} non-negative ints")
        if sum(levels) != bucket["attempts"]:
            raise ValueError(f"{path}: bucket {i} prob_level sums to "
                             f"{sum(levels)} but attempts is "
                             f"{bucket['attempts']}")
    max_slot = meta.get("max_slot")
    if not isinstance(max_slot, int):
        raise ValueError(f"{path}: meta.max_slot must be an int")
    if buckets:
        last = buckets[-1]
        if not last["slot_lo"] <= max_slot <= last["slot_hi"]:
            raise ValueError(f"{path}: meta.max_slot {max_slot} falls "
                             f"outside the last bucket window")
    elif max_slot >= 0:
        raise ValueError(f"{path}: meta.max_slot {max_slot} but no buckets")
    return len(buckets)


def load_rows(path):
    """Returns (meta, {(scenario, jobs): row_dict}) or raises ValueError."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "rows" not in doc:
        raise ValueError(f"{path}: expected an object with a 'rows' list")
    meta = doc.get("meta", {})
    if not isinstance(meta, dict):
        raise ValueError(f"{path}: 'meta' is not an object")
    rows = {}
    for i, row in enumerate(doc["rows"]):
        missing = [c for c in REQUIRED_COLUMNS if c not in row]
        if missing:
            raise ValueError(f"{path}: row {i} missing columns {missing}")
        key = (row["scenario"], int(row["jobs"]))
        rate = float(row["slots_per_sec"])
        if rate <= 0:
            raise ValueError(f"{path}: row {i} ({key}): slots_per_sec <= 0")
        if key in rows:
            raise ValueError(f"{path}: duplicate sweep point {key}")
        row = dict(row)
        row["__row__"] = i  # position in the file, for error messages
        rows[key] = row
    if not rows:
        raise ValueError(f"{path}: no rows")
    return meta, rows


META_INT_FIELDS = (
    # (key, minimum) — validated whenever the key is present in meta.
    ("fast_forward_slots", 0),
    ("live_peak", 0),
    ("shards", 1),
)


def validate_meta(path, meta):
    """Mega-scale meta sanity: counters are ints within range; the
    per_shard array (when present) is a list of objects with int shard
    ids. Raises ValueError on violations."""
    for key, minimum in META_INT_FIELDS:
        if key not in meta:
            continue
        value = meta[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < minimum:
            raise ValueError(f"{path}: meta.{key} must be an int >= "
                             f"{minimum}, got {value!r}")
    shards = meta.get("shards")
    per_shard = meta.get("per_shard")
    if per_shard is not None:
        if not isinstance(per_shard, list):
            raise ValueError(f"{path}: meta.per_shard is not a list")
        for i, entry in enumerate(per_shard):
            if not isinstance(entry, dict) or entry.get("shard") != i:
                raise ValueError(f"{path}: meta.per_shard[{i}] must be an "
                                 f"object with shard id {i}")
        if isinstance(shards, int) and per_shard \
                and len(per_shard) != shards:
            raise ValueError(f"{path}: meta.per_shard has "
                             f"{len(per_shard)} entries but meta.shards is "
                             f"{shards}")


def check_required_meta(path, meta, required):
    """Each --require-meta KEY must be present. Returns missing count."""
    missing = 0
    for key in required:
        if key not in meta:
            print(f"check_perf: FAIL: {path}: meta is missing required "
                  f"key '{key}'", file=sys.stderr)
            missing += 1
    return missing


def check_expected(expects, current):
    """Each --expect substring must match >= 1 scenario key. Returns the
    number of unmatched expectations (0 = all present)."""
    unmatched = 0
    for expect in expects:
        if not any(expect in scenario for scenario, _ in current):
            print(f"check_perf: FAIL: no sweep point matches "
                  f"--expect '{expect}'", file=sys.stderr)
            unmatched += 1
    return unmatched


def run_speedup_gate(args, current):
    """Blocking same-machine mega-scale gate; see the module docstring."""
    factor = args.speedup_factor
    if factor <= 0:
        print("check_perf: --speedup-factor must be > 0", file=sys.stderr)
        return 2
    try:
        _, reference = load_rows(args.speedup_over)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_perf: FAIL: {e}", file=sys.stderr)
        return 1
    ref_best = max(float(r["slots_per_sec"]) for r in reference.values())
    need = factor * ref_best

    matches = {
        key: row for key, row in current.items()
        if not args.speedup_match
        or any(sub in key[0] for sub in args.speedup_match)
    }
    if not matches:
        print(f"check_perf: FAIL: no current rows match --speedup-match "
              f"{args.speedup_match}", file=sys.stderr)
        return 1

    failures = []
    print(f"reference best: {ref_best:.4g} slots/sec; gate: "
          f">= {factor}x = {need:.4g}")
    print(f"{'scenario':<24} {'jobs':>10} {'slots/sec':>12} {'x ref':>8}")
    for key in sorted(matches):
        cur = float(matches[key]["slots_per_sec"])
        ratio = cur / ref_best
        flag = "" if cur >= need else "  << BELOW GATE"
        print(f"{key[0]:<24} {key[1]:>10} {cur:>12.4g} {ratio:>8.1f}{flag}")
        if cur < need:
            failures.append((key, ratio))

    if failures:
        print(f"check_perf: FAIL: {len(failures)} row(s) below {factor}x "
              f"the reference best", file=sys.stderr)
        return 1
    print(f"check_perf: ok: {len(matches)} row(s) >= {factor}x the "
          f"reference best")
    return 0


def run_self_check(args, current):
    """Blocking same-machine comparison; see the module docstring."""
    threshold = 0.65 if args.threshold is None else args.threshold
    if threshold <= 0:
        print("check_perf: --threshold must be > 0", file=sys.stderr)
        return 2
    try:
        _, first = load_rows(args.self_check)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_perf: FAIL: {e}", file=sys.stderr)
        return 1

    missing = sorted(set(first) - set(current))
    if missing:
        print(f"check_perf: FAIL: second run is missing sweep points "
              f"{missing}", file=sys.stderr)
        return 1

    failures = []
    print(f"{'scenario':<40} {'jobs':>6} {'run 1':>12} {'run 2':>12} "
          f"{'ratio':>7}")
    for key in sorted(first):
        base = float(first[key]["slots_per_sec"])
        cur = float(current[key]["slots_per_sec"])
        ratio = cur / base
        flag = "" if ratio >= threshold else "  << COLLAPSE"
        print(f"{key[0]:<40} {key[1]:>6} {base:>12.4g} {cur:>12.4g} "
              f"{ratio:>7.2f}{flag}")
        if ratio < threshold:
            failures.append((key, ratio))

    if failures:
        print(f"check_perf: FAIL: {len(failures)} point(s) collapsed below "
              f"{threshold}x of the same-machine first run", file=sys.stderr)
        return 1
    print(f"check_perf: ok: {len(first)} points >= {threshold}x of the "
          f"same-machine first run")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="slot-engine perf comparator (see module docstring)")
    parser.add_argument("current", help="bench_slot_engine --json output")
    parser.add_argument("--baseline",
                        default="bench/baselines/slot_engine.json")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail when current/baseline slots_per_sec "
                             "drops below this ratio (default: 0.35, or "
                             "0.65 with --self-check)")
    parser.add_argument("--check-only", action="store_true",
                        help="validate the JSON shape only; no comparison")
    parser.add_argument("--self-check", metavar="FIRST_RUN",
                        help="blocking same-machine gate: compare against "
                             "FIRST_RUN (an earlier run of the same harness "
                             "in the same job); every FIRST_RUN point must "
                             "be present and within --threshold "
                             "(default 0.65 in this mode)")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="SUBSTR",
                        help="require >= 1 scenario key containing SUBSTR "
                             "(repeatable; applies in every mode)")
    parser.add_argument("--require-meta", action="append", default=[],
                        metavar="KEY",
                        help="require meta key KEY to be present "
                             "(repeatable; applies in every mode)")
    parser.add_argument("--speedup-over", metavar="REFERENCE",
                        help="blocking same-machine gate: every matching "
                             "row must reach --speedup-factor x the best "
                             "slots_per_sec of REFERENCE")
    parser.add_argument("--speedup-factor", type=float, default=10.0,
                        help="required multiple for --speedup-over "
                             "(default: 10)")
    parser.add_argument("--speedup-match", action="append", default=[],
                        metavar="SUBSTR",
                        help="restrict --speedup-over to scenarios "
                             "containing SUBSTR (repeatable; default: all "
                             "rows)")
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: FAIL: {e}", file=sys.stderr)
        return 1
    if isinstance(doc, dict) and "buckets" in doc:
        if not args.check_only:
            print("check_perf: timeline JSONs only support --check-only",
                  file=sys.stderr)
            return 2
        try:
            n = validate_timeline(args.current, doc)
        except ValueError as e:
            print(f"check_perf: FAIL: {e}", file=sys.stderr)
            return 1
        print(f"check_perf: ok: {args.current} is a valid "
              f"{TIMELINE_SCHEMA} document with {n} bucket(s)")
        return 0

    try:
        meta, current = load_rows(args.current)
        validate_meta(args.current, meta)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_perf: FAIL: {e}", file=sys.stderr)
        return 1

    unmatched = check_expected(args.expect, current)
    if unmatched:
        print(f"check_perf: FAIL: {unmatched} expected sweep point(s) "
              f"missing", file=sys.stderr)
        return 1
    if check_required_meta(args.current, meta, args.require_meta):
        return 1

    if args.speedup_over:
        return run_speedup_gate(args, current)

    if args.check_only:
        print(f"check_perf: ok: {args.current} has {len(current)} sweep "
              f"points, meta keys {sorted(meta)}"
              + (f", {len(args.expect)} expectation(s) matched"
                 if args.expect else ""))
        return 0

    if args.self_check:
        return run_self_check(args, current)

    try:
        _, baseline = load_rows(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_perf: FAIL: {e}", file=sys.stderr)
        return 1

    threshold = 0.35 if args.threshold is None else args.threshold
    if threshold <= 0:
        print("check_perf: --threshold must be > 0", file=sys.stderr)
        return 2

    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("check_perf: FAIL: no sweep points shared with the baseline",
              file=sys.stderr)
        return 1

    # Column consistency: a candidate column absent from the baseline row
    # means the baseline predates a schema change and must be regenerated —
    # fail with the column and row instead of a KeyError downstream.
    for key in shared:
        stale = [c for c in current[key] if c not in baseline[key]]
        if stale:
            print(f"check_perf: FAIL: column {stale[0]} missing in baseline "
                  f"row {baseline[key]['__row__']} ({key[0]}) — regenerate "
                  f"the baseline JSON", file=sys.stderr)
            return 1

    failures = []
    print(f"{'scenario':<18} {'jobs':>6} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}")
    for key in shared:
        base = float(baseline[key]["slots_per_sec"])
        cur = float(current[key]["slots_per_sec"])
        ratio = cur / base
        flag = "" if ratio >= threshold else "  << REGRESSION"
        print(f"{key[0]:<18} {key[1]:>6} {base:>12.4g} {cur:>12.4g} "
              f"{ratio:>7.2f}{flag}")
        if ratio < threshold:
            failures.append((key, ratio))

    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(f"check_perf: note: {len(only_current)} sweep point(s) not in "
              f"baseline (new points are fine): {only_current}")

    if failures:
        print(f"check_perf: FAIL: {len(failures)} point(s) below "
              f"{threshold}x of baseline", file=sys.stderr)
        return 1
    print(f"check_perf: ok: {len(shared)} points >= {threshold}x of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
