#pragma once

// Shared scaffolding for the experiment harnesses in bench/. Each binary
// reproduces one table/figure/claim from the paper (see DESIGN.md §4 and
// EXPERIMENTS.md) and prints its results through util::Table so the output
// of `for b in build/bench/*; do $b; done` is uniform and diffable.
//
// Common flags (every harness): --reps=N, --seed=S, --csv=path.csv,
// --json=path.json, --quick (shrink the sweep for smoke runs),
// --threads=N (replication workers; 0 = one per hardware thread, 1 =
// serial; results are bit-identical for every value — the determinism
// contract, see analysis/runner.hpp), --trace-events=path.json (Chrome
// trace-event export of every simulated run; open in chrome://tracing or
// Perfetto), --timeline=path.json (slot-bucketed telemetry aggregated
// over every simulated run — obs/timeline.hpp; bit-identical for every
// --threads value), --metrics=path.json (metrics-registry snapshot),
// --feedback=<model>[:param] (channel feedback semantics:
// ternary | binary_ack | collision_as_silence | noisy[:eps] |
// capture[:alpha]; see sim/channel.hpp), --collision-cost=c (a perceived
// collision freezes the channel for c-1 extra slots; default 1 = the
// paper's channel; see sim/simulator.hpp), --fast-forward=off|on|validate
// (event-driven idle-slot skipping; default off), --channels=K[:migrate[:N]]
// (FDMA multi-channel scenario; default 1), --arrivals=SPEC (streaming
// arrival process: poisson:RATE[:WINDOW] | mmpp:RLO:RHI[:WINDOW[:DWELL]] |
// trace:PATH; see sim/arrivals.hpp).
//
// JSON outputs carry a "meta" object with run-profiler timings (wall_ms,
// slots_per_sec, per-phase breakdown) plus the worker count ("threads")
// and the per-thread simulation throughput ("slots_per_sec_per_thread"),
// so BENCH_*.json records a real perf trajectory. Timings never appear in
// the console table or CSV, so those artifacts stay byte-stable across
// runs.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/arrivals.hpp"
#include "sim/multichannel.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace crmd::bench {

/// Flags shared by every harness.
struct CommonArgs {
  int reps;
  std::uint64_t seed;
  std::string csv;
  std::string json;
  std::string trace_events;
  /// Slot-bucketed telemetry JSON from --timeline=PATH (obs/timeline.hpp);
  /// empty = off. Aggregates every traced run of the harness.
  std::string timeline;
  /// Metrics-registry snapshot JSON from --metrics=PATH; empty = off.
  std::string metrics;
  bool quick;
  /// Replication workers as requested by --threads= (0 = hardware default);
  /// pass to run_replications, which resolves and clamps it.
  int threads;
  /// Channel feedback semantics from --feedback=<model>[:param] (see
  /// channel.hpp; "ternary", "binary_ack", "collision_as_silence",
  /// "noisy[:eps]", "capture[:alpha]"). Defaults to ternary —
  /// bit-identical to a build without the flag. Pass via
  /// analysis::RunOptions::feedback or SimConfig::feedback.
  sim::FeedbackModel feedback;
  /// Collision-cost physics from --collision-cost=c (>= 1; see
  /// simulator.hpp SimConfig::collision_cost). Defaults to 1 — the
  /// paper's channel, bit-identical to a build without the flag. Pass via
  /// analysis::RunOptions::collision_cost or SimConfig::collision_cost.
  int collision_cost;
  /// Event-driven fast-forward from --fast-forward=off|on|validate (see
  /// simulator.hpp FastForward). Defaults to kOff — bit-identical to a
  /// build without the flag.
  sim::FastForward fast_forward;
  /// FDMA scenario from --channels=K[:migrate[:N]] (see multichannel.hpp).
  /// Defaults to a single channel — the engine's unchanged hot path.
  sim::MultiChannelConfig multichannel;
  /// Streaming arrival process from --arrivals=SPEC (see arrivals.hpp);
  /// nullopt when the flag is absent. Harnesses that support it build one
  /// process per run/shard with `arrivals->make()`.
  std::optional<sim::ArrivalSpec> arrivals;
};

/// Parses the shared flags with harness-specific defaults.
inline CommonArgs parse_common(const util::Args& args, int default_reps,
                               std::uint64_t default_seed = 1) {
  CommonArgs c;
  c.quick = args.get_bool("quick", false);
  c.reps = static_cast<int>(args.get_int("reps", default_reps));
  if (c.quick) {
    c.reps = std::max(1, c.reps / 4);
  }
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", default_seed));
  c.csv = args.get("csv", "");
  c.json = args.get("json", "");
  c.trace_events = args.get("trace-events", "");
  c.timeline = args.get("timeline", "");
  c.metrics = args.get("metrics", "");
  c.threads = static_cast<int>(args.get_int("threads", 0));
  const std::string spec = args.get("feedback", "ternary");
  if (const auto model = sim::parse_feedback_spec(spec, std::cerr)) {
    c.feedback = *model;
  } else {
    std::exit(2);
  }
  const std::string cost_spec = args.get("collision-cost", "1");
  if (const auto cost = sim::parse_collision_cost(cost_spec, std::cerr)) {
    c.collision_cost = *cost;
  } else {
    std::exit(2);
  }
  const std::string ff_spec = args.get("fast-forward", "off");
  if (const auto ff = sim::parse_fast_forward_spec(ff_spec, std::cerr)) {
    c.fast_forward = *ff;
  } else {
    std::exit(2);
  }
  const std::string chan_spec = args.get("channels", "1");
  if (const auto chan = sim::parse_channels_spec(chan_spec, std::cerr)) {
    c.multichannel = *chan;
  } else {
    std::exit(2);
  }
  if (args.has("arrivals")) {
    const std::string arr_spec = args.get("arrivals", "");
    if (const auto arr = sim::parse_arrivals_spec(arr_spec, std::cerr)) {
      c.arrivals = *arr;
    } else {
      std::exit(2);
    }
  }
  return c;
}

/// Shared workload constructions for the engine-throughput harnesses
/// (bench_slot_engine, bench_stability, bench_megascale). Each Kind
/// reproduces the construction the harnesses historically inlined,
/// bit-exactly, so perf trajectories stay comparable across the dedup.
struct WorkloadSpec {
  enum class Kind {
    kBatch,    ///< gen_batch(jobs, window): all live from slot 0.
    kStagger,  ///< releases i*stride, deadlines i*stride + lifetime.
    kPoisson,  ///< gen_poisson(rate, window, horizon, rng) — batch Poisson.
  };
  Kind kind = Kind::kBatch;
  std::int64_t jobs = 0;  ///< kBatch / kStagger
  Slot window = 0;        ///< kBatch / kPoisson per-job window
  Slot stride = 32;       ///< kStagger release gap
  Slot lifetime = 64;     ///< kStagger per-job window
  double rate = 0.0;      ///< kPoisson jobs/slot
  Slot horizon = 0;       ///< kPoisson release range
};

/// Builds the instance a WorkloadSpec describes. `rng` is consumed only by
/// kPoisson (pass the per-rep generation stream); deterministic kinds
/// ignore it, so passing nullptr is fine there.
inline workload::Instance make_workload(const WorkloadSpec& spec,
                                        util::Rng* rng = nullptr) {
  switch (spec.kind) {
    case WorkloadSpec::Kind::kStagger: {
      workload::Instance instance;
      instance.jobs.reserve(static_cast<std::size_t>(spec.jobs));
      for (std::int64_t i = 0; i < spec.jobs; ++i) {
        instance.jobs.push_back(workload::JobSpec{
            i * spec.stride, i * spec.stride + spec.lifetime});
      }
      return instance;
    }
    case WorkloadSpec::Kind::kPoisson:
      return workload::gen_poisson(spec.rate, spec.window, spec.horizon,
                                   *rng);
    case WorkloadSpec::Kind::kBatch:
    default:
      return workload::gen_batch(spec.jobs, spec.window);
  }
}

/// Owns the optional tracing session built from --trace-events and/or
/// --timeline. `get()` is null when tracing is off, which every consumer
/// treats as "emit nothing" (see CRMD_TRACE); pass it to run_replications
/// or SimConfig::tracer. Call finish() (or let the destructor run) to
/// flush and write the Chrome trace / timeline files.
struct TraceSession {
  std::unique_ptr<obs::Tracer> tracer;
  std::shared_ptr<obs::Timeline> timeline;
  std::string timeline_path;
  bool timeline_written = false;

  TraceSession() = default;
  TraceSession(TraceSession&&) = default;
  TraceSession& operator=(TraceSession&&) = default;

  [[nodiscard]] obs::Tracer* get() const noexcept { return tracer.get(); }

  /// Flushes pending events and writes the timeline JSON (idempotent; a
  /// later finish() will not rewrite it). Also stamps trace.emitted /
  /// trace.dropped_events into the global metrics registry so a --metrics
  /// snapshot records trace completeness.
  void export_artifacts() {
    if (tracer) {
      tracer->flush();
      obs::Registry& reg = obs::global_registry();
      reg.counter("trace.emitted")
          .inc(static_cast<std::int64_t>(tracer->emitted()) -
               reg.counter("trace.emitted").value());
      reg.counter("trace.dropped_events")
          .inc(static_cast<std::int64_t>(tracer->dropped()) -
               reg.counter("trace.dropped_events").value());
    }
    if (timeline) {
      // Rewritten on every call so multi-table harnesses end with the
      // full aggregate; the message prints once.
      const bool ok = timeline->save_json(timeline_path);
      if (!timeline_written) {
        timeline_written = true;
        if (ok) {
          std::cout << "(timeline written to " << timeline_path << ")\n";
        } else {
          std::cout << "(FAILED to write timeline to " << timeline_path
                    << ")\n";
        }
      }
    }
  }

  void finish() {
    if (tracer) {
      tracer->close();
      if (tracer->dropped() > 0) {
        std::cerr << "warning: trace dropped " << tracer->dropped()
                  << " event(s); exported traces are incomplete\n";
      }
    }
    export_artifacts();
    tracer.reset();
    timeline.reset();
  }

  ~TraceSession() { finish(); }
};

/// Builds the tracing session requested by --trace-events / --timeline
/// (off by default: a null tracer and bit-identical results).
inline TraceSession make_trace_session(const CommonArgs& common) {
  TraceSession session;
  if (common.trace_events.empty() && common.timeline.empty()) {
    return session;
  }
  session.tracer = std::make_unique<obs::Tracer>();
  if (!common.trace_events.empty()) {
    session.tracer->add_sink(
        std::make_shared<obs::ChromeTraceSink>(common.trace_events));
    std::cout << "(tracing to " << common.trace_events << ")\n";
  }
  if (!common.timeline.empty()) {
    session.timeline = std::make_shared<obs::Timeline>();
    session.tracer->add_sink(session.timeline);
    session.timeline_path = common.timeline;
  }
  return session;
}

/// Stamps run-profiler results into the table's JSON meta block:
/// wall-clock, slots simulated, slots/sec (aggregate across workers and
/// per worker thread), the worker count, and the per-phase breakdown.
/// `threads` is the resolved replication worker count (>= 1).
inline void stamp_profile(util::Table& table, int threads = 1) {
  const obs::RunProfiler& prof = obs::global_profiler();
  const double wall_ms = prof.wall_ms();
  std::ostringstream num;
  num << wall_ms;
  table.set_meta("wall_ms", num.str());
  num.str("");
  num << prof.slots();
  table.set_meta("slots_simulated", num.str());
  // Aggregate throughput: total slots over wall time — the figure a
  // --threads= speedup shows up in.
  num.str("");
  num << (wall_ms > 0.0
              ? static_cast<double>(prof.slots()) / (wall_ms / 1000.0)
              : 0.0);
  table.set_meta("slots_per_sec", num.str());
  // Per-thread throughput: phase ms sum across workers, so the profiler's
  // simulation-phase rate is per worker (see obs/profiler.hpp).
  num.str("");
  num << prof.slots_per_sec();
  table.set_meta("slots_per_sec_per_thread", num.str());
  table.set_meta("threads", std::to_string(threads));
  // Mega-scale provenance: how much of the slot count was fast-forwarded,
  // the peak live-job count, and the shard fan-out (1 = unsharded). Stamped
  // unconditionally so check_perf.py can validate every BENCH_*.json.
  table.set_meta("fast_forward_slots",
                 std::to_string(prof.fast_forward_slots()));
  table.set_meta("live_peak", std::to_string(prof.live_peak()));
  table.set_meta("shards", std::to_string(prof.shards()));
  std::ostringstream phases;
  phases << '{';
  bool first = true;
  for (const auto& ph : prof.phases()) {
    phases << (first ? "" : ", ") << '"' << ph.name << "\": " << ph.ms;
    first = false;
  }
  phases << '}';
  table.set_meta("phase_ms", phases.str());
}

/// Stamps profiler gauges into the global metrics registry and writes the
/// --metrics=PATH snapshot (Registry::write_json). Trace counters land in
/// the registry from TraceSession::export_artifacts before this runs.
inline void export_metrics(const CommonArgs& common, int threads) {
  if (common.metrics.empty()) {
    return;
  }
  obs::Registry& reg = obs::global_registry();
  const obs::RunProfiler& prof = obs::global_profiler();
  reg.gauge("profile.wall_ms").set(prof.wall_ms());
  reg.gauge("profile.slots_simulated")
      .set(static_cast<double>(prof.slots()));
  reg.gauge("run.threads").set(static_cast<double>(threads));
  std::ofstream out(common.metrics);
  if (out) {
    reg.write_json(out);
  }
  if (out) {
    std::cout << "(metrics written to " << common.metrics << ")\n";
  } else {
    std::cout << "(FAILED to write metrics to " << common.metrics << ")\n";
  }
}

/// Prints the table (and saves CSV/JSON/metrics when requested). `header`
/// names the experiment and its paper anchor. JSON output gains the
/// profiler meta; when a TraceSession is passed its timeline is written
/// first and stamped into the JSON meta (timeline path, bucket geometry,
/// trace completeness), so artifacts cross-reference each other.
inline void emit(util::Table& table, const std::string& header,
                 const CommonArgs& common, TraceSession* session = nullptr) {
  if (session != nullptr) {
    session->export_artifacts();
  }
  table.print(std::cout, header);
  if (!common.csv.empty()) {
    if (table.save_csv(common.csv)) {
      std::cout << "(csv written to " << common.csv << ")\n";
    } else {
      std::cout << "(FAILED to write csv to " << common.csv << ")\n";
    }
  }
  if (!common.json.empty()) {
    stamp_profile(table, analysis::resolve_threads(common.threads));
    if (session != nullptr && session->tracer) {
      table.set_meta("trace_emitted", std::to_string(session->tracer->emitted()));
      table.set_meta("trace_dropped_events",
                     std::to_string(session->tracer->dropped()));
    }
    if (session != nullptr && session->timeline) {
      table.set_meta("timeline", "\"" + session->timeline_path + "\"");
      table.set_meta("timeline_bucket_width",
                     std::to_string(session->timeline->bucket_width()));
      table.set_meta("timeline_buckets",
                     std::to_string(session->timeline->bucket_count()));
      table.set_meta("timeline_events",
                     std::to_string(session->timeline->events_seen()));
    }
    if (table.save_json(common.json)) {
      std::cout << "(json written to " << common.json << ")\n";
    } else {
      std::cout << "(FAILED to write json to " << common.json << ")\n";
    }
  }
  export_metrics(common, analysis::resolve_threads(common.threads));
  std::cout << "\n";
}

}  // namespace crmd::bench
