#pragma once

// Shared scaffolding for the experiment harnesses in bench/. Each binary
// reproduces one table/figure/claim from the paper (see DESIGN.md §4 and
// EXPERIMENTS.md) and prints its results through util::Table so the output
// of `for b in build/bench/*; do $b; done` is uniform and diffable.
//
// Common flags (every harness): --reps=N, --seed=S, --csv=path.csv,
// --json=path.json, --quick (shrink the sweep for smoke runs).

#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace crmd::bench {

/// Flags shared by every harness.
struct CommonArgs {
  int reps;
  std::uint64_t seed;
  std::string csv;
  std::string json;
  bool quick;
};

/// Parses the shared flags with harness-specific defaults.
inline CommonArgs parse_common(const util::Args& args, int default_reps,
                               std::uint64_t default_seed = 1) {
  CommonArgs c;
  c.quick = args.get_bool("quick", false);
  c.reps = static_cast<int>(args.get_int("reps", default_reps));
  if (c.quick) {
    c.reps = std::max(1, c.reps / 4);
  }
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", default_seed));
  c.csv = args.get("csv", "");
  c.json = args.get("json", "");
  return c;
}

/// Prints the table (and saves CSV when requested). `header` names the
/// experiment and its paper anchor.
inline void emit(const util::Table& table, const std::string& header,
                 const CommonArgs& common) {
  table.print(std::cout, header);
  if (!common.csv.empty()) {
    if (table.save_csv(common.csv)) {
      std::cout << "(csv written to " << common.csv << ")\n";
    } else {
      std::cout << "(FAILED to write csv to " << common.csv << ")\n";
    }
  }
  if (!common.json.empty()) {
    if (table.save_json(common.json)) {
      std::cout << "(json written to " << common.json << ")\n";
    } else {
      std::cout << "(FAILED to write json to " << common.json << ")\n";
    }
  }
  std::cout << "\n";
}

}  // namespace crmd::bench
