// E8 — §3 "Jamming": ALIGNED tolerates a stochastic adversary that jams any
// slot with success probability p_jam <= 1/2 — including adversaries that
// target only the estimation protocol (to skew n_ℓ) or only data messages.
//
// The harness sweeps p_jam for three adversaries (reactive-on-success,
// control-targeted, data-targeted) on a fixed batch and reports delivery
// rates. The analyzed regime ends at p_jam = 1/2; we also probe beyond it
// to show where the guarantee visibly erodes.

#include <functional>
#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/aligned/protocol.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/20);
  auto trace = bench::make_trace_session(common);

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", 2));
  params.tau = 8;
  const int level = static_cast<int>(args.get_int("level", 13));
  params.min_class = level;
  const std::int64_t batch = args.get_int("batch", 16);
  const auto factory = core::aligned::make_aligned_factory(params);

  const analysis::InstanceGen gen = [&](util::Rng&) {
    return workload::gen_batch(batch, Slot{1} << level, 0);
  };

  struct Adversary {
    const char* name;
    std::function<std::unique_ptr<sim::Jammer>(double)> make;
  };
  const std::vector<Adversary> adversaries{
      {"reactive (all successes)",
       [](double p) { return sim::make_reactive_jammer(p); }},
      {"control-targeted (skew estimate)",
       [](double p) { return sim::make_control_jammer(p); }},
      {"data-targeted (attack broadcast)",
       [](double p) { return sim::make_data_jammer(p); }},
  };
  const std::vector<double> jams{0.0, 0.1, 0.25, 0.5, 0.75, 0.9};

  util::Table table({"adversary", "p_jam", "delivery rate", "95% CI lo",
                     "jammed slots/rep", "in analyzed regime"});
  for (const auto& adv : adversaries) {
    for (const double p_jam : jams) {
      const analysis::JammerGen jam_gen = [&](util::Rng) {
        return adv.make(p_jam);
      };
      const auto report = analysis::run_replications(
          gen, factory, common.reps, common.seed, jam_gen, {},
          trace.get(), common.threads);
      const auto [lo, hi] = report.outcomes.overall().wilson95();
      (void)hi;
      table.add_row(
          {adv.name, util::fmt(p_jam, 2),
           util::fmt(report.outcomes.overall().rate(), 4),
           util::fmt(lo, 4),
           util::fmt(static_cast<double>(report.channel.jammed_slots) /
                         common.reps,
                     1),
           p_jam <= 0.5 ? "yes" : "no"});
    }
  }
  bench::emit(table,
              "E8 / §3 jamming — ALIGNED delivery under stochastic "
              "adversaries (batch " +
                  std::to_string(batch) + " jobs, window 2^" +
                  std::to_string(level) + ")",
              common, &trace);
  return 0;
}
