// E18 — sustained-load capacity. The paper proves per-job guarantees for
// γ-slack feasible inputs; the queuing-theory tradition it cites instead
// asks what *arrival rates* a protocol sustains. This harness drives each
// protocol with Poisson arrivals (window 2^12, rate ρ jobs/slot — load
// ρ·1 of the channel) and reports the delivered fraction and latency as ρ
// crosses each protocol's capacity knee.

#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/3);
  auto trace = bench::make_trace_session(common);
  const Slot window = args.get_int("window", 1 << 12);
  const Slot horizon = args.get_int("horizon", 1 << 14);

  core::Params params;
  params.lambda = 4;
  params.tau = 8;
  params.min_class = 8;

  std::vector<double> rates{0.01, 0.05, 0.1, 0.2, 0.4, 0.7};
  if (common.quick) {
    rates = {0.05, 0.2, 0.7};
  }

  util::Table table({"protocol", "rate (jobs/slot)", "jobs/rep",
                     "delivered", "p90 latency/window"});
  for (const std::string& name :
       {"uniform", "beb", "sawtooth", "punctual"}) {
    const auto factory = core::make_protocol(name, params);
    for (const double rate : rates) {
      util::SuccessCounter delivered;
      std::vector<double> latency_fracs;
      util::RunningStats jobs_per_rep;
      for (int rep = 0; rep < common.reps; ++rep) {
        util::Rng rng(common.seed * 1009 +
                      static_cast<std::uint64_t>(rep * 7 + rate * 1000));
        const bench::WorkloadSpec load{
            .kind = bench::WorkloadSpec::Kind::kPoisson,
            .window = window,
            .rate = rate,
            .horizon = horizon};
        const auto instance = bench::make_workload(load, &rng);
        jobs_per_rep.add(static_cast<double>(instance.size()));
        if (instance.empty()) {
          continue;
        }
        sim::SimConfig sc;
        sc.seed = rng.next_u64();
        sc.tracer = trace.get();
        const auto result = sim::run(instance, *factory, sc);
        for (const auto& job : result.jobs) {
          delivered.add(job.success);
          if (job.success) {
            latency_fracs.push_back(static_cast<double>(job.latency()) /
                                    static_cast<double>(window));
          }
        }
      }
      table.add_row({name, util::fmt(rate, 2),
                     util::fmt(jobs_per_rep.mean(), 0),
                     util::fmt(delivered.rate(), 4),
                     util::fmt(util::percentile(latency_fracs, 0.9), 3)});
    }
  }
  bench::emit(table,
              "E18 — capacity under Poisson arrivals (window 2^12): "
              "delivered fraction vs offered load",
              common, &trace);
  return 0;
}
