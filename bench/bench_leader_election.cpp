// E10 — Lemma 17: any set S of same-window jobs with |S| >= w/log³w elects
// a leader w.h.p. during the pullback stage.
//
// At the paper's claim probability 1/(w log³w) the election only fires for
// asymptotically large windows, so the harness sweeps both the batch size
// |S| and the claim-probability scale s (paper: s = 1), reporting the
// fraction of runs in which a leader emerged and the mean election slot.
// The monotone rise with |S|·s is the lemma's threshold behaviour made
// visible at laptop scale.

#include <vector>

#include "bench_common.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/25);
  auto trace = bench::make_trace_session(common);
  const int level = static_cast<int>(args.get_int("level", 12));
  const Slot w = Slot{1} << level;

  const std::vector<std::int64_t> batch_sizes{1, 4, 16, 64, 256};
  const std::vector<double> scales{1.0, 64.0, 512.0};

  util::Table table({"claim scale s", "|S|", "expected claims/run",
                     "P[leader elected]", "mean first-claim slot",
                     "delivery rate"});
  for (const double scale : scales) {
    core::Params params;
    params.lambda = 2;
    params.tau = 8;
    params.min_class = 8;
    params.pullback_prob_scale = scale;
    params.pullback_window_frac = 0.25;
    const auto factory = core::punctual::make_punctual_factory(params);
    for (const std::int64_t batch : batch_sizes) {
      util::SuccessCounter elected;
      util::RunningStats first_claim_slot;
      util::SuccessCounter delivered;
      for (int rep = 0; rep < common.reps; ++rep) {
        sim::SimConfig config;
        config.seed = common.seed * 104729 +
                      static_cast<std::uint64_t>(rep * 13 + batch);
        config.record_slots = false;
        config.tracer = trace.get();
        Slot first_claim = kNoSlot;
        sim::Simulation sim(workload::gen_batch(batch, w, 0), factory,
                            config);
        sim.set_observer([&](const sim::SlotRecord& rec,
                             std::span<const sim::Transmission>) {
          if (first_claim == kNoSlot &&
              rec.outcome == sim::SlotOutcome::kSuccess &&
              rec.success_kind == sim::MessageKind::kLeaderClaim) {
            first_claim = rec.slot;
          }
        });
        const auto result = sim.finish();
        elected.add(first_claim != kNoSlot);
        if (first_claim != kNoSlot) {
          first_claim_slot.add(static_cast<double>(first_claim));
        }
        delivered.add_many(
            static_cast<std::uint64_t>(result.successes()),
            static_cast<std::uint64_t>(result.jobs.size()));
      }
      // Expected successful-claim count over the pullback: |S| · elections
      // · p · P[nobody else claims] — report the first-order |S|·L·p.
      core::Params probe;
      probe.pullback_prob_scale = scale;
      probe.pullback_window_frac = 0.25;
      probe.lambda = 2;
      const double expected =
          static_cast<double>(batch) *
          static_cast<double>(probe.pullback_elections(w)) *
          probe.pullback_tx_prob(w);
      table.add_row({util::fmt(scale, 0), util::fmt_count(batch),
                     util::fmt(expected, 3), util::fmt(elected.rate(), 3),
                     elected.successes() > 0
                         ? util::fmt(first_claim_slot.mean(), 0)
                         : "-",
                     util::fmt(delivered.rate(), 3)});
    }
  }
  bench::emit(table,
              "E10 / Lemma 17 — leader election vs batch size and claim "
              "scale (window 2^" +
                  std::to_string(level) +
                  "; paper scale s=1 needs asymptotic windows — the "
                  "documented constants gap)",
              common, &trace);
  return 0;
}
