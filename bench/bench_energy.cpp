// Energy/latency/deadline-success Pareto sweep: protocol × feedback model ×
// jammer × load on power-of-2 batches (DESIGN.md §6k, EXPERIMENTS.md E24;
// Bender–Fineman–Gilbert–Kuszmaul, arXiv:2302.07751).
//
// The paper's protocols optimize deadline-success and latency; the
// energy-complexity literature asks what each delivered message costs in
// radio-on time. This harness sweeps every registered protocol — plus the
// ENERGY_BEB spread-fraction variants that trace its Pareto knob — across
// ternary/binary_ack feedback, clear/blanket channels, and two loads: the
// saturated batch (n = w/2, the gauntlet geometry) and a 2x-overloaded
// batch (n = 2w) where most jobs must miss and the only question is what
// the misses cost. Three stories the table tells:
//   - ALIGNED/PUNCTUAL are always-listening: their awake time IS their
//     lifetime, win or lose (the §6k headline contrast).
//   - BEB's reactive doubling buys its latency with ~log2(w) wake-ups per
//     job at saturation, and keeps paying them at overload where the
//     retries cannot possibly help.
//   - ENERGY_BEB's slow feedback loop caps the awake budget at O(1): at
//     overload the duty-cycling variant delivers MORE jobs than BEB on
//     >=10x fewer awake slots (the E24 acceptance point, self-check 5).
//
// Self-checks (the CI release job blocks on the exit code):
//   1. partition identity — every cell satisfies
//      slots_awake == slots_listening + slots_transmitting, and awake
//      never exceeds live − dark job-slots.
//   2. always-listening ≡ lifetime — for every catalog protocol flagged
//      always_listening, slots_awake equals live − dark job-slots exactly,
//      in every cell of the sweep.
//   3. sleeper sublinearity — growing the saturated window 4x grows
//      ENERGY_BEB's and BEB's awake slots per job by at most 2x
//      (logarithmic/constant energy), while ALIGNED's grows at least 3x
//      (linear: always-listening pays the whole horizon).
//   4. engine invariance — energy counters are bit-identical across
//      --threads {1,2,8} and --fast-forward off|on|validate for a probe
//      set spanning sleepers, promise-carriers, and always-listeners.
//   5. Pareto acceptance — at the 2x-overloaded load, some ENERGY_BEB
//      variant beats BEB's deadline-success while spending >=10x fewer
//      awake slots per job (recorded in EXPERIMENTS.md E24).
//
// Rows carry the slot-engine timing columns so
// `tools/check_perf.py --check-only --expect` can validate artifact shape
// and sweep completeness in CI.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/registry.hpp"
#include "sim/channel.hpp"
#include "sim/jammer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

/// One protocol variant in the sweep: a registry name plus the ENERGY_BEB
/// Pareto-knob overrides (ignored by every other protocol).
struct Variant {
  std::string label;
  std::string registry_name;
  double spread_frac;
};

/// One adversary configuration (mirrors the robustness gauntlet).
struct Adversary {
  std::string name;
  analysis::JammerGen gen;  // null = no jamming
};

/// Everything the self-checks need from one cell.
struct Cell {
  double rate = -1.0;
  double awake_per_job = 0.0;
  sim::SimMetrics channel;
};

/// (variant, load, feedback, adversary) -> cell.
using Key = std::tuple<std::string, std::string, std::string, std::string>;

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bench::CommonArgs common = bench::parse_common(args, /*reps=*/8);
  auto trace = bench::make_trace_session(common);

  const int level = common.quick ? 9 : 10;
  const Slot window = Slot{1} << level;

  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = level;

  // Every registered protocol at default params, plus the ENERGY_BEB
  // spread-fraction variants tracing the §6k Pareto knob (f0.50 IS the
  // registry default, so plain "energy_beb" already covers it).
  std::vector<Variant> variants;
  for (const std::string& name : core::protocol_names()) {
    variants.push_back({name, name, params.energy_spread_frac});
  }
  variants.push_back({"energy_beb:f1.00", "energy_beb", 1.0});
  variants.push_back({"energy_beb:f2.00", "energy_beb", 2.0});

  // Loads: the saturated gauntlet batch and a 2x-overloaded one where
  // deadline-success is physically capped low and energy is the story.
  const std::vector<std::pair<std::string, std::int64_t>> loads = {
      {"sat", window / 2},
      {"over", window * 2},
  };
  const std::vector<std::pair<std::string, sim::FeedbackModel>> feedbacks = {
      {"ternary", sim::FeedbackModel::ternary()},
      {"binack", sim::FeedbackModel::binary_ack()},
  };
  std::vector<Adversary> adversaries;
  adversaries.push_back({"clear", nullptr});
  adversaries.push_back({"blanket", [](util::Rng) {
                           return sim::make_blanket_jammer(0.3);
                         }});

  util::Table table({"scenario", "jobs", "reps", "slots", "wall_ms",
                     "slots_per_sec", "success_rate", "awake_per_job",
                     "listen_per_job", "tx_per_job", "duty_pct"});
  std::map<Key, Cell> cells;

  for (const Variant& variant : variants) {
    core::Params vparams = params;
    vparams.energy_spread_frac = variant.spread_frac;
    const auto factory = core::make_protocol(variant.registry_name, vparams);
    if (!factory) {
      std::cerr << "energy: unknown protocol '" << variant.registry_name
                << "'\n";
      return 1;
    }
    for (const auto& [load_name, batch] : loads) {
      const analysis::InstanceGen gen = [&, n = batch](util::Rng&) {
        return workload::gen_batch(n, window, 0);
      };
      for (const auto& [fb_name, feedback] : feedbacks) {
        for (const Adversary& adversary : adversaries) {
          analysis::RunOptions options;
          options.feedback = feedback;
          options.jammer_gen = adversary.gen;
          options.threads = common.threads;
          options.tracer = trace.get();

          const auto start = std::chrono::steady_clock::now();
          const analysis::ReplicationReport report =
              analysis::run_replications(gen, *factory, common.reps,
                                         common.seed, options);
          const auto stop = std::chrono::steady_clock::now();
          const double wall_ms =
              std::chrono::duration<double, std::milli>(stop - start)
                  .count();

          const sim::SimMetrics& m = report.channel;
          const auto jobs = report.outcomes.jobs();
          Cell cell;
          cell.rate = report.outcomes.overall().rate();
          cell.awake_per_job = report.outcomes.awake().mean();
          cell.channel = m;
          cells[{variant.label, load_name, fb_name, adversary.name}] = cell;

          const std::int64_t lifetime = m.live_job_slots - m.dark_job_slots;
          table.add_row(
              {variant.label + "/" + load_name + "/" + fb_name + "/" +
                   adversary.name,
               std::to_string(jobs), std::to_string(common.reps),
               std::to_string(m.slots_simulated), util::fmt(wall_ms, 3),
               util::fmt_sci(
                   wall_ms > 0.0
                       ? static_cast<double>(m.slots_simulated) /
                             (wall_ms / 1e3)
                       : 0.0,
                   4),
               util::fmt(cell.rate, 4), util::fmt(cell.awake_per_job, 2),
               util::fmt(static_cast<double>(m.slots_listening) /
                             static_cast<double>(jobs),
                         2),
               util::fmt(static_cast<double>(m.slots_transmitting) /
                             static_cast<double>(jobs),
                         2),
               util::fmt(lifetime > 0
                             ? 100.0 * static_cast<double>(m.slots_awake) /
                                   static_cast<double>(lifetime)
                             : 0.0,
                         1)});
        }
      }
    }
  }

  bench::emit(table,
              "Energy Pareto sweep — protocol x feedback x jammer x load, "
              "radio-on cost vs deadline-success (DESIGN.md §6k, "
              "EXPERIMENTS.md E24)",
              common, &trace);

  // ---- self-checks (see file comment) --------------------------------------
  int violations = 0;
  const auto fail = [&](const std::string& what) {
    std::cerr << "SELF-CHECK FAIL: " << what << "\n";
    ++violations;
  };

  // 1. Partition identity in every cell.
  for (const auto& [key, cell] : cells) {
    const auto& [variant, load, fb, jam] = key;
    const std::string where =
        variant + "/" + load + "/" + fb + "/" + jam;
    const sim::SimMetrics& m = cell.channel;
    if (m.slots_awake != m.slots_listening + m.slots_transmitting) {
      fail(where + ": slots_awake " + std::to_string(m.slots_awake) +
           " != listening " + std::to_string(m.slots_listening) +
           " + transmitting " + std::to_string(m.slots_transmitting));
    }
    if (m.slots_awake > m.live_job_slots - m.dark_job_slots) {
      fail(where + ": awake " + std::to_string(m.slots_awake) +
           " exceeds live-dark " +
           std::to_string(m.live_job_slots - m.dark_job_slots));
    }
  }

  // 2. Always-listening protocols pay their whole lifetime, every cell.
  for (const auto& info : core::protocol_catalog()) {
    if (!info.always_listening) {
      continue;
    }
    for (const auto& [key, cell] : cells) {
      if (std::get<0>(key) != info.name) {
        continue;
      }
      const sim::SimMetrics& m = cell.channel;
      const std::int64_t lifetime = m.live_job_slots - m.dark_job_slots;
      if (m.slots_awake != lifetime) {
        fail(std::string(info.name) + "/" + std::get<1>(key) + "/" +
             std::get<2>(key) + "/" + std::get<3>(key) +
             ": catalog says always-listening but awake " +
             std::to_string(m.slots_awake) + " != live-dark " +
             std::to_string(lifetime));
      }
    }
  }

  // 3. Sleeper sublinearity: 4x the saturated horizon, at most 2x the
  //    awake slots per job for the backoff sleepers — versus at least 3x
  //    for always-listening ALIGNED.
  {
    const auto awake_at = [&](const std::string& name, int probe_level,
                              double spread_frac) {
      core::Params pp = params;
      pp.min_class = probe_level;
      pp.energy_spread_frac = spread_frac;
      const Slot w = Slot{1} << probe_level;
      const analysis::InstanceGen gen = [w](util::Rng&) {
        return workload::gen_batch(w / 2, w, 0);
      };
      analysis::RunOptions options;
      options.threads = common.threads;
      const auto report = analysis::run_replications(
          gen, *core::make_protocol(name, pp), common.reps, common.seed,
          options);
      return report.outcomes.awake().mean();
    };
    for (const char* name : {"energy_beb", "beb"}) {
      const double small = awake_at(name, level, 0.5);
      const double big = awake_at(name, level + 2, 0.5);
      if (big > 2.0 * small) {
        fail(std::string(name) + ": awake/job grew " + util::fmt(small, 2) +
             " -> " + util::fmt(big, 2) +
             " across a 4x horizon — sleeper energy must be sublinear");
      }
    }
    const double small = awake_at("aligned", level, 0.5);
    const double big = awake_at("aligned", level + 2, 0.5);
    if (big < 3.0 * small) {
      fail("aligned: awake/job grew only " + util::fmt(small, 2) + " -> " +
           util::fmt(big, 2) +
           " across a 4x horizon — always-listening energy must be linear");
    }
  }

  // 4. Energy counters are bit-identical across thread counts and
  //    fast-forward modes (the §6k determinism contract, end to end).
  {
    const analysis::InstanceGen gen = [&](util::Rng&) {
      return workload::gen_batch(window / 2, window, 0);
    };
    for (const char* name : {"uniform", "beb", "energy_beb", "aligned"}) {
      const auto factory = core::make_protocol(name, params);
      analysis::RunOptions base;
      const auto reference = analysis::run_replications(
          gen, *factory, common.reps, common.seed, base);
      const auto check = [&](const analysis::RunOptions& options,
                             const std::string& what) {
        const auto got = analysis::run_replications(
            gen, *factory, common.reps, common.seed, options);
        const sim::SimMetrics& a = got.channel;
        const sim::SimMetrics& b = reference.channel;
        if (a.slots_awake != b.slots_awake ||
            a.slots_listening != b.slots_listening ||
            a.slots_transmitting != b.slots_transmitting ||
            a.live_job_slots != b.live_job_slots ||
            got.outcomes.awake().mean() !=
                reference.outcomes.awake().mean()) {
          fail(std::string(name) + " " + what +
               ": energy counters drifted (awake " +
               std::to_string(a.slots_awake) + " vs " +
               std::to_string(b.slots_awake) + ")");
        }
      };
      for (const int threads : {2, 8}) {
        analysis::RunOptions options;
        options.threads = threads;
        check(options, "threads=" + std::to_string(threads));
      }
      for (const auto ff :
           {sim::FastForward::kOn, sim::FastForward::kValidate}) {
        analysis::RunOptions options;
        options.fast_forward = ff;
        check(options,
              std::string("fast-forward=") +
                  (ff == sim::FastForward::kOn ? "on" : "validate"));
      }
    }
  }

  // 5. The E24 acceptance point: at 2x overload, some ENERGY_BEB variant
  //    must beat BEB's deadline-success on >=10x fewer awake slots/job.
  {
    bool witness = false;
    for (const auto& [fb_name, feedback] : feedbacks) {
      for (const Adversary& adversary : adversaries) {
        const auto beb_it =
            cells.find({"beb", "over", fb_name, adversary.name});
        if (beb_it == cells.end()) {
          continue;
        }
        for (const std::string label :
             {"energy_beb", "energy_beb:f1.00", "energy_beb:f2.00"}) {
          const auto it =
              cells.find({label, "over", fb_name, adversary.name});
          if (it == cells.end()) {
            continue;
          }
          const Cell& eb = it->second;
          const Cell& beb = beb_it->second;
          if (eb.rate >= beb.rate &&
              eb.awake_per_job * 10.0 <= beb.awake_per_job) {
            std::cout << "pareto witness: " << label << "/over/" << fb_name
                      << "/" << adversary.name << " delivers "
                      << util::fmt(eb.rate, 4) << " (beb "
                      << util::fmt(beb.rate, 4) << ") at "
                      << util::fmt(eb.awake_per_job, 2)
                      << " awake slots/job (beb "
                      << util::fmt(beb.awake_per_job, 2) << ", "
                      << util::fmt(beb.awake_per_job /
                                       std::max(eb.awake_per_job, 1e-9),
                                   1)
                      << "x)\n";
            witness = true;
          }
        }
      }
    }
    if (!witness) {
      fail("no overloaded cell shows an ENERGY_BEB variant with >=10x "
           "fewer awake slots/job at >= BEB's deadline-success — the E24 "
           "acceptance point is gone");
    }
  }

  if (violations > 0) {
    std::cerr << "self-check: " << violations
              << " energy-sweep violation(s)\n";
    return 1;
  }
  std::cout << "self-check: energy accounting holds (awake partitions into "
               "listen+transmit; always-listening pays its lifetime; "
               "sleeper energy sublinear in the horizon; counters "
               "bit-identical across threads and fast-forward modes; "
               "ENERGY_BEB Pareto-dominates BEB at overload by >=10x)\n";
  return 0;
}
