// Adversarial robustness gauntlet: protocol × feedback model × jammer ×
// fault plan on saturated batches (DESIGN.md §6g, EXPERIMENTS.md E20).
//
// E19 measured the cost of losing collision detection for the paper's
// protocols: ALIGNED/PUNCTUAL fall back to blind anarchist schedules and
// pay ~100x on `collision_as_silence`. The NOCD family (core/nocd) closes
// that gap with success-only inference, and its robust variant adds
// jamming tolerance. This gauntlet is the end-to-end check: every cell
// runs a saturated batch (n = w/2, the load where feedback actually
// matters — see bench_feedback_models.cpp) under one (protocol, feedback
// model, adversary, fault plan) combination and reports deadline-success
// rates.
//
// Self-checks (the CI release job blocks on the exit code):
//   1. no-CD parity — for each no_cd_native protocol, the unjammed
//      fault-free `collision_as_silence` rate matches its own ternary
//      baseline within a small constant factor (success-only inference
//      makes the trajectories identical, so this is ~exact), and the
//      baseline itself is nontrivial;
//   2. the gap is real — ALIGNED's unjammed `collision_as_silence` rate
//      stays >= 10x below its ternary rate (if the blind fallback ever
//      catches up, E19/E20's story — and NOCD's reason to exist — changed
//      and the docs must be revisited);
//   3. jamming tolerance — NOCD-ROBUST on `collision_as_silence` keeps a
//      constant fraction of its unjammed rate under the budgeted and
//      adaptive adversaries;
//   4. never stalls — NOCD-ROBUST delivers under every gauntlet cell
//      (every jammer and the crash/restart fault plan) on every model it
//      runs: no cell drives it to zero.
//
//   5. timeline rebound — a dedicated traced run (local obs::Timeline
//      sink) puts NOCD-ROBUST under a hard jam window in the middle of
//      its deadline window and checks the slot-resolved telemetry: the
//      jammed region shows zero successes, and once the jam lifts the
//      protocol's transmit attempts and successes *rebound* instead of
//      stalling — the time-resolved shape behind check 3's scalar.
//
// Rows carry the slot-engine timing columns (scenario, jobs, slots,
// wall_ms, slots_per_sec) so `tools/check_perf.py --check-only --expect`
// can validate both the artifact shape and sweep completeness.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/registry.hpp"
#include "obs/timeline.hpp"
#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

/// One adversary configuration in the gauntlet.
struct Adversary {
  std::string name;
  analysis::JammerGen gen;  // null = no jamming
};

/// One fault-plan configuration.
struct Faults {
  std::string name;
  sim::FaultPlan plan;
};

/// (protocol, model, adversary, faults) -> success rate.
using Key = std::tuple<std::string, std::string, std::string, std::string>;

/// Deterministic hard jam over [from, to): every slot in the interval is
/// jammed with certainty, nothing outside it. Used by self-check 5, where
/// the *boundary* of the outage must be sharp so the timeline's jammed /
/// post-jam regions are unambiguous.
class WindowedJammer final : public sim::Jammer {
 public:
  WindowedJammer(Slot from, Slot to) : from_(from), to_(to) {}
  [[nodiscard]] bool wants_jam(Slot slot, sim::SlotOutcome,
                               const sim::Message*) override {
    return slot >= from_ && slot < to_;
  }
  [[nodiscard]] double p_jam() const noexcept override { return 1.0; }

 private:
  Slot from_;
  Slot to_;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bench::CommonArgs common = bench::parse_common(args, /*reps=*/8);
  auto trace = bench::make_trace_session(common);

  // Saturated batch: n = w/2 jobs sharing one power-of-2-aligned window
  // (valid for every protocol; the load where the feedback/robustness
  // story is visible — see bench_feedback_models.cpp).
  const int level = common.quick ? 9 : 10;
  const Slot window = Slot{1} << level;
  const std::int64_t batch = window / 2;
  const analysis::InstanceGen gen = [&](util::Rng&) {
    return workload::gen_batch(batch, window, 0);
  };

  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = level;

  const std::vector<std::string> protocols = {"aligned", "punctual", "nocd",
                                              "nocd_robust"};

  std::vector<sim::FeedbackModel> models = {
      sim::FeedbackModel::ternary(),
      sim::FeedbackModel::collision_as_silence(),
      sim::FeedbackModel::noisy(0.05),
  };
  if (!common.quick) {
    models.insert(models.begin() + 1, sim::FeedbackModel::binary_ack());
  }

  // The adversary ladder: blanket (dense oblivious), budgeted-reactive
  // (energy-constrained, jams would-be successes), adaptive (budgeted,
  // spends by message value). Budgets are w/8 attempts per w-slot window —
  // enough to erase a third of a saturated channel's successes, not enough
  // to blanket it — at the paper's p_jam <= 1/2 (§3 analyzes ALIGNED only
  // up to that density; above it no protocol retains throughput, and the
  // gauntlet's point is differentiation, not annihilation).
  const std::int64_t budget = window / 8;
  std::vector<Adversary> adversaries;
  adversaries.push_back({"clear", nullptr});
  adversaries.push_back({"blanket", [](util::Rng) {
                           return sim::make_blanket_jammer(0.3);
                         }});
  adversaries.push_back(
      {"budgeted", [budget, window](util::Rng) {
         return sim::make_budgeted_jammer(sim::make_reactive_jammer(0.5),
                                          budget, window);
       }});
  adversaries.push_back({"adaptive", [budget, window](util::Rng) {
                           return sim::make_adaptive_jammer(budget, window,
                                                            0.5);
                         }});

  std::vector<Faults> fault_plans;
  fault_plans.push_back({"none", {}});
  {
    // Crash/restart plus a trickle of feedback loss: the composition the
    // never-stall claim is about.
    sim::FaultPlan plan;
    plan.crash_rate = 0.002;
    plan.crash_permanent_frac = 0.25;
    plan.stall_min = 8;
    plan.stall_max = 64;
    plan.feedback_loss_rate = 0.01;
    fault_plans.push_back({"crashy", plan});
  }

  util::Table table({"scenario", "jobs", "reps", "slots", "wall_ms",
                     "slots_per_sec", "success_rate", "faults_injected"});
  std::map<Key, double> rates;

  for (const std::string& name : protocols) {
    const auto info = core::protocol_info(name);
    const auto factory = core::make_protocol(name, params);
    if (!info || !factory) {
      std::cerr << "gauntlet: unknown protocol '" << name << "'\n";
      return 1;
    }
    for (const sim::FeedbackModel& model : models) {
      if (!info->supports(model.caps()) &&
          !info->adapts_to_degraded_channel) {
        continue;  // no registered protocol hits this today (see registry)
      }
      for (const Adversary& adversary : adversaries) {
        for (const Faults& faults : fault_plans) {
          analysis::RunOptions options;
          options.feedback = model;
          options.collision_cost = common.collision_cost;
          options.jammer_gen = adversary.gen;
          options.faults = faults.plan;
          options.threads = common.threads;
          options.tracer = trace.get();

          const auto start = std::chrono::steady_clock::now();
          const analysis::ReplicationReport report =
              analysis::run_replications(gen, *factory, common.reps,
                                         common.seed, options);
          const auto stop = std::chrono::steady_clock::now();
          const double wall_ms =
              std::chrono::duration<double, std::milli>(stop - start)
                  .count();
          const double rate = report.outcomes.overall().rate();
          const std::int64_t slots = report.channel.slots_simulated;
          rates[{name, model.spec(), adversary.name, faults.name}] = rate;

          table.add_row(
              {name + "/" + model.spec() + "/" + adversary.name + "/" +
                   faults.name,
               std::to_string(report.outcomes.jobs()),
               std::to_string(common.reps), std::to_string(slots),
               util::fmt(wall_ms, 3),
               util::fmt_sci(wall_ms > 0.0 ? static_cast<double>(slots) /
                                                 (wall_ms / 1e3)
                                           : 0.0,
                             4),
               util::fmt(rate, 4),
               std::to_string(report.channel.faults_injected)});
        }
      }
    }
  }

  bench::emit(table,
              "Adversarial robustness gauntlet — protocol x feedback model "
              "x jammer x fault plan, saturated batch (DESIGN.md §6g, "
              "EXPERIMENTS.md E20)",
              common, &trace);

  // ---- self-checks (see file comment) --------------------------------------
  const auto rate = [&](const std::string& proto, const std::string& model,
                        const std::string& adversary,
                        const std::string& faults) {
    const auto it = rates.find({proto, model, adversary, faults});
    return it == rates.end() ? -1.0 : it->second;
  };
  int violations = 0;
  const auto fail = [&](const std::string& what) {
    std::cerr << "SELF-CHECK FAIL: " << what << "\n";
    ++violations;
  };

  // 1. No-CD parity for the NOCD family.
  for (const std::string& name : {"nocd", "nocd_robust"}) {
    const double ternary = rate(name, "ternary", "clear", "none");
    const double no_cd =
        rate(name, "collision_as_silence", "clear", "none");
    if (ternary < 0.30) {
      fail(name + ": ternary clear-channel rate " +
           util::fmt(ternary, 4) + " < 0.30 (baseline too weak)");
    }
    if (no_cd < ternary / 2.0) {
      fail(name + ": collision_as_silence rate " + util::fmt(no_cd, 4) +
           " degraded more than 2x vs its own ternary baseline " +
           util::fmt(ternary, 4));
    }
  }

  // 2. The blind-fallback gap NOCD exists to close is still there.
  {
    const double ternary = rate("aligned", "ternary", "clear", "none");
    const double no_cd =
        rate("aligned", "collision_as_silence", "clear", "none");
    if (no_cd < 0.0 || ternary < 10.0 * no_cd) {
      fail("aligned: collision_as_silence rate " + util::fmt(no_cd, 4) +
           " is no longer >= 10x below ternary " + util::fmt(ternary, 4) +
           " — the E19/E20 gap changed; revisit the docs");
    }
  }

  // 3. Jamming tolerance of the robust variant.
  {
    const double clear =
        rate("nocd_robust", "collision_as_silence", "clear", "none");
    for (const std::string& adversary : {"budgeted", "adaptive"}) {
      const double jammed =
          rate("nocd_robust", "collision_as_silence", adversary, "none");
      if (jammed < clear / 4.0) {
        fail("nocd_robust: " + adversary + " jammer drove the " +
             "collision_as_silence rate to " + util::fmt(jammed, 4) +
             " < 1/4 of the clear-channel " + util::fmt(clear, 4));
      }
    }
  }

  // 4. NOCD-ROBUST never stalls: every cell it ran delivers something.
  for (const auto& [key, value] : rates) {
    if (std::get<0>(key) == "nocd_robust" && value <= 0.0) {
      fail("nocd_robust delivered nothing on " + std::get<1>(key) + "/" +
           std::get<2>(key) + "/" + std::get<3>(key));
    }
  }

  // 5. Timeline rebound: slot-resolved telemetry of NOCD-ROBUST under a
  // hard jam covering the second quarter of the deadline window. A local
  // Timeline sink keeps the check independent of --timeline/--trace-events.
  {
    obs::Tracer tracer;
    // 64 buckets over a 2^level window settle at width window/64, so the
    // jam boundaries (quarters of the window) fall on bucket edges.
    auto timeline = std::make_shared<obs::Timeline>(64);
    tracer.add_sink(timeline);
    const Slot jam_from = window / 4;
    const Slot jam_to = window / 2;
    const auto robust = core::make_protocol("nocd_robust", params);
    sim::SimConfig sc;
    sc.seed = common.seed * 131 + 7;
    sc.feedback = sim::FeedbackModel::collision_as_silence();
    sc.tracer = &tracer;
    (void)sim::run(workload::gen_batch(batch, window, 0), *robust, sc,
                   std::make_unique<WindowedJammer>(jam_from, jam_to));
    tracer.close();

    std::int64_t jam_attempts = 0;
    std::int64_t jam_success = 0;
    std::int64_t post_attempts = 0;
    std::int64_t post_success = 0;
    const std::int64_t bw = timeline->bucket_width();
    for (std::size_t i = 0; i < timeline->bucket_count(); ++i) {
      const Slot lo = static_cast<Slot>(i) * bw;
      const Slot hi = lo + bw;
      const obs::TimelineBucket& b = timeline->bucket(i);
      if (lo >= jam_from && hi <= jam_to) {
        jam_attempts += b.attempts;
        jam_success += b.true_success;
      } else if (lo >= jam_to) {
        post_attempts += b.attempts;
        post_success += b.true_success;
      }
    }
    if (timeline->events_seen() == 0) {
      fail("timeline rebound: the traced run produced no events");
    }
    if (jam_success != 0) {
      fail("timeline rebound: " + std::to_string(jam_success) +
           " success(es) inside the hard jam window — the jammer or the "
           "bucket accounting is broken");
    }
    if (jam_attempts <= 0) {
      fail("timeline rebound: nocd_robust stopped transmitting during the "
           "jam (collision_as_silence hides the outage, so probing must "
           "continue)");
    }
    if (post_attempts <= 0 || post_success <= 0) {
      fail("timeline rebound: no post-jam recovery (attempts " +
           std::to_string(post_attempts) + ", successes " +
           std::to_string(post_success) +
           ") — nocd_robust failed to rebound after the jam lifted");
    }
    std::cerr << "timeline rebound: jam [" << jam_from << ", " << jam_to
              << ") attempts " << jam_attempts << " successes "
              << jam_success << "; post-jam attempts " << post_attempts
              << " successes " << post_success << "\n";
  }

  if (violations > 0) {
    std::cerr << "self-check: " << violations
              << " robustness violation(s)\n";
    return 1;
  }
  std::cout << "self-check: robustness gauntlet holds (no-CD parity for "
               "the NOCD family; >= 10x blind-fallback gap for ALIGNED; "
               "bounded jamming degradation; nocd_robust never stalls; "
               "timeline shows post-jam rebound)\n";
  return 0;
}
