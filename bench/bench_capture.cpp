// Capture-effect / collision-cost ladder: protocol × capture strength ×
// collision cost × jammer on saturated batches (DESIGN.md §6i,
// EXPERIMENTS.md E22; Biswas–Chakraborty–Young, arXiv:2408.11275).
//
// The paper's channel is all-or-nothing: two transmitters always burn the
// slot. Dense real deployments are softer in one direction (capture: one
// of k colliders often survives, p_k = alpha^(k-1)) and harsher in the
// other (a collision costs c > 1 slots of PHY recovery). This harness
// sweeps every registered protocol (incl. nocd_robust) across both axes
// under the clear channel and the blanket/adaptive jammers from the
// robustness gauntlet. The workload, params, seed schedule, and runner are
// exactly bench_robustness_gauntlet's, so the a0/c1/clear column is the
// same cell as the gauntlet's ternary/clear/none row.
//
// Self-checks (the CI release job blocks on the exit code):
//   1. baseline identity — for every protocol, the capture:0 / cost=1 /
//      clear cell is *exactly* equal (success rate, slots, per-outcome
//      slot counts, contention moments) to an explicit ternary run of the
//      same cell, and fires zero capture wins / cost slots. This is the
//      bit-identity contract of DESIGN.md §6i measured end to end.
//   2. throughput monotone in alpha — at saturation, a stronger capture
//      effect never hurts: per protocol and per cost, success rates are
//      non-decreasing in alpha (small statistical slack), and the
//      alpha=1 endpoint clearly beats alpha=0. Protocols that estimate
//      contention from collision counts (ALIGNED, PUNCTUAL) are exempt:
//      capture perturbs their estimator itself, so their rate ordering is
//      not an invariant — the printed caveat note marks those rows.
//   3. collisions that cost more deliver less — per protocol on the clear
//      channel, the cost=3 rate never beats the cost=1 rate by more than
//      the slack (same estimator-coupled exemption), and cost=3 cells
//      actually burn cost slots (that part holds for everyone).
//   4. telemetry agreement — a dedicated traced run (local obs::Timeline
//      sink) under capture:0.7 / cost=3 shows bucket-level capture_wins
//      and cost_slots that sum exactly to the run's SimMetrics counters.
//
// Rows carry the slot-engine timing columns so
// `tools/check_perf.py --check-only --expect` can validate artifact shape
// and sweep completeness in CI.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/registry.hpp"
#include "obs/timeline.hpp"
#include "sim/channel.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

/// One adversary configuration (mirrors the robustness gauntlet).
struct Adversary {
  std::string name;
  analysis::JammerGen gen;  // null = no jamming
};

/// Everything the self-checks need from one cell.
struct Cell {
  double rate = -1.0;
  std::int64_t slots = 0;
  sim::SimMetrics channel;
};

/// (protocol, alpha-label, cost-label, adversary) -> cell.
using Key = std::tuple<std::string, std::string, std::string, std::string>;

std::string alpha_label(double alpha) { return "a" + util::fmt(alpha, 2); }

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bench::CommonArgs common = bench::parse_common(args, /*reps=*/8);
  auto trace = bench::make_trace_session(common);

  // Saturated batch: n = w/2 jobs in one power-of-2-aligned window — the
  // load where collisions (and therefore both physics axes) dominate.
  // Same geometry as bench_robustness_gauntlet.
  const int level = common.quick ? 9 : 10;
  const Slot window = Slot{1} << level;
  const std::int64_t batch = window / 2;
  const analysis::InstanceGen gen = [&](util::Rng&) {
    return workload::gen_batch(batch, window, 0);
  };

  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = level;

  std::vector<double> alphas = {0.0, 0.25, 0.5, 1.0};
  if (common.quick) {
    alphas = {0.0, 0.5, 1.0};
  }
  const std::vector<int> costs = {1, 3};

  const std::int64_t budget = window / 8;
  std::vector<Adversary> adversaries;
  adversaries.push_back({"clear", nullptr});
  adversaries.push_back({"blanket", [](util::Rng) {
                           return sim::make_blanket_jammer(0.3);
                         }});
  adversaries.push_back({"adaptive", [budget, window](util::Rng) {
                           return sim::make_adaptive_jammer(budget, window,
                                                            0.5);
                         }});

  util::Table table({"scenario", "jobs", "reps", "slots", "wall_ms",
                     "slots_per_sec", "success_rate", "capture_wins",
                     "cost_slots"});
  std::map<Key, Cell> cells;

  const std::vector<std::string> protocols = core::protocol_names();
  for (const std::string& name : protocols) {
    const auto info = core::protocol_info(name);
    const auto factory = core::make_protocol(name, params);
    if (!info || !factory) {
      std::cerr << "capture: unknown protocol '" << name << "'\n";
      return 1;
    }
    for (const double alpha : alphas) {
      for (const int cost : costs) {
        for (const Adversary& adversary : adversaries) {
          analysis::RunOptions options;
          options.feedback = sim::FeedbackModel::capture(alpha);
          options.collision_cost = cost;
          options.jammer_gen = adversary.gen;
          options.threads = common.threads;
          options.tracer = trace.get();

          const auto start = std::chrono::steady_clock::now();
          const analysis::ReplicationReport report =
              analysis::run_replications(gen, *factory, common.reps,
                                         common.seed, options);
          const auto stop = std::chrono::steady_clock::now();
          const double wall_ms =
              std::chrono::duration<double, std::milli>(stop - start)
                  .count();

          Cell cell;
          cell.rate = report.outcomes.overall().rate();
          cell.slots = report.channel.slots_simulated;
          cell.channel = report.channel;
          const std::string cost_name = "c" + std::to_string(cost);
          cells[{name, alpha_label(alpha), cost_name, adversary.name}] =
              cell;

          table.add_row(
              {name + "/" + alpha_label(alpha) + "/" + cost_name + "/" +
                   adversary.name,
               std::to_string(report.outcomes.jobs()),
               std::to_string(common.reps), std::to_string(cell.slots),
               util::fmt(wall_ms, 3),
               util::fmt_sci(wall_ms > 0.0
                                 ? static_cast<double>(cell.slots) /
                                       (wall_ms / 1e3)
                                 : 0.0,
                             4),
               util::fmt(cell.rate, 4),
               std::to_string(report.channel.capture_wins),
               std::to_string(report.channel.collision_cost_slots)});
        }
      }
    }
  }

  // Annotate the estimator caveat the registry advertises (DESIGN.md §6i):
  // these protocols count collisions to size contention, and capture makes
  // collisions leak successes.
  for (const auto& info : core::protocol_catalog()) {
    if (info.estimates_from_collisions) {
      std::cout << "(note: " << info.name
                << " estimates contention from collision counts; capture "
                   "biases its samples optimistically)\n";
    }
  }

  bench::emit(table,
              "Capture / collision-cost ladder — protocol x alpha x cost x "
              "jammer, saturated batch (DESIGN.md §6i, EXPERIMENTS.md E22)",
              common, &trace);

  // ---- self-checks (see file comment) --------------------------------------
  int violations = 0;
  const auto fail = [&](const std::string& what) {
    std::cerr << "SELF-CHECK FAIL: " << what << "\n";
    ++violations;
  };
  const auto cell = [&](const std::string& proto, const std::string& alpha,
                        const std::string& cost,
                        const std::string& adversary) -> const Cell& {
    static const Cell missing;
    const auto it = cells.find({proto, alpha, cost, adversary});
    return it == cells.end() ? missing : it->second;
  };
  // Statistical slack for the monotonicity checks: adjacent alpha rungs on
  // protocols with few collisions (e.g. an elected leader serializing the
  // channel) can tie or jitter; the endpoint check below has no such
  // excuse.
  const double kSlack = 0.02;
  // Rate ordering is only an invariant for protocols whose control loop is
  // decoupled from the physics being swept. ALIGNED/PUNCTUAL size contention
  // from collision counts, so capture (collisions leak successes) and
  // channel freezing (collisions stretch) perturb the estimator itself —
  // their rates can legitimately move either way (the caveat note above).
  const auto estimator_coupled = [](const std::string& name) {
    const auto info = core::protocol_info(name);
    return info.has_value() && info->estimates_from_collisions;
  };

  // 1. Baseline identity: capture:0 / cost=1 / clear == explicit ternary.
  for (const std::string& name : protocols) {
    const auto factory = core::make_protocol(name, params);
    analysis::RunOptions options;
    options.feedback = sim::FeedbackModel::ternary();
    options.threads = common.threads;
    const analysis::ReplicationReport ternary = analysis::run_replications(
        gen, *factory, common.reps, common.seed, options);
    const Cell& c0 = cell(name, alpha_label(0.0), "c1", "clear");
    if (c0.rate < 0.0) {
      fail(name + ": capture:0/c1/clear cell missing from the sweep");
      continue;
    }
    const sim::SimMetrics& a = c0.channel;
    const sim::SimMetrics& b = ternary.channel;
    const bool identical =
        c0.rate == ternary.outcomes.overall().rate() &&
        a.slots_simulated == b.slots_simulated &&
        a.silent_slots == b.silent_slots &&
        a.success_slots == b.success_slots &&
        a.noise_slots == b.noise_slots &&
        a.data_successes == b.data_successes &&
        a.contention.mean() == b.contention.mean() &&
        a.contention.variance() == b.contention.variance();
    if (!identical) {
      fail(name + ": capture:0/c1 is not bit-identical to ternary (rate " +
           util::fmt(c0.rate, 6) + " vs " +
           util::fmt(ternary.outcomes.overall().rate(), 6) + ", slots " +
           std::to_string(a.slots_simulated) + " vs " +
           std::to_string(b.slots_simulated) + ")");
    }
    if (a.capture_wins != 0 || a.collision_cost_slots != 0) {
      fail(name + ": capture:0/c1 fired " +
           std::to_string(a.capture_wins) + " capture win(s) and " +
           std::to_string(a.collision_cost_slots) +
           " cost slot(s); both must be zero");
    }
  }

  // 2. Throughput monotone in alpha at saturation.
  for (const std::string& name : protocols) {
    if (estimator_coupled(name)) {
      continue;
    }
    for (const int cost : costs) {
      const std::string cost_name = "c" + std::to_string(cost);
      for (std::size_t i = 0; i + 1 < alphas.size(); ++i) {
        const double lo = cell(name, alpha_label(alphas[i]), cost_name,
                               "clear")
                              .rate;
        const double hi = cell(name, alpha_label(alphas[i + 1]), cost_name,
                               "clear")
                              .rate;
        if (lo < 0.0 || hi < 0.0 || hi + kSlack < lo) {
          fail(name + "/" + cost_name + ": success rate not monotone in "
               "alpha (" + alpha_label(alphas[i]) + " -> " +
               util::fmt(lo, 4) + ", " + alpha_label(alphas[i + 1]) +
               " -> " + util::fmt(hi, 4) + ")");
        }
      }
      const double lo = cell(name, alpha_label(alphas.front()), cost_name,
                             "clear")
                            .rate;
      const double hi = cell(name, alpha_label(alphas.back()), cost_name,
                             "clear")
                            .rate;
      if (hi < lo + 0.05) {
        fail(name + "/" + cost_name + ": alpha=1 rate " + util::fmt(hi, 4) +
             " does not clearly beat alpha=0 rate " + util::fmt(lo, 4) +
             " at saturation — capture is not biting");
      }
    }
  }

  // 3. Costly collisions deliver less, and cost slots actually burn.
  for (const std::string& name : protocols) {
    for (const double alpha : alphas) {
      const Cell& c1 = cell(name, alpha_label(alpha), "c1", "clear");
      const Cell& c3 = cell(name, alpha_label(alpha), "c3", "clear");
      if (!estimator_coupled(name) && c3.rate > c1.rate + kSlack) {
        fail(name + "/" + alpha_label(alpha) + ": cost=3 rate " +
             util::fmt(c3.rate, 4) + " beats cost=1 rate " +
             util::fmt(c1.rate, 4) + " — freezing the channel helped?");
      }
      if (alpha < 1.0 && c3.channel.collision_cost_slots <= 0) {
        fail(name + "/" + alpha_label(alpha) +
             ": cost=3 on a saturated batch burned zero cost slots");
      }
    }
  }

  // 4. Timeline telemetry agrees with the channel counters.
  {
    obs::Tracer tracer;
    auto timeline = std::make_shared<obs::Timeline>(64);
    tracer.add_sink(timeline);
    const auto beb = core::make_protocol("beb", params);
    sim::SimConfig sc;
    sc.seed = common.seed * 131 + 7;
    sc.feedback = sim::FeedbackModel::capture(0.7);
    sc.collision_cost = 3;
    sc.tracer = &tracer;
    const sim::SimResult result =
        sim::run(workload::gen_batch(batch, window, 0), *beb, sc);
    tracer.close();
    std::int64_t bucket_wins = 0;
    std::int64_t bucket_costs = 0;
    for (std::size_t i = 0; i < timeline->bucket_count(); ++i) {
      bucket_wins += timeline->bucket(i).capture_wins;
      bucket_costs += timeline->bucket(i).cost_slots;
    }
    if (result.metrics.capture_wins <= 0 ||
        result.metrics.collision_cost_slots <= 0) {
      fail("telemetry: the capture:0.7/cost=3 probe fired no capture wins "
           "or cost slots (wins " +
           std::to_string(result.metrics.capture_wins) + ", cost slots " +
           std::to_string(result.metrics.collision_cost_slots) + ")");
    }
    if (bucket_wins != result.metrics.capture_wins ||
        bucket_costs != result.metrics.collision_cost_slots) {
      fail("telemetry: timeline buckets (wins " +
           std::to_string(bucket_wins) + ", cost slots " +
           std::to_string(bucket_costs) +
           ") disagree with SimMetrics (wins " +
           std::to_string(result.metrics.capture_wins) + ", cost slots " +
           std::to_string(result.metrics.collision_cost_slots) + ")");
    }
  }

  if (violations > 0) {
    std::cerr << "self-check: " << violations
              << " capture-ladder violation(s)\n";
    return 1;
  }
  std::cout << "self-check: capture ladder holds (capture:0/cost=1 "
               "bit-identical to ternary; throughput monotone in alpha at "
               "saturation; costly collisions never help; timeline "
               "telemetry matches the channel counters)\n";
  return 0;
}
