// E9 — Lemma 16: the contention in every leader-election slot stays below
// any constant ε for small enough γ — the pullback probabilities
// 1/(w log³w) of all concurrent slingshotters sum to O(1/log³) per class.
//
// The harness runs PUNCTUAL on a general instance, locks onto the round
// grid, classifies every slot by its role, and reports per-slot-type
// contention — election slots must show near-zero contention while sync
// slots (deliberate collisions) show contention ≈ live jobs.

#include <array>
#include <vector>

#include "bench_common.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  using core::punctual::SlotType;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/5);
  auto trace = bench::make_trace_session(common);

  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  std::array<util::RunningStats, 6> by_type;  // indexed by SlotType
  util::RunningStats election_max;

  for (int rep = 0; rep < common.reps; ++rep) {
    util::Rng rng(common.seed + static_cast<std::uint64_t>(rep));
    workload::GeneralConfig config;
    config.min_window = 1 << 11;
    config.max_window = 1 << 13;
    config.gamma = 1.0 / 16;
    config.horizon = 1 << 15;
    const auto instance = workload::gen_general(config, rng);
    if (instance.empty()) {
      continue;
    }
    std::vector<Slot> releases;
    releases.reserve(instance.size());
    for (const auto& j : instance.jobs) {
      releases.push_back(j.release);
    }

    sim::SimConfig sc;
    sc.seed = common.seed * 31 + static_cast<std::uint64_t>(rep);
    sc.tracer = trace.get();
    sim::Simulation sim(instance, factory, sc);

    Slot anchor = kNoSlot;
    double rep_election_max = 0.0;
    sim.set_observer([&](const sim::SlotRecord& rec,
                         std::span<const sim::Transmission>) {
      if (anchor == kNoSlot) {
        return;
      }
      const std::int64_t off =
          (rec.slot - anchor) % core::punctual::kRoundLength;
      const SlotType type = core::punctual::slot_type(off);
      by_type[static_cast<std::size_t>(type)].add(rec.contention);
      if (type == SlotType::kLeaderElection) {
        rep_election_max = std::max(rep_election_max, rec.contention);
      }
    });
    while (!sim.finished()) {
      if (anchor == kNoSlot) {
        for (const JobId id : sim.live_jobs()) {
          auto* proto = dynamic_cast<core::punctual::PunctualProtocol*>(
              sim.protocol(id));
          if (proto != nullptr && proto->clock().synced()) {
            const Slot t = sim.now() - releases[id];
            anchor = sim.now() - proto->clock().offset(t);
            break;
          }
        }
      }
      if (!sim.step()) {
        break;
      }
    }
    sim.finish();
    election_max.add(rep_election_max);
  }

  const auto type_name = [](std::size_t i) {
    return core::punctual::to_string(static_cast<SlotType>(i));
  };
  util::Table table(
      {"slot type", "slots observed", "mean contention", "max contention"});
  for (std::size_t i = 0; i < by_type.size(); ++i) {
    if (by_type[i].count() == 0) {
      continue;
    }
    table.add_row({type_name(i),
                   util::fmt_count(static_cast<std::int64_t>(
                       by_type[i].count())),
                   util::fmt_sci(by_type[i].mean(), 2),
                   util::fmt_sci(by_type[i].max(), 2)});
  }
  bench::emit(table,
              "E9 / Lemma 16 — contention by slot type under PUNCTUAL "
              "(general instances, gamma=1/16); election-slot contention "
              "must stay << 1 (mean of per-rep maxima: " +
                  util::fmt_sci(election_max.mean(), 2) + ")",
              common, &trace);
  return 0;
}
