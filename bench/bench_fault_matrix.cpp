// E-robustness — degradation stress matrix: how each protocol's delivery
// rate decays as the paper's model assumptions crack (faults.hpp), swept
// over protocols × fault types × intensities.
//
// Fault types: feedback corruption (perceived outcome degraded with rate
// ε), feedback loss (listener hears silence), clock skew (perceived slot
// index slips ahead), crash/stall (jobs go dark), and a budgeted adaptive
// jamming adversary (energy-constrained, B attempts per 1024-slot window).
//
// The zero-intensity column doubles as an executable no-op proof: every
// intensity-0.0 row must match the fault-free baseline *exactly* (same
// delivery counts, same channel counters) because an empty FaultPlan never
// constructs an injector and a budget-0 jammer never draws. Any mismatch
// exits nonzero, so the smoke test enforces the property on every run.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/registry.hpp"
#include "workload/generators.hpp"

namespace {

struct Baseline {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::int64_t slots_simulated = 0;
  std::int64_t data_successes = 0;
  std::int64_t silent_slots = 0;
  std::int64_t noise_slots = 0;

  friend bool operator==(const Baseline&, const Baseline&) = default;
};

Baseline snapshot(const crmd::analysis::ReplicationReport& report) {
  Baseline b;
  b.trials = report.outcomes.overall().trials();
  b.successes = report.outcomes.overall().successes();
  b.slots_simulated = report.channel.slots_simulated;
  b.data_successes = report.channel.data_successes;
  b.silent_slots = report.channel.silent_slots;
  b.noise_slots = report.channel.noise_slots;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/10);
  auto trace = bench::make_trace_session(common);

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", 2));
  params.tau = 8;
  const int level = static_cast<int>(args.get_int("level", 13));
  params.min_class = level;
  // Opt in to graceful degradation so PUNCTUAL's desync fallback is part of
  // the measured behavior (0 disables; see Params::desync_tolerance).
  params.desync_tolerance =
      static_cast<int>(args.get_int("desync-tolerance", 8));
  const std::int64_t batch = args.get_int("batch", 16);
  const Slot window = Slot{1} << level;

  const analysis::InstanceGen gen = [&](util::Rng&) {
    return workload::gen_batch(batch, window, 0);
  };

  const std::vector<std::string> protocols{"aligned", "punctual", "beb"};
  std::vector<double> intensities{0.0, 0.01, 0.05, 0.2};
  if (common.quick) {
    intensities = {0.0, 0.05};
  }
  // The budgeted adversary's energy per 1024-slot window at intensity x is
  // x * 1024 attempts (so 0.05 -> 51 jam attempts per window).
  const Slot jam_window = 1024;
  const double p_jam = 0.8;

  struct FaultAxis {
    const char* name;
    bool jamming;  // budgeted adversary instead of a FaultPlan
    sim::FaultPlan (*plan)(double intensity);
  };
  const std::vector<FaultAxis> axes{
      {"feedback-corrupt", false,
       [](double x) {
         sim::FaultPlan p;
         p.feedback_corrupt_rate = x;
         return p;
       }},
      {"feedback-loss", false,
       [](double x) {
         sim::FaultPlan p;
         p.feedback_loss_rate = x;
         return p;
       }},
      {"clock-skew", false,
       [](double x) {
         sim::FaultPlan p;
         p.clock_skew_rate = x;
         return p;
       }},
      {"crash", false,
       [](double x) {
         sim::FaultPlan p;
         p.crash_rate = x / 64.0;  // crashes are per-slot; keep them rare
         p.crash_permanent_frac = 0.25;
         return p;
       }},
      {"budget-jam", true, [](double) { return sim::FaultPlan{}; }},
  };

  util::Table table({"protocol", "fault", "intensity", "delivery rate",
                     "faults/rep", "dark slots/rep", "jammed/rep",
                     "matches fault-free"});
  int mismatches = 0;

  for (const auto& name : protocols) {
    const auto factory = core::make_protocol(name, params);
    if (!factory.has_value()) {
      std::cerr << "unknown protocol: " << name << "\n";
      return 1;
    }
    const auto clean =
        analysis::run_replications(gen, *factory, common.reps, common.seed,
                                   nullptr, {}, trace.get(), common.threads);
    const Baseline base = snapshot(clean);

    for (const auto& axis : axes) {
      for (const double x : intensities) {
        analysis::JammerGen jam_gen;  // null unless this axis is jamming
        if (axis.jamming) {
          const auto budget =
              static_cast<std::int64_t>(x * static_cast<double>(jam_window));
          jam_gen = [budget, jam_window, p_jam](util::Rng) {
            return sim::make_adaptive_jammer(budget, jam_window, p_jam);
          };
        }
        const auto report = analysis::run_replications(
            gen, *factory, common.reps, common.seed, jam_gen, axis.plan(x),
            trace.get(), common.threads);

        std::string verdict = "-";
        if (x == 0.0) {
          const bool same = snapshot(report) == base;
          verdict = same ? "yes" : "NO (bug)";
          mismatches += same ? 0 : 1;
        }
        const auto per_rep = [&](std::int64_t v) {
          return util::fmt(static_cast<double>(v) / common.reps, 1);
        };
        table.add_row({name, axis.name, util::fmt(x, 2),
                       util::fmt(report.outcomes.overall().rate(), 4),
                       per_rep(report.channel.faults_injected),
                       per_rep(report.channel.dark_job_slots),
                       per_rep(report.channel.jammed_slots), verdict});
      }
    }
  }

  bench::emit(table,
              "Robustness — delivery under injected faults (batch " +
                  std::to_string(batch) + " jobs, window 2^" +
                  std::to_string(level) + ", crash intensity = rate*64)",
              common, &trace);
  if (mismatches != 0) {
    std::cerr << "FAIL: " << mismatches
              << " zero-intensity row(s) differ from the fault-free "
                 "baseline — the no-op property is broken\n";
    return 1;
  }
  return 0;
}
