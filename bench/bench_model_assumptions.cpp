// E17 — model-assumption ablation: §1.1 states "the algorithms in this
// paper make use of collision detection". This harness quantifies which
// parts actually depend on it by re-running ALIGNED and PUNCTUAL with the
// simulator's no-CD mode (listeners perceive noisy slots as silent;
// transmitters still learn their own failure, ACK-style).
//
// Expected mechanics: ALIGNED's estimation and broadcast bookkeeping count
// *successes* only, so it keeps working; PUNCTUAL's round synchronization
// needs "two consecutive busy slots", where busy includes collisions —
// without CD, the start-marker collisions read as silence, frames
// fragment, and delivery collapses.

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/aligned/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/10);
  auto trace = bench::make_trace_session(common);

  util::Table table(
      {"protocol", "collision detection", "delivered", "noise slots/rep"});

  // ALIGNED on nested aligned instances.
  for (const bool cd : {true, false}) {
    core::Params p;
    p.lambda = 2;
    p.tau = 8;
    p.min_class = 10;
    const auto factory = core::aligned::make_aligned_factory(p);
    util::SuccessCounter delivered;
    std::int64_t noise = 0;
    for (int rep = 0; rep < common.reps; ++rep) {
      util::Rng rng(common.seed + static_cast<std::uint64_t>(rep));
      workload::AlignedConfig config;
      config.min_class = 10;
      config.max_class = 13;
      config.gamma = 1.0 / 256;
      config.horizon = 1 << 15;
      const auto instance = workload::gen_aligned(config, rng);
      sim::SimConfig sc;
      sc.seed = common.seed * 7 + static_cast<std::uint64_t>(rep);
      sc.collision_detection = cd;
      sc.tracer = trace.get();
      const auto result = sim::run(instance, factory, sc);
      delivered.add_many(static_cast<std::uint64_t>(result.successes()),
                         static_cast<std::uint64_t>(result.jobs.size()));
      noise += result.metrics.noise_slots;
    }
    table.add_row({"aligned", cd ? "on (paper)" : "off",
                   util::fmt(delivered.rate(), 4),
                   util::fmt(static_cast<double>(noise) / common.reps, 0)});
  }

  // PUNCTUAL on general instances.
  for (const bool cd : {true, false}) {
    core::Params p;
    p.lambda = 4;
    p.tau = 8;
    p.min_class = 8;
    const auto factory = core::punctual::make_punctual_factory(p);
    util::SuccessCounter delivered;
    std::int64_t noise = 0;
    for (int rep = 0; rep < common.reps; ++rep) {
      util::Rng rng(common.seed + 100 + static_cast<std::uint64_t>(rep));
      workload::GeneralConfig config;
      config.min_window = 1 << 11;
      config.max_window = 1 << 13;
      config.gamma = 1.0 / 64;
      config.horizon = 1 << 15;
      const auto instance = workload::gen_general(config, rng);
      sim::SimConfig sc;
      sc.seed = common.seed * 11 + static_cast<std::uint64_t>(rep);
      sc.collision_detection = cd;
      sc.tracer = trace.get();
      const auto result = sim::run(instance, factory, sc);
      delivered.add_many(static_cast<std::uint64_t>(result.successes()),
                         static_cast<std::uint64_t>(result.jobs.size()));
      noise += result.metrics.noise_slots;
    }
    table.add_row({"punctual", cd ? "on (paper)" : "off",
                   util::fmt(delivered.rate(), 4),
                   util::fmt(static_cast<double>(noise) / common.reps, 0)});
  }

  bench::emit(table,
              "E17 — collision-detection ablation: which algorithm "
              "actually needs the §1.1 assumption",
              common, &trace);
  return 0;
}
