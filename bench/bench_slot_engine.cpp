// Slot-engine throughput harness: single-replication slots/sec across job
// counts and protocol families. This is the regression gate for the
// data-oriented engine rebuild (DESIGN.md §6e) — unlike the experiment
// harnesses it reproduces no paper claim; it exists so BENCH_*.json keeps a
// perf trajectory and `tools/check_perf.py` can flag slowdowns against
// `bench/baselines/slot_engine.json`.
//
// Sweep points are chosen to hit the engine's distinct cost regimes:
//   burst/uniform    — n jobs live at once; the raw decision-loop rate.
//   burst/ack-aloha  — ACK-only feedback (no collision detection) with many
//                      transmitters per slot; stresses the per-listener
//                      "did I transmit" lookup.
//   stagger/faults   — thousands of jobs but only a handful live per slot,
//                      with a light fault plan; stresses the per-slot
//                      scratch-clearing path (dark flags) whose cost must
//                      scale with live jobs, not total jobs.
//
// Timing covers simulation construction + run, so protocol allocation
// (the arena path) is part of what is measured. Wall-clock numbers appear
// in the table (this harness is about time); use --reps to average.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/aloha.hpp"
#include "bench_common.hpp"
#include "core/params.hpp"
#include "core/uniform.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

struct Point {
  std::string scenario;
  std::int64_t jobs = 0;
  int reps = 0;
  std::int64_t slots = 0;
  double wall_ms = 0.0;
};

/// Runs one (scenario, jobs) point `reps` times and accumulates simulated
/// slots and wall time. The build step is inside the timed region on
/// purpose: per-job protocol allocation is engine cost.
template <typename MakeSim>
Point measure(const std::string& scenario, std::int64_t jobs, int reps,
              const MakeSim& make_sim) {
  Point p;
  p.scenario = scenario;
  p.jobs = jobs;
  p.reps = reps;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    sim::Simulation simulation = make_sim(static_cast<std::uint64_t>(rep));
    const sim::SimResult result = simulation.finish();
    const auto stop = std::chrono::steady_clock::now();
    p.slots += result.metrics.slots_simulated;
    p.wall_ms +=
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  return p;
}

double slots_per_sec(const Point& p) {
  return p.wall_ms > 0.0 ? static_cast<double>(p.slots) / (p.wall_ms / 1e3)
                         : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  // reps here are timing repetitions per sweep point, not replications.
  const bench::CommonArgs common = bench::parse_common(args, /*reps=*/4);
  auto trace = bench::make_trace_session(common);

  std::vector<std::int64_t> job_counts = {256, 1024, 8192};
  if (common.quick) {
    job_counts = {256, 1024};
  }

  core::Params params;
  params.lambda = 2;
  const auto uniform = core::make_uniform_factory(params);

  util::Table table({"scenario", "jobs", "reps", "slots", "wall_ms",
                     "slots_per_sec"});
  std::vector<Point> points;

  for (const std::int64_t n : job_counts) {
    const Slot window = 4 * n;
    const Slot horizon = std::min<Slot>(window, 2048);

    // burst/uniform: everyone live from slot 0, ternary feedback.
    const bench::WorkloadSpec burst{.kind = bench::WorkloadSpec::Kind::kBatch,
                                    .jobs = n,
                                    .window = window};
    points.push_back(measure("burst/uniform", n, common.reps,
                             [&](std::uint64_t rep) {
                               sim::SimConfig config;
                               config.seed = common.seed + rep;
                               config.horizon = horizon;
                               config.tracer = trace.get();
                               return sim::Simulation(
                                   bench::make_workload(burst), uniform,
                                   config);
                             }));

    // burst/ack-aloha: ACK-only listeners, ~64 transmitters per slot.
    const double p_tx =
        std::min(0.5, 64.0 / static_cast<double>(n));
    const auto aloha = baselines::make_aloha_factory(p_tx);
    points.push_back(measure("burst/ack-aloha", n, common.reps,
                             [&](std::uint64_t rep) {
                               sim::SimConfig config;
                               config.seed = common.seed + rep;
                               config.horizon = horizon;
                               config.collision_detection = false;
                               config.tracer = trace.get();
                               return sim::Simulation(
                                   bench::make_workload(burst), aloha,
                                   config);
                             }));

    // stagger/faults: releases 32 slots apart (few live at a time), light
    // fault plan so the injector path runs every slot.
    points.push_back(measure(
        "stagger/faults", n, common.reps, [&](std::uint64_t rep) {
          const bench::WorkloadSpec stagger{
              .kind = bench::WorkloadSpec::Kind::kStagger, .jobs = n};
          workload::Instance instance = bench::make_workload(stagger);
          sim::SimConfig config;
          config.seed = common.seed + rep;
          config.faults.feedback_loss_rate = 0.01;
          config.faults.crash_rate = 0.0005;
          config.faults.stall_min = 4;
          config.faults.stall_max = 16;
          config.tracer = trace.get();
          return sim::Simulation(std::move(instance), uniform, config);
        }));
  }

  for (const Point& p : points) {
    table.add_row({p.scenario, std::to_string(p.jobs),
                   std::to_string(p.reps), std::to_string(p.slots),
                   util::fmt(p.wall_ms, 3), util::fmt_sci(slots_per_sec(p), 4)});
  }

  bench::emit(table, "Slot-engine throughput (single-replication slots/sec)",
              common, &trace);
  return 0;
}
