// E15 — delivery-latency profiles. The paper's guarantee is binary (meet
// the window or not), but a deployment also cares *when* inside the window
// messages land: deadline-aware protocols spread deliveries across the
// window by design (pecking order, rounds), while greedy backoff front-
// loads them. This harness reports latency/window percentiles per
// protocol on the same instances.

#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/8);
  auto trace = bench::make_trace_session(common);

  core::Params params;
  params.lambda = 4;
  params.tau = 8;
  params.min_class = 8;

  util::Table table({"protocol", "delivered", "p50 latency/window",
                     "p90", "p99", "max"});
  for (const std::string& name :
       {"uniform", "beb", "sawtooth", "aloha", "punctual"}) {
    const auto factory = core::make_protocol(name, params);
    std::vector<double> fracs;
    util::SuccessCounter delivered;
    for (int rep = 0; rep < common.reps; ++rep) {
      util::Rng rng(common.seed + static_cast<std::uint64_t>(rep));
      workload::GeneralConfig config;
      config.min_window = 1 << 10;
      config.max_window = 1 << 13;
      config.gamma = 1.0 / 32;
      config.horizon = 1 << 15;
      const auto instance = workload::gen_general(config, rng);
      sim::SimConfig sc;
      sc.seed = common.seed * 3 + static_cast<std::uint64_t>(rep);
      sc.tracer = trace.get();
      const auto result = sim::run(instance, *factory, sc);
      for (const auto& job : result.jobs) {
        delivered.add(job.success);
        if (job.success) {
          fracs.push_back(static_cast<double>(job.latency()) /
                          static_cast<double>(job.window()));
        }
      }
    }
    table.add_row({name, util::fmt(delivered.rate(), 4),
                   util::fmt(util::percentile(fracs, 0.50), 3),
                   util::fmt(util::percentile(fracs, 0.90), 3),
                   util::fmt(util::percentile(fracs, 0.99), 3),
                   util::fmt(util::percentile(fracs, 1.0), 3)});
  }
  bench::emit(table,
              "E15 — delivery latency as a fraction of the window "
              "(general gamma=1/32 instances)",
              common, &trace);
  return 0;
}
