// E4 — Lemma 5: UNIFORM is unfair. On the instance where all n jobs arrive
// at slot 0 and job j has window size j/γ, the early (small-window,
// high-priority!) jobs see contention ~ln(n) in every slot of their windows
// and succeed with probability O(1/n^Θ(1)).
//
// The harness replicates the instance and reports per-cohort success rates:
// the first sqrt(n) jobs starve while the overall delivered fraction stays
// constant — the paper's dichotomy in one table.

#include <cmath>
#include <vector>

#include "analysis/outcomes.hpp"
#include "bench_common.hpp"
#include "core/uniform.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/60);
  auto trace = bench::make_trace_session(common);
  const double gamma = args.get_double("gamma", 0.25);

  core::Params params;
  params.uniform_attempts = 1;
  const auto factory = core::make_uniform_factory(params);

  std::vector<std::int64_t> sizes{256, 1024, 4096};
  if (common.quick) {
    sizes = {256, 1024};
  }

  util::Table table({"n", "reps", "first sqrt(n) jobs", "middle jobs",
                     "last sqrt(n) jobs", "overall fraction"});
  for (const std::int64_t n : sizes) {
    const auto cohort = static_cast<std::int64_t>(std::sqrt(n));
    util::SuccessCounter first;
    util::SuccessCounter middle;
    util::SuccessCounter last;
    util::SuccessCounter overall;
    const int reps = (n >= 4096) ? std::max(1, common.reps / 4) : common.reps;
    const workload::Instance instance = workload::gen_starvation(n, gamma);
    for (int rep = 0; rep < reps; ++rep) {
      sim::SimConfig config;
      config.seed = common.seed * 1000003 + static_cast<std::uint64_t>(rep);
      config.tracer = trace.get();
      const auto result = sim::run(instance, factory, config);
      // Jobs are normalized by (release, deadline): index == j-1 of the
      // construction, so index order is window order.
      for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const bool ok = result.jobs[i].success;
        overall.add(ok);
        if (static_cast<std::int64_t>(i) < cohort) {
          first.add(ok);
        } else if (static_cast<std::int64_t>(i) >=
                   static_cast<std::int64_t>(result.jobs.size()) - cohort) {
          last.add(ok);
        } else {
          middle.add(ok);
        }
      }
    }
    table.add_row({util::fmt_count(n), std::to_string(reps),
                   util::fmt(first.rate(), 4), util::fmt(middle.rate(), 4),
                   util::fmt(last.rate(), 4),
                   util::fmt(overall.rate(), 4)});
  }
  bench::emit(table,
              "E4 / Lemma 5 — UNIFORM starves the urgent jobs on the "
              "w_j = j/gamma instance (gamma=" +
                  util::fmt(gamma, 3) +
                  "); early-cohort success should vanish as n grows while "
                  "the overall fraction stays constant",
              common, &trace);
  return 0;
}
