// E1 — Figure 1: pecking-order scheduling of active steps for aligned
// windows, regenerated from a real ALIGNED execution.
//
// Three classes (small/medium/large) share the channel. The harness steps
// the simulation, asks a live job which class is active in each slot and
// whether that class is estimating or broadcasting, and renders both the
// per-window accounting table and an ASCII timeline mirroring the figure
// (estimation = 'E', broadcast = 'B'; lower rows = larger windows; windows
// are delimited with '|').

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

struct WindowStats {
  std::int64_t est_steps = 0;
  std::int64_t bcast_steps = 0;
  Slot first_active = -1;
  Slot last_active = -1;
  std::int64_t jobs = 0;
  std::int64_t successes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/1);
  auto trace = bench::make_trace_session(common);

  core::Params p;
  p.lambda = 1;
  p.tau = 2;
  p.min_class = 10;
  const int kSmall = 10;
  const int kMedium = 11;
  const int kLarge = 12;
  const Slot horizon = 1 << 13;

  // Jobs per window, echoing Figure 1's uneven occupancy.
  workload::Instance instance;
  auto add = [&](Slot start, int level, std::int64_t count) {
    instance = workload::merge(
        instance, workload::gen_batch(count, util::pow2(level), start));
  };
  add(0, kSmall, 2);
  add(1 << 10, kSmall, 1);
  add(3 << 10, kSmall, 2);
  add(5 << 10, kSmall, 1);
  add(0, kMedium, 3);
  add(1 << 11, kMedium, 2);
  add(2 << 11, kMedium, 1);
  add(0, kLarge, 4);
  add(1 << 12, kLarge, 2);

  sim::SimConfig config;
  config.seed = common.seed;
  config.horizon = horizon;
  config.tracer = trace.get();
  sim::Simulation sim(instance, core::aligned::make_aligned_factory(p),
                      config);

  std::map<std::pair<int, Slot>, WindowStats> windows;
  std::vector<char> small_row(static_cast<std::size_t>(horizon), ' ');
  std::vector<char> medium_row(static_cast<std::size_t>(horizon), ' ');
  std::vector<char> large_row(static_cast<std::size_t>(horizon), ' ');

  // The observer fires after every job's on_slot for the slot, so the
  // deepest live tracker's last_step() describes exactly this slot.
  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission>) {
    const Slot t = rec.slot;
    core::aligned::AlignedProtocol* deepest = nullptr;
    for (const JobId id : sim.live_jobs()) {
      auto* proto =
          dynamic_cast<core::aligned::AlignedProtocol*>(sim.protocol(id));
      if (proto != nullptr &&
          (deepest == nullptr || proto->level() > deepest->level())) {
        deepest = proto;
      }
    }
    if (deepest == nullptr || !deepest->last_step().valid) {
      return;
    }
    const int active = deepest->last_step().active_class;
    if (active < 0) {
      return;
    }
    const bool estimating = deepest->last_step().estimating;
    const Slot wstart = util::align_down(t, util::pow2(active));
    WindowStats& stats = windows[{active, wstart}];
    if (estimating) {
      ++stats.est_steps;
    } else {
      ++stats.bcast_steps;
    }
    if (stats.first_active < 0) {
      stats.first_active = t;
    }
    stats.last_active = t;
    auto& row = active == kSmall    ? small_row
                : active == kMedium ? medium_row
                                    : large_row;
    row[static_cast<std::size_t>(t)] = estimating ? 'E' : 'B';
  });

  const sim::SimResult result = sim.finish();
  for (const auto& job : result.jobs) {
    const int level = util::floor_log2(job.window());
    WindowStats& stats = windows[{level, job.release}];
    ++stats.jobs;
    stats.successes += job.success ? 1 : 0;
  }

  util::Table table({"class", "window", "span", "jobs", "delivered",
                     "est steps", "bcast steps", "first active",
                     "last active"});
  for (const auto& [key, stats] : windows) {
    const auto& [level, wstart] = key;
    table.add_row({std::to_string(level),
                   "[" + util::fmt_count(wstart) + ", " +
                       util::fmt_count(wstart + util::pow2(level)) + ")",
                   util::fmt_count(util::pow2(level)),
                   std::to_string(stats.jobs),
                   std::to_string(stats.successes),
                   util::fmt_count(stats.est_steps),
                   util::fmt_count(stats.bcast_steps),
                   util::fmt_count(stats.first_active),
                   util::fmt_count(stats.last_active)});
  }
  bench::emit(table,
              "E1 / Figure 1 — pecking-order schedule (ALIGNED, lambda=1, "
              "tau=2)",
              common, &trace);

  // Compressed timeline: one char per 64-slot bucket, rows ordered small ->
  // large as in Figure 1. 'E' estimation, 'B' broadcast, '*' both, '|' at
  // each window boundary of that row's class.
  const Slot bucket = 64;
  auto render = [&](const std::vector<char>& row, int level) {
    std::string out;
    for (Slot b = 0; b < horizon; b += bucket) {
      if (b % util::pow2(level) == 0) {
        out += '|';
      }
      bool has_e = false;
      bool has_b = false;
      for (Slot t = b; t < b + bucket; ++t) {
        has_e |= row[static_cast<std::size_t>(t)] == 'E';
        has_b |= row[static_cast<std::size_t>(t)] == 'B';
      }
      out += has_e && has_b ? '*' : has_e ? 'E' : has_b ? 'B' : '.';
    }
    return out;
  };
  std::cout << "timeline (1 char = 64 slots; E estimation, B broadcast, * "
               "both, | window boundary):\n";
  std::cout << "small  (2^10): " << render(small_row, kSmall) << "\n";
  std::cout << "medium (2^11): " << render(medium_row, kMedium) << "\n";
  std::cout << "large  (2^12): " << render(large_row, kLarge) << "\n\n";
  std::cout << "delivered " << result.successes() << "/" << result.jobs.size()
            << " jobs; active steps interleave with priority to smaller "
               "windows, as in Figure 1.\n";
  return 0;
}
