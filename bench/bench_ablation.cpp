// E14 — ablations over the constants the paper leaves symbolic:
//   (a) τ — estimate inflation: reliability vs channel time on a batch
//       (τ=64 is the proof's value; smaller τ trades safety margin for
//       makespan);
//   (b) λ — repetition: failure rate vs active steps;
//   (c) PUNCTUAL's anarchist-fallback-on-truncation extension (off =
//       paper-faithful giving up).

#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/aligned/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/15);
  auto trace = bench::make_trace_session(common);

  // ---- (a) τ sweep on an ALIGNED batch -------------------------------------
  {
    const int level = 13;
    const std::int64_t batch = 16;
    util::Table table({"tau", "delivery rate", "mean makespan (slots)",
                       "scheduled broadcast steps @ est"});
    for (const std::int64_t tau : {2LL, 8LL, 64LL}) {
      core::Params p;
      p.lambda = 2;
      p.tau = tau;
      p.min_class = level;
      const auto factory = core::aligned::make_aligned_factory(p);
      util::SuccessCounter delivered;
      util::RunningStats makespan;
      for (int rep = 0; rep < common.reps; ++rep) {
        sim::SimConfig config;
        config.seed = common.seed * 101 + static_cast<std::uint64_t>(rep);
        config.tracer = trace.get();
        const auto result = sim::run(
            workload::gen_batch(batch, Slot{1} << level, 0), factory,
            config);
        Slot last = 0;
        for (const auto& job : result.jobs) {
          delivered.add(job.success);
          if (job.success) {
            last = std::max(last, job.success_slot);
          }
        }
        makespan.add(static_cast<double>(last));
      }
      // Broadcast budget if the estimate lands at tau*2^ceil(log2 batch).
      const std::int64_t est = tau * 2 * batch;
      table.add_row({std::to_string(tau), util::fmt(delivered.rate(), 4),
                     util::fmt(makespan.mean(), 0),
                     util::fmt_count(p.broadcast_steps(level, est))});
    }
    bench::emit(table,
                "E14a — tau ablation (ALIGNED batch of 16, window 2^13): "
                "bigger tau buys safety margin with channel time",
                common, &trace);
  }

  // ---- (b) λ sweep under jamming stress ------------------------------------
  // λ multiplies every stage, so on an uncontended batch all λ succeed; the
  // tradeoff shows under a strong reactive jammer (p=0.7, beyond the
  // analyzed 1/2): failure drops roughly exponentially in λ while the
  // channel time spent grows linearly.
  {
    const int level = 12;
    const std::int64_t batch = 4;
    const int trials = common.quick ? 4000 : 20000;
    util::Table table({"lambda", "trials", "failure rate",
                       "scheduled steps (Lemma 6, est=64)"});
    for (const int lambda : {1, 2, 3, 4}) {
      core::Params p;
      p.lambda = lambda;
      p.tau = 8;
      p.min_class = level;
      const auto factory = core::aligned::make_aligned_factory(p);
      util::SuccessCounter counter;
      const int reps = std::max(2, trials / static_cast<int>(batch));
      for (int rep = 0; rep < reps; ++rep) {
        sim::SimConfig config;
        config.seed = common.seed * 3 + static_cast<std::uint64_t>(rep);
        config.tracer = trace.get();
        const auto result =
            sim::run(workload::gen_batch(batch, Slot{1} << level, 0),
                     factory, config, sim::make_reactive_jammer(0.7));
        for (const auto& job : result.jobs) {
          counter.add(job.success);
        }
      }
      table.add_row(
          {std::to_string(lambda),
           util::fmt_count(static_cast<std::int64_t>(counter.trials())),
           util::fmt(counter.failure_rate(), 5),
           util::fmt_count(p.total_steps(level, 64))});
    }
    bench::emit(table,
                "E14b — lambda ablation (ALIGNED batch of 4, window 2^12, "
                "reactive jam p=0.7): reliability vs channel time",
                common, &trace);
  }

  // ---- (c) PUNCTUAL anarchist fallback -------------------------------------
  {
    util::Table table({"truncation fallback", "delivered", "worst window"});
    for (const bool fallback : {false, true}) {
      core::Params p;
      p.lambda = 4;
      p.tau = 8;
      p.min_class = 8;
      // Raised claim rate so jobs actually follow leaders (and hence can be
      // truncated mid-follow — the case the toggle governs).
      p.pullback_prob_scale = 512.0;
      p.anarchist_fallback_on_truncation = fallback;
      analysis::InstanceGen gen = [&](util::Rng& rng) {
        workload::GeneralConfig config;
        config.min_window = 1 << 10;
        config.max_window = 1 << 13;
        config.gamma = 1.0 / 16;  // tighter slack: truncations do happen
        config.horizon = 1 << 15;
        return workload::gen_general(config, rng);
      };
      const auto report = analysis::run_replications(
          gen, core::punctual::make_punctual_factory(p), common.reps,
          common.seed, nullptr, {}, trace.get(), common.threads);
      double worst = 1.0;
      for (const auto& [w, bucket] : report.outcomes.by_window()) {
        worst = std::min(worst, bucket.deadline_met.rate());
      }
      table.add_row({fallback ? "anarchist (extension)"
                              : "give up (paper)",
                     util::fmt(report.outcomes.overall().rate(), 4),
                     util::fmt(worst, 4)});
    }
    bench::emit(table,
                "E14c — PUNCTUAL truncation-fallback extension vs the "
                "paper's give-up rule (gamma=1/16 general instances)",
                common, &trace);
  }

  // ---- (d) pecking order on/off --------------------------------------------
  // §3's "always defer to smaller windows" rule, ablated: without it,
  // nested classes run their estimation/broadcast concurrently and collide.
  // Measured on the E6 configuration where the paper's rule achieves zero
  // failures (gamma = 1/256).
  {
    util::Table table({"pecking order", "failure rate",
                       "worst window-size failure", "noise slots/rep"});
    for (const bool pecking : {true, false}) {
      core::Params p;
      p.lambda = 2;
      p.tau = 8;
      p.min_class = 10;
      p.pecking_order = pecking;
      analysis::InstanceGen gen = [&](util::Rng& rng) {
        workload::AlignedConfig config;
        config.min_class = p.min_class;
        config.max_class = 14;
        config.gamma = 1.0 / 256;
        config.horizon = 1 << 16;
        return workload::gen_aligned(config, rng);
      };
      const auto report = analysis::run_replications(
          gen, core::aligned::make_aligned_factory(p), common.reps,
          common.seed, nullptr, {}, trace.get(), common.threads);
      double worst = 0.0;
      for (const auto& [w, bucket] : report.outcomes.by_window()) {
        worst = std::max(worst, bucket.deadline_met.failure_rate());
      }
      table.add_row(
          {pecking ? "on (paper)" : "off",
           util::fmt(report.outcomes.overall().failure_rate(), 4),
           util::fmt(worst, 4),
           util::fmt_count(report.channel.noise_slots /
                           std::max(1, report.replications))});
    }
    bench::emit(table,
                "E14d — pecking-order ablation on aligned laminar "
                "instances (classes 10..14, gamma=1/256; the paper's rule "
                "is failure-free here)",
                common, &trace);
  }
  return 0;
}
