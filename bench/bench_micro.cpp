// Microbenchmarks (google-benchmark): raw simulator throughput, RNG, the
// feasibility checkers, tracker stepping, estimation updates, and trimming.
// These gate performance regressions; they reproduce no paper claim.

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "baselines/aloha.hpp"
#include "core/aligned/estimation.hpp"
#include "core/aligned/tracker.hpp"
#include "core/params.hpp"
#include "core/punctual/protocol.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"
#include "workload/trim.hpp"

namespace {

using namespace crmd;

void BM_RngU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngU64);

void BM_RngBernoulli(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli(0.3));
  }
}
BENCHMARK(BM_RngBernoulli);

void BM_RngBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000));
  }
}
BENCHMARK(BM_RngBelow);

// Simulator slots/second with k concurrent ALOHA jobs.
void BM_SimulatorAloha(benchmark::State& state) {
  const auto jobs = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    const auto instance = workload::gen_batch(jobs, 1 << 12, 0);
    sim::SimConfig config;
    config.seed = 7;
    sim::Simulation sim(instance, baselines::make_aloha_factory(0.01),
                        config);
    state.ResumeTiming();
    const auto result = sim.finish();
    benchmark::DoNotOptimize(result.metrics.slots_simulated);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 12));
}
BENCHMARK(BM_SimulatorAloha)->Arg(8)->Arg(64)->Arg(512);

void BM_EdfFeasible(benchmark::State& state) {
  util::Rng rng(3);
  workload::GeneralConfig config;
  config.min_window = 1 << 8;
  config.max_window = 1 << 12;
  config.gamma = 1.0 / 8;
  config.horizon = 1 << 15;
  const auto instance = workload::gen_general(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::edf_feasible(instance, 8));
  }
  state.SetLabel(std::to_string(instance.size()) + " jobs");
}
BENCHMARK(BM_EdfFeasible);

void BM_TrackerStep(benchmark::State& state) {
  core::Params p;
  p.lambda = 2;
  p.tau = 8;
  core::aligned::Tracker tracker(p, 8, 14);
  Slot t = 0;
  for (auto _ : state) {
    tracker.begin_slot(t);
    tracker.end_slot(sim::SlotOutcome::kSilence);
    ++t;
  }
}
BENCHMARK(BM_TrackerStep);

void BM_EstimationRecord(benchmark::State& state) {
  core::Params p;
  p.lambda = 4;
  for (auto _ : state) {
    core::aligned::EstimationState est(p, 16);
    while (!est.complete()) {
      est.record(sim::SlotOutcome::kSilence);
    }
    benchmark::DoNotOptimize(est.estimate());
  }
  state.SetItemsProcessed(state.iterations() * p.estimation_steps(16));
}
BENCHMARK(BM_EstimationRecord);

void BM_Trimmed(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    const Slot r = rng.range(0, 1 << 30);
    const Slot w = rng.range(1, 1 << 20);
    benchmark::DoNotOptimize(workload::trimmed(r, r + w));
  }
}
BENCHMARK(BM_Trimmed);

// Tracing overhead: the same PUNCTUAL simulation with tracing off
// (null tracer — the CRMD_TRACE pointer test only), ring-only (tracer with
// no sinks; events are pushed and bulk-discarded), and a full JSONL sink
// (every event formatted and written to an in-memory stream). Comparing
// items/sec across the three shows what observability costs at each tier.
enum class TraceMode { kOff, kRingOnly, kJsonl };

void run_traced_sim(benchmark::State& state, TraceMode mode) {
  workload::GeneralConfig wconfig;
  wconfig.min_window = 1 << 9;
  wconfig.max_window = 1 << 11;
  wconfig.gamma = 1.0 / 32;
  wconfig.horizon = 1 << 13;
  core::Params params;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  std::int64_t slots = 0;
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng rng(11);
    const auto instance = workload::gen_general(wconfig, rng);
    sim::SimConfig config;
    config.seed = 11;
    std::unique_ptr<obs::Tracer> tracer;
    std::ostringstream jsonl;
    if (mode != TraceMode::kOff) {
      tracer = std::make_unique<obs::Tracer>();
      if (mode == TraceMode::kJsonl) {
        tracer->add_sink(std::make_shared<obs::JsonlSink>(jsonl));
      }
      config.tracer = tracer.get();
    }
    state.ResumeTiming();
    const auto result = sim::run(instance, factory, config);
    if (tracer) {
      tracer->flush();
    }
    slots += result.metrics.slots_simulated;
    benchmark::DoNotOptimize(result.metrics.slots_simulated);
  }
  state.SetItemsProcessed(slots);
}

void BM_TracingOff(benchmark::State& state) {
  run_traced_sim(state, TraceMode::kOff);
}
BENCHMARK(BM_TracingOff);

void BM_TracingRingOnly(benchmark::State& state) {
  run_traced_sim(state, TraceMode::kRingOnly);
}
BENCHMARK(BM_TracingRingOnly);

void BM_TracingJsonl(benchmark::State& state) {
  run_traced_sim(state, TraceMode::kJsonl);
}
BENCHMARK(BM_TracingJsonl);

void BM_GenAligned(benchmark::State& state) {
  workload::AlignedConfig config;
  config.min_class = 9;
  config.max_class = 13;
  config.gamma = 1.0 / 16;
  config.horizon = 1 << 15;
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::gen_aligned(config, rng));
  }
}
BENCHMARK(BM_GenAligned);

}  // namespace

BENCHMARK_MAIN();
