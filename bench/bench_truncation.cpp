// E6 — Lemmas 11–12: with enough slack (small enough γ) the active steps of
// every window and its nested windows fit, so algorithms are (almost) never
// truncated; as γ grows, truncation sets in and jobs start missing their
// windows.
//
// The harness sweeps the generator's γ on aligned laminar instances and
// reports the per-window-size failure rate plus channel accounting — the
// failure curve rising with γ is Lemma 12's contrapositive.

#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/aligned/protocol.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/8);

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", 2));
  params.tau = args.get_int("tau", 8);
  params.min_class = 10;
  const auto factory = core::aligned::make_aligned_factory(params);

  const std::vector<double> gammas{1.0 / 32,  1.0 / 64, 1.0 / 128,
                                   1.0 / 256, 1.0 / 512};
  const double fill = args.get_double("fill", 1.0);

  auto trace = bench::make_trace_session(common);
  util::Table table({"gamma", "jobs/rep", "failure rate", "95% CI",
                     "worst window-size failure", "channel util (data)",
                     "noise slots"});
  for (const double gamma : gammas) {
    analysis::InstanceGen gen = [&](util::Rng& rng) {
      workload::AlignedConfig config;
      config.min_class = params.min_class;
      config.max_class = 14;
      config.gamma = gamma;
      config.fill = fill;
      config.horizon = 1 << 16;
      return workload::gen_aligned(config, rng);
    };
    const auto report = analysis::run_replications(
        gen, factory, common.reps, common.seed, nullptr, {}, trace.get(),
        common.threads);
    double worst = 0.0;
    for (const auto& [w, bucket] : report.outcomes.by_window()) {
      worst = std::max(worst, bucket.deadline_met.failure_rate());
    }
    const auto [lo, hi] = report.outcomes.overall().wilson95();
    table.add_row(
        {"1/" + std::to_string(static_cast<int>(1.0 / gamma)),
         util::fmt(report.jobs_per_rep.mean(), 1),
         util::fmt(report.outcomes.overall().failure_rate(), 4),
         "[" + util::fmt(1.0 - hi, 3) + ", " + util::fmt(1.0 - lo, 3) + "]",
         util::fmt(worst, 4), util::fmt(report.channel.data_throughput(), 4),
         util::fmt_count(report.channel.noise_slots)});
  }
  bench::emit(table,
              "E6 / Lemmas 11-12 — truncation vs slack on aligned laminar "
              "instances (classes 10..14, lambda=" +
                  std::to_string(params.lambda) + ", tau=" +
                  std::to_string(params.tau) + ")",
              common, &trace);
  return 0;
}
