// E2 — Lemma 2 / Corollary 3: the success probability of a slot with
// contention C is bracketed by C/e^{2C} <= p_suc <= 2C/e^C when every
// transmission probability is at most 1/2.
//
// For each target contention C we give n jobs probability C/n each,
// Monte-Carlo the slot outcome, and print the measured success rate next to
// the exact formula and both envelopes.

#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/200000);
  auto trace = bench::make_trace_session(common);

  const int n = static_cast<int>(args.get_int("jobs", 32));
  const std::vector<double> contentions{0.125, 0.25, 0.5, 1.0,
                                        2.0,   4.0,  8.0, 16.0};

  util::Table table({"C", "p per job", "measured p_suc", "exact",
                     "lower C/e^2C", "upper 2C/e^C", "in bracket"});
  util::Rng rng(common.seed);
  for (const double c : contentions) {
    const double p = c / n;
    if (p > 0.5) {
      continue;  // Lemma 2's hypothesis
    }
    std::int64_t successes = 0;
    for (int trial = 0; trial < common.reps; ++trial) {
      int tx = 0;
      for (int j = 0; j < n && tx < 2; ++j) {
        tx += rng.bernoulli(p) ? 1 : 0;
      }
      successes += (tx == 1) ? 1 : 0;
    }
    const double measured =
        static_cast<double>(successes) / static_cast<double>(common.reps);
    const std::vector<double> probs(static_cast<std::size_t>(n), p);
    const double exact = analysis::success_prob_exact(probs);
    const double lo = analysis::success_prob_lower(c);
    const double hi = analysis::success_prob_upper(c);
    table.add_row({util::fmt(c, 3), util::fmt_sci(p, 2),
                   util::fmt(measured, 4), util::fmt(exact, 4),
                   util::fmt(lo, 4), util::fmt(hi, 4),
                   (measured >= lo - 0.01 && measured <= hi + 0.01) ? "yes"
                                                                    : "NO"});
  }
  bench::emit(table,
              "E2 / Lemma 2 + Corollary 3 — contention vs success "
              "probability (" +
                  std::to_string(n) + " jobs, " +
                  std::to_string(common.reps) + " trials per row)",
              common, &trace);
  return 0;
}
