// Feedback-model robustness sweep: protocol × channel feedback model ×
// jamming intensity (DESIGN.md §6f, EXPERIMENTS.md degradation ladder).
//
// The channel's feedback semantics are a deployment assumption, not a law:
// real radios range from full collision detection (the paper's ternary
// model, §1.1) down to ACK-only links and no-CD channels where collisions
// read as silence. This harness runs every registered protocol under each
// sim::FeedbackModel and a blanket jamming ladder and reports delivery
// rates, so the cost of each dropped capability is a number instead of
// folklore.
//
// Self-check: at zero jamming the sweep asserts the degradation ladder
// holds for every protocol (within a small statistical tolerance). Ternary
// dominates every weaker model for everyone. Below that rung the ordering
// is capability-dependent: for ternary-native protocols (ALIGNED, PUNCTUAL
// fall back to blind schedules without collision detection) binary_ack >=
// collision_as_silence, because the latter additionally withholds the
// failure ACK; for `no_cd_native` protocols (the NOCD family) the rungs
// *coincide* instead — success-only inference makes the ternary and
// collision_as_silence trajectories identical, so the check tightens to
// |ternary - collision_as_silence| <= tolerance, while binary_ack may
// legitimately sit below both (listeners are deaf there and NOCD exploits
// listener successes). The harness exits 1 when an invariant breaks, so CI
// catches a feedback-model regression the unit tests cannot see.
//
// Rows carry the slot-engine timing columns (slots, wall_ms,
// slots_per_sec) so `tools/check_perf.py --check-only` can validate the
// --json artifact shape.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/registry.hpp"
#include "sim/channel.hpp"
#include "sim/jammer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

/// One sweep cell, post-run.
struct Cell {
  std::string protocol;
  std::string model;
  double jam = 0.0;
  std::uint64_t jobs = 0;
  std::int64_t slots = 0;
  double wall_ms = 0.0;
  double success_rate = 0.0;
  std::int64_t feedback_flips = 0;
};

std::string jam_tag(double jam) {
  // 0.15 -> "jam15": stable row keys without locale-dependent formatting.
  return "jam" + std::to_string(static_cast<int>(jam * 100.0 + 0.5));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bench::CommonArgs common = bench::parse_common(args, /*reps=*/8);
  auto trace = bench::make_trace_session(common);

  // Aligned instances work for every protocol (power-of-2-aligned windows
  // satisfy ALIGNED's precondition; everyone else is indifferent).
  // Saturated shared window: n = w/2 jobs, one power-of-2-aligned window
  // (valid for every protocol, including ALIGNED). The load is deliberate:
  // the degradation ladder is only visible where feedback *matters*. At
  // light load a blind anarchist schedule clears the channel as well as
  // the full machinery (everyone trivially succeeds and the models are
  // indistinguishable); at n = w/2 blind transmission drives per-slot
  // contention to ~lambda*log2(w)/2 and collapses, while collision-driven
  // coordination still delivers — so the cost of each dropped channel
  // capability shows up as a separated rung.
  const int level = common.quick ? 9 : 10;
  const Slot window = Slot{1} << level;
  const std::int64_t batch = window / 2;
  const analysis::InstanceGen gen = [&](util::Rng&) {
    return workload::gen_batch(batch, window, 0);
  };

  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = level;

  const std::vector<sim::FeedbackModel> models = {
      sim::FeedbackModel::ternary(),
      sim::FeedbackModel::binary_ack(),
      sim::FeedbackModel::collision_as_silence(),
      sim::FeedbackModel::noisy(0.05),
  };
  std::vector<double> jams = {0.0, 0.15, 0.3};
  if (common.quick) {
    jams = {0.0, 0.3};
  }

  util::Table table({"scenario", "jobs", "reps", "slots", "wall_ms",
                     "slots_per_sec", "success_rate", "fb_flips"});
  // (protocol, model) -> success rate at zero jamming, for the self-check.
  std::map<std::pair<std::string, std::string>, double> at_zero_jam;

  for (const core::ProtocolInfo& info : core::protocol_catalog()) {
    const auto factory = core::make_protocol(info.name, params);
    if (!factory) {
      continue;  // defensive; the catalog mirrors the registry
    }
    for (const sim::FeedbackModel& model : models) {
      if (!info.supports(model.caps()) && !info.adapts_to_degraded_channel) {
        // Nothing in the registry hits this today; guard so a future
        // CD-dependent protocol without a fallback is skipped loudly
        // rather than swept on garbage cues.
        std::cout << "(skipping " << info.name << " on " << model.spec()
                  << ": needs collision detection, no degraded mode)\n";
        continue;
      }
      for (const double jam : jams) {
        analysis::RunOptions options;
        options.feedback = model;
        options.collision_cost = common.collision_cost;
        options.threads = common.threads;
        options.tracer = trace.get();
        if (jam > 0.0) {
          options.jammer_gen = [jam](util::Rng) {
            return sim::make_blanket_jammer(jam);
          };
        }
        const auto start = std::chrono::steady_clock::now();
        const analysis::ReplicationReport report = analysis::run_replications(
            gen, *factory, common.reps, common.seed, options);
        const auto stop = std::chrono::steady_clock::now();

        Cell cell;
        cell.protocol = info.name;
        cell.model = model.spec();
        cell.jam = jam;
        cell.jobs = report.outcomes.jobs();
        cell.slots = report.channel.slots_simulated;
        cell.wall_ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        cell.success_rate = report.outcomes.overall().rate();
        cell.feedback_flips = report.channel.feedback_flips;
        if (jam == 0.0) {
          at_zero_jam[{cell.protocol, cell.model}] = cell.success_rate;
        }

        const double rate =
            cell.wall_ms > 0.0
                ? static_cast<double>(cell.slots) / (cell.wall_ms / 1e3)
                : 0.0;
        table.add_row({cell.protocol + "/" + cell.model + "/" +
                           jam_tag(jam),
                       std::to_string(cell.jobs),
                       std::to_string(common.reps),
                       std::to_string(cell.slots), util::fmt(cell.wall_ms, 3),
                       util::fmt_sci(rate, 4),
                       util::fmt(cell.success_rate, 4),
                       std::to_string(cell.feedback_flips)});
      }
    }
  }

  bench::emit(table,
              "Feedback-model robustness — protocol x channel feedback "
              "model x blanket jamming (DESIGN.md §6f degradation ladder)",
              common, &trace);

  // Self-check: the degradation ladder must hold at zero jamming. The
  // tolerance absorbs replication noise only; a real inversion (a protocol
  // doing *better* with less feedback) is a modeling bug.
  const double tolerance = 0.02;
  int violations = 0;
  for (const core::ProtocolInfo& info : core::protocol_catalog()) {
    const auto rate = [&](const char* spec) {
      const auto it = at_zero_jam.find({info.name, std::string(spec)});
      return it == at_zero_jam.end() ? -1.0 : it->second;
    };
    const double ternary = rate("ternary");
    const double binary = rate("binary_ack");
    const double no_cd = rate("collision_as_silence");
    if (ternary < 0.0 || binary < 0.0 || no_cd < 0.0) {
      continue;  // protocol skipped above
    }
    // Top rung: full feedback dominates every weaker model, for everyone.
    if (ternary + tolerance < binary) {
      std::cerr << "SELF-CHECK FAIL: " << info.name << ": ternary ("
                << ternary << ") < binary_ack (" << binary << ")\n";
      ++violations;
    }
    if (ternary + tolerance < no_cd) {
      std::cerr << "SELF-CHECK FAIL: " << info.name << ": ternary ("
                << ternary << ") < collision_as_silence (" << no_cd << ")\n";
      ++violations;
    }
    if (info.no_cd_native) {
      // Success-only inference (DESIGN.md §6g): the ternary and
      // collision_as_silence trajectories are identical by construction,
      // so the rungs must coincide — the family's whole point.
      if (no_cd + tolerance < ternary) {
        std::cerr << "SELF-CHECK FAIL: " << info.name
                  << ": collision_as_silence (" << no_cd
                  << ") < ternary (" << ternary
                  << ") despite no_cd_native\n";
        ++violations;
      }
    } else if (binary + tolerance < no_cd) {
      // Ternary-native rung: collision_as_silence additionally withholds
      // the failure ACK, so it can never beat binary_ack.
      std::cerr << "SELF-CHECK FAIL: " << info.name << ": binary_ack ("
                << binary << ") < collision_as_silence (" << no_cd << ")\n";
      ++violations;
    }
  }
  if (violations > 0) {
    std::cerr << "self-check: " << violations
              << " degradation-ladder inversion(s)\n";
    return 1;
  }
  std::cout << "self-check: degradation ladder holds (ternary dominates; "
               "binary_ack >= collision_as_silence for ternary-native "
               "protocols; ternary == collision_as_silence for no-CD-native "
               "protocols, at jam=0)\n";
  return 0;
}
