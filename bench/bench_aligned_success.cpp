// E7 — Lemma 13 / Theorem 14: every ALIGNED job succeeds with probability
// 1 − 1/w^Θ(λ) — the failure rate must *fall* as the window grows, and fall
// faster for larger λ.
//
// Two measurements:
//  (1) clean channel, proportional load (batch of w/256 jobs per window):
//      failures stay below the measurement floor at every size — the
//      qualitative "w.h.p." claim;
//  (2) stress: a reactive jammer at p_jam beyond the analyzed 1/2 regime
//      pushes failures into measurable territory, where their decay with
//      window size (and λ) becomes visible — the *shape* of 1/w^Θ(λ).

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

util::SuccessCounter run_batches(const core::Params& params, int level,
                                 std::int64_t batch, int reps,
                                 std::uint64_t seed, double p_jam,
                                 obs::Tracer* tracer) {
  const auto factory = core::aligned::make_aligned_factory(params);
  const Slot w = util::pow2(level);
  util::SuccessCounter counter;
  for (int rep = 0; rep < reps; ++rep) {
    sim::SimConfig config;
    config.seed = seed * 7919 + static_cast<std::uint64_t>(rep * 131 + level);
    config.tracer = tracer;
    auto jammer = p_jam > 0.0 ? sim::make_reactive_jammer(p_jam) : nullptr;
    const auto result = sim::run(workload::gen_batch(batch, w, 0), factory,
                                 config, std::move(jammer));
    for (const auto& job : result.jobs) {
      counter.add(job.success);
    }
  }
  return counter;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/40);
  auto trace = bench::make_trace_session(common);

  // ---- (1) clean channel, proportional load --------------------------------
  {
    const std::int64_t load_divisor = args.get_int("load-divisor", 256);
    std::vector<int> levels{10, 11, 12, 13, 14, 15};
    if (common.quick) {
      levels = {10, 12, 14};
    }
    util::Table table({"lambda", "window", "jobs/batch", "trials",
                       "failure rate", "95% CI hi"});
    for (const int lambda : {1, 2, 3}) {
      core::Params params;
      params.lambda = lambda;
      params.tau = 8;
      for (const int level : levels) {
        params.min_class = level;
        const Slot w = util::pow2(level);
        const std::int64_t batch =
            std::max<std::int64_t>(w / load_divisor, 2);
        const int reps = std::max(
            2, static_cast<int>(common.reps * 16 /
                                std::max<std::int64_t>(batch, 1)));
        const auto counter =
            run_batches(params, level, batch, reps, common.seed, 0.0,
                        trace.get());
        const auto [lo, hi] = counter.wilson95();
        (void)hi;
        table.add_row(
            {std::to_string(lambda), util::fmt_count(w),
             util::fmt_count(batch),
             util::fmt_count(static_cast<std::int64_t>(counter.trials())),
             util::fmt(counter.failure_rate(), 4), util::fmt(1.0 - lo, 4)});
      }
    }
    bench::emit(table,
                "E7.1 / Theorem 14 — clean channel, batch load = window/" +
                    std::to_string(load_divisor) +
                    ", tau=8: failures stay below the measurement floor at "
                    "every window size",
                common, &trace);
  }

  // ---- (2) jam-stressed decay ----------------------------------------------
  {
    const double p_jam = args.get_double("stress-jam", 0.7);
    const std::int64_t batch = args.get_int("stress-batch", 4);
    const int trials = static_cast<int>(
        args.get_int("stress-trials", common.quick ? 4000 : 20000));
    std::vector<int> levels{8, 9, 10, 11, 12, 13};
    if (common.quick) {
      levels = {8, 10, 12};
    }
    util::Table table({"lambda", "window", "trials", "failure rate",
                       "95% CI", "failure * w^0.5"});
    for (const int lambda : {1, 2}) {
      core::Params params;
      params.lambda = lambda;
      params.tau = 8;
      for (const int level : levels) {
        params.min_class = level;
        const int reps = std::max(2, trials / static_cast<int>(batch));
        const auto counter =
            run_batches(params, level, batch, reps, common.seed + 1, p_jam,
                        trace.get());
        const auto [lo, hi] = counter.wilson95();
        const double fail = counter.failure_rate();
        table.add_row(
            {std::to_string(lambda), util::fmt_count(util::pow2(level)),
             util::fmt_count(static_cast<std::int64_t>(counter.trials())),
             util::fmt(fail, 5),
             "[" + util::fmt(1.0 - hi, 5) + ", " + util::fmt(1.0 - lo, 5) +
                 "]",
             util::fmt(fail * std::sqrt(static_cast<double>(
                                  util::pow2(level))),
                       3)});
      }
    }
    bench::emit(table,
                "E7.2 / Lemma 13 shape — reactive jamming at p_jam=" +
                    util::fmt(p_jam, 2) +
                    " (beyond the analyzed 1/2) makes the polynomial decay "
                    "of the failure rate in the window size visible",
                common, &trace);
  }
  return 0;
}
