// E13 — the paper's motivation (§1): classic backoff has no deadline
// awareness and starves jobs; a deadline-aware protocol should deliver
// (nearly) everything a centralized EDF scheduler could.
//
// Two workloads:
//   (a) γ-slack feasible general instances — overall and worst-window-size
//       delivery per protocol;
//   (b) the Lemma 5 starvation instance — delivery of the most urgent
//       (first sqrt(n)) jobs per protocol.
// Protocols: UNIFORM, BEB, sawtooth, window-scaled ALOHA, PUNCTUAL, and
// the EDF ceiling.

#include <cmath>
#include <functional>
#include <vector>

#include "analysis/runner.hpp"
#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "baselines/edf.hpp"
#include "baselines/sawtooth.hpp"
#include "bench_common.hpp"
#include "core/punctual/protocol.hpp"
#include "core/uniform.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

struct Contender {
  std::string name;
  sim::ProtocolFactory factory;
};

std::vector<Contender> contenders() {
  core::Params uniform_params;
  uniform_params.uniform_attempts = 1;

  core::Params punctual_params;
  punctual_params.lambda = 4;
  punctual_params.tau = 8;
  punctual_params.min_class = 8;

  return {
      {"uniform", core::make_uniform_factory(uniform_params)},
      {"beb", baselines::make_beb_factory()},
      {"sawtooth", baselines::make_sawtooth_factory()},
      {"aloha (2/w)", baselines::make_aloha_window_factory(2.0)},
      {"punctual", core::punctual::make_punctual_factory(punctual_params)},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/10);

  // ---- (a) general slack-feasible instances -------------------------------
  const analysis::InstanceGen gen = [&](util::Rng& rng) {
    workload::GeneralConfig config;
    config.min_window = 1 << 10;
    config.max_window = 1 << 13;
    config.gamma = 1.0 / 32;
    config.horizon = 1 << 15;
    config.pow2_windows = true;
    return workload::gen_general(config, rng);
  };

  auto trace = bench::make_trace_session(common);
  util::Table table_a({"protocol", "delivered", "worst window-size",
                       "smallest-window delivery", "mean latency",
                       "mean tx/job (energy)"});
  for (const auto& contender : contenders()) {
    const auto report =
        analysis::run_replications(gen, contender.factory, common.reps,
                                   common.seed, nullptr, {}, trace.get(),
                                   common.threads);
    double worst = 1.0;
    double smallest_rate = 1.0;
    util::RunningStats latency;
    bool first_bucket = true;
    for (const auto& [w, bucket] : report.outcomes.by_window()) {
      worst = std::min(worst, bucket.deadline_met.rate());
      if (first_bucket) {
        smallest_rate = bucket.deadline_met.rate();
        first_bucket = false;
      }
      latency.merge(bucket.latency);
    }
    table_a.add_row({contender.name,
                     util::fmt(report.outcomes.overall().rate(), 4),
                     util::fmt(worst, 4), util::fmt(smallest_rate, 4),
                     util::fmt(latency.mean(), 0),
                     util::fmt(report.outcomes.accesses().mean(), 1)});
  }
  // EDF ceiling (centralized; delivers everything on feasible instances).
  {
    util::SuccessCounter edf_counter;
    const util::Rng master(common.seed);
    for (int rep = 0; rep < common.reps; ++rep) {
      util::Rng rng = master.child(0x5245504CULL + static_cast<unsigned>(rep));
      const auto instance = gen(rng);
      edf_counter.add_many(
          static_cast<std::uint64_t>(baselines::edf_successes(instance)),
          static_cast<std::uint64_t>(instance.size()));
    }
    table_a.add_row({"edf (centralized ceiling)",
                     util::fmt(edf_counter.rate(), 4), "-", "-", "-", "1.0"});
  }
  bench::emit(table_a,
              "E13a / §1 — protocol comparison on gamma=1/32 general "
              "instances (windows 2^10..2^13)",
              common, &trace);

  // ---- (b) the starvation instance ----------------------------------------
  const std::int64_t n = args.get_int("starvation-n", 1024);
  const double gamma = 0.25;
  const auto instance = workload::gen_starvation(n, gamma);
  const auto cohort = static_cast<std::int64_t>(std::sqrt(n));

  util::Table table_b(
      {"protocol", "first sqrt(n) jobs", "overall", "reps"});
  auto run_starvation = [&](const sim::ProtocolFactory& factory,
                            const std::string& name) {
    util::SuccessCounter first;
    util::SuccessCounter overall;
    const int reps = std::max(2, common.reps);
    for (int rep = 0; rep < reps; ++rep) {
      sim::SimConfig config;
      config.seed = common.seed * 7 + static_cast<std::uint64_t>(rep);
      config.tracer = trace.get();
      const auto result = sim::run(instance, factory, config);
      for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        overall.add(result.jobs[i].success);
        if (static_cast<std::int64_t>(i) < cohort) {
          first.add(result.jobs[i].success);
        }
      }
    }
    table_b.add_row({name, util::fmt(first.rate(), 4),
                     util::fmt(overall.rate(), 4), std::to_string(reps)});
  };
  for (const auto& contender : contenders()) {
    run_starvation(contender.factory, contender.name);
  }
  {
    const auto edf = baselines::edf_schedule(instance);
    std::int64_t first_ok = 0;
    std::int64_t all_ok = 0;
    for (std::size_t i = 0; i < edf.size(); ++i) {
      all_ok += edf[i].success ? 1 : 0;
      if (static_cast<std::int64_t>(i) < cohort) {
        first_ok += edf[i].success ? 1 : 0;
      }
    }
    table_b.add_row({"edf (centralized ceiling)",
                     util::fmt(static_cast<double>(first_ok) /
                                   static_cast<double>(cohort),
                               4),
                     util::fmt(static_cast<double>(all_ok) /
                                   static_cast<double>(n),
                               4),
                     "1"});
  }
  bench::emit(table_b,
              "E13b / Lemma 5 workload — who starves the urgent jobs "
              "(n=" + std::to_string(n) + ", w_j = 4j)",
              common, &trace);

  // ---- (c) periodic industrial traffic (the paper's motivation) -----------
  {
    const analysis::InstanceGen periodic_gen = [&](util::Rng& rng) {
      const auto flows = workload::gen_periodic_flows(
          24, /*min_period=*/1 << 10, /*max_period=*/1 << 13,
          /*gamma=*/1.0 / 32, /*fill=*/0.9, rng);
      return workload::gen_periodic(flows, 1 << 15);
    };
    util::Table table_c({"protocol", "delivered", "worst window-size",
                         "p99-style worst job latency/window"});
    for (const auto& contender : contenders()) {
      const auto report = analysis::run_replications(
          periodic_gen, contender.factory, common.reps, common.seed, nullptr,
          {}, trace.get(), common.threads);
      double worst = 1.0;
      double worst_latency_frac = 0.0;
      for (const auto& [w, bucket] : report.outcomes.by_window()) {
        worst = std::min(worst, bucket.deadline_met.rate());
        if (bucket.latency.count() > 0) {
          worst_latency_frac =
              std::max(worst_latency_frac,
                       bucket.latency.max() / static_cast<double>(w));
        }
      }
      table_c.add_row({contender.name,
                       util::fmt(report.outcomes.overall().rate(), 4),
                       util::fmt(worst, 4),
                       util::fmt(worst_latency_frac, 3)});
    }
    bench::emit(table_c,
                "E13c / §1 motivation — periodic WirelessHART-style flows "
                "(24 flows, periods 2^10..2^13, gamma=1/32)",
                common, &trace);
  }
  return 0;
}
