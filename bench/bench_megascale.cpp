// Mega-scale slot-engine harness: timeline slots/sec with the event-driven
// fast-forward engine, streaming arrivals, and multi-channel sharding
// (DESIGN.md §6j). Like bench_slot_engine this reproduces no paper claim —
// it is the perf gate for the mega-scale machinery, read against the
// committed bench/baselines/megascale.json and (blocking, same machine)
// against a bench_slot_engine run via
//   tools/check_perf.py mega.json --speedup-over slot.json \
//       --speedup-factor 10 --speedup-match sparse/ --speedup-match idle/
//
// The "slots" column counts *timeline* slots covered — slots_simulated
// (which includes fast-forwarded slots, accounted exactly as if stepped)
// plus slots_skipped (empty-live gaps with nothing to account) — so
// slots_per_sec is the rate at which a run advances simulated time. That is
// the figure 10^8-10^9-slot stability horizons care about, and the figure
// the >= 10x gate applies to. Sweep points:
//   sparse/uniform  — n jobs live across a 2^22-slot window; almost every
//                     slot is dormant, so throughput is the fast-forward
//                     skip rate, not the step rate.
//   idle/beb        — staggered releases 2048 slots apart with 256-slot
//                     windows; alternates live BEB backoff (dormant spans)
//                     with long empty-live gaps.
//   stream/poisson  — streaming Poisson arrivals over a long horizon with
//                     bounded memory (run_stream; jobs column = arrivals).
//   stream/mmpp     — bursty Markov-modulated arrivals, same horizon.
//   shard/uniform   — run_sharded across --channels=K FDMA shards (one
//                     thread per shard with --threads>=K); per-shard
//                     metrics land in the JSON meta "per_shard" array.
//
// --arrivals=SPEC adds a stream/custom row driven by that process;
// --fast-forward defaults to `on` here (pass off/validate to override).

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/beb.hpp"
#include "bench_common.hpp"
#include "core/params.hpp"
#include "core/uniform.hpp"
#include "sim/arrivals.hpp"
#include "sim/multichannel.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace crmd;

struct Point {
  std::string scenario;
  std::int64_t jobs = 0;
  int reps = 0;
  std::int64_t slots = 0;  // timeline slots covered (simulated + skipped)
  double wall_ms = 0.0;
  int shards = 1;
};

std::int64_t covered(const sim::SimMetrics& m) {
  return m.slots_simulated + m.slots_skipped;
}

double slots_per_sec(const Point& p) {
  return p.wall_ms > 0.0 ? static_cast<double>(p.slots) / (p.wall_ms / 1e3)
                         : 0.0;
}

/// Times `body(rep)` (which returns the run's SimMetrics) `reps` times.
template <typename Body>
Point measure(const std::string& scenario, std::int64_t jobs, int reps,
              const Body& body) {
  Point p;
  p.scenario = scenario;
  p.jobs = jobs;
  p.reps = reps;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const sim::SimMetrics metrics = body(static_cast<std::uint64_t>(rep));
    const auto stop = std::chrono::steady_clock::now();
    p.slots += covered(metrics);
    p.wall_ms +=
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  bench::CommonArgs common = bench::parse_common(args, /*reps=*/3);
  // This harness exists to exercise the fast-forward engine; default it on
  // (an explicit --fast-forward=off|validate still wins).
  if (!args.has("fast-forward")) {
    common.fast_forward = sim::FastForward::kOn;
  }
  // Shard fan-out for the shard/ scenario; --channels overrides.
  if (!args.has("channels")) {
    common.multichannel.channels = 4;
  }
  auto trace = bench::make_trace_session(common);

  const bool quick = common.quick;
  const Slot sparse_window = quick ? (Slot{1} << 18) : (Slot{1} << 22);
  const Slot stream_horizon = quick ? (Slot{1} << 18) : (Slot{1} << 24);
  const std::int64_t idle_jobs = quick ? 512 : 2048;
  const std::int64_t shard_jobs = quick ? 2048 : 8192;
  const Slot shard_window = quick ? (Slot{1} << 13) : (Slot{1} << 15);

  core::Params params;
  params.lambda = 2;
  const auto uniform = core::make_uniform_factory(params);
  const auto beb = baselines::make_beb_factory();

  std::vector<Point> points;

  // sparse/uniform: n jobs share one huge window; dormant almost always.
  std::vector<std::int64_t> sparse_jobs = {256, 1024};
  if (quick) {
    sparse_jobs = {256};
  }
  for (const std::int64_t n : sparse_jobs) {
    const bench::WorkloadSpec spec{.kind = bench::WorkloadSpec::Kind::kBatch,
                                   .jobs = n,
                                   .window = sparse_window};
    points.push_back(
        measure("sparse/uniform", n, common.reps, [&](std::uint64_t rep) {
          sim::SimConfig config;
          config.seed = common.seed + rep;
          config.fast_forward = common.fast_forward;
          config.tracer = trace.get();
          return sim::run(bench::make_workload(spec), uniform, config)
              .metrics;
        }));
  }

  // idle/beb: staggered releases, long empty-live gaps between windows.
  {
    const bench::WorkloadSpec spec{
        .kind = bench::WorkloadSpec::Kind::kStagger,
        .jobs = idle_jobs,
        .stride = 2048,
        .lifetime = 256};
    points.push_back(
        measure("idle/beb", idle_jobs, common.reps, [&](std::uint64_t rep) {
          sim::SimConfig config;
          config.seed = common.seed + rep;
          config.fast_forward = common.fast_forward;
          config.tracer = trace.get();
          return sim::run(bench::make_workload(spec), beb, config).metrics;
        }));
  }

  // stream/*: open-ended arrivals through run_stream — memory stays
  // bounded by the live set, so the horizon can grow without limit.
  const auto stream_point = [&](const std::string& scenario,
                                const sim::ArrivalSpec& spec) {
    std::int64_t jobs_seen = 0;
    Point p =
        measure(scenario, 0, common.reps, [&](std::uint64_t rep) {
          sim::SimConfig config;
          config.seed = common.seed + rep;
          config.horizon = stream_horizon;
          config.fast_forward = common.fast_forward;
          config.keep_job_results = false;
          config.tracer = trace.get();
          const sim::SimResult result =
              sim::run_stream(spec.make(), uniform, config);
          jobs_seen += result.stream.jobs;
          return result.metrics;
        });
    p.jobs = jobs_seen;
    return p;
  };
  {
    sim::ArrivalSpec poisson;
    poisson.kind = sim::ArrivalSpec::Kind::kPoisson;
    poisson.rate = 0.0005;
    poisson.window = 4096;
    points.push_back(stream_point("stream/poisson", poisson));

    sim::ArrivalSpec mmpp;
    mmpp.kind = sim::ArrivalSpec::Kind::kMmpp;
    mmpp.rate = 0.0002;
    mmpp.rate_hi = 0.01;
    mmpp.window = 4096;
    mmpp.dwell = 16384;
    points.push_back(stream_point("stream/mmpp", mmpp));

    if (common.arrivals) {
      points.push_back(stream_point("stream/custom", *common.arrivals));
    }
  }

  // shard/uniform: static FDMA sharding across K channels, one OS thread
  // per shard (clamped by --threads). Per-shard metrics go to JSON meta.
  std::vector<sim::SimMetrics> shard_metrics;
  {
    const int k = common.multichannel.channels;
    const bench::WorkloadSpec spec{.kind = bench::WorkloadSpec::Kind::kBatch,
                                   .jobs = shard_jobs,
                                   .window = shard_window};
    Point p = measure(
        "shard/uniform", shard_jobs, common.reps, [&](std::uint64_t rep) {
          sim::SimConfig config;
          config.seed = common.seed + rep;
          config.multichannel.channels = k;
          config.fast_forward = common.fast_forward;
          config.tracer = trace.get();
          const sim::ShardedResult sharded = sim::run_sharded(
              bench::make_workload(spec), uniform, config, common.threads);
          if (rep == 0) {
            shard_metrics = sharded.per_shard;
          }
          return sharded.total.metrics;
        });
    p.shards = k;
    points.push_back(p);
  }

  util::Table table({"scenario", "jobs", "reps", "slots", "wall_ms",
                     "slots_per_sec", "shards"});
  for (const Point& p : points) {
    table.add_row({p.scenario, std::to_string(p.jobs),
                   std::to_string(p.reps), std::to_string(p.slots),
                   util::fmt(p.wall_ms, 3),
                   util::fmt_sci(slots_per_sec(p), 4),
                   std::to_string(p.shards)});
  }

  // Flatten rep-0 per-shard metrics into the JSON meta so
  // tools/plot_results.py can plot shard balance.
  {
    std::ostringstream per_shard;
    per_shard << '[';
    for (std::size_t s = 0; s < shard_metrics.size(); ++s) {
      const sim::SimMetrics& m = shard_metrics[s];
      per_shard << (s == 0 ? "" : ", ") << "{\"shard\": " << s
                << ", \"slots\": " << covered(m)
                << ", \"slots_simulated\": " << m.slots_simulated
                << ", \"fast_forward_slots\": " << m.fast_forward_slots
                << ", \"live_peak\": " << m.live_peak
                << ", \"success_slots\": " << m.success_slots << '}';
    }
    per_shard << ']';
    table.set_meta("per_shard", per_shard.str());
  }

  bench::emit(table,
              "Mega-scale engine throughput (timeline slots/sec: "
              "fast-forward + streaming + sharding)",
              common, &trace);
  return 0;
}
