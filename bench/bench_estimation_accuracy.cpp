// E5 — Lemmas 8–10: the size-estimation protocol returns n_w with
// 2n̂ <= n_w <= τ²n̂ w.h.p. in the window size, even under reactive jamming
// with p_jam <= 1/2.
//
// Direct Monte-Carlo of the protocol (binomially sampled transmitter counts
// per probe slot) at the paper's constants (τ = 64), sweeping the true
// class size n̂ and the jamming rate.

#include <random>
#include <vector>

#include "bench_common.hpp"
#include "core/aligned/estimation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace crmd;

std::int64_t simulate_estimate(const core::Params& params, int level,
                               std::int64_t n_hat, double p_jam,
                               util::Rng& rng) {
  core::aligned::EstimationState est(params, level);
  while (!est.complete()) {
    const double p = est.tx_probability();
    std::binomial_distribution<std::int64_t> binom(n_hat, p);
    const std::int64_t tx = n_hat > 0 ? binom(rng.engine()) : 0;
    sim::SlotOutcome outcome = sim::SlotOutcome::kSilence;
    if (tx == 1) {
      outcome = sim::SlotOutcome::kSuccess;
    } else if (tx >= 2) {
      outcome = sim::SlotOutcome::kNoise;
    }
    if (outcome == sim::SlotOutcome::kSuccess && rng.bernoulli(p_jam)) {
      outcome = sim::SlotOutcome::kNoise;  // reactive jam
    }
    est.record(outcome);
  }
  return est.estimate();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/200);
  auto trace = bench::make_trace_session(common);

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", 4));
  params.tau = args.get_int("tau", 64);  // the paper's constant
  const int level = static_cast<int>(args.get_int("level", 16));

  const std::vector<std::int64_t> sizes{1, 4, 16, 64, 256, 1024, 4096};
  const std::vector<double> jams{0.0, 0.25, 0.5};

  util::Table table({"n_hat", "p_jam", "median n/n_hat", "min ratio",
                     "max ratio", "P[2n_hat <= n <= tau^2 n_hat]",
                     "P[underestimate]"});
  util::Rng master(common.seed);
  for (const double p_jam : jams) {
    for (const std::int64_t n_hat : sizes) {
      util::Rng rng = master.child(
          static_cast<std::uint64_t>(n_hat * 31 + p_jam * 1000));
      std::vector<double> ratios;
      util::SuccessCounter in_bracket;
      util::SuccessCounter underestimate;
      for (int rep = 0; rep < common.reps; ++rep) {
        const std::int64_t est =
            simulate_estimate(params, level, n_hat, p_jam, rng);
        ratios.push_back(static_cast<double>(est) /
                         static_cast<double>(n_hat));
        in_bracket.add(est >= 2 * n_hat &&
                       est <= params.tau * params.tau * n_hat);
        underestimate.add(est < 2 * n_hat);
      }
      table.add_row(
          {util::fmt_count(n_hat), util::fmt(p_jam, 2),
           util::fmt(util::percentile(ratios, 0.5), 1),
           util::fmt(util::percentile(ratios, 0.0), 1),
           util::fmt(util::percentile(ratios, 1.0), 1),
           util::fmt(in_bracket.rate(), 4),
           util::fmt(underestimate.rate(), 4)});
    }
  }
  bench::emit(table,
              "E5 / Lemmas 8-10 — size-estimate accuracy (class level " +
                  std::to_string(level) + ", lambda=" +
                  std::to_string(params.lambda) + ", tau=" +
                  std::to_string(params.tau) + ", reactive jamming)",
              common, &trace);
  return 0;
}
