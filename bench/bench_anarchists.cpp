// E11 — Lemmas 18–19 + Corollary 20: few jobs ever become anarchists (at
// most ~4w/log³w of each window size per window of time), the anarchy slots
// they use keep low contention, and anarchists still deliver w.h.p.
//
// The harness steps PUNCTUAL over general instances, tracks which jobs
// enter the release stage, and reports per-window-size anarchist counts
// against the paper's bound plus the anarchist/non-anarchist delivery
// split.

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "bench_common.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

struct Bucket {
  std::int64_t jobs = 0;
  std::int64_t anarchists = 0;
  util::SuccessCounter anarchist_delivery;
  util::SuccessCounter follower_delivery;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/5);
  auto trace = bench::make_trace_session(common);

  // Two configurations: the paper's claim rate (s=1: at laptop-scale
  // windows nobody elects, so *every* job releases the slingshot — the
  // documented constants gap) and a raised claim rate (s=512) where
  // elections succeed and Lemma 18's mechanism — leaders absorb would-be
  // anarchists into FOLLOW-THE-LEADER — becomes visible.
  for (const double scale : {1.0, 512.0}) {
  core::Params params;
  params.lambda = 4;
  params.tau = 8;
  params.min_class = 8;
  params.pullback_prob_scale = scale;
  const auto factory = core::punctual::make_punctual_factory(params);

  std::map<Slot, Bucket> buckets;

  for (int rep = 0; rep < common.reps; ++rep) {
    util::Rng rng(common.seed + static_cast<std::uint64_t>(rep));
    workload::GeneralConfig config;
    config.min_window = 1 << 11;
    config.max_window = 1 << 13;
    config.gamma = 1.0 / 32;
    config.horizon = 1 << 15;
    config.pow2_windows = true;  // clean window-size buckets
    const auto instance = workload::gen_general(config, rng);
    if (instance.empty()) {
      continue;
    }

    sim::SimConfig sc;
    sc.seed = common.seed * 17 + static_cast<std::uint64_t>(rep);
    sc.tracer = trace.get();
    sim::Simulation sim(instance, factory, sc);
    std::set<JobId> anarchists;
    while (!sim.finished()) {
      for (const JobId id : sim.live_jobs()) {
        auto* proto = dynamic_cast<core::punctual::PunctualProtocol*>(
            sim.protocol(id));
        if (proto != nullptr && proto->was_anarchist()) {
          anarchists.insert(id);
        }
      }
      if (!sim.step()) {
        break;
      }
    }
    const auto result = sim.finish();
    for (const auto& job : result.jobs) {
      Bucket& bucket = buckets[job.window()];
      ++bucket.jobs;
      if (anarchists.count(job.id) > 0) {
        ++bucket.anarchists;
        bucket.anarchist_delivery.add(job.success);
      } else {
        bucket.follower_delivery.add(job.success);
      }
    }
  }

  util::Table table({"window", "jobs", "anarchists", "bound 4w/log^3 w",
                     "anarchist delivery", "non-anarchist delivery"});
  for (const auto& [w, bucket] : buckets) {
    const double lg = util::log2_at_least(static_cast<double>(w), 1.0);
    const double bound = 4.0 * static_cast<double>(w) / std::pow(lg, 3.0);
    table.add_row(
        {util::fmt_count(w), util::fmt_count(bucket.jobs),
         util::fmt_count(bucket.anarchists), util::fmt(bound, 1),
         bucket.anarchist_delivery.trials() > 0
             ? util::fmt(bucket.anarchist_delivery.rate(), 3)
             : "-",
         bucket.follower_delivery.trials() > 0
             ? util::fmt(bucket.follower_delivery.rate(), 3)
             : "-"});
  }
  bench::emit(table,
              "E11 / Lemmas 18-19 + Cor. 20 — anarchists per window size "
              "(PUNCTUAL on general pow2 instances, gamma=1/32, lambda=4, "
              "claim scale s=" +
                  util::fmt(scale, 0) + ")",
              common, &trace);
  }

  // Focused follow-path demonstration: at the window sizes above, a
  // follower's trimmed core (window/11 rounds, then /4 for trimming) is too
  // small for ALIGNED's λℓ² overhead — the third constants gap this bench
  // documents. With a long-lived leader and followers whose cores are big
  // enough (w >= 2^14 at λ=1), FOLLOW-THE-LEADER delivers.
  {
    core::Params p;
    p.lambda = 1;
    p.tau = 4;
    p.min_class = 9;
    p.pullback_prob_log_exp = 0.0;
    p.pullback_prob_scale = 256.0;
    const auto factory = core::punctual::make_punctual_factory(p);

    util::Table table({"followers", "follower window", "delivered",
                       "leader delivered"});
    for (const std::int64_t followers : {4LL, 12LL, 24LL}) {
      util::SuccessCounter follower_ok;
      util::SuccessCounter leader_ok;
      for (int rep = 0; rep < common.reps; ++rep) {
        workload::Instance instance = workload::gen_batch(1, 1 << 15, 0);
        instance = workload::merge(
            instance, workload::gen_batch(followers, 1 << 14, 1024));
        sim::SimConfig sc;
        sc.seed = common.seed * 97 + static_cast<std::uint64_t>(rep);
        sc.tracer = trace.get();
        const auto result = sim::run(instance, factory, sc);
        for (const auto& job : result.jobs) {
          if (job.window() == (1 << 14)) {
            follower_ok.add(job.success);
          } else {
            leader_ok.add(job.success);
          }
        }
      }
      table.add_row({util::fmt_count(followers), util::fmt_count(1 << 14),
                     util::fmt(follower_ok.rate(), 3),
                     util::fmt(leader_ok.rate(), 3)});
    }
    bench::emit(table,
                "E11.3 — FOLLOW-THE-LEADER at viable scale (leader window "
                "2^15, lambda=1, tau=4, claim scale 256): followers run "
                "ALIGNED inside the aligned slots and deliver",
                common, &trace);
  }
  return 0;
}
