// E16 — batch makespan. The paper positions itself against the makespan
// literature: monotone backoff (BEB) drains a batch of n in Θ(n log n),
// sawtooth is asymptotically optimal Θ(n), and ALIGNED's broadcast stage is
// engineered to drain in O(n + polylog) *active* steps once the estimate is
// in hand. This harness measures the slots needed to drain batches of
// growing size under each protocol (windows made generous so nothing
// truncates; ALOHA included as the memoryless floor).

#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/10);
  auto trace = bench::make_trace_session(common);

  std::vector<std::int64_t> sizes{8, 16, 32, 64, 128};
  if (common.quick) {
    sizes = {8, 32, 128};
  }

  util::Table table({"protocol", "n", "mean makespan", "makespan / n",
                     "delivered"});
  for (const std::string& name : {"aligned", "sawtooth", "beb", "aloha"}) {
    for (const std::int64_t n : sizes) {
      // A window comfortably larger than any contender's makespan.
      const int level = util::ceil_log2(n) + 7;
      core::Params params;
      params.lambda = 2;
      params.tau = 8;
      params.min_class = level;
      const auto factory = core::make_protocol(name, params);
      util::RunningStats makespan;
      util::SuccessCounter delivered;
      for (int rep = 0; rep < common.reps; ++rep) {
        sim::SimConfig config;
        config.seed = common.seed * 17 + static_cast<std::uint64_t>(rep);
        config.tracer = trace.get();
        const auto result = sim::run(
            workload::gen_batch(n, util::pow2(level), 0), *factory, config);
        Slot last = 0;
        for (const auto& job : result.jobs) {
          delivered.add(job.success);
          if (job.success) {
            last = std::max(last, job.success_slot + 1);
          }
        }
        makespan.add(static_cast<double>(last));
      }
      table.add_row({name, util::fmt_count(n),
                     util::fmt(makespan.mean(), 0),
                     util::fmt(makespan.mean() / static_cast<double>(n), 1),
                     util::fmt(delivered.rate(), 3)});
    }
  }
  bench::emit(table,
              "E16 — batch makespan vs n (window 128n; makespan/n flat = "
              "linear drain, growing = superlinear)",
              common, &trace);
  return 0;
}
