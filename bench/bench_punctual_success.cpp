// E12 — the paper's headline guarantee, end-to-end: on γ-slack feasible
// *general* instances (arbitrary arrivals, no global clock), every PUNCTUAL
// job delivers w.h.p. in its window size — so the per-window-size failure
// rate must fall as windows grow and as γ shrinks.

#include <vector>

#include "analysis/runner.hpp"
#include "bench_common.hpp"
#include "core/punctual/protocol.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/12);

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", 4));
  params.tau = 8;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  const std::vector<double> gammas{1.0 / 16, 1.0 / 32, 1.0 / 64};

  auto trace = bench::make_trace_session(common);
  util::Table table({"gamma", "window", "trials", "failure rate",
                     "95% CI hi", "mean latency/window"});
  for (const double gamma : gammas) {
    analysis::InstanceGen gen = [&](util::Rng& rng) {
      workload::GeneralConfig config;
      config.min_window = 1 << 10;
      config.max_window = 1 << 14;
      config.gamma = gamma;
      config.horizon = 1 << 16;
      config.pow2_windows = true;  // clean buckets
      return workload::gen_general(config, rng);
    };
    const auto report = analysis::run_replications(
        gen, factory, common.reps, common.seed, nullptr, {}, trace.get(),
        common.threads);
    for (const auto& [w, bucket] : report.outcomes.by_window()) {
      const auto [lo, hi] = bucket.deadline_met.wilson95();
      (void)hi;
      table.add_row(
          {"1/" + std::to_string(static_cast<int>(1.0 / gamma)),
           util::fmt_count(w),
           util::fmt_count(
               static_cast<std::int64_t>(bucket.deadline_met.trials())),
           util::fmt(bucket.deadline_met.failure_rate(), 4),
           util::fmt(1.0 - lo, 4),
           bucket.latency.count() > 0
               ? util::fmt(bucket.latency.mean() / static_cast<double>(w), 3)
               : "-"});
    }
  }
  bench::emit(table,
              "E12 / §4 end-to-end — PUNCTUAL per-window-size failure on "
              "general clockless instances (lambda=" +
                  std::to_string(params.lambda) + ")",
              common, &trace);
  trace.finish();
  return 0;
}
