// E3 — Lemma 4: on constant-γ-slack-feasible instances (γ < 1/6), UNIFORM
// delivers a constant fraction of all messages w.h.p. — both for
// power-of-2-aligned windows and for arbitrary windows.
//
// The harness sweeps γ over aligned and general generator instances,
// reporting the delivered fraction (EDF, the centralized optimum, delivers
// 1.0 on every feasible instance by construction).

#include <vector>

#include "analysis/runner.hpp"
#include "baselines/edf.hpp"
#include "bench_common.hpp"
#include "core/uniform.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace crmd;
  const util::Args args(argc, argv);
  const auto common = bench::parse_common(args, /*default_reps=*/10);

  core::Params params;
  params.uniform_attempts =
      static_cast<int>(args.get_int("attempts", 1));
  const auto factory = core::make_uniform_factory(params);

  const std::vector<double> gammas{1.0 / 8, 1.0 / 12, 1.0 / 24};

  auto trace = bench::make_trace_session(common);
  util::Table table({"windows", "gamma", "jobs/rep", "delivered fraction",
                     "95% CI", "mean contention", "edf fraction"});
  for (const bool aligned : {true, false}) {
    for (const double gamma : gammas) {
      analysis::InstanceGen gen = [&](util::Rng& rng) {
        if (aligned) {
          workload::AlignedConfig config;
          config.min_class = 8;
          config.max_class = 11;
          config.gamma = gamma;
          config.horizon = 1 << 13;
          return workload::gen_aligned(config, rng);
        }
        workload::GeneralConfig config;
        config.min_window = 1 << 8;
        config.max_window = 1 << 11;
        config.gamma = gamma;
        config.horizon = 1 << 13;
        return workload::gen_general(config, rng);
      };
      const auto report = analysis::run_replications(
          gen, factory, common.reps, common.seed, nullptr, {}, trace.get(),
          common.threads);
      const auto [lo, hi] = report.outcomes.overall().wilson95();

      // EDF reference on one sample instance (always 1.0 when feasible).
      util::Rng rng(common.seed);
      const auto sample = gen(rng);
      const double edf_frac =
          sample.empty()
              ? 1.0
              : static_cast<double>(baselines::edf_successes(sample)) /
                    static_cast<double>(sample.size());

      table.add_row({aligned ? "aligned" : "general",
                     "1/" + std::to_string(static_cast<int>(1.0 / gamma)),
                     util::fmt(report.jobs_per_rep.mean(), 1),
                     util::fmt(report.outcomes.overall().rate(), 4),
                     "[" + util::fmt(lo, 3) + ", " + util::fmt(hi, 3) + "]",
                     util::fmt(report.channel.contention.mean(), 3),
                     util::fmt(edf_frac, 3)});
    }
  }
  bench::emit(table,
              "E3 / Lemma 4 — UNIFORM delivers a constant fraction on "
              "slack-feasible instances (attempts=" +
                  std::to_string(params.uniform_attempts) + ")",
              common, &trace);
  return 0;
}
