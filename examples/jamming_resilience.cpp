// Jamming resilience (§3, "Jamming"): ALIGNED keeps delivering when an
// adversary turns slots into noise with probability p_jam <= 1/2 — even an
// adversary that reads message contents and targets specific protocol
// stages.
//
// The example sweeps three adversaries across jamming strengths on one
// sensor batch and prints the delivery matrix (the analyzed regime is the
// left half; the right half shows where the guarantee erodes).

#include <iostream>
#include <vector>

#include "core/aligned/protocol.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace crmd;

  const int level = 13;
  const std::int64_t batch = 56;

  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = level;
  const auto factory = core::aligned::make_aligned_factory(params);

  const std::vector<double> strengths{0.0, 0.25, 0.5, 0.75};
  util::Table table({"adversary", "p=0.00", "p=0.25", "p=0.50", "p=0.75"});

  struct Adversary {
    const char* name;
    std::unique_ptr<sim::Jammer> (*make)(double);
  };
  const Adversary adversaries[] = {
      {"reactive (jams successes)",
       +[](double p) { return sim::make_reactive_jammer(p); }},
      {"estimation-targeted",
       +[](double p) { return sim::make_control_jammer(p); }},
      {"data-targeted",
       +[](double p) { return sim::make_data_jammer(p); }},
  };

  for (const auto& adv : adversaries) {
    std::vector<std::string> row{adv.name};
    for (const double p_jam : strengths) {
      std::int64_t ok = 0;
      std::int64_t total = 0;
      for (int rep = 0; rep < 10; ++rep) {
        sim::SimConfig config;
        config.seed = 100 + static_cast<std::uint64_t>(rep);
        const auto result =
            sim::run(workload::gen_batch(batch, Slot{1} << level, 0),
                     factory, config, adv.make(p_jam));
        ok += result.successes();
        total += static_cast<std::int64_t>(result.jobs.size());
      }
      row.push_back(util::fmt(
          static_cast<double>(ok) / static_cast<double>(total), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "delivery rate: batch of 56, window 2^13");
  std::cout << "\nThe paper analyzes p_jam <= 1/2 (Lemma 8/13); delivery "
               "holds across the\nanalyzed regime for all three adversaries "
               "and only erodes beyond it.\n";
  return 0;
}
