// Industrial real-time traffic: the workload class the paper's introduction
// motivates (WirelessHART / RT-Link style periodic sensor flows, §1).
//
// A plant runs 16 periodic sensor flows (every reading must reach the
// controller before the next one is taken). Occasionally an alarm burst of
// urgent messages with tight deadlines arrives. The example compares
// PUNCTUAL (deadline-aware) against classic binary exponential backoff on
// the same traffic and prints per-category deadline compliance.

#include <iostream>

#include "baselines/beb.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

struct Outcome {
  std::int64_t periodic_ok = 0;
  std::int64_t periodic_total = 0;
  std::int64_t alarm_ok = 0;
  std::int64_t alarm_total = 0;
};

Outcome evaluate(const workload::Instance& instance,
                 const sim::ProtocolFactory& factory, Slot alarm_window,
                 std::uint64_t seed) {
  sim::SimConfig config;
  config.seed = seed;
  const auto result = sim::run(instance, factory, config);
  Outcome out;
  for (const auto& job : result.jobs) {
    if (job.window() == alarm_window) {
      ++out.alarm_total;
      out.alarm_ok += job.success ? 1 : 0;
    } else {
      ++out.periodic_total;
      out.periodic_ok += job.success ? 1 : 0;
    }
  }
  return out;
}

}  // namespace

int main() {
  const Slot horizon = 1 << 16;
  const Slot alarm_window = 1 << 10;

  // Periodic flows: power-of-two periods, implicit deadlines, thinned to a
  // comfortable density (gamma = 1/32 slack guarantee).
  util::Rng rng(2026);
  const auto flows = workload::gen_periodic_flows(
      /*count=*/16, /*min_period=*/1 << 11, /*max_period=*/1 << 14,
      /*gamma=*/1.0 / 32, /*fill=*/0.8, rng);
  workload::Instance traffic = workload::gen_periodic(flows, horizon);

  // Alarm bursts: 6 urgent messages, three times, each with a tight
  // 1024-slot delivery window.
  for (const Slot burst_at : {Slot{9000}, Slot{30000}, Slot{51000}}) {
    traffic = workload::merge(
        traffic, workload::gen_batch(6, alarm_window, burst_at));
  }

  std::cout << "industrial traffic: " << flows.size() << " periodic flows + "
            << "3 alarm bursts = " << traffic.size() << " messages over "
            << horizon << " slots\n";
  std::cout << "gamma-slack: feasible up to "
            << workload::max_inflation(traffic) << "-slot messages\n\n";

  core::Params params;
  params.lambda = 4;
  const auto punctual = core::punctual::make_punctual_factory(params);
  const auto beb = baselines::make_beb_factory();

  util::Table table({"protocol", "periodic delivered", "alarms delivered"});
  const Outcome p = evaluate(traffic, punctual, alarm_window, 7);
  const Outcome b = evaluate(traffic, beb, alarm_window, 7);
  auto frac = [](std::int64_t ok, std::int64_t total) {
    return util::fmt(
               total == 0 ? 1.0
                          : static_cast<double>(ok) /
                                static_cast<double>(total),
               3) +
           " (" + std::to_string(ok) + "/" + std::to_string(total) + ")";
  };
  table.add_row({"punctual", frac(p.periodic_ok, p.periodic_total),
                 frac(p.alarm_ok, p.alarm_total)});
  table.add_row({"beb", frac(b.periodic_ok, b.periodic_total),
                 frac(b.alarm_ok, b.alarm_total)});
  table.print(std::cout, "deadline compliance");
  std::cout << "\nBEB drains queues fast under light load but has no notion "
               "of deadlines;\nPUNCTUAL spends channel time on coordination "
               "but its behaviour is governed\nby the windows themselves "
               "(see bench_protocol_comparison for the full sweep).\n";
  return 0;
}
