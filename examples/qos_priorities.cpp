// Deadlines as priorities (§1: "deadlines capture a notion of priority and,
// in turn, address starvation and fairness").
//
// Three QoS tiers share one channel, encoded purely as window sizes:
//   voice  — 1024-slot windows (tight latency budget),
//   video  — 4096-slot windows,
//   bulk   — 16384-slot windows (elastic).
// ALIGNED's pecking order automatically prioritizes the tighter tiers: the
// example prints per-tier delivery and latency, showing voice finishing
// first without any explicit priority field.

#include <iostream>
#include <map>

#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace crmd;

  const int voice_class = 10;  // 2^10 slots
  const int video_class = 12;
  const int bulk_class = 14;

  // One bulk window's worth of traffic: bulk transfers at t=0, video
  // sessions in each 4096-window, voice calls in each 1024-window.
  workload::Instance traffic = workload::gen_batch(12, 1 << bulk_class, 0);
  for (int i = 0; i < 4; ++i) {
    traffic = workload::merge(
        traffic,
        workload::gen_batch(6, 1 << video_class, i * (1 << video_class)));
  }
  for (int i = 0; i < 16; ++i) {
    traffic = workload::merge(
        traffic,
        workload::gen_batch(2, 1 << voice_class, i * (1 << voice_class)));
  }

  core::Params params;
  params.lambda = 1;
  params.tau = 4;
  params.min_class = voice_class;
  const auto factory = core::aligned::make_aligned_factory(params);

  sim::SimConfig config;
  config.seed = 11;
  const auto result = sim::run(traffic, factory, config);

  std::map<Slot, std::pair<util::SuccessCounter, util::RunningStats>> tiers;
  for (const auto& job : result.jobs) {
    auto& [delivered, latency] = tiers[job.window()];
    delivered.add(job.success);
    if (job.success) {
      latency.add(static_cast<double>(job.latency()));
    }
  }

  util::Table table({"tier", "window", "delivered", "mean latency",
                     "max latency", "latency/window"});
  const auto tier_name = [&](Slot w) {
    return w == (1 << voice_class)   ? "voice"
           : w == (1 << video_class) ? "video"
                                     : "bulk";
  };
  for (const auto& [w, stats] : tiers) {
    const auto& [delivered, latency] = stats;
    table.add_row({tier_name(w), util::fmt_count(w),
                   util::fmt(delivered.rate(), 3),
                   util::fmt(latency.mean(), 0),
                   util::fmt(latency.max(), 0),
                   util::fmt(latency.mean() / static_cast<double>(w), 3)});
  }
  table.print(std::cout, "QoS tiers under ALIGNED's pecking order");
  std::cout << "\nSmaller windows preempt larger ones (critical times, §3): "
               "voice completes\nwithin a fraction of its budget while bulk "
               "absorbs the remaining slots.\n";
  return 0;
}
