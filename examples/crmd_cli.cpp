// crmd_cli — generic simulation driver: pick a protocol, a workload, and
// the constants from the command line; get a per-window-size outcome table.
//
//   ./examples/crmd_cli --protocol=punctual --workload=general \
//       --gamma=0.03125 --reps=5 --seed=7
//   ./examples/crmd_cli --protocol=aligned --workload=aligned --lambda=2
//   ./examples/crmd_cli --protocol=beb --workload=starvation --n=512
//
// Workloads: aligned | general | batch | starvation | periodic.
// Protocols: see --list.

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "analysis/runner.hpp"
#include "core/registry.hpp"
#include "sim/arrivals.hpp"
#include "sim/multichannel.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

int usage() {
  std::cout
      << "usage: crmd_cli --protocol=NAME --workload=KIND [options]\n"
         "  --list                 list protocols and exit\n"
         "  --workload=aligned|general|batch|starvation|periodic\n"
         "  --gamma=G              slack parameter (default 1/32)\n"
         "  --fill=F               fraction of feasibility ceiling (default 0.5)\n"
         "  --n=N                  jobs for batch/starvation (default 16/256)\n"
         "  --window=W             batch window (default 8192)\n"
         "  --horizon=H            generator horizon (default 65536)\n"
         "  --lambda=L --tau=T --min-class=C   protocol constants\n"
         "  --energy-spread-frac=F ENERGY_BEB first-spread fraction of the\n"
         "                         laxity, the E24 Pareto knob (default "
         "0.5;\n"
         "                         >1 duty-cycles, shedding some attempts)\n"
         "  --energy-carrier-sense=0|1  ENERGY_BEB one-slot carrier sample\n"
         "                         after each failure (default 0)\n"
         "  --claim-scale=S        PUNCTUAL leader-claim probability scale\n"
         "                         (paper: 1; raise to elect at small "
         "windows)\n"
         "  --reps=R --seed=S      replication controls\n"
         "  --feedback=MODEL       channel feedback semantics: ternary |\n"
         "                         binary_ack | collision_as_silence |\n"
         "                         noisy[:eps] | capture[:alpha] (default "
         "ternary)\n"
         "  --collision-cost=C     a perceived collision freezes the "
         "channel for\n"
         "                         C-1 extra slots (default 1 = the paper's "
         "channel)\n"
         "  --fast-forward=MODE    event-driven idle-span skipping: off | "
         "on |\n"
         "                         validate (default off = bit-identical "
         "engine)\n"
         "  --channels=K[:migrate[:N]]\n"
         "                         FDMA co-simulation over K sub-channels "
         "(default 1);\n"
         "                         :migrate rehashes a job after N "
         "collisions\n"
         "  --arrivals=SPEC        replace --workload with a streaming "
         "arrival\n"
         "                         process materialized to --horizon: "
         "poisson:RATE[:W]\n"
         "                         | mmpp:RLO:RHI[:W[:DWELL]] | trace:PATH\n"
         "  --threads=N            replication workers (0 = one per "
         "hardware thread,\n"
         "                         1 = serial; results are bit-identical "
         "either way)\n"
         "  --trace=PATH           save a per-slot CSV of one run\n"
         "  --jobs-csv=PATH        save per-job outcomes of one run\n"
         "  --faults-csv=PATH      save injected fault events of one run\n"
         "  --fault-corrupt=R --fault-loss=R --fault-crash=R\n"
         "                         per-job per-slot fault rates (default 0)\n"
         "  --trace-events=PATH    save a Chrome trace (chrome://tracing) "
         "of one run\n"
         "  --trace-jsonl=PATH     save the raw event stream (JSONL) of "
         "one run\n"
         "  --watchdog             check protocol invariants on the event "
         "stream\n"
         "  --watchdog-strict      like --watchdog, but exit 1 on any "
         "violation\n"
         "  --watchdog-cap=C       opt-in: flag slots with contention > C\n"
         "  --watchdog-settle=N    skip the first N slots of contention "
         "checks\n"
         "  --timeline=PATH        save slot-bucketed telemetry (JSON) of "
         "the\n"
         "                         replicated sweep (bit-identical for "
         "every --threads)\n"
         "  --metrics=PATH         save a metrics-registry snapshot "
         "(JSON)\n";
  return 2;
}

/// Warns when a tracer lost events (sinks detached mid-run / emit after
/// close); exported artifacts would silently be partial otherwise.
void warn_if_dropped(const obs::Tracer& tracer) {
  if (tracer.dropped() > 0) {
    std::cerr << "warning: trace dropped " << tracer.dropped()
              << " event(s); exported traces are incomplete\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("list")) {
    for (const auto& info : core::protocol_catalog()) {
      std::cout << info.name << " — " << info.description;
      if (info.needs_collision_detection) {
        std::cout << (info.adapts_to_degraded_channel
                          ? " [needs CD; blind fallback without it]"
                          : " [needs CD]");
      } else if (info.no_cd_native) {
        std::cout << " [no-CD native]";
      }
      if (info.estimates_from_collisions) {
        std::cout << " [estimator assumes lossless collisions]";
      }
      std::cout << "\n";
    }
    return 0;
  }
  const std::string protocol = args.get("protocol", "");
  const std::string workload = args.get("workload", "");
  if (protocol.empty() || (workload.empty() && !args.has("arrivals"))) {
    return usage();
  }

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", params.lambda));
  params.tau = args.get_int("tau", params.tau);
  params.min_class =
      static_cast<int>(args.get_int("min-class", params.min_class));
  params.pullback_prob_scale =
      args.get_double("claim-scale", params.pullback_prob_scale);
  params.energy_spread_frac =
      args.get_double("energy-spread-frac", params.energy_spread_frac);
  params.energy_listen_after_failure =
      args.get_int("energy-carrier-sense",
                   params.energy_listen_after_failure ? 1 : 0) != 0;
  const auto factory = core::make_protocol(protocol, params);
  if (!factory) {
    std::cerr << "unknown protocol '" << protocol << "' (try --list)\n";
    return 2;
  }

  const double gamma = args.get_double("gamma", 1.0 / 32);
  const double fill = args.get_double("fill", 0.5);
  const Slot horizon = args.get_int("horizon", 1 << 16);
  const std::int64_t n = args.get_int("n", 0);
  const Slot window = args.get_int("window", 1 << 13);

  const auto fast_forward = sim::parse_fast_forward_spec(
      args.get("fast-forward", "off"), std::cerr);
  if (!fast_forward) {
    return 2;
  }
  const auto channels =
      sim::parse_channels_spec(args.get("channels", "1"), std::cerr);
  if (!channels) {
    return 2;
  }
  std::optional<sim::ArrivalSpec> arrivals;
  if (args.has("arrivals")) {
    arrivals = sim::parse_arrivals_spec(args.get("arrivals", ""), std::cerr);
    if (!arrivals) {
      return 2;
    }
  }

  analysis::InstanceGen gen;
  if (arrivals) {
    // A streaming arrival process replaces --workload: each replication
    // materializes the process (releases < --horizon) from its own
    // generation stream, so --arrivals composes with --reps like any
    // generator.
    const sim::ArrivalSpec arrival_spec = *arrivals;
    gen = [arrival_spec, horizon](util::Rng& rng) {
      const auto process = arrival_spec.make();
      return sim::materialize_arrivals(*process, horizon, rng);
    };
  } else if (workload == "aligned") {
    gen = [=](util::Rng& rng) {
      workload::AlignedConfig config;
      config.min_class = params.min_class;
      config.max_class = params.min_class + 4;
      config.gamma = gamma;
      config.fill = fill;
      config.horizon = horizon;
      return workload::gen_aligned(config, rng);
    };
  } else if (workload == "general") {
    gen = [=](util::Rng& rng) {
      workload::GeneralConfig config;
      config.min_window = Slot{1} << params.min_class;
      config.max_window = Slot{1} << (params.min_class + 4);
      config.gamma = gamma;
      config.fill = fill;
      config.horizon = horizon;
      return workload::gen_general(config, rng);
    };
  } else if (workload == "batch") {
    gen = [=](util::Rng&) {
      return workload::gen_batch(n > 0 ? n : 16, window, 0);
    };
  } else if (workload == "starvation") {
    gen = [=](util::Rng&) {
      return workload::gen_starvation(n > 0 ? n : 256, gamma);
    };
  } else if (workload == "periodic") {
    gen = [=](util::Rng& rng) {
      const auto flows = workload::gen_periodic_flows(
          16, window / 4, window * 4, gamma, fill, rng);
      return workload::gen_periodic(flows, horizon);
    };
  } else {
    return usage();
  }

  const int reps = static_cast<int>(args.get_int("reps", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const std::string feedback_spec = args.get("feedback", "ternary");
  const auto feedback = sim::parse_feedback_spec(feedback_spec, std::cerr);
  if (!feedback) {
    return 2;
  }
  const auto collision_cost =
      sim::parse_collision_cost(args.get("collision-cost", "1"), std::cerr);
  if (!collision_cost) {
    return 2;
  }

  // Optional single-run trace exports (separate from the replicated sweep).
  const std::string trace_path = args.get("trace", "");
  const std::string jobs_path = args.get("jobs-csv", "");
  const std::string faults_path = args.get("faults-csv", "");
  const std::string events_path = args.get("trace-events", "");
  const std::string jsonl_path = args.get("trace-jsonl", "");
  const std::string timeline_path = args.get("timeline", "");
  const std::string metrics_path = args.get("metrics", "");
  const bool watchdog_strict = args.has("watchdog-strict");
  const bool watchdog_on = args.has("watchdog") || watchdog_strict;
  obs::WatchdogConfig wd_config;
  wd_config.contention_cap = args.get_double("watchdog-cap", 0.0);
  wd_config.settle_slots = args.get_int("watchdog-settle", 0);
  std::int64_t watchdog_violations = 0;
  if (!trace_path.empty() || !jobs_path.empty() || !faults_path.empty() ||
      !events_path.empty() || !jsonl_path.empty() || watchdog_on) {
    util::Rng rng(seed);
    sim::SimConfig config;
    config.seed = seed;
    config.feedback = *feedback;
    config.collision_cost = *collision_cost;
    config.fast_forward = *fast_forward;
    config.multichannel = *channels;
    config.record_slots = !trace_path.empty() || !faults_path.empty();
    config.faults.feedback_corrupt_rate = args.get_double("fault-corrupt", 0);
    config.faults.feedback_loss_rate = args.get_double("fault-loss", 0);
    config.faults.crash_rate = args.get_double("fault-crash", 0);
    std::unique_ptr<obs::Tracer> tracer;
    std::shared_ptr<obs::Watchdog> watchdog;
    if (!events_path.empty() || !jsonl_path.empty() || watchdog_on) {
      tracer = std::make_unique<obs::Tracer>();
      if (!events_path.empty()) {
        tracer->add_sink(std::make_shared<obs::ChromeTraceSink>(events_path));
      }
      if (!jsonl_path.empty()) {
        tracer->add_sink(std::make_shared<obs::JsonlFileSink>(jsonl_path));
      }
      if (watchdog_on) {
        watchdog = std::make_shared<obs::Watchdog>(wd_config);
        tracer->add_sink(watchdog);
      }
      config.tracer = tracer.get();
    }
    const auto result = sim::run(gen(rng), *factory, config);
    if (tracer) {
      tracer->close();
      warn_if_dropped(*tracer);
      obs::global_registry()
          .counter("trace.dropped_events")
          .inc(static_cast<std::int64_t>(tracer->dropped()));
    }
    if (!trace_path.empty() &&
        sim::save_slot_trace_csv(trace_path, result.slots)) {
      std::cout << "(slot trace written to " << trace_path << ")\n";
    }
    if (!jobs_path.empty() &&
        sim::save_job_results_csv(jobs_path, result.jobs)) {
      std::cout << "(job outcomes written to " << jobs_path << ")\n";
    }
    if (!faults_path.empty() &&
        sim::save_fault_events_csv(faults_path, result.fault_events)) {
      std::cout << "(fault events written to " << faults_path << ")\n";
    }
    if (!events_path.empty()) {
      std::cout << "(chrome trace written to " << events_path << ")\n";
    }
    if (!jsonl_path.empty()) {
      std::cout << "(event jsonl written to " << jsonl_path << ")\n";
    }
    if (watchdog) {
      watchdog_violations = watchdog->violation_count();
      obs::global_registry()
          .counter("watchdog.violations")
          .inc(watchdog_violations);
      if (watchdog->ok()) {
        std::cout << "(watchdog: 0 violations)\n";
      } else {
        std::cout << "(watchdog: " << watchdog->violation_count()
                  << " violations)\n";
        std::cout << watchdog->report();
      }
    }
  }

  // The replicated sweep. A --timeline tracer rides the sweep itself (the
  // runner replays parallel replications in replication order, so the
  // aggregate is bit-identical for every --threads value).
  std::unique_ptr<obs::Tracer> sweep_tracer;
  std::shared_ptr<obs::Timeline> timeline;
  if (!timeline_path.empty()) {
    sweep_tracer = std::make_unique<obs::Tracer>();
    timeline = std::make_shared<obs::Timeline>();
    sweep_tracer->add_sink(timeline);
  }
  analysis::RunOptions options;
  options.feedback = *feedback;
  options.collision_cost = *collision_cost;
  options.fast_forward = *fast_forward;
  options.multichannel = *channels;
  options.threads = threads;
  options.tracer = sweep_tracer.get();
  const auto report =
      analysis::run_replications(gen, *factory, reps, seed, options);
  if (sweep_tracer) {
    sweep_tracer->close();
    warn_if_dropped(*sweep_tracer);
    obs::Registry& reg = obs::global_registry();
    reg.counter("trace.emitted")
        .inc(static_cast<std::int64_t>(sweep_tracer->emitted()));
    reg.counter("trace.dropped_events")
        .inc(static_cast<std::int64_t>(sweep_tracer->dropped()));
    if (timeline->save_json(timeline_path)) {
      std::cout << "(timeline written to " << timeline_path << ")\n";
    } else {
      std::cout << "(FAILED to write timeline to " << timeline_path << ")\n";
    }
  }

  util::Table table({"window", "jobs", "delivered", "mean latency",
                     "mean tx/job", "mean awake/job"});
  for (const auto& [w, bucket] : report.outcomes.by_window()) {
    table.add_row(
        {util::fmt_count(w),
         util::fmt_count(
             static_cast<std::int64_t>(bucket.deadline_met.trials())),
         util::fmt(bucket.deadline_met.rate(), 4),
         bucket.latency.count() > 0 ? util::fmt(bucket.latency.mean(), 0)
                                    : "-",
         util::fmt(bucket.accesses.mean(), 1),
         util::fmt(bucket.awake.mean(), 1)});
  }
  table.print(std::cout,
              protocol + " on " + workload + " (gamma=" + util::fmt(gamma, 4) +
                  ", reps=" + std::to_string(reps) + ")");
  std::cout << "overall: " << report.outcomes.overall().successes() << "/"
            << report.outcomes.overall().trials() << " delivered ("
            << util::fmt(report.outcomes.overall().rate(), 4)
            << "); channel: " << report.channel.slots_simulated
            << " slots, mean contention "
            << util::fmt(report.channel.contention.mean(), 3);
  if (report.channel.fast_forward_slots > 0) {
    std::cout << " (" << report.channel.fast_forward_slots
              << " fast-forwarded)";
  }
  std::cout << "\nenergy: " << report.channel.slots_awake
            << " awake job-slots (" << report.channel.slots_listening
            << " listening + " << report.channel.slots_transmitting
            << " transmitting), mean awake/job "
            << util::fmt(report.outcomes.awake().mean(), 2) << "\n";

  if (!metrics_path.empty()) {
    obs::Registry& reg = obs::global_registry();
    reg.gauge("sim.slots_simulated")
        .set(static_cast<double>(report.channel.slots_simulated));
    reg.gauge("sim.delivery_rate").set(report.outcomes.overall().rate());
    reg.gauge("sim.mean_contention").set(report.channel.contention.mean());
    reg.gauge("sim.slots_awake")
        .set(static_cast<double>(report.channel.slots_awake));
    reg.gauge("sim.slots_listening")
        .set(static_cast<double>(report.channel.slots_listening));
    reg.gauge("sim.slots_transmitting")
        .set(static_cast<double>(report.channel.slots_transmitting));
    reg.gauge("run.reps").set(static_cast<double>(reps));
    reg.gauge("run.threads")
        .set(static_cast<double>(analysis::resolve_threads(threads)));
    std::ofstream out(metrics_path);
    if (out) {
      reg.write_json(out);
      std::cout << "(metrics written to " << metrics_path << ")\n";
    } else {
      std::cout << "(FAILED to write metrics to " << metrics_path << ")\n";
    }
  }

  if (watchdog_strict && watchdog_violations > 0) {
    std::cerr << "watchdog-strict: " << watchdog_violations
              << " violation(s) — failing\n";
    return 1;
  }
  return 0;
}
