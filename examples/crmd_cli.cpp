// crmd_cli — generic simulation driver: pick a protocol, a workload, and
// the constants from the command line; get a per-window-size outcome table.
//
//   ./examples/crmd_cli --protocol=punctual --workload=general \
//       --gamma=0.03125 --reps=5 --seed=7
//   ./examples/crmd_cli --protocol=aligned --workload=aligned --lambda=2
//   ./examples/crmd_cli --protocol=beb --workload=starvation --n=512
//
// Workloads: aligned | general | batch | starvation | periodic.
// Protocols: see --list.

#include <iostream>
#include <memory>

#include "analysis/runner.hpp"
#include "core/registry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

namespace {

using namespace crmd;

int usage() {
  std::cout
      << "usage: crmd_cli --protocol=NAME --workload=KIND [options]\n"
         "  --list                 list protocols and exit\n"
         "  --workload=aligned|general|batch|starvation|periodic\n"
         "  --gamma=G              slack parameter (default 1/32)\n"
         "  --fill=F               fraction of feasibility ceiling (default 0.5)\n"
         "  --n=N                  jobs for batch/starvation (default 16/256)\n"
         "  --window=W             batch window (default 8192)\n"
         "  --horizon=H            generator horizon (default 65536)\n"
         "  --lambda=L --tau=T --min-class=C   protocol constants\n"
         "  --reps=R --seed=S      replication controls\n"
         "  --feedback=MODEL       channel feedback semantics: ternary |\n"
         "                         binary_ack | collision_as_silence |\n"
         "                         noisy[:eps] (default ternary)\n"
         "  --threads=N            replication workers (0 = one per "
         "hardware thread,\n"
         "                         1 = serial; results are bit-identical "
         "either way)\n"
         "  --trace=PATH           save a per-slot CSV of one run\n"
         "  --jobs-csv=PATH        save per-job outcomes of one run\n"
         "  --faults-csv=PATH      save injected fault events of one run\n"
         "  --fault-corrupt=R --fault-loss=R --fault-crash=R\n"
         "                         per-job per-slot fault rates (default 0)\n"
         "  --trace-events=PATH    save a Chrome trace (chrome://tracing) "
         "of one run\n"
         "  --trace-jsonl=PATH     save the raw event stream (JSONL) of "
         "one run\n"
         "  --watchdog             check protocol invariants on the event "
         "stream\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("list")) {
    for (const auto& info : core::protocol_catalog()) {
      std::cout << info.name << " — " << info.description;
      if (info.needs_collision_detection) {
        std::cout << (info.adapts_to_degraded_channel
                          ? " [needs CD; blind fallback without it]"
                          : " [needs CD]");
      } else if (info.no_cd_native) {
        std::cout << " [no-CD native]";
      }
      std::cout << "\n";
    }
    return 0;
  }
  const std::string protocol = args.get("protocol", "");
  const std::string workload = args.get("workload", "");
  if (protocol.empty() || workload.empty()) {
    return usage();
  }

  core::Params params;
  params.lambda = static_cast<int>(args.get_int("lambda", params.lambda));
  params.tau = args.get_int("tau", params.tau);
  params.min_class =
      static_cast<int>(args.get_int("min-class", params.min_class));
  const auto factory = core::make_protocol(protocol, params);
  if (!factory) {
    std::cerr << "unknown protocol '" << protocol << "' (try --list)\n";
    return 2;
  }

  const double gamma = args.get_double("gamma", 1.0 / 32);
  const double fill = args.get_double("fill", 0.5);
  const Slot horizon = args.get_int("horizon", 1 << 16);
  const std::int64_t n = args.get_int("n", 0);
  const Slot window = args.get_int("window", 1 << 13);

  analysis::InstanceGen gen;
  if (workload == "aligned") {
    gen = [=](util::Rng& rng) {
      workload::AlignedConfig config;
      config.min_class = params.min_class;
      config.max_class = params.min_class + 4;
      config.gamma = gamma;
      config.fill = fill;
      config.horizon = horizon;
      return workload::gen_aligned(config, rng);
    };
  } else if (workload == "general") {
    gen = [=](util::Rng& rng) {
      workload::GeneralConfig config;
      config.min_window = Slot{1} << params.min_class;
      config.max_window = Slot{1} << (params.min_class + 4);
      config.gamma = gamma;
      config.fill = fill;
      config.horizon = horizon;
      return workload::gen_general(config, rng);
    };
  } else if (workload == "batch") {
    gen = [=](util::Rng&) {
      return workload::gen_batch(n > 0 ? n : 16, window, 0);
    };
  } else if (workload == "starvation") {
    gen = [=](util::Rng&) {
      return workload::gen_starvation(n > 0 ? n : 256, gamma);
    };
  } else if (workload == "periodic") {
    gen = [=](util::Rng& rng) {
      const auto flows = workload::gen_periodic_flows(
          16, window / 4, window * 4, gamma, fill, rng);
      return workload::gen_periodic(flows, horizon);
    };
  } else {
    return usage();
  }

  const int reps = static_cast<int>(args.get_int("reps", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const std::string feedback_spec = args.get("feedback", "ternary");
  const auto feedback = sim::parse_feedback_model(feedback_spec);
  if (!feedback) {
    std::cerr << "error: bad --feedback spec '" << feedback_spec
              << "': " << sim::feedback_usage() << "\n";
    return 2;
  }

  // Optional single-run trace exports (separate from the replicated sweep).
  const std::string trace_path = args.get("trace", "");
  const std::string jobs_path = args.get("jobs-csv", "");
  const std::string faults_path = args.get("faults-csv", "");
  const std::string events_path = args.get("trace-events", "");
  const std::string jsonl_path = args.get("trace-jsonl", "");
  const bool watchdog_on = args.has("watchdog");
  if (!trace_path.empty() || !jobs_path.empty() || !faults_path.empty() ||
      !events_path.empty() || !jsonl_path.empty() || watchdog_on) {
    util::Rng rng(seed);
    sim::SimConfig config;
    config.seed = seed;
    config.feedback = *feedback;
    config.record_slots = !trace_path.empty() || !faults_path.empty();
    config.faults.feedback_corrupt_rate = args.get_double("fault-corrupt", 0);
    config.faults.feedback_loss_rate = args.get_double("fault-loss", 0);
    config.faults.crash_rate = args.get_double("fault-crash", 0);
    std::unique_ptr<obs::Tracer> tracer;
    std::shared_ptr<obs::Watchdog> watchdog;
    if (!events_path.empty() || !jsonl_path.empty() || watchdog_on) {
      tracer = std::make_unique<obs::Tracer>();
      if (!events_path.empty()) {
        tracer->add_sink(std::make_shared<obs::ChromeTraceSink>(events_path));
      }
      if (!jsonl_path.empty()) {
        tracer->add_sink(std::make_shared<obs::JsonlFileSink>(jsonl_path));
      }
      if (watchdog_on) {
        watchdog = std::make_shared<obs::Watchdog>();
        tracer->add_sink(watchdog);
      }
      config.tracer = tracer.get();
    }
    const auto result = sim::run(gen(rng), *factory, config);
    if (tracer) {
      tracer->close();
    }
    if (!trace_path.empty() &&
        sim::save_slot_trace_csv(trace_path, result.slots)) {
      std::cout << "(slot trace written to " << trace_path << ")\n";
    }
    if (!jobs_path.empty() &&
        sim::save_job_results_csv(jobs_path, result.jobs)) {
      std::cout << "(job outcomes written to " << jobs_path << ")\n";
    }
    if (!faults_path.empty() &&
        sim::save_fault_events_csv(faults_path, result.fault_events)) {
      std::cout << "(fault events written to " << faults_path << ")\n";
    }
    if (!events_path.empty()) {
      std::cout << "(chrome trace written to " << events_path << ")\n";
    }
    if (!jsonl_path.empty()) {
      std::cout << "(event jsonl written to " << jsonl_path << ")\n";
    }
    if (watchdog) {
      if (watchdog->ok()) {
        std::cout << "(watchdog: 0 violations)\n";
      } else {
        std::cout << "(watchdog: " << watchdog->violation_count()
                  << " violations)\n";
        std::cout << watchdog->report();
      }
    }
  }

  analysis::RunOptions options;
  options.feedback = *feedback;
  options.threads = threads;
  const auto report =
      analysis::run_replications(gen, *factory, reps, seed, options);

  util::Table table({"window", "jobs", "delivered", "mean latency",
                     "mean tx/job"});
  for (const auto& [w, bucket] : report.outcomes.by_window()) {
    table.add_row(
        {util::fmt_count(w),
         util::fmt_count(
             static_cast<std::int64_t>(bucket.deadline_met.trials())),
         util::fmt(bucket.deadline_met.rate(), 4),
         bucket.latency.count() > 0 ? util::fmt(bucket.latency.mean(), 0)
                                    : "-",
         util::fmt(bucket.accesses.mean(), 1)});
  }
  table.print(std::cout,
              protocol + " on " + workload + " (gamma=" + util::fmt(gamma, 4) +
                  ", reps=" + std::to_string(reps) + ")");
  std::cout << "overall: " << report.outcomes.overall().successes() << "/"
            << report.outcomes.overall().trials() << " delivered ("
            << util::fmt(report.outcomes.overall().rate(), 4)
            << "); channel: " << report.channel.slots_simulated
            << " slots, mean contention "
            << util::fmt(report.channel.contention.mean(), 3) << "\n";
  return 0;
}
