// Quickstart: the smallest complete crmd program.
//
// Build a problem instance (jobs with release times and deadlines), pick a
// protocol (here PUNCTUAL, the paper's general-instance algorithm), run the
// slotted-channel simulation, and inspect which jobs met their deadlines.
//
//   $ ./examples/quickstart
//
// Everything here is deterministic given the seed.

#include <iostream>

#include "core/params.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace crmd;

  // 1. An instance: ten jobs sharing a 4096-slot window, plus three
  //    later stragglers with their own windows.
  workload::Instance instance = workload::gen_batch(
      /*count=*/10, /*window=*/4096, /*release=*/0);
  instance = workload::merge(
      instance, workload::gen_batch(/*count=*/3, /*window=*/2048,
                                    /*release=*/1500));

  // 2. Sanity: how much slack does this instance have? (γ-slack feasible
  //    means every message could be 1/γ slots long and still fit.)
  const std::int64_t max_len = workload::max_inflation(instance);
  std::cout << "instance: " << instance.size() << " jobs, feasible up to "
            << max_len << "-slot messages (gamma = 1/" << max_len << ")\n";

  // 3. A protocol. Params holds every constant the paper leaves symbolic;
  //    defaults are laptop-scale (see DESIGN.md on the constants gap).
  core::Params params;
  params.lambda = 4;  // more repetition -> more reliability
  const sim::ProtocolFactory protocol =
      core::punctual::make_punctual_factory(params);

  // 4. Run. The simulator resolves each slot (silence / success /
  //    collision), delivers ternary feedback to every live job, and retires
  //    jobs at success or deadline.
  sim::SimConfig config;
  config.seed = 42;
  const sim::SimResult result = sim::run(instance, protocol, config);

  // 5. Results.
  std::cout << "delivered " << result.successes() << "/" << result.jobs.size()
            << " messages by their deadlines\n";
  for (const auto& job : result.jobs) {
    std::cout << "  job " << job.id << " window [" << job.release << ", "
              << job.deadline << ") -> "
              << (job.success ? "delivered at slot " +
                                    std::to_string(job.success_slot)
                              : std::string("MISSED"))
              << "\n";
  }
  std::cout << "channel: " << result.metrics.slots_simulated
            << " slots simulated, " << result.metrics.noise_slots
            << " collisions, mean contention "
            << result.metrics.contention.mean() << "\n";
  return 0;
}
