// Degraded channel: PUNCTUAL under clock skew + feedback loss (faults.hpp).
//
// PUNCTUAL's round grid assumes perfectly synchronized slots and exact
// ternary feedback. This example injects both kinds of damage at growing
// intensity and shows (a) delivery degrading gracefully rather than
// collapsing, and (b) how the desync fallback (Params::desync_tolerance)
// lets jobs that detect an untrustworthy grid abandon it for the clock-free
// anarchist path instead of following a broken schedule to their deadline.
//
// Expected output (exact numbers vary with the toolchain's libm, shape does
// not): the fault-free row matches with and without the fallback — the
// detector only reacts to physically impossible observations, which never
// occur on a clean channel. As intensity grows, the no-fallback column
// decays faster; with the fallback enabled, degraded jobs keep a fighting
// chance and the delivery gap widens in the fallback's favor.

#include <iostream>
#include <vector>

#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace crmd;

  const int level = 13;
  const std::int64_t batch = 24;
  const int reps = 10;

  const std::vector<double> intensities{0.0, 0.005, 0.02, 0.05};

  auto delivery = [&](int desync_tolerance, double intensity) {
    core::Params params;
    params.lambda = 2;
    params.tau = 8;
    params.min_class = level;
    params.desync_tolerance = desync_tolerance;
    const auto factory = core::punctual::make_punctual_factory(params);

    std::int64_t ok = 0;
    std::int64_t total = 0;
    std::int64_t fault_count = 0;
    for (int rep = 0; rep < reps; ++rep) {
      sim::SimConfig config;
      config.seed = 100 + static_cast<std::uint64_t>(rep);
      config.faults.clock_skew_rate = intensity;
      config.faults.feedback_loss_rate = intensity;
      const auto result =
          sim::run(workload::gen_batch(batch, Slot{1} << level, 0), factory,
                   config);
      ok += result.successes();
      total += static_cast<std::int64_t>(result.jobs.size());
      fault_count += result.metrics.faults_injected;
    }
    return std::pair{static_cast<double>(ok) / static_cast<double>(total),
                     fault_count / reps};
  };

  util::Table table({"skew+loss rate", "faults/run", "no fallback",
                     "fallback (tol=8)"});
  for (const double x : intensities) {
    const auto [plain, faults_plain] = delivery(/*desync_tolerance=*/0, x);
    const auto [resilient, faults_res] = delivery(/*desync_tolerance=*/8, x);
    (void)faults_res;
    table.add_row({util::fmt(x, 3), std::to_string(faults_plain),
                   util::fmt(plain, 3), util::fmt(resilient, 3)});
  }
  table.print(std::cout,
              "PUNCTUAL delivery under clock skew + feedback loss "
              "(batch 24, window 2^13)");
  std::cout
      << "\nEach listener independently loses feedback and slips its clock "
         "at the given\nper-slot rate. Desynchronized jobs see a round grid "
         "that no longer matches the\nchannel; with desync_tolerance=8 a "
         "job that witnesses 8 impossible observations\n(own transmission "
         "heard as silence, busy guard slots) stops trusting the grid\nand "
         "transmits anarchist-style for the rest of its window.\n";
  return 0;
}
