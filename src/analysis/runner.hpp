#pragma once

#include <functional>
#include <memory>

#include "analysis/outcomes.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "workload/instance.hpp"

/// \file runner.hpp
/// Replication driver shared by every experiment harness: generate an
/// instance per replication (seeded deterministically), simulate it, and
/// aggregate outcomes. Keeps all bench binaries' seed management identical
/// and reproducible.

namespace crmd::analysis {

/// Builds the instance for replication `rep` (seeds derive from it).
using InstanceGen = std::function<workload::Instance(util::Rng& rng)>;

/// Builds a fresh adversary per replication; may return null (no jamming).
using JammerGen = std::function<std::unique_ptr<sim::Jammer>(util::Rng rng)>;

/// Everything a replication sweep accumulates.
struct ReplicationReport {
  OutcomeAggregator outcomes;
  /// Channel metrics summed over all replications.
  sim::SimMetrics channel;
  /// Number of replications executed.
  int replications = 0;
  /// Jobs per replication (for sanity reporting).
  util::RunningStats jobs_per_rep;
};

/// Runs `reps` replications of (generate instance, simulate, aggregate).
/// Replication r uses the deterministic seed child(base_seed, r) for both
/// generation and simulation, so reports are exactly reproducible. The
/// optional `faults` plan applies identically to every replication (default:
/// none — a provable no-op, see faults.hpp). When `tracer` is non-null
/// every simulated run streams obs events into it (null = tracing off =
/// bit-identical results, see obs/trace.hpp). Phase timings ("generate",
/// "simulation", "aggregate") accrue to obs::global_profiler().
[[nodiscard]] ReplicationReport run_replications(
    const InstanceGen& gen, const sim::ProtocolFactory& factory, int reps,
    std::uint64_t base_seed, const JammerGen& jammer_gen = nullptr,
    const sim::FaultPlan& faults = {}, obs::Tracer* tracer = nullptr);

/// Merges channel metrics. Deprecated shim: delegates to
/// sim::SimMetrics::merge (kept for existing harness loops).
void merge_metrics(sim::SimMetrics& into, const sim::SimMetrics& from);

}  // namespace crmd::analysis
