#pragma once

#include <functional>
#include <memory>

#include "analysis/outcomes.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "workload/instance.hpp"

/// \file runner.hpp
/// Replication driver shared by every experiment harness: generate an
/// instance per replication (seeded deterministically), simulate it, and
/// aggregate outcomes. Keeps all bench binaries' seed management identical
/// and reproducible.
///
/// The driver is a parallel engine with a *determinism contract*: for any
/// worker count, the returned ReplicationReport is bit-identical to the
/// serial run. Replications are independent by construction — replication
/// r derives every random stream from `Rng(base_seed).child(REPL + r)` —
/// so workers may simulate them in any order; determinism is restored by
/// folding per-replication results into the report strictly in replication
/// order, using exactly the operations (and operation order) of the serial
/// loop. The contract is enforced by tests/test_runner_parallel.cpp, not
/// by convention.

namespace crmd::analysis {

/// Builds the instance for replication `rep` (seeds derive from it).
/// With `threads > 1` the generator is invoked concurrently from worker
/// threads and must be safe to call in parallel — in practice: a pure
/// function of its Rng argument plus read-only captures.
using InstanceGen = std::function<workload::Instance(util::Rng& rng)>;

/// Builds a fresh adversary per replication; may return null (no jamming).
/// Same concurrency requirement as InstanceGen under `threads > 1`.
using JammerGen = std::function<std::unique_ptr<sim::Jammer>(util::Rng rng)>;

/// Per-sweep knobs shared by every replication. Collects what used to be
/// trailing defaulted arguments of run_replications; harnesses that sweep
/// channel conditions (feedback model × jamming × faults) fill one of
/// these per cell.
struct RunOptions {
  /// Builds a fresh adversary per replication; null = no jamming.
  JammerGen jammer_gen = nullptr;
  /// Fault plan applied identically to every replication (faults.hpp).
  sim::FaultPlan faults;
  /// Channel feedback semantics for every replication (channel.hpp). The
  /// default ternary model is bit-identical to the pre-model engine.
  sim::FeedbackModel feedback;
  /// Collision-cost channel physics for every replication
  /// (simulator.hpp SimConfig::collision_cost). The default 1 is the
  /// paper's channel and bit-identical to the pre-cost engine.
  int collision_cost = 1;
  /// Optional tracing session (null = off = bit-identical results).
  obs::Tracer* tracer = nullptr;
  /// Event-driven fast-forward policy for every replication
  /// (simulator.hpp SimConfig::fast_forward). The default kOff is
  /// bit-identical to the pre-FF engine.
  sim::FastForward fast_forward = sim::FastForward::kOff;
  /// Multi-channel scenario for every replication (simulator.hpp
  /// SimConfig::multichannel). The default single channel is the engine's
  /// unchanged hot path.
  sim::MultiChannelConfig multichannel;
  /// Worker count; see run_replications. 1 = exact serial loop.
  int threads = 1;
};

/// Everything a replication sweep accumulates.
struct ReplicationReport {
  OutcomeAggregator outcomes;
  /// Channel metrics summed over all replications.
  sim::SimMetrics channel;
  /// Number of replications executed.
  int replications = 0;
  /// Jobs per replication (for sanity reporting).
  util::RunningStats jobs_per_rep;
};

/// Resolves a `--threads=` request: positive values pass through; zero and
/// negative mean "one worker per hardware thread" (minimum 1 when the
/// hardware concurrency is unknown).
[[nodiscard]] int resolve_threads(int requested) noexcept;

/// Runs `reps` replications of (generate instance, simulate, aggregate).
/// Replication r uses the deterministic seed child(base_seed, r) for both
/// generation and simulation, so reports are exactly reproducible. The
/// optional `faults` plan applies identically to every replication (default:
/// none — a provable no-op, see faults.hpp). When `tracer` is non-null
/// every simulated run streams obs events into it (null = tracing off =
/// bit-identical results, see obs/trace.hpp). Phase timings ("generate",
/// "simulation", "aggregate") accrue to obs::global_profiler().
///
/// `threads` selects the worker count: 1 (the default) runs the exact
/// serial loop; N > 1 simulates replications on N workers and folds results
/// in replication order; <= 0 means resolve_threads' hardware default. The
/// report is bit-identical for every value (the determinism contract). With
/// a tracer and `threads > 1`, each replication's events are buffered and
/// replayed into `tracer` at fold time, so sinks observe the same stream —
/// same events, same order, same seq numbers — as a serial traced run.
[[nodiscard]] ReplicationReport run_replications(
    const InstanceGen& gen, const sim::ProtocolFactory& factory, int reps,
    std::uint64_t base_seed, const JammerGen& jammer_gen = nullptr,
    const sim::FaultPlan& faults = {}, obs::Tracer* tracer = nullptr,
    int threads = 1);

/// Options-struct form: identical semantics, plus the channel feedback
/// model. The positional overload forwards here with default (ternary)
/// feedback, so both produce bit-identical reports for the same knobs.
[[nodiscard]] ReplicationReport run_replications(
    const InstanceGen& gen, const sim::ProtocolFactory& factory, int reps,
    std::uint64_t base_seed, const RunOptions& options);

}  // namespace crmd::analysis
