#pragma once

#include <map>

#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

/// \file outcomes.hpp
/// Aggregation of per-job outcomes across replications, keyed by window
/// size — the paper's guarantees are all "with high probability in the
/// window size", so every experiment reports per-window-size success rates.

namespace crmd::analysis {

/// Per-window-size outcome bucket.
struct WindowBucket {
  util::SuccessCounter deadline_met;
  /// Latency (slots from release to delivery) of successful jobs.
  util::RunningStats latency;
  /// Channel accesses (transmissions) per job — the transmit-energy metric.
  util::RunningStats accesses;
  /// Radio-on slots (listening + transmitting) per job — the full energy
  /// metric of DESIGN.md §6k. For always-listening protocols this equals
  /// the job's live span; for sleep-declaring ones it is the wake-up count.
  util::RunningStats awake;
};

/// Accumulates job outcomes from any number of runs.
class OutcomeAggregator {
 public:
  /// Adds every job of a run.
  void add_run(const sim::SimResult& result);

  /// Adds a single job outcome.
  void add_job(const sim::JobResult& job);

  /// Overall deadline-met counter.
  [[nodiscard]] const util::SuccessCounter& overall() const noexcept {
    return overall_;
  }

  /// Outcome buckets keyed by exact window size (ascending).
  [[nodiscard]] const std::map<Slot, WindowBucket>& by_window()
      const noexcept {
    return by_window_;
  }

  /// Total jobs seen.
  [[nodiscard]] std::uint64_t jobs() const noexcept {
    return overall_.trials();
  }

  /// Channel accesses per job across all window sizes.
  [[nodiscard]] const util::RunningStats& accesses() const noexcept {
    return accesses_;
  }

  /// Radio-on slots per job across all window sizes (DESIGN.md §6k).
  [[nodiscard]] const util::RunningStats& awake() const noexcept {
    return awake_;
  }

 private:
  util::SuccessCounter overall_;
  std::map<Slot, WindowBucket> by_window_;
  util::RunningStats accesses_;
  util::RunningStats awake_;
};

}  // namespace crmd::analysis
