#include "analysis/outcomes.hpp"

namespace crmd::analysis {

void OutcomeAggregator::add_run(const sim::SimResult& result) {
  for (const auto& job : result.jobs) {
    add_job(job);
  }
}

void OutcomeAggregator::add_job(const sim::JobResult& job) {
  overall_.add(job.success);
  accesses_.add(static_cast<double>(job.transmissions));
  awake_.add(static_cast<double>(job.awake_slots()));
  WindowBucket& bucket = by_window_[job.window()];
  bucket.deadline_met.add(job.success);
  bucket.accesses.add(static_cast<double>(job.transmissions));
  bucket.awake.add(static_cast<double>(job.awake_slots()));
  if (job.success) {
    bucket.latency.add(static_cast<double>(job.latency()));
  }
}

}  // namespace crmd::analysis
