#include "analysis/runner.hpp"

namespace crmd::analysis {

ReplicationReport run_replications(const InstanceGen& gen,
                                   const sim::ProtocolFactory& factory,
                                   int reps, std::uint64_t base_seed,
                                   const JammerGen& jammer_gen,
                                   const sim::FaultPlan& faults) {
  ReplicationReport report;
  const util::Rng master(base_seed);
  for (int rep = 0; rep < reps; ++rep) {
    util::Rng rep_rng =
        master.child(0x5245504CULL /* "REPL" */ + static_cast<unsigned>(rep));
    workload::Instance instance = gen(rep_rng);
    report.jobs_per_rep.add(static_cast<double>(instance.size()));
    if (instance.empty()) {
      ++report.replications;
      continue;
    }
    sim::SimConfig config;
    config.seed = rep_rng.next_u64();
    config.faults = faults;
    std::unique_ptr<sim::Jammer> jammer;
    if (jammer_gen) {
      jammer = jammer_gen(rep_rng.child(0x4A414DULL /* "JAM" */));
    }
    sim::SimResult result =
        sim::run(std::move(instance), factory, config, std::move(jammer));
    report.outcomes.add_run(result);
    merge_metrics(report.channel, result.metrics);
    ++report.replications;
  }
  return report;
}

void merge_metrics(sim::SimMetrics& into, const sim::SimMetrics& from) {
  into.slots_simulated += from.slots_simulated;
  into.slots_skipped += from.slots_skipped;
  into.silent_slots += from.silent_slots;
  into.success_slots += from.success_slots;
  into.noise_slots += from.noise_slots;
  into.jammed_slots += from.jammed_slots;
  into.data_successes += from.data_successes;
  into.control_successes += from.control_successes;
  into.start_successes += from.start_successes;
  into.claim_successes += from.claim_successes;
  into.timekeeper_successes += from.timekeeper_successes;
  into.faults_injected += from.faults_injected;
  into.feedback_corruptions += from.feedback_corruptions;
  into.feedback_losses += from.feedback_losses;
  into.clock_skew_events += from.clock_skew_events;
  into.crashes += from.crashes;
  into.restarts += from.restarts;
  into.dark_job_slots += from.dark_job_slots;
  into.contention.merge(from.contention);
}

}  // namespace crmd::analysis
