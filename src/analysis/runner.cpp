#include "analysis/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace crmd::analysis {
namespace {

/// Seed stream tags. Both execution paths derive replication r's streams
/// as master.child(kRepStream + r) — the determinism contract hangs on
/// serial and parallel runs consuming identical streams.
constexpr std::uint64_t kRepStream = 0x5245504CULL;  // "REPL"
constexpr std::uint64_t kJamStream = 0x4A414DULL;    // "JAM"

/// Everything one replication produces before being folded into the
/// report. Folding happens strictly in replication order with exactly the
/// serial loop's accumulation operations, so the aggregate is bit-identical
/// for every worker count.
struct RepOutcome {
  double jobs = 0.0;
  bool simulated = false;
  sim::SimResult result;
  /// Trace events buffered per replication (only when the caller passed a
  /// tracer): replayed into the shared tracer at fold time so sinks see
  /// the exact stream a serial traced run would produce.
  std::vector<obs::TraceEvent> events;
};

/// Generates and simulates replication `rep`. Pure function of
/// (rep, master-seed, inputs): touches no shared state beyond the
/// (thread-safe) global profiler, so workers may run it concurrently.
RepOutcome simulate_one(int rep, const util::Rng& master,
                        const InstanceGen& gen,
                        const sim::ProtocolFactory& factory,
                        const RunOptions& options, bool tracing) {
  obs::RunProfiler& prof = obs::global_profiler();
  RepOutcome out;
  util::Rng rep_rng =
      master.child(kRepStream + static_cast<unsigned>(rep));
  workload::Instance instance = [&] {
    const auto scope = prof.phase("generate");
    return gen(rep_rng);
  }();
  out.jobs = static_cast<double>(instance.size());
  if (instance.empty()) {
    return out;
  }
  sim::SimConfig config;
  config.seed = rep_rng.next_u64();
  config.faults = options.faults;
  config.feedback = options.feedback;
  config.collision_cost = options.collision_cost;
  config.fast_forward = options.fast_forward;
  config.multichannel = options.multichannel;
  std::unique_ptr<obs::Tracer> local_tracer;
  std::shared_ptr<obs::CollectSink> collect;
  if (tracing) {
    local_tracer = std::make_unique<obs::Tracer>();
    collect = std::make_shared<obs::CollectSink>();
    local_tracer->add_sink(collect);
    config.tracer = local_tracer.get();
  }
  std::unique_ptr<sim::Jammer> jammer;
  if (options.jammer_gen) {
    jammer = options.jammer_gen(rep_rng.child(kJamStream));
  }
  out.result = [&] {
    const auto scope = prof.phase("simulation");
    return sim::run(std::move(instance), factory, config, std::move(jammer));
  }();
  out.simulated = true;
  if (local_tracer) {
    local_tracer->close();
    out.events = collect->events();
  }
  return out;
}

/// Folds one replication into the report. Must be called in replication
/// order: the operation sequence below matches the serial loop's.
void fold(ReplicationReport& report, RepOutcome&& out, obs::Tracer* tracer) {
  report.jobs_per_rep.add(out.jobs);
  if (out.simulated) {
    const auto scope = obs::global_profiler().phase("aggregate");
    report.outcomes.add_run(out.result);
    report.channel.merge(out.result.metrics);
    for (const obs::TraceEvent& ev : out.events) {
      CRMD_TRACE(tracer, ev.kind, ev.slot, ev.job, ev.a, ev.b, ev.x,
                 ev.label);
    }
  }
  ++report.replications;
}

/// The serial path — byte for byte the engine's pre-parallel behavior
/// (events stream straight into the tracer, no buffering).
ReplicationReport run_serial(const InstanceGen& gen,
                             const sim::ProtocolFactory& factory, int reps,
                             std::uint64_t base_seed,
                             const RunOptions& options) {
  ReplicationReport report;
  obs::RunProfiler& prof = obs::global_profiler();
  const util::Rng master(base_seed);
  for (int rep = 0; rep < reps; ++rep) {
    util::Rng rep_rng =
        master.child(kRepStream + static_cast<unsigned>(rep));
    workload::Instance instance = [&] {
      const auto scope = prof.phase("generate");
      return gen(rep_rng);
    }();
    report.jobs_per_rep.add(static_cast<double>(instance.size()));
    if (instance.empty()) {
      ++report.replications;
      continue;
    }
    sim::SimConfig config;
    config.seed = rep_rng.next_u64();
    config.faults = options.faults;
    config.feedback = options.feedback;
    config.collision_cost = options.collision_cost;
    config.fast_forward = options.fast_forward;
    config.multichannel = options.multichannel;
    config.tracer = options.tracer;
    std::unique_ptr<sim::Jammer> jammer;
    if (options.jammer_gen) {
      jammer = options.jammer_gen(rep_rng.child(kJamStream));
    }
    sim::SimResult result = [&] {
      const auto scope = prof.phase("simulation");
      return sim::run(std::move(instance), factory, config,
                      std::move(jammer));
    }();
    {
      const auto scope = prof.phase("aggregate");
      report.outcomes.add_run(result);
      report.channel.merge(result.metrics);
    }
    ++report.replications;
  }
  return report;
}

/// The parallel engine: `workers` threads claim replications off an atomic
/// counter, simulate them independently, and park results in a pending map;
/// whichever worker completes the next-in-order replication drains the map
/// into the report (under the fold mutex), bounding buffered results to the
/// out-of-order window.
ReplicationReport run_parallel(const InstanceGen& gen,
                               const sim::ProtocolFactory& factory, int reps,
                               std::uint64_t base_seed,
                               const RunOptions& options, int workers) {
  ReplicationReport report;
  const util::Rng master(base_seed);
  std::atomic<int> next_rep{0};
  std::mutex fold_mu;
  std::map<int, RepOutcome> pending;
  int next_fold = 0;
  std::exception_ptr error;

  const auto work = [&] {
    for (;;) {
      const int rep = next_rep.fetch_add(1, std::memory_order_relaxed);
      if (rep >= reps) {
        return;
      }
      try {
        RepOutcome out = simulate_one(rep, master, gen, factory, options,
                                      options.tracer != nullptr);
        const std::lock_guard<std::mutex> lock(fold_mu);
        pending.emplace(rep, std::move(out));
        while (!pending.empty() && pending.begin()->first == next_fold) {
          fold(report, std::move(pending.begin()->second), options.tracer);
          pending.erase(pending.begin());
          ++next_fold;
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(fold_mu);
        if (!error) {
          error = std::current_exception();
        }
        next_rep.store(reps, std::memory_order_relaxed);  // stop the pool
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) {
    pool.emplace_back(work);
  }
  work();
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return report;
}

}  // namespace

int resolve_threads(int requested) noexcept {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ReplicationReport run_replications(const InstanceGen& gen,
                                   const sim::ProtocolFactory& factory,
                                   int reps, std::uint64_t base_seed,
                                   const JammerGen& jammer_gen,
                                   const sim::FaultPlan& faults,
                                   obs::Tracer* tracer, int threads) {
  RunOptions options;
  options.jammer_gen = jammer_gen;
  options.faults = faults;
  options.tracer = tracer;
  options.threads = threads;
  return run_replications(gen, factory, reps, base_seed, options);
}

ReplicationReport run_replications(const InstanceGen& gen,
                                   const sim::ProtocolFactory& factory,
                                   int reps, std::uint64_t base_seed,
                                   const RunOptions& options) {
  const int workers =
      std::min(resolve_threads(options.threads), std::max(reps, 1));
  if (workers <= 1) {
    return run_serial(gen, factory, reps, base_seed, options);
  }
  return run_parallel(gen, factory, reps, base_seed, options, workers);
}

}  // namespace crmd::analysis
