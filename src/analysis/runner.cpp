#include "analysis/runner.hpp"

#include "obs/profiler.hpp"

namespace crmd::analysis {

ReplicationReport run_replications(const InstanceGen& gen,
                                   const sim::ProtocolFactory& factory,
                                   int reps, std::uint64_t base_seed,
                                   const JammerGen& jammer_gen,
                                   const sim::FaultPlan& faults,
                                   obs::Tracer* tracer) {
  ReplicationReport report;
  obs::RunProfiler& prof = obs::global_profiler();
  const util::Rng master(base_seed);
  for (int rep = 0; rep < reps; ++rep) {
    util::Rng rep_rng =
        master.child(0x5245504CULL /* "REPL" */ + static_cast<unsigned>(rep));
    workload::Instance instance = [&] {
      const auto scope = prof.phase("generate");
      return gen(rep_rng);
    }();
    report.jobs_per_rep.add(static_cast<double>(instance.size()));
    if (instance.empty()) {
      ++report.replications;
      continue;
    }
    sim::SimConfig config;
    config.seed = rep_rng.next_u64();
    config.faults = faults;
    config.tracer = tracer;
    std::unique_ptr<sim::Jammer> jammer;
    if (jammer_gen) {
      jammer = jammer_gen(rep_rng.child(0x4A414DULL /* "JAM" */));
    }
    sim::SimResult result = [&] {
      const auto scope = prof.phase("simulation");
      return sim::run(std::move(instance), factory, config, std::move(jammer));
    }();
    {
      const auto scope = prof.phase("aggregate");
      report.outcomes.add_run(result);
      report.channel.merge(result.metrics);
    }
    ++report.replications;
  }
  return report;
}

void merge_metrics(sim::SimMetrics& into, const sim::SimMetrics& from) {
  into.merge(from);
}

}  // namespace crmd::analysis
