#pragma once

#include <span>

/// \file bounds.hpp
/// The contention bounds of §2.1 (Lemma 2 / Corollary 3): when every job
/// transmits with probability at most 1/2, the per-slot success probability
/// p_suc satisfies  C/e^{2C} <= p_suc <= 2C/e^C  where C is the slot's
/// contention (sum of transmission probabilities). Experiment E2 measures
/// empirical p_suc against these envelopes.

namespace crmd::analysis {

/// Lower envelope C/e^{2C}.
[[nodiscard]] double success_prob_lower(double contention) noexcept;

/// Upper envelope 2C/e^C.
[[nodiscard]] double success_prob_upper(double contention) noexcept;

/// Exact success probability for independent transmitters with the given
/// probabilities: sum_i p_i * prod_{j != i} (1 - p_j).
[[nodiscard]] double success_prob_exact(std::span<const double> probs);

/// Probability that the slot is silent: prod_i (1 - p_i).
[[nodiscard]] double silence_prob_exact(std::span<const double> probs);

}  // namespace crmd::analysis
