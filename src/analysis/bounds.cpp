#include "analysis/bounds.hpp"

#include <cmath>

namespace crmd::analysis {

double success_prob_lower(double contention) noexcept {
  return contention * std::exp(-2.0 * contention);
}

double success_prob_upper(double contention) noexcept {
  return 2.0 * contention * std::exp(-contention);
}

double success_prob_exact(std::span<const double> probs) {
  // sum_i p_i * prod_{j != i} (1 - p_j), computed in O(n) via the total
  // silent product and per-term division, falling back to the O(n^2) form
  // when some p_i == 1 would divide by zero.
  double all_silent = 1.0;
  bool has_one = false;
  for (const double p : probs) {
    if (p >= 1.0) {
      has_one = true;
    }
    all_silent *= (1.0 - p);
  }
  if (!has_one) {
    double total = 0.0;
    for (const double p : probs) {
      total += p * all_silent / (1.0 - p);
    }
    return total;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    double term = probs[i];
    for (std::size_t j = 0; j < probs.size(); ++j) {
      if (j != i) {
        term *= (1.0 - probs[j]);
      }
    }
    total += term;
  }
  return total;
}

double silence_prob_exact(std::span<const double> probs) {
  double silent = 1.0;
  for (const double p : probs) {
    silent *= (1.0 - p);
  }
  return silent;
}

}  // namespace crmd::analysis
