#include "workload/instance.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/math.hpp"

namespace crmd::workload {

Slot Instance::min_release() const noexcept {
  Slot best = 0;
  bool first = true;
  for (const auto& j : jobs) {
    best = first ? j.release : std::min(best, j.release);
    first = false;
  }
  return best;
}

Slot Instance::max_deadline() const noexcept {
  Slot best = 0;
  for (const auto& j : jobs) {
    best = std::max(best, j.deadline);
  }
  return best;
}

Slot Instance::min_window() const noexcept {
  Slot best = 0;
  bool first = true;
  for (const auto& j : jobs) {
    best = first ? j.window() : std::min(best, j.window());
    first = false;
  }
  return best;
}

Slot Instance::max_window() const noexcept {
  Slot best = 0;
  for (const auto& j : jobs) {
    best = std::max(best, j.window());
  }
  return best;
}

void Instance::normalize() {
  std::sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    if (a.release != b.release) {
      return a.release < b.release;
    }
    return a.deadline < b.deadline;
  });
}

bool Instance::valid() const noexcept {
  return std::all_of(jobs.begin(), jobs.end(), [](const JobSpec& j) {
    return j.release >= 0 && j.window() >= 1;
  });
}

void Instance::validate() const {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& j = jobs[i];
    if (j.release < 0) {
      throw std::invalid_argument(
          "Instance: job " + std::to_string(i) + " has negative release " +
          std::to_string(j.release));
    }
    if (j.window() < 1) {
      throw std::invalid_argument(
          "Instance: job " + std::to_string(i) + " has empty window [" +
          std::to_string(j.release) + ", " + std::to_string(j.deadline) +
          ") — require d_j > r_j");
    }
  }
}

bool Instance::is_aligned() const noexcept {
  return std::all_of(jobs.begin(), jobs.end(), [](const JobSpec& j) {
    const Slot w = j.window();
    return util::is_pow2(w) && j.release % w == 0;
  });
}

}  // namespace crmd::workload
