#pragma once

#include <cstdint>

#include "workload/instance.hpp"

/// \file feasibility.hpp
/// γ-slack feasibility (§1.1): an instance is γ-slack feasible when all
/// messages could still be scheduled by their deadlines after multiplying
/// every message length by 1/γ. Equivalently, the inflated instance — unit
/// jobs replaced by preemptable jobs of length ceil(1/γ) — is schedulable
/// on one machine. Preemptive single-machine schedulability is
/// characterized both by EDF (optimal) and by Hall's interval condition;
/// we implement both and cross-check them in tests.

namespace crmd::workload {

/// Preemptive EDF schedulability test: can every job receive `length` slots
/// inside its window when the channel serves earliest-deadline-first?
/// O(n log n). Requires length >= 1.
[[nodiscard]] bool edf_feasible(const Instance& instance, std::int64_t length);

/// Hall-condition schedulability test: for every interval [s, t), the total
/// demand of jobs whose windows are contained in [s, t) must be at most
/// t - s. O(n^2) over event points — reference implementation used to
/// validate `edf_feasible` and the generators in tests.
[[nodiscard]] bool hall_feasible(const Instance& instance,
                                 std::int64_t length);

/// γ-slack feasibility: schedulable with messages inflated to ceil(1/γ)
/// slots. Requires 0 < gamma <= 1.
[[nodiscard]] bool is_slack_feasible(const Instance& instance, double gamma);

/// The largest integer L such that the instance remains schedulable with
/// every message inflated to L slots (so the instance is (1/L)-slack
/// feasible). Returns 0 for an unschedulable-at-unit-length instance and
/// for empty instances returns min-window (trivially schedulable).
[[nodiscard]] std::int64_t max_inflation(const Instance& instance);

}  // namespace crmd::workload
