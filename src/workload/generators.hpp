#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/instance.hpp"

/// \file generators.hpp
/// Workload generators. Every generator that promises γ-slack feasibility
/// enforces it *constructively* via a dyadic budget: a job is only admitted
/// if, after inflating its message to L = ceil(1/γ) slots and charging it
/// to (the trimmed core of) its window, every power-of-2-aligned window
/// still carries nested inflated demand at most `fill` times its size
/// (fill <= 1). Because the maximal dyadic windows inside any interval are
/// disjoint and cover all nested jobs, this implies Hall's condition for
/// *all* intervals, hence γ-slack feasibility; fill = 1 saturates the
/// feasibility ceiling. Tests cross-check against the exact EDF checker.

namespace crmd::workload {

/// Tracks nested inflated demand per power-of-2-aligned window and admits
/// charges only while every enclosing window stays within `fraction` of
/// its size. Shared by the feasible-instance generators; exposed publicly
/// so tests and custom generators can reuse it.
class DyadicBudget {
 public:
  /// Tracks windows of size 2^min_level .. 2^max_level over [0, horizon).
  /// `fraction` is the per-window capacity fraction (1.0 = the window may
  /// be completely full of inflated demand, the γ-slack-feasibility
  /// ceiling).
  DyadicBudget(int min_level, int max_level, Slot horizon, double fraction);

  /// Attempts to charge `amount` slots of demand to the aligned window of
  /// size 2^level starting at `start` (start must be level-aligned and
  /// inside the horizon). Returns true and records the charge when the
  /// window and all tracked ancestors have room; returns false (recording
  /// nothing) otherwise.
  bool try_charge(Slot start, int level, std::int64_t amount);

  /// Demand currently charged against the window (size 2^level at `start`).
  [[nodiscard]] std::int64_t used(Slot start, int level) const;

  /// Capacity of a window of size 2^level.
  [[nodiscard]] std::int64_t capacity(int level) const;

 private:
  int min_level_;
  int max_level_;
  double fraction_;
  std::vector<std::vector<std::int64_t>> used_;  // [level - min_level][index]
};

/// Configuration for the power-of-2-aligned laminar generator (§3's special
/// case).
struct AlignedConfig {
  /// Smallest job class: windows of size 2^min_class.
  int min_class = 10;
  /// Largest job class: windows of size 2^max_class.
  int max_class = 13;
  /// Total slots; 0 means 4 * 2^max_class.
  Slot horizon = 0;
  /// Slack guarantee: the instance is gamma-slack feasible by construction
  /// (messages inflated to ceil(1/gamma) slots still fit).
  double gamma = 1.0 / 8;
  /// Fraction of the feasibility ceiling the generator fills: 1.0 saturates
  /// γ-slack feasibility (inflated demand may fill whole windows), smaller
  /// values thin the arrivals.
  double fill = 1.0;
};

/// Random aligned instance: for each aligned window, a Poisson number of
/// jobs is drawn and admitted subject to the dyadic budget.
[[nodiscard]] Instance gen_aligned(const AlignedConfig& config,
                                   util::Rng& rng);

/// Configuration for the general (unaligned, arbitrary-window) generator
/// (§4's setting).
struct GeneralConfig {
  /// Smallest window size.
  Slot min_window = 1 << 10;
  /// Largest window size.
  Slot max_window = 1 << 13;
  /// Total slots; 0 means 8 * max_window.
  Slot horizon = 0;
  /// Slack guarantee (via trimmed-window charging).
  double gamma = 1.0 / 8;
  /// Fraction of the feasibility ceiling to fill, in (0, 1].
  double fill = 1.0;
  /// Restrict window sizes to powers of two (arrival times stay arbitrary).
  bool pow2_windows = false;
};

/// Random general instance: arbitrary releases and window sizes, admitted
/// subject to the dyadic budget applied to each window's trimmed core.
[[nodiscard]] Instance gen_general(const GeneralConfig& config,
                                   util::Rng& rng);

/// The Lemma 5 starvation instance: n jobs all released at slot 0, job j
/// (1-based) having window size j * ceil(1/γ). γ-slack feasible (EDF gives
/// job j the slots ((j-1)/γ, j/γ]) yet UNIFORM starves the early jobs.
[[nodiscard]] Instance gen_starvation(std::int64_t n, double gamma);

/// A batch: `count` jobs sharing the window [release, release + window).
[[nodiscard]] Instance gen_batch(std::int64_t count, Slot window,
                                 Slot release = 0);

/// One periodic flow: jobs released every `period` slots starting at
/// `offset`, each with relative deadline `deadline` (<= period).
struct PeriodicFlow {
  Slot period = 0;
  Slot deadline = 0;
  Slot offset = 0;
};

/// Periodic real-time traffic (the industrial/WirelessHART-style workload
/// from the paper's motivation): the union of the given flows over
/// [0, horizon). Feasibility is governed by the density test
/// sum(ceil(1/γ)/deadline_i) <= 1; `gen_periodic_flows` below generates
/// flow sets satisfying it.
[[nodiscard]] Instance gen_periodic(const std::vector<PeriodicFlow>& flows,
                                    Slot horizon);

/// Draws `count` random flows with power-of-two periods in
/// [min_period, max_period], implicit deadlines (= period), and random
/// offsets, thinned until the inflated density sum(L/period) <= fill, with
/// L = ceil(1/γ) — guaranteeing γ-slack feasibility.
[[nodiscard]] std::vector<PeriodicFlow> gen_periodic_flows(
    std::int64_t count, Slot min_period, Slot max_period, double gamma,
    double fill, util::Rng& rng);

/// Stochastic sustained load: jobs arrive as a Poisson process at
/// `jobs_per_slot` expected arrivals per slot, each with window size
/// `window` (releases anywhere in [0, horizon - window]). Unlike the
/// dyadic-budget generators this makes *no* feasibility promise — it is
/// the workload for stability/capacity experiments (what arrival rates a
/// protocol sustains), in the spirit of the queuing-theory work the paper
/// cites.
[[nodiscard]] Instance gen_poisson(double jobs_per_slot, Slot window,
                                   Slot horizon, util::Rng& rng);

/// Appends the jobs of `extra` to `base` and renormalizes.
[[nodiscard]] Instance merge(Instance base, const Instance& extra);

}  // namespace crmd::workload
