#include "workload/feasibility.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <vector>

namespace crmd::workload {

bool edf_feasible(const Instance& instance, std::int64_t length) {
  assert(length >= 1);
  if (instance.empty()) {
    return true;
  }

  // A job with window smaller than its inflated length can never fit.
  for (const auto& j : instance.jobs) {
    if (j.window() < length) {
      return false;
    }
  }

  std::vector<JobSpec> jobs = instance.jobs;
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.release < b.release;
            });

  struct Pending {
    Slot deadline;
    std::int64_t remaining;
    bool operator>(const Pending& other) const {
      return deadline > other.deadline;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> ready;

  std::size_t next = 0;
  Slot t = jobs.front().release;
  const auto n = jobs.size();

  while (next < n || !ready.empty()) {
    if (ready.empty()) {
      t = std::max(t, jobs[next].release);
    }
    while (next < n && jobs[next].release <= t) {
      ready.push(Pending{jobs[next].deadline, length});
      ++next;
    }
    if (ready.empty()) {
      continue;
    }
    Pending top = ready.top();
    ready.pop();
    if (t >= top.deadline) {
      return false;  // work left at (or past) its deadline
    }
    const Slot next_release = next < n ? jobs[next].release
                                       : std::numeric_limits<Slot>::max();
    // Serve the earliest-deadline job until it finishes, its deadline
    // arrives, or a new job is released (which may preempt it).
    const std::int64_t serve =
        std::min({top.remaining, top.deadline - t, next_release - t});
    top.remaining -= serve;
    t += serve;
    if (top.remaining > 0) {
      if (t >= top.deadline) {
        return false;
      }
      ready.push(top);
    }
  }
  return true;
}

bool hall_feasible(const Instance& instance, std::int64_t length) {
  assert(length >= 1);
  const auto n = instance.jobs.size();
  if (n == 0) {
    return true;
  }
  std::vector<Slot> releases;
  std::vector<Slot> deadlines;
  releases.reserve(n);
  deadlines.reserve(n);
  for (const auto& j : instance.jobs) {
    releases.push_back(j.release);
    deadlines.push_back(j.deadline);
  }
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()),
                 releases.end());
  std::sort(deadlines.begin(), deadlines.end());
  deadlines.erase(std::unique(deadlines.begin(), deadlines.end()),
                  deadlines.end());

  for (const Slot s : releases) {
    for (const Slot t : deadlines) {
      if (t <= s) {
        continue;
      }
      std::int64_t demand = 0;
      for (const auto& j : instance.jobs) {
        if (j.release >= s && j.deadline <= t) {
          demand += length;
        }
      }
      if (demand > t - s) {
        return false;
      }
    }
  }
  return true;
}

bool is_slack_feasible(const Instance& instance, double gamma) {
  assert(gamma > 0.0 && gamma <= 1.0);
  const auto length = static_cast<std::int64_t>(std::ceil(1.0 / gamma));
  return edf_feasible(instance, length);
}

std::int64_t max_inflation(const Instance& instance) {
  if (instance.empty()) {
    return 0;
  }
  if (!edf_feasible(instance, 1)) {
    return 0;
  }
  std::int64_t lo = 1;                      // feasible
  std::int64_t hi = instance.min_window();  // first candidate that may fail
  if (edf_feasible(instance, hi)) {
    return hi;
  }
  // Invariant: feasible at lo, infeasible at hi.
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (edf_feasible(instance, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace crmd::workload
