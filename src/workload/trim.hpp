#pragma once

#include "util/types.hpp"
#include "workload/instance.hpp"

/// \file trim.hpp
/// Window trimming (§4): `trimmed(W)` is a largest power-of-2-aligned
/// window contained in W. The paper proves |trimmed(W)| >= |W|/4 and uses
/// Lemma 15 ([11, 12]): a 4γ-slack feasible instance stays γ-slack feasible
/// after trimming. PUNCTUAL followers trim their windows (in the leader's
/// round clock) before running ALIGNED inside them.

namespace crmd::workload {

/// An aligned window [start, start + 2^level).
struct AlignedWindow {
  Slot start = 0;
  int level = 0;

  [[nodiscard]] Slot size() const noexcept { return Slot{1} << level; }
  [[nodiscard]] Slot end() const noexcept { return start + size(); }

  friend bool operator==(const AlignedWindow&, const AlignedWindow&) = default;
};

/// Largest power-of-2-aligned window inside [release, deadline). Requires
/// deadline > release. When several candidates of the largest size exist,
/// returns the earliest (a fixed deterministic choice — the paper allows an
/// arbitrary one). The result always has size >= (deadline - release) / 4.
[[nodiscard]] AlignedWindow trimmed(Slot release, Slot deadline) noexcept;

/// Applies `trimmed` to every job of an instance (the paper's trimmed(J)).
[[nodiscard]] Instance trimmed(const Instance& instance);

}  // namespace crmd::workload
