#include "workload/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/math.hpp"
#include "workload/trim.hpp"

namespace crmd::workload {
namespace {

/// ceil(1/gamma) — the inflated message length for slack gamma.
std::int64_t inflation_of(double gamma) {
  assert(gamma > 0.0 && gamma <= 1.0);
  return static_cast<std::int64_t>(std::ceil(1.0 / gamma));
}

/// Knuth's product method; only valid for means small enough that
/// exp(-mean) stays well away from underflow.
std::int64_t knuth_poisson(double mean, util::Rng& rng) {
  const double limit = std::exp(-mean);
  double product = rng.next_double();
  std::int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng.next_double();
  }
  return count;
}

/// Poisson sampler on our uniform stream. Large means are drawn as sums of
/// <=30-mean chunks (Poisson is additive), keeping the sample exact while
/// avoiding both exp(-mean) underflow and std::poisson_distribution, whose
/// libstdc++ initializer calls lgamma() and races on glibc's global
/// `signgam` when generators run on the parallel replication engine.
std::int64_t poisson(double mean, util::Rng& rng) {
  if (mean <= 0.0) {
    return 0;
  }
  std::int64_t total = 0;
  while (mean > 30.0) {
    total += knuth_poisson(30.0, rng);
    mean -= 30.0;
  }
  return total + knuth_poisson(mean, rng);
}

}  // namespace

DyadicBudget::DyadicBudget(int min_level, int max_level, Slot horizon,
                           double fraction)
    : min_level_(min_level), max_level_(max_level), fraction_(fraction) {
  assert(0 <= min_level && min_level <= max_level && max_level < 62);
  assert(horizon > 0 && fraction > 0.0 && fraction <= 1.0);
  used_.resize(static_cast<std::size_t>(max_level - min_level) + 1);
  for (int k = min_level; k <= max_level; ++k) {
    const Slot windows = util::ceil_div(horizon, util::pow2(k));
    used_[static_cast<std::size_t>(k - min_level)].assign(
        static_cast<std::size_t>(windows), 0);
  }
}

bool DyadicBudget::try_charge(Slot start, int level, std::int64_t amount) {
  assert(level >= min_level_ && level <= max_level_);
  assert(start % util::pow2(level) == 0);
  // First pass: check every tracked enclosing window.
  for (int k = level; k <= max_level_; ++k) {
    const auto idx = static_cast<std::size_t>(start >> k);
    const auto& row = used_[static_cast<std::size_t>(k - min_level_)];
    if (idx >= row.size()) {
      return false;  // window sticks out of the horizon
    }
    if (row[idx] + amount > capacity(k)) {
      return false;
    }
  }
  // Second pass: record the charge.
  for (int k = level; k <= max_level_; ++k) {
    const auto idx = static_cast<std::size_t>(start >> k);
    used_[static_cast<std::size_t>(k - min_level_)][idx] += amount;
  }
  return true;
}

std::int64_t DyadicBudget::used(Slot start, int level) const {
  assert(level >= min_level_ && level <= max_level_);
  const auto idx = static_cast<std::size_t>(start >> level);
  const auto& row = used_[static_cast<std::size_t>(level - min_level_)];
  return idx < row.size() ? row[idx] : 0;
}

std::int64_t DyadicBudget::capacity(int level) const {
  return static_cast<std::int64_t>(fraction_ *
                                   static_cast<double>(util::pow2(level)));
}

Instance gen_aligned(const AlignedConfig& config, util::Rng& rng) {
  assert(config.min_class >= 0 && config.min_class <= config.max_class);
  assert(config.fill > 0.0 && config.fill <= 1.0);
  const Slot horizon =
      config.horizon > 0 ? config.horizon : 4 * util::pow2(config.max_class);
  const std::int64_t L = inflation_of(config.gamma);
  const int levels = config.max_class - config.min_class + 1;

  // γ-slack feasibility lets the *inflated* jobs (length L = ceil(1/γ))
  // fill windows completely; `fill` scales below that ceiling.
  DyadicBudget budget(config.min_class, config.max_class, horizon,
                      config.fill);
  Instance out;
  for (int k = config.min_class; k <= config.max_class; ++k) {
    const Slot w = util::pow2(k);
    // Split the per-window budget evenly across levels so no level hogs it.
    const double mean = config.fill * static_cast<double>(w) /
                        (static_cast<double>(L) * levels);
    for (Slot start = 0; start + w <= horizon; start += w) {
      const std::int64_t want = poisson(mean, rng);
      for (std::int64_t i = 0; i < want; ++i) {
        if (budget.try_charge(start, k, L)) {
          out.jobs.push_back(JobSpec{start, start + w});
        }
      }
    }
  }
  out.normalize();
  return out;
}

Instance gen_general(const GeneralConfig& config, util::Rng& rng) {
  assert(config.min_window >= 4 && config.min_window <= config.max_window);
  assert(config.fill > 0.0 && config.fill <= 1.0);
  const Slot horizon =
      config.horizon > 0 ? config.horizon : 8 * config.max_window;
  assert(horizon >= config.max_window);
  const std::int64_t L = inflation_of(config.gamma);

  // Trimmed cores have size >= window/4, so their levels reach two below
  // the minimum window's level.
  const int min_level = std::max(0, util::floor_log2(config.min_window) - 2);
  const int max_level = util::floor_log2(horizon);
  DyadicBudget budget(min_level, max_level, horizon, config.fill);

  const auto target = static_cast<std::int64_t>(
      config.fill * static_cast<double>(horizon) / static_cast<double>(L));
  const std::int64_t attempts = 4 * std::max<std::int64_t>(target, 1);

  const int min_log = util::ceil_log2(config.min_window);
  const int max_log = util::floor_log2(config.max_window);

  Instance out;
  for (std::int64_t a = 0; a < attempts; ++a) {
    Slot w = 0;
    if (config.pow2_windows) {
      w = util::pow2(static_cast<int>(rng.range(min_log, max_log)));
    } else {
      // Log-uniform window size: uniform level, then uniform within it.
      const int k = static_cast<int>(rng.range(min_log, max_log));
      const Slot lo = std::max(config.min_window, util::pow2(k));
      const Slot hi = std::min(config.max_window, 2 * util::pow2(k) - 1);
      w = rng.range(lo, hi);
    }
    if (w > horizon) {
      continue;
    }
    const Slot release = rng.range(0, horizon - w);
    const AlignedWindow core = trimmed(release, release + w);
    if (core.level < min_level) {
      continue;
    }
    if (budget.try_charge(core.start, core.level, L)) {
      out.jobs.push_back(JobSpec{release, release + w});
    }
  }
  out.normalize();
  return out;
}

Instance gen_starvation(std::int64_t n, double gamma) {
  assert(n >= 1);
  const std::int64_t L = inflation_of(gamma);
  Instance out;
  out.jobs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t j = 1; j <= n; ++j) {
    out.jobs.push_back(JobSpec{0, j * L});
  }
  out.normalize();
  return out;
}

Instance gen_batch(std::int64_t count, Slot window, Slot release) {
  assert(count >= 0 && window >= 1 && release >= 0);
  Instance out;
  out.jobs.assign(static_cast<std::size_t>(count),
                  JobSpec{release, release + window});
  return out;
}

Instance gen_periodic(const std::vector<PeriodicFlow>& flows, Slot horizon) {
  Instance out;
  for (const auto& flow : flows) {
    assert(flow.period >= 1 && flow.deadline >= 1 &&
           flow.deadline <= flow.period && flow.offset >= 0);
    for (Slot r = flow.offset; r + flow.deadline <= horizon;
         r += flow.period) {
      out.jobs.push_back(JobSpec{r, r + flow.deadline});
    }
  }
  out.normalize();
  return out;
}

std::vector<PeriodicFlow> gen_periodic_flows(std::int64_t count,
                                             Slot min_period, Slot max_period,
                                             double gamma, double fill,
                                             util::Rng& rng) {
  assert(count >= 0 && min_period >= 1 && min_period <= max_period);
  assert(fill > 0.0 && fill <= 1.0);
  const std::int64_t L = inflation_of(gamma);
  const int min_log = util::ceil_log2(min_period);
  const int max_log = util::floor_log2(max_period);

  std::vector<PeriodicFlow> flows;
  double density = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    PeriodicFlow flow;
    flow.period = util::pow2(static_cast<int>(rng.range(min_log, max_log)));
    flow.deadline = flow.period;  // implicit deadlines
    flow.offset = rng.range(0, flow.period - 1);
    const double d =
        static_cast<double>(L) / static_cast<double>(flow.deadline);
    if (density + d > fill) {
      continue;  // thin the set to keep the inflated density bounded
    }
    density += d;
    flows.push_back(flow);
  }
  return flows;
}

Instance gen_poisson(double jobs_per_slot, Slot window, Slot horizon,
                     util::Rng& rng) {
  assert(jobs_per_slot >= 0.0 && window >= 1 && horizon >= window);
  const Slot span = horizon - window + 1;
  const double mean = jobs_per_slot * static_cast<double>(span);
  // Sample the total count, then scatter releases uniformly — equivalent
  // to a Poisson process and cheaper than per-slot draws.
  const std::int64_t count = poisson(mean, rng);
  Instance out;
  out.jobs.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const Slot r = rng.range(0, span - 1);
    out.jobs.push_back(JobSpec{r, r + window});
  }
  out.normalize();
  return out;
}

Instance merge(Instance base, const Instance& extra) {
  base.jobs.insert(base.jobs.end(), extra.jobs.begin(), extra.jobs.end());
  base.normalize();
  return base;
}

}  // namespace crmd::workload
