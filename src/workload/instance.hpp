#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

/// \file instance.hpp
/// Problem instances: sets of jobs with release times and deadlines.
///
/// §1.1 of the paper: an instance is a set of n jobs; job j has release
/// time r_j, deadline d_j, and one unit-length message. The job's *window*
/// is [r_j, d_j) with size w_j = d_j - r_j (we use the half-open reading so
/// that w_j equals the number of usable slots).

namespace crmd::workload {

/// One job's timing facts.
struct JobSpec {
  /// First slot the job may use.
  Slot release = 0;
  /// One past the last slot the job may use.
  Slot deadline = 0;

  /// Window size w_j.
  [[nodiscard]] Slot window() const noexcept { return deadline - release; }

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// A full problem instance. Jobs are kept in release order (ties broken by
/// deadline) by `normalize()`; generators always return normalized
/// instances.
struct Instance {
  std::vector<JobSpec> jobs;

  /// Number of jobs.
  [[nodiscard]] std::size_t size() const noexcept { return jobs.size(); }

  /// True when there are no jobs.
  [[nodiscard]] bool empty() const noexcept { return jobs.empty(); }

  /// Earliest release; 0 when empty.
  [[nodiscard]] Slot min_release() const noexcept;

  /// Latest deadline; 0 when empty.
  [[nodiscard]] Slot max_deadline() const noexcept;

  /// Smallest window size; 0 when empty.
  [[nodiscard]] Slot min_window() const noexcept;

  /// Largest window size; 0 when empty.
  [[nodiscard]] Slot max_window() const noexcept;

  /// Sorts jobs by (release, deadline) — the canonical order assumed by the
  /// simulator's arrival sweep.
  void normalize();

  /// Validates basic sanity: every job has release >= 0 and window >= 1.
  /// Returns false otherwise.
  [[nodiscard]] bool valid() const noexcept;

  /// Throwing form of valid(): raises std::invalid_argument naming the
  /// first offending job (negative release, or d_j <= r_j). Called by the
  /// Simulation ctor so malformed instances fail loudly instead of
  /// producing silent nonsense (e.g. jobs that can never run).
  void validate() const;

  /// True when every window size is a power of two and every window starts
  /// at a multiple of its size (§3's power-of-2-aligned special case).
  [[nodiscard]] bool is_aligned() const noexcept;
};

}  // namespace crmd::workload
