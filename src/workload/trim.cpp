#include "workload/trim.hpp"

#include <cassert>

#include "util/math.hpp"

namespace crmd::workload {

AlignedWindow trimmed(Slot release, Slot deadline) noexcept {
  assert(deadline > release);
  const Slot w = deadline - release;
  for (int k = util::floor_log2(w); k >= 0; --k) {
    const Slot start = util::align_up(release, util::pow2(k));
    if (start + util::pow2(k) <= deadline) {
      return AlignedWindow{start, k};
    }
  }
  // Unreachable: k == 0 always fits because w >= 1.
  return AlignedWindow{release, 0};
}

Instance trimmed(const Instance& instance) {
  Instance out;
  out.jobs.reserve(instance.size());
  for (const auto& j : instance.jobs) {
    const AlignedWindow t = trimmed(j.release, j.deadline);
    out.jobs.push_back(JobSpec{t.start, t.end()});
  }
  out.normalize();
  return out;
}

}  // namespace crmd::workload
