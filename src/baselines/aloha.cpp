#include "baselines/aloha.hpp"

#include <algorithm>

namespace crmd::baselines {

AlohaProtocol::AlohaProtocol(double p, util::Rng rng) : p_(p), rng_(rng) {}

void AlohaProtocol::on_activate(const sim::JobInfo& info) { info_ = info; }

sim::SlotAction AlohaProtocol::on_slot(const sim::SlotView& /*view*/) {
  sim::SlotAction action;
  transmitted_ = false;
  action.declared_prob = p_;
  if (rng_.bernoulli(p_)) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_ = true;
  }
  // Honest sleep declaration (DESIGN.md §6k): ALOHA only reads feedback on
  // slots it transmitted in, so it can keep the radio off otherwise.
  action.sleep = !action.transmit;
  return action;
}

void AlohaProtocol::on_feedback(const sim::SlotView& /*view*/,
                                const sim::SlotFeedback& fb) {
  if (transmitted_ && fb.outcome == sim::SlotOutcome::kSuccess) {
    succeeded_ = true;
  }
}

bool AlohaProtocol::done() const { return succeeded_; }

sim::ProtocolFactory make_aloha_factory(double p) {
  return sim::make_arena_factory<AlohaProtocol>(p);
}

sim::ProtocolFactory make_aloha_window_factory(double scale) {
  // The transmit probability depends on the job's window, so the generic
  // make_arena_factory shape does not fit; spell out both paths.
  const auto p_for = [scale](const sim::JobInfo& info) {
    return std::min(0.5, scale / static_cast<double>(info.window()));
  };
  return sim::ProtocolFactory(
      [p_for](const sim::JobInfo& info, util::Rng rng) {
        return std::make_unique<AlohaProtocol>(p_for(info), rng);
      },
      [p_for](const sim::JobInfo& info, util::Rng rng,
              util::MonotonicArena& arena) -> sim::Protocol* {
        return arena.create<AlohaProtocol>(p_for(info), rng);
      });
}

}  // namespace crmd::baselines
