#include "baselines/energy_beb.hpp"

#include <algorithm>
#include <cmath>

namespace crmd::baselines {

EnergyBebProtocol::EnergyBebProtocol(const core::Params& params,
                                     util::Rng rng)
    : params_(params), rng_(rng) {}

void EnergyBebProtocol::on_activate(const sim::JobInfo& info) {
  info_ = info;
  // Under binary_ack listeners are deaf by the model itself, so a carrier
  // sample would burn an awake slot to hear guaranteed silence.
  carrier_sense_ =
      params_.energy_listen_after_failure && info.caps.listener_success_visible;
  schedule_spread(0);
}

void EnergyBebProtocol::schedule_spread(Slot from) {
  spread_begin_ = from;
  const Slot remaining = info_.window() - from;
  if (remaining <= 0) {
    // Laxity spent: the deadline is the next slot. Sleep out the rest; the
    // simulator expires the job.
    spread_end_ = from;
    prob_ = 0.0;
    attempt_slot_ = -1;
    return;
  }
  // Spread = frac · 2^boost · remaining, at least one slot wide. Computed in
  // doubles so a deep boost cannot overflow Slot arithmetic — the draw below
  // only materialises offsets that land inside the remaining laxity.
  const double spread =
      std::max(1.0, std::ldexp(params_.energy_spread_frac,
                               std::min(boost_, 50)) *
                        static_cast<double>(remaining));
  prob_ = 1.0 / spread;
  const double offset = rng_.next_double() * spread;
  if (offset >= static_cast<double>(remaining)) {
    // The draw overran the deadline: give up and sleep out the window. The
    // spread's in-window portion still declares its ex-ante probability.
    spread_end_ = info_.window();
    attempt_slot_ = -1;
    return;
  }
  spread_end_ = std::min<Slot>(
      from + static_cast<Slot>(std::ceil(spread)), info_.window());
  attempt_slot_ = from + static_cast<Slot>(offset);
}

sim::SlotAction EnergyBebProtocol::on_slot(const sim::SlotView& view) {
  sim::SlotAction action;
  transmitted_ = false;
  listening_ = false;
  const Slot t = view.since_release;
  if (t >= spread_begin_ && t < spread_end_) {
    action.declared_prob = prob_;
  }
  if (t == listen_slot_) {
    // One-slot carrier sample after a failure: stay awake to hear whether
    // the channel is congested before drawing the next spread.
    listening_ = true;
  } else if (t == attempt_slot_) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_ = true;
  }
  // Honest sleep declaration (DESIGN.md §6k): the radio is on only for the
  // job's own attempts and armed carrier samples.
  action.sleep = !action.transmit && !listening_;
  return action;
}

void EnergyBebProtocol::on_feedback(const sim::SlotView& view,
                                    const sim::SlotFeedback& fb) {
  const Slot t = view.since_release;
  if (transmitted_) {
    if (fb.outcome == sim::SlotOutcome::kSuccess) {
      succeeded_ = true;
      return;
    }
    // Collision (or jam). The failure itself is the congestion sample: the
    // next spread doubles unconditionally — the slow feedback loop needs no
    // extra listening for its multiplicative response.
    ++failures_;
    boost_ = std::min(boost_ + 1, 50);
    if (carrier_sense_) {
      listen_slot_ = t + 1;
      spread_begin_ = spread_end_ = t + 1;  // no declared probability until
      prob_ = 0.0;                          // rescheduled after the sample
      attempt_slot_ = -1;
    } else {
      schedule_spread(t + 1);
    }
    return;
  }
  if (listening_) {
    listen_slot_ = -1;
    if (fb.outcome == sim::SlotOutcome::kNoise) {
      // The channel is still congested: widen the next spread a second
      // time beyond the unconditional failure doubling.
      boost_ = std::min(boost_ + 1, 50);
    }
    schedule_spread(t + 1);
    return;
  }
  // Sleeping: feedback was scrubbed to silence and the state is untouched —
  // the promise the dormant span makes to the fast-forward engine.
}

bool EnergyBebProtocol::done() const { return succeeded_; }

sim::DormantSpan EnergyBebProtocol::dormant_span(
    const sim::SlotView& view) const {
  const Slot t = view.since_release;
  if (succeeded_ || t == listen_slot_) {
    return {};  // done, or awake for a carrier sample — simulate it
  }
  if (attempt_slot_ < 0) {
    // Given up (or laxity spent): asleep until the simulator expires the
    // job at its deadline. The declared probability stays 1/spread through
    // the in-window tail of the overrunning spread, then drops to zero.
    if (t < spread_end_) {
      return {spread_end_ - t, prob_};
    }
    return {info_.window() - t, 0.0};
  }
  if (t >= attempt_slot_) {
    return {};  // the attempt is now — simulate it
  }
  // Every slot in [t, attempt_slot_) lies inside the current spread, so
  // on_slot would declare the constant 1/spread and sleep.
  return {attempt_slot_ - t, prob_};
}

sim::ProtocolFactory make_energy_beb_factory(core::Params params) {
  params.validate();
  return sim::make_arena_factory<EnergyBebProtocol>(params);
}

}  // namespace crmd::baselines
