#include "baselines/sawtooth.hpp"

#include <cmath>

#include "util/math.hpp"

namespace crmd::baselines {

SawtoothProtocol::SawtoothProtocol(util::Rng rng) : rng_(rng) {}

void SawtoothProtocol::on_activate(const sim::JobInfo& info) {
  info_ = info;
  epoch_ = 1;
  phase_ = 1;
  phase_remaining_ = util::pow2(phase_);
}

void SawtoothProtocol::advance() {
  if (--phase_remaining_ > 0) {
    return;
  }
  if (phase_ > 1) {
    --phase_;  // next tooth: smaller window, higher probability
  } else {
    ++epoch_;  // epoch done: restart the sweep one size larger
    phase_ = epoch_;
  }
  phase_remaining_ = util::pow2(std::min(phase_, 40));
}

sim::SlotAction SawtoothProtocol::on_slot(const sim::SlotView& /*view*/) {
  sim::SlotAction action;
  transmitted_ = false;
  const double p = std::ldexp(1.0, -phase_);  // 2^-phase
  action.declared_prob = p;
  if (rng_.bernoulli(p)) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_ = true;
  }
  // Honest sleep declaration (DESIGN.md §6k): on non-transmit slots
  // on_feedback always advance()s regardless of the feedback content — a
  // pure timer tick the simulator still delivers to sleepers.
  action.sleep = !action.transmit;
  return action;
}

void SawtoothProtocol::on_feedback(const sim::SlotView& /*view*/,
                                   const sim::SlotFeedback& fb) {
  if (transmitted_ && fb.outcome == sim::SlotOutcome::kSuccess) {
    succeeded_ = true;
    return;
  }
  advance();
}

bool SawtoothProtocol::done() const { return succeeded_; }

sim::ProtocolFactory make_sawtooth_factory() {
  return sim::make_arena_factory<SawtoothProtocol>();
}

}  // namespace crmd::baselines
