#pragma once

#include "sim/protocol.hpp"

/// \file beb.hpp
/// Windowed binary exponential backoff — the classic contention-resolution
/// algorithm (Metcalfe–Boggs Ethernet [72]; IEEE 802.11 uses the same
/// shape). The paper's introduction singles BEB out as the algorithm whose
/// starvation behaviour motivates deadlines: a job picks a uniformly random
/// slot in its current backoff window, doubles the window after every
/// collision (up to a cap), and retries until it succeeds — with no regard
/// for its deadline. Implemented here as the deadline-agnostic baseline
/// for E13.

namespace crmd::baselines {

/// Backoff shape parameters.
struct BebConfig {
  /// Initial contention-window size (slots).
  std::int64_t cw_min = 8;
  /// Maximum contention-window size; 0 means uncapped doubling.
  std::int64_t cw_max = 1 << 16;
};

/// Per-job windowed binary exponential backoff.
class BebProtocol final : public sim::Protocol {
 public:
  BebProtocol(const BebConfig& config, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;
  /// Dormant until the drawn backoff slot: inside the current contention
  /// window the declared probability is the constant 1/window, feedback is
  /// ignored unless this job transmitted, and the next transmission slot
  /// is already fixed.
  [[nodiscard]] sim::DormantSpan dormant_span(
      const sim::SlotView& view) const override;

  /// Collisions suffered so far (test hook).
  [[nodiscard]] int failures() const noexcept { return failures_; }

 private:
  void schedule_attempt(Slot from);

  BebConfig config_;
  util::Rng rng_;
  sim::JobInfo info_;
  int failures_ = 0;
  Slot window_begin_ = 0;
  Slot window_len_ = 0;
  Slot attempt_slot_ = 0;  // since-release
  bool transmitted_ = false;
  bool succeeded_ = false;
};

/// Factory adapter for the simulator.
[[nodiscard]] sim::ProtocolFactory make_beb_factory(BebConfig config = {});

}  // namespace crmd::baselines
