#pragma once

#include <vector>

#include "sim/metrics.hpp"
#include "workload/instance.hpp"

/// \file edf.hpp
/// Centralized earliest-deadline-first reference scheduler.
///
/// EDF is optimal for unit jobs with release times and deadlines on one
/// channel, so its outcome is the information-theoretic ceiling every
/// distributed protocol is measured against in the comparison experiments:
/// on a feasible instance EDF delivers *every* message (and on infeasible
/// ones it delivers a maximal prefix in the EDF order). This is not a
/// channel protocol — it assumes an omniscient scheduler — which is
/// exactly its role as a baseline.

namespace crmd::baselines {

/// Simulates centralized EDF: at each slot, transmit the live job with the
/// earliest deadline (ties by release, then id). Returns one JobResult per
/// job in instance order (ids are instance indices after normalization).
[[nodiscard]] std::vector<sim::JobResult> edf_schedule(
    workload::Instance instance);

/// Convenience: the number of jobs EDF delivers by their deadlines.
[[nodiscard]] std::int64_t edf_successes(const workload::Instance& instance);

}  // namespace crmd::baselines
