#pragma once

#include "sim/protocol.hpp"

/// \file sawtooth.hpp
/// Sawtooth backoff — the non-monotone backoff that achieves asymptotically
/// optimal makespan for batch instances ([8, 45, 52] in the paper; windowed
/// monotone backoff like BEB provably does not [13]). The paper cites it as
/// the state of the art for throughput-style guarantees; like BEB it is
/// deadline-agnostic, so it serves as the stronger throughput baseline in
/// E13.
///
/// Shape: epochs i = 1, 2, 3, …; epoch i sweeps phases j = i, i-1, …, 1
/// where phase j spans 2^j slots with per-slot transmission probability
/// 2^-j. Probabilities thus ramp *up* within an epoch (the "teeth"), and
/// epochs grow so that a batch of any size n is eventually swept by a
/// phase with X ≈ n.

namespace crmd::baselines {

/// Per-job sawtooth backoff.
class SawtoothProtocol final : public sim::Protocol {
 public:
  explicit SawtoothProtocol(util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;

  /// Current epoch (test hook).
  [[nodiscard]] int epoch() const noexcept { return epoch_; }
  /// Current phase within the epoch, counting down (test hook).
  [[nodiscard]] int phase() const noexcept { return phase_; }

 private:
  void advance();

  util::Rng rng_;
  sim::JobInfo info_;
  int epoch_ = 1;
  int phase_ = 1;          // counts i, i-1, ..., 1 within epoch i
  Slot phase_remaining_ = 0;
  bool transmitted_ = false;
  bool succeeded_ = false;
};

/// Factory adapter for the simulator.
[[nodiscard]] sim::ProtocolFactory make_sawtooth_factory();

}  // namespace crmd::baselines
