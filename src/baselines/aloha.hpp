#pragma once

#include "sim/protocol.hpp"

/// \file aloha.hpp
/// Slotted ALOHA: transmit with a fixed probability in every slot until
/// success. The simplest memoryless baseline — useful as a contention
/// floor in the comparison experiments and in the Lemma 2 bound
/// measurements (fixed per-job probabilities give exactly controllable
/// slot contention).

namespace crmd::baselines {

/// Per-job slotted-ALOHA with fixed transmission probability `p`.
class AlohaProtocol final : public sim::Protocol {
 public:
  AlohaProtocol(double p, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;

 private:
  double p_;
  util::Rng rng_;
  sim::JobInfo info_;
  bool transmitted_ = false;
  bool succeeded_ = false;
};

/// Factory with fixed p for every job.
[[nodiscard]] sim::ProtocolFactory make_aloha_factory(double p);

/// Factory where each job transmits with probability scale/window — the
/// "fair share" tuning (expected one transmission per `1/scale` windows of
/// contention budget).
[[nodiscard]] sim::ProtocolFactory make_aloha_window_factory(double scale);

}  // namespace crmd::baselines
