#include "baselines/beb.hpp"

#include <algorithm>

namespace crmd::baselines {

BebProtocol::BebProtocol(const BebConfig& config, util::Rng rng)
    : config_(config), rng_(rng) {}

void BebProtocol::on_activate(const sim::JobInfo& info) {
  info_ = info;
  schedule_attempt(0);
}

void BebProtocol::schedule_attempt(Slot from) {
  window_len_ = config_.cw_min << std::min(failures_, 40);
  if (config_.cw_max > 0) {
    window_len_ = std::min(window_len_, config_.cw_max);
  }
  window_begin_ = from;
  attempt_slot_ = from + rng_.slot_in(0, window_len_);
}

sim::SlotAction BebProtocol::on_slot(const sim::SlotView& view) {
  sim::SlotAction action;
  transmitted_ = false;
  const Slot t = view.since_release;
  if (t >= window_begin_ && t < window_begin_ + window_len_) {
    action.declared_prob = 1.0 / static_cast<double>(window_len_);
  }
  if (t == attempt_slot_) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_ = true;
  }
  // Honest sleep declaration (DESIGN.md §6k): on_feedback ignores every
  // slot this job did not transmit in, so it only wakes for its attempts.
  action.sleep = !action.transmit;
  return action;
}

void BebProtocol::on_feedback(const sim::SlotView& view,
                              const sim::SlotFeedback& fb) {
  if (!transmitted_) {
    return;
  }
  if (fb.outcome == sim::SlotOutcome::kSuccess) {
    succeeded_ = true;
    return;
  }
  // Collision (or jam): double the window and retry after this slot.
  ++failures_;
  schedule_attempt(view.since_release + 1);
}

bool BebProtocol::done() const { return succeeded_; }

sim::DormantSpan BebProtocol::dormant_span(const sim::SlotView& view) const {
  const Slot t = view.since_release;
  if (succeeded_ || t < window_begin_ || t >= attempt_slot_) {
    return {};  // done, pre-window, or the attempt is now — simulate it
  }
  // Every slot in [t, attempt_slot_) lies inside the current contention
  // window [window_begin_, window_begin_ + window_len_), so on_slot would
  // declare the constant 1/window_len_ and never transmit.
  return {attempt_slot_ - t, 1.0 / static_cast<double>(window_len_)};
}

sim::ProtocolFactory make_beb_factory(BebConfig config) {
  return sim::make_arena_factory<BebProtocol>(config);
}

}  // namespace crmd::baselines
