#include "baselines/edf.hpp"

#include <algorithm>
#include <queue>

namespace crmd::baselines {

std::vector<sim::JobResult> edf_schedule(workload::Instance instance) {
  instance.normalize();
  const auto n = instance.jobs.size();

  std::vector<sim::JobResult> results(n);
  for (std::size_t i = 0; i < n; ++i) {
    results[i].id = static_cast<JobId>(i);
    results[i].release = instance.jobs[i].release;
    results[i].deadline = instance.jobs[i].deadline;
    results[i].success = false;
    results[i].success_slot = kNoSlot;
  }
  if (n == 0) {
    return results;
  }

  struct Entry {
    Slot deadline;
    Slot release;
    JobId id;
    bool operator>(const Entry& other) const {
      if (deadline != other.deadline) {
        return deadline > other.deadline;
      }
      if (release != other.release) {
        return release > other.release;
      }
      return id > other.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;

  std::size_t next = 0;
  Slot t = instance.jobs.front().release;
  while (next < n || !ready.empty()) {
    if (ready.empty()) {
      t = std::max(t, instance.jobs[next].release);
    }
    while (next < n && instance.jobs[next].release <= t) {
      ready.push(Entry{instance.jobs[next].deadline,
                       instance.jobs[next].release,
                       static_cast<JobId>(next)});
      ++next;
    }
    // Drop expired jobs (unit length: a job needs one slot before its
    // deadline).
    while (!ready.empty() && ready.top().deadline <= t) {
      ready.pop();  // missed — result already marked failure
    }
    if (ready.empty()) {
      continue;
    }
    const Entry e = ready.top();
    ready.pop();
    results[e.id].success = true;
    results[e.id].success_slot = t;
    ++t;
  }
  return results;
}

std::int64_t edf_successes(const workload::Instance& instance) {
  const auto results = edf_schedule(instance);
  std::int64_t count = 0;
  for (const auto& r : results) {
    count += r.success ? 1 : 0;
  }
  return count;
}

}  // namespace crmd::baselines
