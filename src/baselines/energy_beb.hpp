#pragma once

#include "core/params.hpp"
#include "sim/protocol.hpp"

/// \file energy_beb.hpp
/// Energy-aware backoff with a slow feedback loop (DESIGN.md §6k).
///
/// Bender–Fineman–Gilbert–Kuszmaul (arXiv:2302.07751) study contention
/// resolution when consulting the channel is itself the scarce resource:
/// the feedback loop runs orders of magnitude slower than the slot clock,
/// so a protocol that listens every slot pays for its entire lifetime in
/// radio-on energy. The algorithmic consequence is to invert BEB's shape.
/// BEB starts aggressive (a tiny contention window) and reacts to every
/// collision, buying latency with Θ(log n) wake-ups per job; ENERGY_BEB
/// starts maximally spread — the first attempt lands uniformly in
/// `energy_spread_frac` of the job's whole laxity — and touches the channel
/// only at its own attempts (plus an optional carrier-sample slot after a
/// failure, off by default). Under batch arrivals the expected cost is
/// O(1) awake slots per job, against BEB's log₂(n/cw_min) + O(1).
///
/// Retry rule: every failed attempt doubles the spread of the next one —
/// the collision itself is the congestion sample, so no extra listening is
/// needed for the multiplicative response. Spreads are measured against the
/// *remaining* laxity but are allowed to overrun it: attempt k+1 is drawn
/// uniformly over `energy_spread_frac · 2^k · remaining` slots, and a draw
/// that lands past the deadline means the job gives up and sleeps out its
/// window (the slow loop's analogue of BEB's contention window drifting
/// past the deadline). With `energy_spread_frac > 1` even the first attempt
/// may be shed — deliberate duty-cycling that trades deadline-success for
/// sub-one awake slots per job, the energy-extreme end of the E24 Pareto
/// frontier.
///
/// When `energy_listen_after_failure` is set and the channel makes listener
/// success visible, the job spends one awake slot after each failure
/// sampling the carrier; hearing noise doubles the next spread a second
/// time. Under binary_ack listeners are deaf, the sample is skipped, and
/// the job's entire feedback diet is its own ACKs.
///
/// Every slot between wake-ups is declared `SlotAction::sleep` and promised
/// to the fast-forward engine as a dormant span, so the energy meter and
/// the skip logic agree by construction.

namespace crmd::baselines {

/// Slow-feedback-loop backoff job program.
class EnergyBebProtocol final : public sim::Protocol {
 public:
  EnergyBebProtocol(const core::Params& params, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;
  /// Dormant until the next wake-up (attempt or carrier sample): the
  /// declared probability is the constant 1/spread inside the current
  /// spread, scrubbed feedback is a no-op, and the wake slot is pre-drawn.
  [[nodiscard]] sim::DormantSpan dormant_span(
      const sim::SlotView& view) const override;

  /// Failed attempts so far (test hook).
  [[nodiscard]] int failures() const noexcept { return failures_; }
  /// True once a spread draw overran the deadline and the job went to
  /// sleep for good (test hook).
  [[nodiscard]] bool gave_up() const noexcept {
    return attempt_slot_ < 0 && spread_end_ > spread_begin_;
  }

 private:
  /// Draw the next attempt uniformly over the (possibly deadline-
  /// overrunning) spread starting at `from` (since-release).
  void schedule_spread(Slot from);

  core::Params params_;
  util::Rng rng_;
  sim::JobInfo info_;
  bool carrier_sense_ = false;  // listen-after-failure enabled for this run
  int failures_ = 0;
  int boost_ = 0;          // log2 of the congestion widening factor
  Slot spread_begin_ = 0;  // since-release; spread = [begin, end) ∩ window
  Slot spread_end_ = 0;    // clipped to the window; prob_ declared inside
  double prob_ = 0.0;      // 1/spread — the ex-ante per-slot probability
  Slot attempt_slot_ = 0;  // since-release; -1 = given up / laxity spent
  Slot listen_slot_ = -1;  // since-release; -1 when no sample is armed
  bool transmitted_ = false;
  bool listening_ = false;
  bool succeeded_ = false;
};

/// Factory adapter for the simulator. Validates `params`.
[[nodiscard]] sim::ProtocolFactory make_energy_beb_factory(
    core::Params params);

}  // namespace crmd::baselines
