#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace crmd::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch: expected " +
                                std::to_string(headers_.size()) + ", got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title.empty()) {
    out << "== " << title << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      quoted += "\"\"";
    } else {
      quoted += ch;
    }
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void Table::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_csv(out);
  return static_cast<bool>(out);
}

namespace {

std::string json_escape(const std::string& cell) {
  std::string out;
  out.reserve(cell.size() + 2);
  for (const char ch : cell) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

void Table::set_meta(const std::string& key, const std::string& json_value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = json_value;
      return;
    }
  }
  meta_.emplace_back(key, json_value);
}

void Table::write_json(std::ostream& out) const {
  const char* indent = meta_.empty() ? "  " : "    ";
  if (!meta_.empty()) {
    out << "{\n  \"meta\": {";
    for (std::size_t m = 0; m < meta_.size(); ++m) {
      out << (m == 0 ? "" : ", ") << '"' << json_escape(meta_[m].first)
          << "\": " << meta_[m].second;
    }
    out << "},\n  \"rows\": [\n";
  } else {
    out << "[\n";
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << indent << '{';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << (c == 0 ? "" : ", ") << '"' << json_escape(headers_[c])
          << "\": \"" << json_escape(rows_[r][c]) << '"';
    }
    out << '}' << (r + 1 < rows_.size() ? "," : "") << '\n';
  }
  if (!meta_.empty()) {
    out << "  ]\n}\n";
  } else {
    out << "]\n";
  }
}

bool Table::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_json(out);
  return static_cast<bool>(out);
}

std::string fmt(double v, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << v;
  return out.str();
}

std::string fmt_sci(double v, int digits) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(digits) << v;
  return out.str();
}

std::string fmt_count(std::int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string with_sep;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) {
      with_sep += ',';
    }
    with_sep += digits[i];
  }
  return (v < 0 ? "-" : "") + with_sep;
}

}  // namespace crmd::util
