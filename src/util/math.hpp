#pragma once

#include <cstdint>

#include "util/types.hpp"

/// \file math.hpp
/// Small integer/log helpers used throughout the window arithmetic.
/// Windows in the paper are powers of two ("job class ℓ" has windows of
/// size 2^ℓ aligned at multiples of 2^ℓ), so exact power-of-two arithmetic
/// appears everywhere.

namespace crmd::util {

/// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::int64_t x) noexcept {
  return x > 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] int floor_log2(std::int64_t x) noexcept;

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] int ceil_log2(std::int64_t x) noexcept;

/// 2^k for 0 <= k <= 62.
[[nodiscard]] constexpr std::int64_t pow2(int k) noexcept {
  return std::int64_t{1} << k;
}

/// Largest power of two <= x (x >= 1).
[[nodiscard]] std::int64_t pow2_floor(std::int64_t x) noexcept;

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] std::int64_t pow2_ceil(std::int64_t x) noexcept;

/// Largest multiple of `align` that is <= x. Requires align > 0.
[[nodiscard]] constexpr std::int64_t align_down(std::int64_t x,
                                                std::int64_t align) noexcept {
  std::int64_t q = x / align;
  if (x % align != 0 && x < 0) {
    --q;
  }
  return q * align;
}

/// Smallest multiple of `align` that is >= x. Requires align > 0.
[[nodiscard]] constexpr std::int64_t align_up(std::int64_t x,
                                              std::int64_t align) noexcept {
  const std::int64_t down = align_down(x, align);
  return down == x ? x : down + align;
}

/// ceil(a / b) for a >= 0, b > 0.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Natural-log-based log2 of a double (for the polylog broadcast
/// probabilities in PUNCTUAL). Returns at least `floor_val` so that tiny
/// windows never yield non-positive logs; log2_at_least(w, 1) is the common
/// use (log factors in the paper are only meaningful for w >= 2).
[[nodiscard]] double log2_at_least(double x, double floor_val) noexcept;

}  // namespace crmd::util
