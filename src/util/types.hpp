#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental scalar types shared by every crmd subsystem.

namespace crmd {

/// Index of a time slot on the multiple-access channel. Slots are the unit
/// of time in the paper's model: synchronized, unit-length, and numbered
/// from 0 by the simulation harness (protocols other than ALIGNED never see
/// this global index; they only see slots-since-release).
using Slot = std::int64_t;

/// Harness-side identifier for a job. The paper's jobs have *no* IDs; this
/// identifier exists purely for bookkeeping (metrics, message provenance in
/// the simulator) and must never influence a protocol's decisions.
using JobId = std::uint32_t;

/// Sentinel for "no job".
inline constexpr JobId kNoJob = std::numeric_limits<JobId>::max();

/// Sentinel for "no slot" / "never".
inline constexpr Slot kNoSlot = std::numeric_limits<Slot>::min();

}  // namespace crmd
