#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

/// \file table.hpp
/// Console table rendering and CSV emission for the experiment harnesses.
/// Every bench binary prints its table through this so that the output of
/// `for b in build/bench/*; do $b; done` is uniform and diffable.

namespace crmd::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with fixed precision. Rows must match the header arity.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a fully formed row. Throws std::invalid_argument on arity
  /// mismatch.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with padded columns, a header rule, and a leading title line
  /// when `title` is nonempty.
  void print(std::ostream& out, const std::string& title = "") const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& out) const;

  /// Convenience: writes CSV to `path`, creating/truncating the file.
  /// Returns false (and leaves no partial file guarantee) on I/O failure.
  bool save_csv(const std::string& path) const;

  /// Attaches a run-level metadata entry emitted alongside the rows by
  /// write_json (e.g. wall_ms, slots_per_sec from the run profiler).
  /// Values are raw JSON fragments: pass already-quoted strings for text
  /// ("\"punctual\"") and bare numerals for numbers ("12.5"). Repeated keys
  /// overwrite. Meta never appears in print()/CSV output, so deterministic
  /// console/CSV artifacts stay byte-stable even when meta carries timings.
  void set_meta(const std::string& key, const std::string& json_value);

  /// Writes the table as JSON. With no metadata: a JSON array of objects,
  /// one per row, keyed by the column headers (the historical shape). With
  /// metadata: {"meta": {...}, "rows": [...]}. All row values are emitted
  /// as JSON strings (the table stores formatted cells, not raw numbers);
  /// tools/plot_results.py coerces numerics back on load and accepts both
  /// shapes.
  void write_json(std::ostream& out) const;

  /// Convenience: writes JSON to `path`. Returns false on I/O failure.
  bool save_json(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  /// Insertion-ordered (key, raw JSON value) pairs.
  std::vector<std::pair<std::string, std::string>> meta_;
};

/// Formats a double with `digits` digits after the decimal point.
[[nodiscard]] std::string fmt(double v, int digits = 4);

/// Formats a double in scientific notation with `digits` significant
/// decimals (for failure probabilities spanning many orders of magnitude).
[[nodiscard]] std::string fmt_sci(double v, int digits = 2);

/// Formats an integer with thousands separators for readability.
[[nodiscard]] std::string fmt_count(std::int64_t v);

}  // namespace crmd::util
