#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace crmd::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::add_run(double value, std::size_t count) noexcept {
  if (count == 0) {
    return;
  }
  RunningStats batch;
  batch.n_ = count;
  batch.mean_ = value;
  batch.m2_ = 0.0;
  batch.min_ = value;
  batch.max_ = value;
  merge(batch);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ >= 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept {
  return 1.959963984540054 * stderr_mean();
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SuccessCounter::add(bool success) noexcept {
  ++n_;
  if (success) {
    ++s_;
  }
}

void SuccessCounter::add_many(std::uint64_t successes,
                              std::uint64_t trials) noexcept {
  s_ += successes;
  n_ += trials;
}

double SuccessCounter::rate() const noexcept {
  return n_ == 0 ? 0.0
                 : static_cast<double>(s_) / static_cast<double>(n_);
}

double SuccessCounter::failure_rate() const noexcept {
  return n_ == 0 ? 0.0 : 1.0 - rate();
}

std::pair<double, double> SuccessCounter::wilson95() const noexcept {
  if (n_ == 0) {
    return {0.0, 1.0};
  }
  const double z = 1.959963984540054;
  const double n = static_cast<double>(n_);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

void SuccessCounter::merge(const SuccessCounter& other) noexcept {
  s_ += other.s_;
  n_ += other.n_;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins >= 1 && lo < hi);
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t i) const noexcept {
  return i < counts_.size() ? counts_[i] : 0;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(std::max<std::size_t>(bar, 1), '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace crmd::util
