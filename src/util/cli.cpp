#include "util/cli.hpp"

#include <stdexcept>

namespace crmd::util {
namespace {

constexpr const char* kPresent = "\x01present";

}  // namespace

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // Bare boolean flag. (A separate `--key value` form would be ambiguous
    // with positionals, so only `--key=value` carries values.)
    flags_[body] = kPresent;
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second == kPresent) {
    return fallback;
  }
  return it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second == kPresent) {
    return fallback;
  }
  std::size_t used = 0;
  const std::int64_t value = std::stoll(it->second, &used, 10);
  if (used != it->second.size()) {
    throw std::invalid_argument("malformed integer for --" + key + ": " +
                                it->second);
  }
  return value;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second == kPresent) {
    return fallback;
  }
  std::size_t used = 0;
  const double value = std::stod(it->second, &used);
  if (used != it->second.size()) {
    throw std::invalid_argument("malformed double for --" + key + ": " +
                                it->second);
  }
  return value;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == kPresent || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  return false;
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [k, v] : flags_) {
    out.push_back(k);
  }
  return out;
}

}  // namespace crmd::util
