#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file cli.hpp
/// Minimal flag parsing for the experiment harnesses.
///
/// Supported forms: `--key=value` and bare `--flag` (boolean); everything
/// else is positional. Unknown flags are kept and can be listed, so
/// harnesses can warn rather than crash. Not intended as a general-purpose
/// CLI library — just enough for reproducible experiment invocation lines.

namespace crmd::util {

/// Parsed command line.
class Args {
 public:
  /// Parses argv (skipping argv[0]).
  Args(int argc, const char* const* argv);

  /// True if the flag appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  /// String value of `key`, or `fallback` when absent/valueless.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;

  /// Integer value of `key` (base 10), or `fallback` when absent.
  /// Throws std::invalid_argument on malformed numbers.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;

  /// Double value of `key`, or `fallback` when absent.
  /// Throws std::invalid_argument on malformed numbers.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Boolean flag: present without value or with value in
  /// {1, true, yes, on} (case-sensitive) -> true; absent -> fallback.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// All flag keys seen, for unknown-flag warnings.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace crmd::util
