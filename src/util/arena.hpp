#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

/// \file arena.hpp
/// Monotonic bump allocator for per-simulation object lifetimes.
///
/// A simulation constructs one protocol object per job up front, walks them
/// for the lifetime of the run, and throws them all away together. That
/// pattern is exactly what a monotonic arena serves: allocation is a pointer
/// bump into geometrically growing blocks, objects of one simulation are
/// packed contiguously (instead of scattered across the heap by per-job
/// `new`), and the whole population is released in one shot when the arena
/// dies.
///
/// Contract:
///  - `allocate`/`create` never free individually; memory is reclaimed only
///    by destroying (or moving-from) the arena.
///  - The arena does NOT run destructors of created objects. Callers that
///    create non-trivially-destructible objects must invoke the destructor
///    themselves before the arena goes away (the simulator destroys each
///    protocol at retire time, which also releases the protocol's own heap
///    members early).
///  - Not thread-safe; one arena belongs to one simulation, and simulations
///    are confined to one worker thread each (see analysis/runner.cpp).

namespace crmd::util {

/// Bump allocator with geometrically growing blocks.
class MonotonicArena {
 public:
  /// `first_block_bytes` sizes the initial block; later blocks double up to
  /// `kMaxBlockBytes`. Nothing is allocated until the first request.
  explicit MonotonicArena(std::size_t first_block_bytes = 16 * 1024) noexcept
      : next_block_bytes_(first_block_bytes) {}

  MonotonicArena(MonotonicArena&&) noexcept = default;
  MonotonicArena& operator=(MonotonicArena&&) noexcept = default;
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  ~MonotonicArena() = default;

  /// Returns `size` bytes aligned to `align` (a power of two). Oversized
  /// requests get a dedicated block; alignment above
  /// __STDCPP_DEFAULT_NEW_ALIGNMENT__ is honored by over-allocating.
  void* allocate(std::size_t size, std::size_t align);

  /// Constructs a T in the arena. The caller owns the *destructor* (see the
  /// file contract); the arena owns the memory.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  /// Total bytes handed out so far (not counting block slack).
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }

  /// Total bytes reserved from the upstream heap.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return bytes_reserved_;
  }

 private:
  static constexpr std::size_t kMaxBlockBytes = 1u << 20;

  /// Starts a fresh block of at least `min_bytes`.
  void grow(std::size_t min_bytes);

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cursor_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t next_block_bytes_;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace crmd::util
