#include "util/rng.hpp"

namespace crmd::util {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // Guard against the (astronomically unlikely) all-zero state, which is a
  // fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::child(std::uint64_t stream) const noexcept {
  // Mix the stream id into the master seed through two SplitMix64 rounds so
  // that nearby streams (job 0, job 1, ...) land far apart in seed space.
  std::uint64_t s = seed_ ^ (0xA0761D6478BD642FULL * (stream + 1));
  const std::uint64_t mixed = splitmix64(s);
  return Rng(mixed ^ splitmix64(s));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return next_double() < p;
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded draw.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

Slot Rng::slot_in(Slot begin, Slot end) noexcept {
  return range(begin, end - 1);
}

}  // namespace crmd::util
