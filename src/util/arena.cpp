#include "util/arena.hpp"

#include <algorithm>
#include <cassert>

namespace crmd::util {

void* MonotonicArena::allocate(std::size_t size, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align: power of two");
  if (size == 0) {
    size = 1;
  }
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
  if (cursor_ == nullptr ||
      aligned + size > reinterpret_cast<std::uintptr_t>(end_)) {
    // A fresh block from operator new[] is aligned for
    // __STDCPP_DEFAULT_NEW_ALIGNMENT__; over-allocate to honor more.
    const std::size_t slack =
        align > __STDCPP_DEFAULT_NEW_ALIGNMENT__ ? align : 0;
    grow(size + slack);
    addr = reinterpret_cast<std::uintptr_t>(cursor_);
    aligned = (addr + (align - 1)) & ~(align - 1);
  }
  cursor_ = reinterpret_cast<std::byte*>(aligned + size);
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(aligned);
}

void MonotonicArena::grow(std::size_t min_bytes) {
  const std::size_t bytes = std::max(min_bytes, next_block_bytes_);
  blocks_.push_back(std::make_unique<std::byte[]>(bytes));
  cursor_ = blocks_.back().get();
  end_ = cursor_ + bytes;
  bytes_reserved_ += bytes;
  next_block_bytes_ = std::min(bytes * 2, kMaxBlockBytes);
}

}  // namespace crmd::util
