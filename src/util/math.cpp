#include "util/math.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace crmd::util {

int floor_log2(std::int64_t x) noexcept {
  assert(x >= 1);
  return 63 - std::countl_zero(static_cast<std::uint64_t>(x));
}

int ceil_log2(std::int64_t x) noexcept {
  assert(x >= 1);
  const int fl = floor_log2(x);
  return is_pow2(x) ? fl : fl + 1;
}

std::int64_t pow2_floor(std::int64_t x) noexcept {
  return pow2(floor_log2(x));
}

std::int64_t pow2_ceil(std::int64_t x) noexcept {
  return pow2(ceil_log2(x));
}

double log2_at_least(double x, double floor_val) noexcept {
  const double v = std::log2(x);
  return v > floor_val ? v : floor_val;
}

}  // namespace crmd::util
