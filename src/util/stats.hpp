#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file stats.hpp
/// Summary statistics for experiment outputs: Welford online accumulation,
/// percentiles, binomial confidence intervals, and simple histograms.

namespace crmd::util {

/// Online mean/variance accumulator (Welford). Numerically stable for long
/// replication sweeps.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Adds `count` copies of `value` in O(1). Implemented as the parallel
  /// merge of a degenerate accumulator {n=count, mean=value, m2=0}, so the
  /// count/min/max are exactly what `count` sequential add(value) calls
  /// would produce and mean/variance agree up to floating-point
  /// reassociation (the sequential update order has no O(1) closed form).
  /// This is the fast-forward engine's batch-accounting primitive.
  void add_run(double value, std::size_t count) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean (stddev / sqrt(n)); 0 when empty.
  [[nodiscard]] double stderr_mean() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counter for Bernoulli outcomes (e.g. "did job j meet its deadline").
class SuccessCounter {
 public:
  /// Records one trial.
  void add(bool success) noexcept;

  /// Records `k` successes out of `n` trials at once.
  void add_many(std::uint64_t successes, std::uint64_t trials) noexcept;

  [[nodiscard]] std::uint64_t successes() const noexcept { return s_; }
  [[nodiscard]] std::uint64_t trials() const noexcept { return n_; }

  /// Empirical success rate; 0 when no trials.
  [[nodiscard]] double rate() const noexcept;

  /// Empirical failure rate; 0 when no trials.
  [[nodiscard]] double failure_rate() const noexcept;

  /// Wilson-score 95% confidence interval for the success rate.
  [[nodiscard]] std::pair<double, double> wilson95() const noexcept;

  /// Merges another counter into this one.
  void merge(const SuccessCounter& other) noexcept;

 private:
  std::uint64_t s_ = 0;
  std::uint64_t n_ = 0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. The input is copied and sorted; empty input returns 0.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used for plotting estimate-ratio and latency spreads.
class Histogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi). Requires bins >= 1
  /// and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

  /// Count in bin i.
  [[nodiscard]] std::uint64_t count(std::size_t i) const noexcept;

  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;

  /// Exclusive upper edge of bin i.
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

  /// Total observations.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Renders a compact ASCII bar chart (one line per nonempty bin).
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace crmd::util
