#pragma once

#include <cstdint>
#include <limits>

#include "util/types.hpp"

/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// Every randomized protocol in the paper flips independent coins per job.
/// To keep simulations reproducible (and failures replayable from a single
/// seed) we use a counter-seeded xoshiro256** generator: a master seed is
/// expanded with SplitMix64, and each job receives an independent stream via
/// `Rng::child(stream)`. The same (seed, job) pair always yields the same
/// coin flips regardless of how many other jobs exist.

namespace crmd::util {

/// SplitMix64 step: the standard 64-bit finalizer-based generator used to
/// expand seeds. Advances `state` and returns the next value.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman/Vigna) — fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by repeated SplitMix64 expansion of `seed`.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Advances the generator and returns 64 fresh bits.
  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t s_[4];
};

/// Convenience wrapper bundling an engine with the distributions the
/// protocols need. All draws are inlined-simple and allocation-free.
class Rng {
 public:
  /// Constructs a generator for the given master seed.
  explicit Rng(std::uint64_t seed) noexcept : seed_(seed), engine_(seed) {}

  /// Derives an independent child generator. Children are keyed by a stream
  /// id (e.g. a JobId) so per-job randomness is stable under changes to the
  /// number of jobs or the order of draws elsewhere.
  [[nodiscard]] Rng child(std::uint64_t stream) const noexcept;

  /// The master seed this generator was built from.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// 64 uniform random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection for an
  /// unbiased draw.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform slot in the half-open window [begin, end). Requires begin < end.
  [[nodiscard]] Slot slot_in(Slot begin, Slot end) noexcept;

  /// The underlying engine, for use with std:: distributions.
  [[nodiscard]] Xoshiro256& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_;
  Xoshiro256 engine_;
};

}  // namespace crmd::util
