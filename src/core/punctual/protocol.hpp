#pragma once

#include <memory>
#include <optional>

#include "core/aligned/tracker.hpp"
#include "core/params.hpp"
#include "core/punctual/clock.hpp"
#include "core/punctual/round.hpp"
#include "sim/protocol.hpp"
#include "workload/trim.hpp"

/// \file protocol.hpp (punctual)
/// PUNCTUAL (§4): contention resolution with deadlines for general
/// (unaligned, clockless) instances. Figure 2 of the paper is the
/// pseudocode this class implements.
///
/// Life of a job: lock onto the round grid (SYNCHRONIZE), probe the
/// timekeeper slot for a leader; follow a leader with a later deadline
/// (trim the window on the leader's clock and run ALIGNED inside the
/// aligned slots), otherwise run SLINGSHOT — pull back with a tiny claim
/// probability in the leader-election slots; on winning, BECOME-LEADER and
/// broadcast time in every timekeeper slot (sending its own data in its
/// final timekeeper slot, or in the handoff slot when deposed); on timeout,
/// either follow a half-window-compatible leader or release the slingshot
/// and transmit anarchist-style in the anarchy slots.
///
/// Documented deviations from the paper (see DESIGN.md §7): 11-slot rounds
/// (extra trailing guard preserves the two-consecutive-busy invariant);
/// pullback length capped by a window fraction so practical window sizes
/// ever finish the stage; followers that lose their leader lineage re-trim
/// and restart ALIGNED under the new frame.

namespace crmd::core::punctual {

/// Per-job PUNCTUAL protocol.
class PunctualProtocol final : public sim::Protocol {
 public:
  /// Protocol stage (exposed for tests and the experiment harnesses).
  enum class Stage {
    kSyncListen,    ///< listening for two consecutive busy slots
    kSyncAnnounce,  ///< broadcasting its own two start markers
    kProbe,         ///< one timekeeper slot of listening for a leader
    kSlingshot,     ///< pullback: low-probability leader claims
    kRecheck,       ///< post-pullback look at the timekeeper slot
    kFollowWait,    ///< follower waiting to learn the leader frame
    kFollowRun,     ///< running ALIGNED inside the aligned slots
    kLead,          ///< is the leader; heartbeats every timekeeper slot
    kLeadHandoff,   ///< deposed; sends its data in the next timekeeper slot
    kAnarchist,     ///< release stage: aggressive anarchy-slot data sends
    kDesperate,     ///< degenerate tiny window: no rounds, just transmit
    kSucceeded,     ///< data delivered
    kGaveUp,        ///< algorithm completed without success
  };

  PunctualProtocol(const Params& params, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;

  // --- inspection hooks -----------------------------------------------------

  [[nodiscard]] Stage stage() const noexcept { return stage_; }
  [[nodiscard]] bool is_leader() const noexcept {
    return stage_ == Stage::kLead;
  }
  /// The job's round/leader clock.
  [[nodiscard]] const RoundClock& clock() const noexcept { return clock_; }
  /// Effective window (original, or halved by the recheck rule).
  [[nodiscard]] Slot effective_window() const noexcept {
    return effective_window_;
  }
  /// The trimmed ALIGNED core (in leader rounds) when following.
  [[nodiscard]] const std::optional<workload::AlignedWindow>& core_window()
      const noexcept {
    return core_;
  }
  /// Leader-election slots observed during the pullback stage.
  [[nodiscard]] std::int64_t elections_seen() const noexcept {
    return elections_seen_;
  }
  /// True when this job ever entered the anarchist release stage.
  [[nodiscard]] bool was_anarchist() const noexcept { return was_anarchist_; }
  /// Physically impossible observations seen so far (desync evidence).
  [[nodiscard]] std::int64_t desync_evidence() const noexcept {
    return desync_evidence_;
  }
  /// True when the job abandoned the round grid after accumulating
  /// `Params::desync_tolerance` pieces of desync evidence.
  [[nodiscard]] bool desync_fallback() const noexcept {
    return desync_fallback_;
  }

 private:
  [[nodiscard]] sim::SlotAction act_synced(Slot t);
  [[nodiscard]] sim::SlotAction act_aligned_slot(Slot t);
  void handle_synced_feedback(Slot t, const sim::SlotFeedback& fb);
  void handle_sync_listen(Slot t, bool busy);
  void enter_probe(Slot t);
  void enter_slingshot(Slot t);
  void enter_follow_wait(Slot t);
  void try_build_core(Slot t);
  void restart_follow(Slot t);
  void enter_anarchist(Slot t);
  void become_leader(Slot t);
  void truncate_follow(Slot t);
  void note_desync_evidence(Slot t);
  /// Transition funnel: every stage change goes through here so the
  /// tracing session (when attached) sees one kStage event per
  /// transition. `t` is in since-release units.
  void set_stage(Stage next, Slot t);
  /// Global slot index of since-release slot `t` (tracing only —
  /// decisions never read it, preserving the clockless model).
  [[nodiscard]] Slot gslot(Slot t) const noexcept {
    return info_.release + t;
  }
  [[nodiscard]] Slot effective_deadline() const noexcept {
    return effective_window_;  // since-release units
  }

  Params params_;
  util::Rng rng_;
  sim::JobInfo info_;
  Stage stage_ = Stage::kSyncListen;
  RoundClock clock_;
  Slot effective_window_ = 0;

  // Last transmission bookkeeping.
  bool transmitted_ = false;
  sim::MessageKind last_tx_kind_ = sim::MessageKind::kData;

  // Sync-listen state.
  std::int64_t listen_slots_ = 0;
  bool saw_busy_ = false;
  bool prev_busy_ = false;
  int announce_remaining_ = 0;
  Slot announce_anchor_ = 0;

  // Leader knowledge.
  bool leader_alive_ = false;
  Slot leader_deadline_ = kNoSlot;  // since-release units

  // Slingshot state.
  std::int64_t pullback_total_ = 0;
  std::int64_t elections_seen_ = 0;

  // Follower state.
  std::optional<workload::AlignedWindow> core_;  // in leader rounds
  std::unique_ptr<aligned::Tracker> tracker_;
  int follow_level_ = 0;
  bool aligned_stepped_ = false;
  std::int64_t current_subphase_ = -1;
  std::int64_t chosen_offset_ = -1;

  // Leader state.
  std::int64_t lead_start_round_ = 0;  // local rounds

  bool was_anarchist_ = false;

  // Graceful degradation (see Params::desync_tolerance).
  std::int64_t desync_evidence_ = 0;
  bool desync_fallback_ = false;
  /// kDesperate because the channel has no collision detection (§6f blind
  /// fallback) — as opposed to tiny windows or desync fallback, which run
  /// under trustworthy ternary feedback. Only this flavor uses the
  /// deadline-aware floor; the others keep the flat anarchist schedule so
  /// ternary trajectories (and their pinned digests) are untouched.
  bool no_cd_blind_ = false;
};

/// Human-readable stage name.
[[nodiscard]] const char* to_string(PunctualProtocol::Stage stage) noexcept;

/// Factory adapter for the simulator. Validates `params` eagerly.
[[nodiscard]] sim::ProtocolFactory make_punctual_factory(Params params);

}  // namespace crmd::core::punctual
