#include "core/punctual/clock.hpp"

#include <cassert>

namespace crmd::core::punctual {

void RoundClock::sync(Slot anchor) noexcept {
  assert(anchor >= 0);
  anchor_ = anchor;
  synced_ = true;
}

std::int64_t RoundClock::offset(Slot t) const noexcept {
  assert(synced_ && t >= anchor_);
  return (t - anchor_) % kRoundLength;
}

std::int64_t RoundClock::local_round(Slot t) const noexcept {
  assert(synced_ && t >= anchor_);
  return (t - anchor_) / kRoundLength;
}

void RoundClock::set_frame(std::int64_t leader_time, Slot t) noexcept {
  frame_base_ = leader_time - local_round(t);
  frame_known_ = true;
}

std::int64_t RoundClock::leader_round(Slot t) const noexcept {
  assert(frame_known_);
  return local_round(t) + frame_base_;
}

bool RoundClock::frame_matches(std::int64_t leader_time,
                               Slot t) const noexcept {
  return frame_known_ && leader_round(t) == leader_time;
}

}  // namespace crmd::core::punctual
