#pragma once

#include <cstdint>

#include "util/types.hpp"

/// \file round.hpp
/// PUNCTUAL's round structure (§4, "Rounds and slots").
///
/// Each round packs the four useful slot types — timekeeper, aligned,
/// leader-election, anarchy — separated by empty guard slots, behind two
/// leading synchronization slots in which every synced job broadcasts a
/// start marker. The paper's invariant is that *the only two consecutive
/// busy slots are the two start slots*, which is what lets an arriving job
/// lock onto the round grid by listening. The paper's 10-slot layout ends
/// with the anarchy slot adjacent to the next round's first start slot,
/// which would break that invariant whenever an anarchist transmits; we
/// add one trailing guard (11-slot rounds) to restore it. This costs a
/// 10% constant factor and changes nothing else (documented in DESIGN.md).

namespace crmd::core::punctual {

/// Slots per round.
inline constexpr int kRoundLength = 11;

/// Role of each slot within a round.
enum class SlotType : std::uint8_t {
  kSync,            ///< start-marker slot (offsets 0 and 1); always busy
  kGuard,           ///< empty separator
  kTimekeeper,      ///< leader heartbeat / leadership handoffs
  kAligned,         ///< the embedded ALIGNED protocol's slot
  kLeaderElection,  ///< SLINGSHOT pullback claims
  kAnarchy,         ///< release-stage data transmissions
};

/// Maps an offset within a round (0 .. kRoundLength-1) to its role.
/// Layout: S S g T g A g L g N g.
[[nodiscard]] constexpr SlotType slot_type(std::int64_t offset) noexcept {
  switch (offset) {
    case 0:
    case 1:
      return SlotType::kSync;
    case 3:
      return SlotType::kTimekeeper;
    case 5:
      return SlotType::kAligned;
    case 7:
      return SlotType::kLeaderElection;
    case 9:
      return SlotType::kAnarchy;
    default:
      return SlotType::kGuard;
  }
}

/// Offset of the timekeeper slot within a round.
inline constexpr std::int64_t kTimekeeperOffset = 3;
/// Offset of the aligned slot within a round.
inline constexpr std::int64_t kAlignedOffset = 5;
/// Offset of the leader-election slot within a round.
inline constexpr std::int64_t kElectionOffset = 7;
/// Offset of the anarchy slot within a round.
inline constexpr std::int64_t kAnarchyOffset = 9;

/// Human-readable slot-type name.
[[nodiscard]] const char* to_string(SlotType type) noexcept;

}  // namespace crmd::core::punctual
