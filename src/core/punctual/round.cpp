#include "core/punctual/round.hpp"

namespace crmd::core::punctual {

const char* to_string(SlotType type) noexcept {
  switch (type) {
    case SlotType::kSync:
      return "sync";
    case SlotType::kGuard:
      return "guard";
    case SlotType::kTimekeeper:
      return "timekeeper";
    case SlotType::kAligned:
      return "aligned";
    case SlotType::kLeaderElection:
      return "leader-election";
    case SlotType::kAnarchy:
      return "anarchy";
  }
  return "unknown";
}

}  // namespace crmd::core::punctual
