#pragma once

#include <cstdint>

#include "core/punctual/round.hpp"
#include "util/types.hpp"

/// \file clock.hpp
/// Per-job round and leader-frame clocks for PUNCTUAL (§4).
///
/// A job measures time only in slots-since-its-own-release. Once it locks
/// onto the round grid (by hearing two consecutive busy slots, or by
/// announcing a fresh frame itself), it knows each slot's offset within a
/// round and counts *local* rounds. The leader's broadcasts then relate
/// local rounds to the shared *leader frame*: hearing "time = T" in local
/// round r fixes the offset base = T − r, after which
/// leader_round(t) = local_round(t) + base for every slot t. All followers
/// hear the same broadcasts, so they compute identical leader rounds —
/// that shared clock is what lets them run ALIGNED together.

namespace crmd::core::punctual {

/// Round-grid plus leader-frame bookkeeping for one job.
class RoundClock {
 public:
  /// True once the job knows the round grid.
  [[nodiscard]] bool synced() const noexcept { return synced_; }

  /// Declares `anchor` (slots since release) to be offset 0 of a round.
  void sync(Slot anchor) noexcept;

  /// Offset of slot `t` within its round (0 .. kRoundLength-1). Requires
  /// synced() and t >= anchor.
  [[nodiscard]] std::int64_t offset(Slot t) const noexcept;

  /// Role of slot `t`. Requires synced().
  [[nodiscard]] SlotType type(Slot t) const noexcept {
    return slot_type(offset(t));
  }

  /// Rounds elapsed since the anchor (the round containing `t`).
  [[nodiscard]] std::int64_t local_round(Slot t) const noexcept;

  /// True once a leader's time broadcast fixed the leader frame.
  [[nodiscard]] bool frame_known() const noexcept { return frame_known_; }

  /// Fixes the leader frame from a heartbeat: "the round containing slot
  /// `t` is leader round `leader_time`".
  void set_frame(std::int64_t leader_time, Slot t) noexcept;

  /// Leader-frame index of the round containing `t`. Requires
  /// frame_known().
  [[nodiscard]] std::int64_t leader_round(Slot t) const noexcept;

  /// True when a heartbeat claiming `leader_time` at slot `t` matches the
  /// currently extrapolated frame (i.e. the same leader lineage continues).
  [[nodiscard]] bool frame_matches(std::int64_t leader_time,
                                   Slot t) const noexcept;

  /// Forgets the leader frame (the lineage ended and a fresh frame may
  /// replace it).
  void clear_frame() noexcept { frame_known_ = false; }

 private:
  bool synced_ = false;
  Slot anchor_ = 0;
  bool frame_known_ = false;
  std::int64_t frame_base_ = 0;
};

}  // namespace crmd::core::punctual
