#include "core/punctual/protocol.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"
#include "util/math.hpp"

namespace crmd::core::punctual {

PunctualProtocol::PunctualProtocol(const Params& params, util::Rng rng)
    : params_(params), rng_(rng) {}

void PunctualProtocol::on_activate(const sim::JobInfo& info) {
  info_ = info;
  effective_window_ = info.window();
  if (!info.caps.collision_detection) {
    // Degraded mode (DESIGN.md §6f): the round grid is built on
    // busy-vs-silent detection — two consecutive busy slots mark a round
    // start, and "busy" includes deliberate start-marker collisions.
    // Without collision cues those markers read as silence, frames
    // fragment, and the timekeeper machinery synchronizes on garbage; the
    // channel advertised the weakness, so fall back to the clock-free
    // conservative blind schedule for the whole window instead of chasing
    // a grid that cannot exist.
    set_stage(Stage::kDesperate, 0);
    was_anarchist_ = true;
    no_cd_blind_ = true;
  } else if (effective_window_ < params_.punctual_min_window) {
    // Degenerate windows cannot afford the round machinery; just transmit.
    set_stage(Stage::kDesperate, 0);
    was_anarchist_ = true;
  } else {
    set_stage(Stage::kSyncListen, 0);
  }
}

void PunctualProtocol::set_stage(Stage next, Slot t) {
  CRMD_TRACE(obs_, obs::EventKind::kStage, gslot(t), info_.id,
             static_cast<std::int64_t>(stage_),
             static_cast<std::int64_t>(next), 0.0, to_string(next));
  stage_ = next;
}

sim::SlotAction PunctualProtocol::on_slot(const sim::SlotView& view) {
  const Slot t = view.since_release;
  sim::SlotAction action;
  transmitted_ = false;
  aligned_stepped_ = false;

  switch (stage_) {
    case Stage::kDesperate: {
      // The no-CD blind fallback scales by remaining laxity so jobs ramp
      // up toward their deadline; the tiny-window and desync flavors keep
      // the flat schedule (their ternary trajectories are digest-pinned).
      const double p =
          no_cd_blind_
              ? params_.degraded_floor_tx_prob(effective_window_,
                                               effective_window_ - t)
              : params_.anarchist_tx_prob(effective_window_);
      action.declared_prob = p;
      if (rng_.bernoulli(p)) {
        action.transmit = true;
        action.message = sim::make_data(info_.id);
        transmitted_ = true;
        last_tx_kind_ = sim::MessageKind::kData;
      }
      return action;
    }
    case Stage::kSyncListen:
      return action;  // pure listening
    case Stage::kSyncAnnounce:
      action.transmit = true;
      action.message = sim::make_start(info_.id);
      action.declared_prob = 1.0;
      transmitted_ = true;
      last_tx_kind_ = sim::MessageKind::kStart;
      return action;
    case Stage::kSucceeded:
    case Stage::kGaveUp:
      return action;  // defensive; the simulator retires done jobs
    default:
      return act_synced(t);
  }
}

sim::SlotAction PunctualProtocol::act_synced(Slot t) {
  sim::SlotAction action;
  const SlotType type = clock_.type(t);

  switch (type) {
    case SlotType::kSync:
      // Every synced job re-broadcasts the round marker (§4); the resulting
      // collision is the point.
      action.transmit = true;
      action.message = sim::make_start(info_.id);
      action.declared_prob = 1.0;
      transmitted_ = true;
      last_tx_kind_ = sim::MessageKind::kStart;
      return action;

    case SlotType::kGuard:
      return action;

    case SlotType::kTimekeeper: {
      if (stage_ == Stage::kLead &&
          clock_.local_round(t) >= lead_start_round_) {
        const std::int64_t time = clock_.leader_round(t);
        const std::int64_t deadline_in = effective_deadline() - t;
        // Last timekeeper slot inside the window: send the data message
        // (piggybacking the clock) and abdicate.
        const bool last = t + kRoundLength >= effective_deadline();
        if (last) {
          action.message = sim::make_data(info_.id);
          action.message.time = time;
          action.message.deadline_in = deadline_in;
          action.message.abdicating = true;
          last_tx_kind_ = sim::MessageKind::kData;
        } else {
          action.message =
              sim::make_timekeeper(info_.id, time, deadline_in, false);
          last_tx_kind_ = sim::MessageKind::kTimekeeper;
        }
        action.transmit = true;
        action.declared_prob = 1.0;
        transmitted_ = true;
      } else if (stage_ == Stage::kLeadHandoff) {
        // Deposed: one handoff slot for the old leader's data (§4,
        // BECOME-LEADER), then the new leader owns the timekeeper slots.
        action.message = sim::make_data(info_.id);
        action.message.time = clock_.leader_round(t);
        action.message.deadline_in = effective_deadline() - t;
        action.transmit = true;
        action.declared_prob = 1.0;
        transmitted_ = true;
        last_tx_kind_ = sim::MessageKind::kData;
      }
      return action;
    }

    case SlotType::kAligned:
      if (stage_ == Stage::kFollowRun) {
        return act_aligned_slot(t);
      }
      return action;

    case SlotType::kLeaderElection:
      if (stage_ == Stage::kSlingshot) {
        const double p = params_.pullback_tx_prob(effective_window_);
        action.declared_prob = p;
        if (rng_.bernoulli(p)) {
          action.transmit = true;
          action.message =
              sim::make_leader_claim(info_.id, effective_deadline() - t);
          transmitted_ = true;
          last_tx_kind_ = sim::MessageKind::kLeaderClaim;
        }
      }
      return action;

    case SlotType::kAnarchy:
      if (stage_ == Stage::kAnarchist) {
        const double p = params_.anarchist_tx_prob(effective_window_);
        action.declared_prob = p;
        if (rng_.bernoulli(p)) {
          action.transmit = true;
          action.message = sim::make_data(info_.id);
          transmitted_ = true;
          last_tx_kind_ = sim::MessageKind::kData;
        }
      }
      return action;
  }
  return action;
}

sim::SlotAction PunctualProtocol::act_aligned_slot(Slot t) {
  sim::SlotAction action;
  if (!core_.has_value()) {
    return action;
  }
  const std::int64_t g = clock_.leader_round(t);
  if (g < core_->start) {
    return action;  // own class window has not begun yet
  }
  if (g >= core_->end()) {
    truncate_follow(t);
    return action;
  }
  tracker_->begin_slot(g);
  aligned_stepped_ = true;
  if (tracker_->active_class() != follow_level_) {
    return action;  // a smaller class owns this aligned slot
  }

  const aligned::Tracker::ClassView cls = tracker_->view(follow_level_);
  if (cls.estimating) {
    const double p = cls.estimation->tx_probability();
    action.declared_prob = p;
    if (rng_.bernoulli(p)) {
      action.transmit = true;
      action.message = sim::make_control(info_.id);
      transmitted_ = true;
      last_tx_kind_ = sim::MessageKind::kControl;
    }
    return action;
  }
  const aligned::BroadcastSchedule::Position pos =
      cls.broadcast->position(cls.broadcast_step);
  if (pos.subphase_id != current_subphase_) {
    current_subphase_ = pos.subphase_id;
    chosen_offset_ = static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(pos.subphase_len)));
  }
  action.declared_prob = 1.0 / static_cast<double>(pos.subphase_len);
  if (pos.offset == chosen_offset_) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_ = true;
    last_tx_kind_ = sim::MessageKind::kData;
  }
  return action;
}

void PunctualProtocol::on_feedback(const sim::SlotView& view,
                                   const sim::SlotFeedback& fb) {
  const Slot t = view.since_release;
  const bool busy = fb.outcome != sim::SlotOutcome::kSilence;

  // A transmitter that hears a success knows the success was its own (two
  // transmissions would have collided).
  if (transmitted_ && fb.outcome == sim::SlotOutcome::kSuccess) {
    switch (last_tx_kind_) {
      case sim::MessageKind::kData:
        set_stage(Stage::kSucceeded, t);
        return;
      case sim::MessageKind::kLeaderClaim:
        become_leader(t);
        return;
      default:
        break;  // start/control successes carry no private meaning
    }
  }

  // Desync evidence: we transmitted, yet heard silence. On a correct
  // channel our own transmission makes the slot at least busy, so this
  // observation proves the feedback path is unreliable (lost or corrupted
  // feedback — never happens fault-free).
  if (transmitted_ && fb.outcome == sim::SlotOutcome::kSilence &&
      stage_ != Stage::kDesperate) {
    note_desync_evidence(t);
    if (desync_fallback_ && stage_ == Stage::kDesperate) {
      return;
    }
  }

  switch (stage_) {
    case Stage::kDesperate:
    case Stage::kSucceeded:
    case Stage::kGaveUp:
      return;
    case Stage::kSyncListen:
      handle_sync_listen(t, busy);
      return;
    case Stage::kSyncAnnounce:
      if (--announce_remaining_ == 0) {
        clock_.sync(announce_anchor_);
        CRMD_TRACE(obs_, obs::EventKind::kRoundSync, gslot(t), info_.id,
                   announce_anchor_);
        enter_probe(t);
      }
      return;
    default:
      handle_synced_feedback(t, fb);
      return;
  }
}

void PunctualProtocol::handle_sync_listen(Slot t, bool busy) {
  ++listen_slots_;
  if (busy && prev_busy_) {
    // Two consecutive busy slots mark a round start (slots t-1 and t are
    // the sync pair).
    clock_.sync(t - 1);
    CRMD_TRACE(obs_, obs::EventKind::kRoundSync, gslot(t), info_.id, t - 1);
    enter_probe(t);
    return;
  }
  if (busy) {
    saw_busy_ = true;
  }
  prev_busy_ = busy;
  // Silence for a whole round plus one slot means nobody is out there: we
  // found the system idle and may announce a fresh frame.
  if (!saw_busy_ && listen_slots_ >= kRoundLength + 1) {
    set_stage(Stage::kSyncAnnounce, t);
    announce_remaining_ = 2;
    announce_anchor_ = t + 1;
    return;
  }
  // Safety valve: busy slots were seen but the start pair never arrived
  // (possible only under pathological interference). Announce anyway.
  if (saw_busy_ && listen_slots_ >= 4 * kRoundLength) {
    set_stage(Stage::kSyncAnnounce, t);
    announce_remaining_ = 2;
    announce_anchor_ = t + 1;
  }
}

void PunctualProtocol::handle_synced_feedback(Slot t,
                                              const sim::SlotFeedback& fb) {
  const SlotType type = clock_.type(t);

  // Desync evidence: a busy slot where we believe the frame keeps a guard.
  // Under a correct, shared round grid guard slots stay silent, so noise
  // here means our grid disagrees with the jobs actually transmitting
  // (clock skew), or our feedback is corrupted. (Rare benign cause in
  // fault-free mixed workloads: desperate tiny-window jobs transmit in
  // every slot type — why the fallback is gated on desync_tolerance > 0.)
  if (type == SlotType::kGuard && fb.outcome != sim::SlotOutcome::kSilence) {
    note_desync_evidence(t);
    if (desync_fallback_) {
      return;
    }
  }

  // ---- central leadership bookkeeping (all synced stages) ----------------
  if (type == SlotType::kTimekeeper) {
    if (fb.outcome == sim::SlotOutcome::kSuccess) {
      const sim::Message& m = *fb.message;
      if (m.kind == sim::MessageKind::kTimekeeper ||
          m.kind == sim::MessageKind::kData) {
        if (clock_.frame_known() && !clock_.frame_matches(m.time, t)) {
          // A fresh leader lineage with a different clock: rebase, and
          // restart any follower run under the new frame (deviation noted
          // in the class comment).
          clock_.set_frame(m.time, t);
          if (stage_ == Stage::kFollowRun || stage_ == Stage::kFollowWait) {
            restart_follow(t);
          }
        } else {
          clock_.set_frame(m.time, t);
        }
        if (m.kind == sim::MessageKind::kTimekeeper && !m.abdicating) {
          leader_alive_ = true;
          leader_deadline_ = t + m.deadline_in;
        } else if (m.abdicating) {
          leader_alive_ = false;  // seat empties after this message
        }
        // A non-abdicating data message here is the deposition handoff: the
        // new leader (already recorded from its claim) takes over next.
      }
    } else if (fb.outcome == sim::SlotOutcome::kSilence) {
      leader_alive_ = false;  // a live leader always transmits here
    }
  }
  if (type == SlotType::kLeaderElection &&
      fb.outcome == sim::SlotOutcome::kSuccess &&
      fb.message->kind == sim::MessageKind::kLeaderClaim) {
    // Someone else's claim succeeded (our own success was handled in
    // on_feedback): they become the leader.
    leader_alive_ = true;
    leader_deadline_ = t + fb.message->deadline_in;
  }

  // ---- stage transitions ---------------------------------------------------
  switch (stage_) {
    case Stage::kProbe:
      if (type == SlotType::kTimekeeper) {
        if (leader_alive_ && leader_deadline_ >= effective_deadline()) {
          enter_follow_wait(t);
        } else {
          enter_slingshot(t);
        }
      }
      return;

    case Stage::kSlingshot: {
      if (leader_alive_ && leader_deadline_ >= effective_deadline()) {
        // "If a leader emerges with a deadline after that of j, then job j
        // can move directly to the aligned slots."
        enter_follow_wait(t);
        return;
      }
      if (type == SlotType::kLeaderElection) {
        ++elections_seen_;
        if (elections_seen_ >= pullback_total_) {
          set_stage(Stage::kRecheck, t);
        }
      }
      return;
    }

    case Stage::kRecheck:
      if (leader_alive_ && leader_deadline_ >= effective_deadline()) {
        enter_follow_wait(t);
        return;
      }
      if (type == SlotType::kTimekeeper) {
        const Slot half = info_.window() / 2;
        if (leader_alive_ && leader_deadline_ >= half && t < half) {
          // "Rounds its deadline down to d_j/2 and runs FOLLOW-THE-LEADER."
          effective_window_ = half;
          CRMD_TRACE(obs_, obs::EventKind::kWindowTrim, gslot(t), info_.id,
                     half);
          enter_follow_wait(t);
        } else {
          enter_anarchist(t);
        }
      }
      return;

    case Stage::kFollowWait:
      try_build_core(t);
      return;

    case Stage::kFollowRun:
      if (type == SlotType::kAligned && aligned_stepped_) {
        tracker_->end_slot(fb.outcome);
        if (tracker_->view(follow_level_).complete) {
          truncate_follow(t);
        }
      }
      return;

    case Stage::kLead:
      if (type == SlotType::kLeaderElection &&
          fb.outcome == sim::SlotOutcome::kSuccess &&
          fb.message->kind == sim::MessageKind::kLeaderClaim) {
        // Deposed: the claimant necessarily has a later deadline. We get
        // the next timekeeper slot for our data, then step aside.
        set_stage(Stage::kLeadHandoff, t);
        return;
      }
      if (type == SlotType::kTimekeeper && transmitted_ &&
          last_tx_kind_ == sim::MessageKind::kData &&
          fb.outcome != sim::SlotOutcome::kSuccess) {
        // Our abdication data message was jammed away; the window is over.
        set_stage(Stage::kGaveUp, t);
      }
      return;

    case Stage::kLeadHandoff:
      if (type == SlotType::kTimekeeper && transmitted_ &&
          fb.outcome != sim::SlotOutcome::kSuccess) {
        set_stage(Stage::kGaveUp, t);  // handoff slot lost (jamming)
      }
      return;

    default:
      return;
  }
}

void PunctualProtocol::enter_probe(Slot t) { set_stage(Stage::kProbe, t); }

void PunctualProtocol::enter_slingshot(Slot t) {
  pullback_total_ = params_.pullback_elections(effective_window_);
  elections_seen_ = 0;
  set_stage(Stage::kSlingshot, t);
}

void PunctualProtocol::enter_follow_wait(Slot t) {
  set_stage(Stage::kFollowWait, t);
  try_build_core(t);
}

void PunctualProtocol::try_build_core(Slot t) {
  if (!clock_.frame_known()) {
    return;  // keep waiting for a heartbeat
  }
  const std::int64_t g_now = clock_.leader_round(t);
  assert(g_now >= 0);
  const std::int64_t rounds_left =
      (effective_deadline() - t) / kRoundLength - 1;
  const std::int64_t g_start = g_now + 2;
  const std::int64_t g_dead = g_now + rounds_left;
  if (g_dead - g_start < 2) {
    enter_anarchist(t);
    return;
  }
  const workload::AlignedWindow core = workload::trimmed(g_start, g_dead);
  if (core.level < 1) {
    enter_anarchist(t);
    return;
  }
  core_ = core;
  follow_level_ = core.level;
  const int min_class = std::min(params_.min_class, follow_level_);
  tracker_ =
      std::make_unique<aligned::Tracker>(params_, min_class, follow_level_);
  current_subphase_ = -1;
  chosen_offset_ = -1;
  set_stage(Stage::kFollowRun, t);
}

void PunctualProtocol::restart_follow(Slot t) {
  core_.reset();
  tracker_.reset();
  set_stage(Stage::kFollowWait, t);
  try_build_core(t);
}

void PunctualProtocol::enter_anarchist(Slot t) {
  set_stage(Stage::kAnarchist, t);
  was_anarchist_ = true;
}

void PunctualProtocol::note_desync_evidence(Slot t) {
  ++desync_evidence_;
  CRMD_TRACE(obs_, obs::EventKind::kDesyncEvidence, gslot(t), info_.id,
             desync_evidence_);
  if (params_.desync_tolerance > 0 && !desync_fallback_ &&
      desync_evidence_ >= params_.desync_tolerance) {
    // The round grid (or the feedback it is built from) can no longer be
    // trusted. Fall back to the clock-free desperate path — the only stage
    // that makes no use of the grid — rather than kAnarchist, whose anarchy
    // slots are themselves located via the (untrusted) grid.
    desync_fallback_ = true;
    set_stage(Stage::kDesperate, t);
    was_anarchist_ = true;
  }
}

void PunctualProtocol::become_leader(Slot t) {
  if (!clock_.frame_known()) {
    // Fresh lineage: our local round counter becomes the global time.
    clock_.set_frame(clock_.local_round(t), t);
  }
  lead_start_round_ = clock_.local_round(t) + (leader_alive_ ? 2 : 1);
  leader_alive_ = true;
  leader_deadline_ = effective_deadline();
  CRMD_TRACE(obs_, obs::EventKind::kBecomeLeader, gslot(t), info_.id,
             lead_start_round_);
  set_stage(Stage::kLead, t);
}

void PunctualProtocol::truncate_follow(Slot t) {
  if (stage_ != Stage::kFollowRun) {
    return;
  }
  if (params_.anarchist_fallback_on_truncation) {
    enter_anarchist(t);
  } else {
    // §3 Truncation semantics: the class's algorithm is over; give up.
    set_stage(Stage::kGaveUp, t);
  }
}

bool PunctualProtocol::done() const {
  return stage_ == Stage::kSucceeded || stage_ == Stage::kGaveUp;
}

const char* to_string(PunctualProtocol::Stage stage) noexcept {
  using Stage = PunctualProtocol::Stage;
  switch (stage) {
    case Stage::kSyncListen:
      return "sync-listen";
    case Stage::kSyncAnnounce:
      return "sync-announce";
    case Stage::kProbe:
      return "probe";
    case Stage::kSlingshot:
      return "slingshot";
    case Stage::kRecheck:
      return "recheck";
    case Stage::kFollowWait:
      return "follow-wait";
    case Stage::kFollowRun:
      return "follow-run";
    case Stage::kLead:
      return "lead";
    case Stage::kLeadHandoff:
      return "lead-handoff";
    case Stage::kAnarchist:
      return "anarchist";
    case Stage::kDesperate:
      return "desperate";
    case Stage::kSucceeded:
      return "succeeded";
    case Stage::kGaveUp:
      return "gave-up";
  }
  return "unknown";
}

sim::ProtocolFactory make_punctual_factory(Params params) {
  params.validate();
  return sim::make_arena_factory<PunctualProtocol>(params);
}

}  // namespace crmd::core::punctual
