#include "core/params.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/punctual/round.hpp"
#include "util/math.hpp"

namespace crmd::core {

std::int64_t Params::estimation_steps(int level) const noexcept {
  return static_cast<std::int64_t>(lambda) * level * level;
}

std::int64_t Params::estimation_phase_len(int level) const noexcept {
  return static_cast<std::int64_t>(lambda) * level;
}

std::int64_t Params::broadcast_steps(int level, std::int64_t estimate) const {
  assert(estimate >= 0);
  if (estimate == 0) {
    return 0;
  }
  std::int64_t decay = 0;
  if (estimate >= 2) {
    assert(util::is_pow2(estimate));
    // λn + λn/2 + ... + λ·2 = λ(2n − 2).
    decay = static_cast<std::int64_t>(lambda) * (2 * estimate - 2);
  }
  const std::int64_t equal =
      static_cast<std::int64_t>(lambda) * level * level;
  return decay + equal;
}

std::int64_t Params::total_steps(int level, std::int64_t estimate) const {
  return estimation_steps(level) + broadcast_steps(level, estimate);
}

double Params::pullback_tx_prob(Slot window) const noexcept {
  const double lg = util::log2_at_least(static_cast<double>(window), 1.0);
  const double p =
      pullback_prob_scale /
      (static_cast<double>(window) * std::pow(lg, pullback_prob_log_exp));
  return std::min(p, max_tx_prob);
}

std::int64_t Params::pullback_elections(Slot window) const noexcept {
  const double lg = util::log2_at_least(static_cast<double>(window), 1.0);
  const double uncapped =
      static_cast<double>(lambda) * std::pow(lg, pullback_len_log_exp);
  const double cap = pullback_window_frac * static_cast<double>(window) /
                     static_cast<double>(punctual::kRoundLength);
  const double chosen = std::min(uncapped, std::max(cap, 1.0));
  return static_cast<std::int64_t>(chosen);
}

double Params::anarchist_tx_prob(Slot window) const noexcept {
  const double lg = util::log2_at_least(static_cast<double>(window), 1.0);
  const double p = static_cast<double>(lambda) *
                   std::pow(lg, anarchist_log_exp) /
                   static_cast<double>(window);
  return std::min(p, max_tx_prob);
}

double Params::degraded_floor_tx_prob(Slot window,
                                      Slot remaining) const noexcept {
  const Slot horizon = std::max<Slot>(1, std::min(window, remaining));
  const double lg = util::log2_at_least(static_cast<double>(window), 1.0);
  const double p = static_cast<double>(lambda) *
                   std::pow(lg, anarchist_log_exp) /
                   static_cast<double>(horizon);
  return std::min(p, max_tx_prob);
}

double Params::nocd_floor_tx_prob(Slot remaining) const noexcept {
  const double p = static_cast<double>(lambda) /
                   static_cast<double>(std::max<Slot>(1, remaining));
  return std::min(p, max_tx_prob);
}

void Params::validate() const {
  if (lambda < 1) {
    throw std::invalid_argument("Params: lambda must be >= 1");
  }
  if (max_tx_prob <= 0.0 || max_tx_prob > 0.5) {
    throw std::invalid_argument("Params: max_tx_prob must be in (0, 0.5]");
  }
  if (uniform_attempts < 1) {
    throw std::invalid_argument("Params: uniform_attempts must be >= 1");
  }
  if (tau < 1 || !util::is_pow2(tau)) {
    throw std::invalid_argument("Params: tau must be a positive power of 2");
  }
  if (min_class < 1 || min_class > 40) {
    throw std::invalid_argument("Params: min_class must be in [1, 40]");
  }
  if (pullback_prob_log_exp < 0.0 || pullback_len_log_exp < 0.0 ||
      anarchist_log_exp < 0.0) {
    throw std::invalid_argument("Params: log exponents must be >= 0");
  }
  if (pullback_prob_scale <= 0.0) {
    throw std::invalid_argument("Params: pullback_prob_scale must be > 0");
  }
  if (pullback_window_frac <= 0.0 || pullback_window_frac > 1.0) {
    throw std::invalid_argument(
        "Params: pullback_window_frac must be in (0, 1]");
  }
  if (punctual_min_window < 1) {
    throw std::invalid_argument("Params: punctual_min_window must be >= 1");
  }
  if (desync_tolerance < 0) {
    throw std::invalid_argument("Params: desync_tolerance must be >= 0");
  }
  if (nocd_epoch_len < 1) {
    throw std::invalid_argument("Params: nocd_epoch_len must be >= 1");
  }
  if (nocd_dry_sweep_limit < 1) {
    throw std::invalid_argument("Params: nocd_dry_sweep_limit must be >= 1");
  }
  if (energy_spread_frac <= 0.0 || energy_spread_frac > 8.0) {
    throw std::invalid_argument(
        "Params: energy_spread_frac must be in (0, 8]");
  }
}

}  // namespace crmd::core
