#include "core/registry.hpp"

#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "baselines/energy_beb.hpp"
#include "baselines/sawtooth.hpp"
#include "core/aligned/protocol.hpp"
#include "core/nocd/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "core/uniform.hpp"

namespace crmd::core {

std::vector<std::string> protocol_names() {
  return {"uniform", "aligned", "punctual",   "nocd",  "nocd_robust",
          "beb",     "energy_beb", "sawtooth", "aloha"};
}

std::vector<ProtocolInfo> protocol_catalog() {
  return {
      {.name = "uniform",
       .description = "UNIFORM (§2): fixed-probability anarchist schedule",
       .uses_listener_feedback = false,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = false},
      {.name = "aligned",
       .description =
           "ALIGNED (§3): pecking-order schedule over aligned windows",
       .uses_listener_feedback = true,
       .needs_collision_detection = true,
       .adapts_to_degraded_channel = true,
       .estimates_from_collisions = true,
       .always_listening = true},
      {.name = "punctual",
       .description = "PUNCTUAL (§4): round grid with elected timekeepers",
       .uses_listener_feedback = true,
       .needs_collision_detection = true,
       .adapts_to_degraded_channel = true,
       .estimates_from_collisions = true,
       .always_listening = true},
      {.name = "nocd",
       .description =
           "NOCD (§6g): success-only epoch backoff, no collision detection",
       .uses_listener_feedback = true,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = true,
       .no_cd_native = true},
      {.name = "nocd_robust",
       .description =
           "NOCD-ROBUST (§6g): NOCD + jamming tolerance (aging floor, "
           "adversarial-silence re-estimation)",
       .uses_listener_feedback = true,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = true,
       .no_cd_native = true},
      {.name = "beb",
       .description = "binary exponential backoff baseline",
       .uses_listener_feedback = false,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = false},
      {.name = "energy_beb",
       .description =
           "ENERGY_BEB (§6k): slow-feedback-loop backoff — geometrically "
           "widening spreads, radio off between attempts, gives up when a "
           "draw overruns the deadline",
       .uses_listener_feedback = false,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = true},
      {.name = "sawtooth",
       .description = "sawtooth backoff baseline",
       .uses_listener_feedback = false,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = false},
      {.name = "aloha",
       .description = "slotted ALOHA with per-window probability",
       .uses_listener_feedback = false,
       .needs_collision_detection = false,
       .adapts_to_degraded_channel = false},
  };
}

std::optional<ProtocolInfo> protocol_info(const std::string& name) {
  for (auto& info : protocol_catalog()) {
    if (info.name == name) {
      return std::move(info);
    }
  }
  return std::nullopt;
}

bool is_protocol(const std::string& name) {
  for (const auto& known : protocol_names()) {
    if (known == name) {
      return true;
    }
  }
  return false;
}

std::optional<sim::ProtocolFactory> make_protocol(const std::string& name,
                                                  const Params& params) {
  if (name == "uniform") {
    return make_uniform_factory(params);
  }
  if (name == "aligned") {
    return aligned::make_aligned_factory(params);
  }
  if (name == "punctual") {
    return punctual::make_punctual_factory(params);
  }
  if (name == "nocd") {
    return nocd::make_nocd_factory(params, /*robust=*/false);
  }
  if (name == "nocd_robust") {
    return nocd::make_nocd_factory(params, /*robust=*/true);
  }
  if (name == "beb") {
    return baselines::make_beb_factory();
  }
  if (name == "energy_beb") {
    return baselines::make_energy_beb_factory(params);
  }
  if (name == "sawtooth") {
    return baselines::make_sawtooth_factory();
  }
  if (name == "aloha") {
    return baselines::make_aloha_window_factory(
        static_cast<double>(params.lambda));
  }
  return std::nullopt;
}

}  // namespace crmd::core
