#include "core/uniform.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace crmd::core {

UniformProtocol::UniformProtocol(const Params& params, util::Rng rng)
    : params_(params), rng_(rng) {}

void UniformProtocol::on_activate(const sim::JobInfo& info) {
  info_ = info;
  const Slot w = info.window();
  const auto want = std::min<Slot>(params_.uniform_attempts, w);
  // Sample `want` distinct offsets by rejection (want is tiny).
  attempts_.clear();
  while (static_cast<Slot>(attempts_.size()) < want) {
    const Slot pick = rng_.slot_in(0, w);
    if (std::find(attempts_.begin(), attempts_.end(), pick) ==
        attempts_.end()) {
      attempts_.push_back(pick);
    }
  }
  std::sort(attempts_.begin(), attempts_.end());
  CRMD_TRACE(obs_, obs::EventKind::kSchedule, info.release, info_.id,
             static_cast<std::int64_t>(attempts_.size()), w,
             static_cast<double>(attempts_.size()) / static_cast<double>(w));
}

sim::SlotAction UniformProtocol::on_slot(const sim::SlotView& view) {
  sim::SlotAction action;
  // Contention accounting: a uniformly random choice of `attempts` slots
  // puts probability attempts/window on each slot a priori.
  action.declared_prob = static_cast<double>(attempts_.size()) /
                         static_cast<double>(info_.window());
  transmitted_this_slot_ = false;
  if (next_attempt_ < attempts_.size() &&
      attempts_[next_attempt_] == view.since_release) {
    ++next_attempt_;
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_this_slot_ = true;
  }
  // Honest sleep declaration (DESIGN.md §6k): the schedule is pre-drawn and
  // on_feedback only acts on slots this job transmitted in, so between
  // attempts the radio can stay off.
  action.sleep = !action.transmit;
  return action;
}

void UniformProtocol::on_feedback(const sim::SlotView& /*view*/,
                                  const sim::SlotFeedback& fb) {
  if (transmitted_this_slot_ && fb.outcome == sim::SlotOutcome::kSuccess) {
    succeeded_ = true;
  }
}

bool UniformProtocol::done() const {
  return succeeded_ || next_attempt_ >= attempts_.size();
}

sim::DormantSpan UniformProtocol::dormant_span(
    const sim::SlotView& view) const {
  if (succeeded_ || next_attempt_ >= attempts_.size()) {
    return {};  // done; the engine retires the job on the next real slot
  }
  const Slot next = attempts_[next_attempt_];
  if (next <= view.since_release) {
    return {};  // the attempt is now — simulate it
  }
  return {next - view.since_release,
          static_cast<double>(attempts_.size()) /
              static_cast<double>(info_.window())};
}

sim::ProtocolFactory make_uniform_factory(Params params) {
  params.validate();
  return sim::make_arena_factory<UniformProtocol>(params);
}

}  // namespace crmd::core
