#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "sim/protocol.hpp"

/// \file registry.hpp
/// Name-based protocol lookup, so harnesses and the CLI driver can select
/// algorithms with a flag instead of compile-time wiring.
///
/// Registered names:
///   "uniform"   — UNIFORM (§2)
///   "aligned"   — ALIGNED (§3; requires power-of-2-aligned windows)
///   "punctual"  — PUNCTUAL (§4)
///   "beb"       — binary exponential backoff baseline
///   "sawtooth"  — sawtooth backoff baseline
///   "aloha"     — slotted ALOHA with per-window probability scale/window
///                 (scale from Params::lambda, capped at 1/2)

namespace crmd::core {

/// All registered protocol names, in presentation order.
[[nodiscard]] std::vector<std::string> protocol_names();

/// True when `name` is registered.
[[nodiscard]] bool is_protocol(const std::string& name);

/// Builds the factory for `name` with the given constants; std::nullopt
/// for unknown names. `params` is validated for the protocols that use it.
[[nodiscard]] std::optional<sim::ProtocolFactory> make_protocol(
    const std::string& name, const Params& params);

}  // namespace crmd::core
