#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "sim/channel.hpp"
#include "sim/protocol.hpp"

/// \file registry.hpp
/// Name-based protocol lookup, so harnesses and the CLI driver can select
/// algorithms with a flag instead of compile-time wiring.
///
/// Registered names:
///   "uniform"   — UNIFORM (§2)
///   "aligned"   — ALIGNED (§3; requires power-of-2-aligned windows)
///   "punctual"  — PUNCTUAL (§4)
///   "nocd"        — no-collision-detection family (Jiang–Zheng style
///                   success-only epoch backoff, DESIGN.md §6g)
///   "nocd_robust" — jamming-tolerant NOCD variant (aging floor +
///                   adversarial-silence re-estimation)
///   "beb"       — binary exponential backoff baseline
///   "energy_beb"  — energy-aware slow-feedback-loop backoff (deadline-aware
///                   uniform re-spreading, radio off between attempts,
///                   DESIGN.md §6k)
///   "sawtooth"  — sawtooth backoff baseline
///   "aloha"     — slotted ALOHA with per-window probability scale/window
///                 (scale from Params::lambda, capped at 1/2)

namespace crmd::core {

/// What a protocol needs from — and how it reacts to — the channel's
/// feedback model (channel.hpp). Harnesses use this to annotate sweep
/// output and to warn when a protocol is paired with a channel it cannot
/// exploit; the protocols themselves make the same decision at activation
/// time from JobInfo::caps.
struct ProtocolInfo {
  std::string name;
  std::string description;
  /// Reads feedback for slots it did not transmit in (listener role).
  bool uses_listener_feedback = false;
  /// The full-feedback logic keys on distinguishing noise from silence.
  bool needs_collision_detection = false;
  /// Falls back to a conservative blind schedule when the channel
  /// advertises `!ChannelCaps::collision_detection` (DESIGN.md §6f).
  /// Protocols with needs_collision_detection but no adaptation run
  /// their full logic on garbage cues.
  bool adapts_to_degraded_channel = false;
  /// The protocol's *full* logic is designed for channels without
  /// collision detection (success-only inference, DESIGN.md §6g) — it
  /// neither needs the noise-vs-silence cue nor degrades to a blind
  /// schedule without it. Sweep harnesses use this to assert the stronger
  /// ladder invariant (no-CD throughput comparable to ternary) that
  /// degraded-fallback protocols cannot meet.
  bool no_cd_native = false;
  /// The protocol estimates contention from collision-vs-success counts
  /// (ALIGNED's class estimator, PUNCTUAL's round grid). On a capture
  /// channel (ChannelCaps::capture) collisions can leak a success, so
  /// those estimators see optimistically biased samples; harnesses
  /// annotate capture sweeps with this flag instead of protocols
  /// re-deriving it in-band.
  bool estimates_from_collisions = false;
  /// The protocol keeps its radio on for every live slot by construction —
  /// it never declares `SlotAction::sleep` (ALIGNED's pecking order and
  /// PUNCTUAL's round grid both key on hearing *other* jobs' slots). For
  /// such protocols `SimMetrics::slots_awake` must equal the live non-dark
  /// job-slots exactly; bench_energy asserts this identity (DESIGN.md §6k).
  bool always_listening = false;

  /// True when the protocol can run its *full* (non-degraded) logic on a
  /// channel with these capabilities.
  [[nodiscard]] bool supports(const sim::ChannelCaps& caps) const noexcept {
    return !needs_collision_detection || caps.collision_detection;
  }
};

/// All registered protocol names, in presentation order.
[[nodiscard]] std::vector<std::string> protocol_names();

/// Capability metadata for `name`; std::nullopt for unknown names.
[[nodiscard]] std::optional<ProtocolInfo> protocol_info(
    const std::string& name);

/// Metadata for every registered protocol, in presentation order.
[[nodiscard]] std::vector<ProtocolInfo> protocol_catalog();

/// True when `name` is registered.
[[nodiscard]] bool is_protocol(const std::string& name);

/// Builds the factory for `name` with the given constants; std::nullopt
/// for unknown names. `params` is validated for the protocols that use it.
[[nodiscard]] std::optional<sim::ProtocolFactory> make_protocol(
    const std::string& name, const Params& params);

}  // namespace crmd::core
