#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/aligned/broadcast.hpp"
#include "core/aligned/estimation.hpp"
#include "core/params.hpp"
#include "sim/channel.hpp"
#include "util/types.hpp"

/// \file tracker.hpp
/// The replicated pecking-order schedule (§3).
///
/// At any time exactly one job class is *active*: the smallest class whose
/// current window's algorithm (estimation followed by broadcast) has not
/// completed. Every live job runs an identical copy of this tracker,
/// advancing it from two inputs only — the slot clock (window boundaries
/// reset classes: each "critical time" starts a fresh window) and the
/// observed channel outcome of each slot. Because a job activates at its
/// own window start, which is simultaneously a boundary for every smaller
/// class, all replicas of all live jobs agree on every tracked class's
/// state (Lemma 7); tests/test_aligned_invariants.cpp checks this
/// agreement as an executable invariant.
///
/// The same machinery serves PUNCTUAL's followers with "slot" reinterpreted
/// as the leader-frame round index (§4's FOLLOW-THE-LEADER runs ALIGNED
/// inside the aligned slot of each round).

namespace crmd::core::aligned {

/// Replicated per-job view of the pecking order across classes
/// [min_class, own_class].
class Tracker {
 public:
  /// Tracks classes min_class..own_class (inclusive); requires
  /// 1 <= min_class <= own_class.
  Tracker(const Params& params, int min_class, int own_class);

  /// Starts slot `t`: applies window-boundary resets, then fixes the active
  /// class for this slot. Calls must use strictly increasing (not
  /// necessarily consecutive) values of `t` — fault injection (clock skew,
  /// crash stalls) can make the perceived slot index jump ahead. Every
  /// class whose dyadic boundary was crossed since the previous call is
  /// reset; on the first call all tracked classes start fresh. Fault-free
  /// (first call at the owning job's window start, consecutive slots) this
  /// is exactly the §3 "reset at critical times" rule.
  void begin_slot(Slot t);

  /// The class taking an active step this slot, or -1 when every tracked
  /// class has completed. Valid between begin_slot and end_slot.
  [[nodiscard]] int active_class() const noexcept { return active_; }

  /// Finishes slot `t` with the observed channel outcome, advancing the
  /// active class's algorithm by one active step.
  void end_slot(sim::SlotOutcome outcome);

  /// Read-only snapshot of one tracked class's progress.
  struct ClassView {
    /// True while the class is in its estimation stage.
    bool estimating = false;
    /// Estimation bookkeeping (null once estimation finished).
    const EstimationState* estimation = nullptr;
    /// Broadcast layout (null until the estimate is known).
    const BroadcastSchedule* broadcast = nullptr;
    /// Active steps taken inside the broadcast stage.
    std::int64_t broadcast_step = 0;
    /// The class's estimate; -1 while still estimating.
    std::int64_t estimate = -1;
    /// True once the class's algorithm for its current window completed.
    bool complete = false;
  };

  /// Snapshot of class `cls` (min_class <= cls <= own_class).
  [[nodiscard]] ClassView view(int cls) const;

  [[nodiscard]] int min_class() const noexcept { return min_class_; }
  [[nodiscard]] int own_class() const noexcept { return own_class_; }

 private:
  struct ClassState {
    std::optional<EstimationState> estimation;
    std::optional<BroadcastSchedule> broadcast;
    std::int64_t broadcast_step = 0;
    std::int64_t estimate = -1;
    bool complete = false;
  };

  void reset_class(int cls);
  [[nodiscard]] ClassState& state(int cls);
  [[nodiscard]] const ClassState& state(int cls) const;

  Params params_;
  int min_class_;
  int own_class_;
  std::vector<ClassState> classes_;
  int active_ = -1;
  bool started_ = false;
  Slot last_slot_ = 0;
};

}  // namespace crmd::core::aligned
