#include "core/aligned/broadcast.hpp"

#include <cassert>

#include "util/math.hpp"

namespace crmd::core::aligned {

BroadcastSchedule::BroadcastSchedule(const Params& params, int level,
                                     std::int64_t estimate)
    : lambda_(params.lambda) {
  assert(level >= 1);
  assert(estimate >= 0);
  if (estimate >= 2) {
    assert(util::is_pow2(estimate));
    // Decay phases: subphase lengths n, n/2, ..., 2.
    for (std::int64_t x = estimate; x >= 2; x /= 2) {
      lens_.push_back(x);
    }
  }
  if (estimate >= 1) {
    // ℓ equal phases with subphase length ℓ.
    for (int i = 0; i < level; ++i) {
      lens_.push_back(level);
    }
  }
  starts_.reserve(lens_.size());
  for (const std::int64_t x : lens_) {
    starts_.push_back(total_);
    total_ += static_cast<std::int64_t>(lambda_) * x;
  }
  assert(total_ == params.broadcast_steps(level, estimate));
}

BroadcastSchedule::Position BroadcastSchedule::position(
    std::int64_t step) const {
  assert(step >= 0 && step < total_);
  // Binary search for the phase containing `step`.
  std::size_t lo = 0;
  std::size_t hi = lens_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (starts_[mid] <= step) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const std::int64_t x = lens_[lo];
  const std::int64_t within_phase = step - starts_[lo];
  Position pos;
  pos.subphase_len = x;
  pos.offset = within_phase % x;
  // Subphase id: λ subphases per earlier phase plus the index here.
  pos.subphase_id =
      static_cast<std::int64_t>(lo) * lambda_ + within_phase / x;
  return pos;
}

}  // namespace crmd::core::aligned
