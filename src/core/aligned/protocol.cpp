#include "core/aligned/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/math.hpp"

namespace crmd::core::aligned {

const char* to_string(AlignedProtocol::Stage stage) noexcept {
  switch (stage) {
    case AlignedProtocol::Stage::kRunning:
      return "running";
    case AlignedProtocol::Stage::kSucceeded:
      return "succeeded";
    case AlignedProtocol::Stage::kGaveUp:
      return "gave-up";
  }
  return "unknown";
}

AlignedProtocol::AlignedProtocol(const Params& params, util::Rng rng)
    : params_(params), rng_(rng) {}

void AlignedProtocol::set_stage(Stage next, Slot global_slot) {
  CRMD_TRACE(obs_, obs::EventKind::kStage, global_slot, info_.id,
             static_cast<std::int64_t>(stage_),
             static_cast<std::int64_t>(next), 0.0, to_string(next));
  stage_ = next;
}

void AlignedProtocol::on_activate(const sim::JobInfo& info) {
  const Slot w = info.window();
  if (!util::is_pow2(w) || info.release % w != 0) {
    throw std::invalid_argument(
        "AlignedProtocol requires power-of-2-aligned windows");
  }
  info_ = info;
  level_ = util::floor_log2(w);
  degraded_ = !info.caps.collision_detection;
  if (degraded_) {
    // Degraded mode (DESIGN.md §6f): the pecking-order schedule is driven
    // entirely by busy-vs-silent observations — estimation thresholds and
    // subphase verdicts both read collision cues. When the channel
    // advertises that those cues do not exist, the Tracker would
    // synchronize on garbage, so skip it and transmit blind with the
    // conservative anarchist probability for this window instead.
    return;
  }
  // Without the pecking order (ablation) a job tracks only its own class
  // and acts whenever that class is incomplete — nested classes collide.
  const int min_class =
      params_.pecking_order ? std::min(params_.min_class, level_) : level_;
  tracker_ = std::make_unique<Tracker>(params_, min_class, level_);
}

sim::SlotAction AlignedProtocol::on_slot(const sim::SlotView& view) {
  sim::SlotAction action;
  transmitted_ = false;
  if (degraded_) {
    last_step_ = LastStep{};
    if (stage_ != Stage::kRunning) {
      return action;  // defensive; the simulator retires done jobs
    }
    // Deadline-aware blind schedule: the anarchist formula over the slots
    // actually left, so a near-deadline job ramps up instead of silently
    // starving (equals anarchist_tx_prob at full laxity).
    const double p = params_.degraded_floor_tx_prob(
        info_.window(), info_.window() - view.since_release);
    action.declared_prob = p;
    if (rng_.bernoulli(p)) {
      action.transmit = true;
      action.message = sim::make_data(info_.id);
      transmitted_ = true;
      transmitted_data_ = true;
    }
    return action;
  }
  tracker_->begin_slot(view.global_slot);
  last_step_.valid = true;
  last_step_.active_class = tracker_->active_class();
  last_step_.estimating =
      last_step_.active_class >= 0 &&
      tracker_->view(last_step_.active_class).estimating;
  if (obs_ != nullptr) {
    if (last_step_.active_class != traced_active_class_) {
      CRMD_TRACE(obs_, obs::EventKind::kClassActive, view.global_slot,
                 info_.id, traced_active_class_, last_step_.active_class);
      traced_active_class_ = last_step_.active_class;
    }
    if (!estimate_traced_ && tracker_->view(level_).estimate >= 0) {
      CRMD_TRACE(obs_, obs::EventKind::kEstimate, view.global_slot, info_.id,
                 level_, tracker_->view(level_).estimate);
      estimate_traced_ = true;
    }
  }
  if (stage_ != Stage::kRunning) {
    return action;  // defensive; the simulator retires done jobs
  }
  if (tracker_->active_class() != level_) {
    return action;  // a smaller class owns this slot: listen silently
  }

  const Tracker::ClassView cls = tracker_->view(level_);
  if (cls.estimating) {
    const double p = cls.estimation->tx_probability();
    action.declared_prob = p;
    if (rng_.bernoulli(p)) {
      action.transmit = true;
      action.message = sim::make_control(info_.id);
      transmitted_ = true;
      transmitted_data_ = false;
    }
    return action;
  }

  // Broadcast stage: one random slot per subphase.
  const BroadcastSchedule::Position pos =
      cls.broadcast->position(cls.broadcast_step);
  if (pos.subphase_id != current_subphase_) {
    current_subphase_ = pos.subphase_id;
    chosen_offset_ =
        static_cast<std::int64_t>(rng_.below(
            static_cast<std::uint64_t>(pos.subphase_len)));
  }
  if (pos.subphase_id != traced_subphase_) {
    traced_subphase_ = pos.subphase_id;
    CRMD_TRACE(obs_, obs::EventKind::kSubphase, view.global_slot, info_.id,
               pos.subphase_id, pos.subphase_len);
  }
  action.declared_prob = 1.0 / static_cast<double>(pos.subphase_len);
  if (pos.offset == chosen_offset_) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_ = true;
    transmitted_data_ = true;
  }
  return action;
}

void AlignedProtocol::on_feedback(const sim::SlotView& view,
                                  const sim::SlotFeedback& fb) {
  // A successful *data* transmission completes the job (a lone success is
  // necessarily the transmitter's own); control-probe successes merely feed
  // the estimation counts below.
  if (transmitted_ && transmitted_data_ &&
      fb.outcome == sim::SlotOutcome::kSuccess) {
    set_stage(Stage::kSucceeded, view.global_slot);
  }
  if (degraded_) {
    // Blind mode keeps trying until the window ends: with no collision
    // cues there is no schedule-completion signal to key truncation on,
    // and giving up early would only forfeit remaining slots.
    return;
  }
  tracker_->end_slot(fb.outcome);
  if (stage_ == Stage::kRunning && tracker_->view(level_).complete) {
    // §3 Truncation: the class's algorithm ended and this job did not get
    // through — it gives up and yields to the larger classes.
    set_stage(Stage::kGaveUp, view.global_slot);
  }
}

bool AlignedProtocol::done() const { return stage_ != Stage::kRunning; }

int AlignedProtocol::active_class() const noexcept {
  return tracker_ ? tracker_->active_class() : -1;
}

std::int64_t AlignedProtocol::own_estimate() const {
  return tracker_ ? tracker_->view(level_).estimate : -1;
}

sim::ProtocolFactory make_aligned_factory(Params params) {
  params.validate();
  return sim::make_arena_factory<AlignedProtocol>(params);
}

}  // namespace crmd::core::aligned
