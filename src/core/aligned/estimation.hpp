#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "sim/channel.hpp"

/// \file estimation.hpp
/// ALIGNED's size-estimation protocol (§3, "Size-estimation protocol").
///
/// For job class ℓ the protocol spans T_ℓ = λℓ² active steps, divided into
/// ℓ phases of λℓ steps. During phase i (1-based) every job in the class
/// transmits a control message with probability 1/2^i; everyone counts the
/// successful transmissions per phase. The estimate is n_ℓ = τ·2^j for the
/// phase j with the most successes (Lemma 8: with probability
/// 1 − 1/w^Θ(λ), 2n̂ <= n_ℓ <= τ²n̂ whenever the protocol completes and
/// p_jam <= 1/2). Zero successes everywhere resolve to estimate 0 — the
/// class believes itself empty.
///
/// This class is *pure bookkeeping over observed outcomes*: both the
/// acting jobs (class members) and the passive observers (larger classes
/// simulating the schedule) advance an identical copy, which is what makes
/// the replicated pecking-order tracker consistent (Lemma 7).

namespace crmd::core::aligned {

/// Replicated state of one class's size-estimation run.
class EstimationState {
 public:
  /// Fresh estimation for class `level` (>= 1).
  EstimationState(const Params& params, int level);

  /// True once all λℓ² steps have been observed.
  [[nodiscard]] bool complete() const noexcept;

  /// Active steps observed so far (0 .. λℓ²).
  [[nodiscard]] std::int64_t steps_taken() const noexcept { return steps_; }

  /// 1-based phase of the *next* active step. Only valid while !complete().
  [[nodiscard]] int current_phase() const noexcept;

  /// Transmission probability class members use in the next active step
  /// (1/2^phase). Only valid while !complete().
  [[nodiscard]] double tx_probability() const noexcept;

  /// Observes one active step's outcome and advances.
  void record(sim::SlotOutcome outcome);

  /// The estimate n_ℓ = τ·2^j (0 when no phase saw a success). Only valid
  /// once complete().
  [[nodiscard]] std::int64_t estimate() const;

  /// Successes counted in the given 1-based phase (for diagnostics/tests).
  [[nodiscard]] std::int64_t phase_successes(int phase) const;

 private:
  int level_;
  std::int64_t phase_len_;
  std::int64_t tau_;
  std::int64_t steps_ = 0;
  std::vector<std::int64_t> successes_;  // [phase-1]
};

}  // namespace crmd::core::aligned
