#include "core/aligned/estimation.hpp"

#include <cassert>
#include <cmath>

#include "util/math.hpp"

namespace crmd::core::aligned {

EstimationState::EstimationState(const Params& params, int level)
    : level_(level),
      phase_len_(params.estimation_phase_len(level)),
      tau_(params.tau),
      successes_(static_cast<std::size_t>(level), 0) {
  assert(level >= 1);
}

bool EstimationState::complete() const noexcept {
  return steps_ >= phase_len_ * level_;
}

int EstimationState::current_phase() const noexcept {
  assert(!complete());
  return static_cast<int>(steps_ / phase_len_) + 1;
}

double EstimationState::tx_probability() const noexcept {
  const int phase = current_phase();
  return std::ldexp(1.0, -phase);  // 1 / 2^phase
}

void EstimationState::record(sim::SlotOutcome outcome) {
  assert(!complete());
  if (outcome == sim::SlotOutcome::kSuccess) {
    ++successes_[static_cast<std::size_t>(current_phase() - 1)];
  }
  ++steps_;
}

std::int64_t EstimationState::estimate() const {
  assert(complete());
  std::int64_t best_count = 0;
  int best_phase = 0;  // 0 = no phase saw any success
  for (int phase = 1; phase <= level_; ++phase) {
    const std::int64_t count =
        successes_[static_cast<std::size_t>(phase - 1)];
    // Strict '>' makes the tie-break "smallest phase with the maximum",
    // a fixed rule every replica applies identically.
    if (count > best_count) {
      best_count = count;
      best_phase = phase;
    }
  }
  return best_phase == 0 ? 0 : tau_ * util::pow2(best_phase);
}

std::int64_t EstimationState::phase_successes(int phase) const {
  assert(phase >= 1 && phase <= level_);
  return successes_[static_cast<std::size_t>(phase - 1)];
}

}  // namespace crmd::core::aligned
