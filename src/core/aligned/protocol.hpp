#pragma once

#include <memory>

#include "core/aligned/tracker.hpp"
#include "core/params.hpp"
#include "sim/protocol.hpp"

/// \file protocol.hpp (aligned)
/// ALIGNED (§3): contention resolution for power-of-2-aligned windows.
///
/// Every job tracks the pecking-order schedule (Tracker). When its own
/// class is the active one it performs the class's next step: during the
/// estimation stage it transmits a control probe with the phase's
/// probability; during the broadcast stage it transmits its data message in
/// one uniformly random slot per subphase. When a smaller class is active
/// it stays silent and merely listens (passively simulating, per Lemma 7).
/// If its class's algorithm completes without the job having transmitted
/// successfully — or the window ends first (truncation) — the job gives up.
///
/// Model note: ALIGNED is the one protocol allowed to read the global slot
/// index, standing in for the synchronization the paper derives from
/// aligned window boundaries.

namespace crmd::core::aligned {

/// Per-job ALIGNED protocol. Requires the job's window to be a power of
/// two, aligned at a multiple of its size (throws std::invalid_argument on
/// activation otherwise).
class AlignedProtocol final : public sim::Protocol {
 public:
  AlignedProtocol(const Params& params, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;

  // --- inspection hooks (tests and experiment harnesses) -------------------

  /// Lifecycle stage of this job.
  enum class Stage { kRunning, kSucceeded, kGaveUp };
  [[nodiscard]] Stage stage() const noexcept { return stage_; }

  /// True when the channel advertised no collision detection
  /// (JobInfo::caps) and the job fell back to the blind schedule
  /// (DESIGN.md §6f). The Tracker is never constructed in this mode;
  /// tracker() must not be called.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  /// This job's class ℓ (log2 of its window size).
  [[nodiscard]] int level() const noexcept { return level_; }

  /// The class this job believes is active (valid after its last on_slot;
  /// -1 when all tracked classes completed).
  [[nodiscard]] int active_class() const noexcept;

  /// This job's class estimate n_ℓ; -1 while still estimating.
  [[nodiscard]] std::int64_t own_estimate() const;

  /// Full tracker access for invariant tests.
  [[nodiscard]] const Tracker& tracker() const { return *tracker_; }

  /// What the most recent on_slot observed: the active class and whether
  /// that class was in its estimation stage. Valid after on_slot, for the
  /// slot it was called in; used by the schedule-rendering harness (E1).
  struct LastStep {
    bool valid = false;
    int active_class = -1;
    bool estimating = false;
  };
  [[nodiscard]] const LastStep& last_step() const noexcept {
    return last_step_;
  }

 private:
  /// Transition funnel: every stage change goes through here so the
  /// tracing session (when attached) sees one kStage event per transition.
  void set_stage(Stage next, Slot global_slot);

  Params params_;
  util::Rng rng_;
  sim::JobInfo info_;
  int level_ = 0;
  bool degraded_ = false;
  std::unique_ptr<Tracker> tracker_;
  Stage stage_ = Stage::kRunning;
  bool transmitted_ = false;
  bool transmitted_data_ = false;
  std::int64_t current_subphase_ = -1;
  std::int64_t chosen_offset_ = -1;
  LastStep last_step_;

  // Tracing-only bookkeeping (never read by decision logic).
  int traced_active_class_ = -2;  ///< -2 = nothing emitted yet
  std::int64_t traced_subphase_ = -1;
  bool estimate_traced_ = false;
};

/// Human-readable stage name.
[[nodiscard]] const char* to_string(AlignedProtocol::Stage stage) noexcept;

/// Factory adapter for the simulator. Validates `params` eagerly.
[[nodiscard]] sim::ProtocolFactory make_aligned_factory(Params params);

}  // namespace crmd::core::aligned
