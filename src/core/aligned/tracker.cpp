#include "core/aligned/tracker.hpp"

#include <cassert>

#include "util/math.hpp"

namespace crmd::core::aligned {

Tracker::Tracker(const Params& params, int min_class, int own_class)
    : params_(params), min_class_(min_class), own_class_(own_class) {
  assert(1 <= min_class && min_class <= own_class);
  classes_.resize(static_cast<std::size_t>(own_class - min_class) + 1);
}

Tracker::ClassState& Tracker::state(int cls) {
  assert(cls >= min_class_ && cls <= own_class_);
  return classes_[static_cast<std::size_t>(cls - min_class_)];
}

const Tracker::ClassState& Tracker::state(int cls) const {
  assert(cls >= min_class_ && cls <= own_class_);
  return classes_[static_cast<std::size_t>(cls - min_class_)];
}

void Tracker::reset_class(int cls) {
  ClassState& c = state(cls);
  c.estimation.emplace(params_, cls);
  c.broadcast.reset();
  c.broadcast_step = 0;
  c.estimate = -1;
  c.complete = false;
}

void Tracker::begin_slot(Slot t) {
  // Slots may arrive with gaps (clock skew slips the perceived index ahead;
  // crash/stall faults make a job miss slots entirely), but never backwards.
  assert(t >= 0);
  assert(!started_ || t > last_slot_);
  const bool first = !started_;
  started_ = true;
  const Slot prev = last_slot_;
  last_slot_ = t;

  for (int cls = min_class_; cls <= own_class_; ++cls) {
    // Reset iff a window boundary (multiple of 2^cls) lies in (prev, t].
    // On the first call every tracked class starts fresh; fault-free, the
    // first slot is the owning job's window start — a boundary for every
    // tracked (smaller) class — and later slots are consecutive, so this
    // reduces exactly to the textbook "reset when t % 2^cls == 0" rule.
    const Slot w = util::pow2(cls);
    if (first || t / w > prev / w) {
      reset_class(cls);
    }
  }
  active_ = -1;
  for (int cls = min_class_; cls <= own_class_; ++cls) {
    if (!state(cls).complete) {
      active_ = cls;
      break;
    }
  }
}

void Tracker::end_slot(sim::SlotOutcome outcome) {
  assert(started_);
  if (active_ == -1) {
    return;
  }
  ClassState& c = state(active_);
  assert(!c.complete);
  if (c.estimation.has_value()) {
    c.estimation->record(outcome);
    if (c.estimation->complete()) {
      c.estimate = c.estimation->estimate();
      c.broadcast.emplace(params_, active_, c.estimate);
      c.estimation.reset();
      if (c.broadcast->total_steps() == 0) {
        c.complete = true;  // believed-empty class: nothing to broadcast
      }
    }
    return;
  }
  assert(c.broadcast.has_value());
  ++c.broadcast_step;
  if (c.broadcast_step >= c.broadcast->total_steps()) {
    c.complete = true;
  }
}

Tracker::ClassView Tracker::view(int cls) const {
  const ClassState& c = state(cls);
  ClassView v;
  v.estimating = c.estimation.has_value();
  v.estimation = c.estimation.has_value() ? &*c.estimation : nullptr;
  v.broadcast = c.broadcast.has_value() ? &*c.broadcast : nullptr;
  v.broadcast_step = c.broadcast_step;
  v.estimate = c.estimate;
  v.complete = c.complete;
  return v;
}

}  // namespace crmd::core::aligned
