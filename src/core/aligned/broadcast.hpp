#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"

/// \file broadcast.hpp
/// ALIGNED's broadcast ("backon") schedule (§3, "Broadcast").
///
/// For class ℓ with estimate n (a power of two), the stage consists of
/// *decay phases* of lengths λn, λn/2, …, λ·2 followed by ℓ *equal phases*
/// of length λℓ. Every phase of length λX splits into λ subphases of X
/// slots; in each subphase every still-live job picks one uniformly random
/// slot of the subphase for its data transmission. The decay phases drain
/// the class geometrically (Lemma 13's induction); the ℓ trailing equal
/// phases convert "exponentially small in X" into "polynomially small in
/// the window" failure bounds when X would dip below ℓ.
///
/// This class computes the slot geometry only (pure function of ℓ, n, λ);
/// the random choices live in the protocol.

namespace crmd::core::aligned {

/// Immutable description of one class's broadcast-stage layout.
class BroadcastSchedule {
 public:
  /// Layout for class `level` with estimate `estimate` (0, or a power of
  /// two; estimates produced by EstimationState are τ·2^j).
  BroadcastSchedule(const Params& params, int level, std::int64_t estimate);

  /// Total active steps in the stage (= Params::broadcast_steps).
  [[nodiscard]] std::int64_t total_steps() const noexcept { return total_; }

  /// Where a given active step (0-based, < total_steps()) falls.
  struct Position {
    /// Subphase length X: the job picks one random slot out of these.
    std::int64_t subphase_len = 0;
    /// Monotone id of the subphase across the whole stage; changes exactly
    /// when a new subphase begins (the protocol redraws its slot then).
    std::int64_t subphase_id = 0;
    /// Offset of this step inside its subphase (0 .. subphase_len-1).
    std::int64_t offset = 0;
  };

  /// Maps an active step index to its subphase coordinates.
  [[nodiscard]] Position position(std::int64_t step) const;

  /// Number of phases (decay + equal).
  [[nodiscard]] std::size_t phases() const noexcept { return lens_.size(); }

  /// Subphase length X of phase `i` (0-based).
  [[nodiscard]] std::int64_t phase_subphase_len(std::size_t i) const {
    return lens_[i];
  }

 private:
  int lambda_;
  std::vector<std::int64_t> lens_;    // subphase length per phase
  std::vector<std::int64_t> starts_;  // first step index of each phase
  std::int64_t total_ = 0;
};

}  // namespace crmd::core::aligned
