#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "sim/protocol.hpp"

/// \file protocol.hpp (nocd)
/// NOCD / NOCD-ROBUST: contention resolution without collision detection.
///
/// The source paper's ALIGNED and PUNCTUAL key their schedules on ternary
/// feedback; when `ChannelCaps::collision_detection` is off they fall back
/// to a blind anarchist schedule and pay the ~100x degradation E19
/// measured. This family closes that gap along the lines of Jiang–Zheng,
/// "Robust and Optimal Contention Resolution without Collision Detection"
/// (arXiv:2111.06650): batched exponential-backoff-style epochs whose only
/// inference signal is *perceived successes* — the one cue every model in
/// the degradation ladder still delivers.
///
/// Success-only inference is the robustness contract (DESIGN.md §6g):
/// decisions branch solely on "did I perceive a success", never on
/// noise-vs-silence, so the protocol's trajectory on `collision_as_silence`
/// is bit-identical to its ternary trajectory by construction — noisy and
/// silent slots may swap labels freely without changing a single decision
/// or RNG draw. The lone capability-gated extra cue is the explicit own-
/// failure ACK of `binary_ack` (`!caps.listener_success_visible`), where
/// listeners hear nothing and an immediate per-collision backoff is the
/// only timely signal available.
///
/// State machine: each job keeps a density exponent k and transmits its
/// data message with probability min(2^-k, max_tx_prob) per slot. Slots
/// are grouped into epochs of `Params::nocd_epoch_len`, phase-staggered
/// per job so the population never moves in lockstep:
///   - a *productive* epoch (>= 1 perceived success) counts the drained
///     jobs; once 2^(k-1) have drained since the last change the believed
///     contention has halved and k decrements;
///   - a *dry* epoch (zero perceived successes) backs off — k increments,
///     capped at k_max = ceil(log2 w). Dryness without collision detection
///     is ambiguous (collisions and silence read alike), and backing *on*
///     would let a jammer stampede the whole population into a
///     self-sustaining noise storm, so conservative is the only safe
///     direction.
/// The robust variant adds the jamming tolerance: (a) after
/// `Params::nocd_dry_sweep_limit` *fully dry ladders* (a whole backoff's
/// worth of epochs, k_max+1, with zero successes anywhere) it concludes
/// the silence is unexplained — adversarial jamming, or a channel that
/// emptied unheard — and probes by halving k, escalating toward p = 1/2 at
/// a bounded frequency; and (b) a deadline-aware aging floor — once less
/// than one ladder of laxity remains, the transmission probability never
/// falls below `Params::nocd_floor_tx_prob(remaining)` (ratio-capped
/// against the estimate), so a straggler ramps up toward its deadline
/// instead of silently starving (never stalls).
///
/// A job is done only when its own data transmission is perceived
/// successful; it never gives up before its deadline.

namespace crmd::core::nocd {

/// Per-job NOCD protocol; `robust` selects the jamming-tolerant variant.
class NocdProtocol final : public sim::Protocol {
 public:
  NocdProtocol(const Params& params, bool robust, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;

  // --- inspection hooks (tests and experiment harnesses) -------------------

  /// Current density exponent k (transmission probability 2^-k, floored).
  [[nodiscard]] int density_exponent() const noexcept { return k_; }

  /// Largest exponent the sweep visits (ceil(log2 w)).
  [[nodiscard]] int max_exponent() const noexcept { return k_max_; }

  /// Perceived successes accumulated toward the next k decrement.
  [[nodiscard]] std::int64_t drained() const noexcept { return drained_; }

  /// Completed fully-dry ladders since the last success or probe (robust
  /// variant only; always 0 otherwise).
  [[nodiscard]] int dry_sweeps() const noexcept { return dry_sweeps_; }

  /// True for the jamming-tolerant variant.
  [[nodiscard]] bool robust() const noexcept { return robust_; }

  /// The probability the next on_slot will transmit with, given `remaining`
  /// slots of laxity (exposed so tests can pin the floor ramp exactly).
  [[nodiscard]] double tx_prob(Slot remaining) const noexcept;

 private:
  void end_epoch(Slot global_slot);
  void set_exponent(int next, Slot global_slot);

  Params params_;
  bool robust_ = false;
  util::Rng rng_;
  sim::JobInfo info_;
  /// Own-failure ACKs available (binary_ack): listeners hear nothing, so
  /// per-collision backoff replaces listener-driven drain accounting.
  bool ack_mode_ = false;
  int k_ = 0;
  int k_init_ = 0;
  int k_max_ = 0;
  std::int64_t epoch_slot_ = 0;
  std::int64_t epoch_successes_ = 0;
  std::int64_t drained_ = 0;
  /// Consecutive dry epochs; k_max_ + 1 of them = one fully dry ladder.
  int dry_streak_ = 0;
  int dry_sweeps_ = 0;
  bool transmitted_data_ = false;
  bool succeeded_ = false;
};

/// Factory adapter for the simulator. Validates `params` eagerly.
[[nodiscard]] sim::ProtocolFactory make_nocd_factory(Params params,
                                                     bool robust);

}  // namespace crmd::core::nocd
