#include "core/nocd/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/math.hpp"

namespace crmd::core::nocd {

NocdProtocol::NocdProtocol(const Params& params, bool robust, util::Rng rng)
    : params_(params), robust_(robust), rng_(rng) {}

void NocdProtocol::on_activate(const sim::JobInfo& info) {
  info_ = info;
  ack_mode_ = !info.caps.listener_success_visible;
  k_max_ = std::max(1, util::ceil_log2(std::max<Slot>(1, info.window())));
  // Conservative start: believed contention ~w (one job per slot of the
  // window could be waiting). At saturation (n = w/2) this is within a
  // factor 2 of the truth; at low contention the dry-epoch sweep walks the
  // exponent down in O(log w) epochs.
  k_init_ = k_max_;
  k_ = k_init_;
  // Stagger the epoch phase per job (one activation-time draw, identical
  // across feedback models). Without it every job shares the same epoch
  // boundaries AND the same perceived successes, so the whole population
  // holds one k in lockstep — and a reactive jammer that erases a handful
  // of successes stampedes everyone into the same dry sweep at once. With
  // staggered phases jobs reach different verdicts from the same channel
  // and spread over neighboring exponents, so some density is always
  // probing near the truth.
  epoch_slot_ = static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(params_.nocd_epoch_len)));
}

double NocdProtocol::tx_prob(Slot remaining) const noexcept {
  const double base = std::min(std::exp2(-k_), params_.max_tx_prob);
  double p = base;
  // Deadline-aware floor: bounded-ratio retry with aging, endgame only.
  // While at least one full density sweep of laxity remains, the wrapping
  // dry-epoch sweep already guarantees liveness (every exponent —
  // including the aggressive ones — is revisited within (k_max+1) epochs),
  // and a blanket λ/remaining floor this early would drown a saturated
  // channel in collisions. Once the sweep can no longer complete before
  // the deadline the floor takes over — but ratio-bounded: it may boost a
  // job at most kFloorRatioCap above its estimate-driven probability, so a
  // lone straggler ramps up toward its deadline while a jammed-blind crowd
  // (everyone still believing contention is high, because it is) cannot
  // stampede the endgame into wall-to-wall collisions.
  if (robust_) {
    // Cap on floor/base: λ² with the default λ=2 — large enough that an
    // aging straggler quadruples its attempt rate, small enough that
    // aggregate endgame contention stays within a constant factor of the
    // swept estimate.
    constexpr double kFloorRatioCap = 4.0;
    const Slot sweep_len =
        params_.nocd_epoch_len * static_cast<Slot>(k_max_ + 1);
    if (remaining <= sweep_len) {
      const double floor = std::min(params_.nocd_floor_tx_prob(remaining),
                                    kFloorRatioCap * base);
      p = std::max(p, floor);
    }
  }
  return p;
}

sim::SlotAction NocdProtocol::on_slot(const sim::SlotView& view) {
  sim::SlotAction action;
  transmitted_data_ = false;
  if (succeeded_) {
    return action;  // defensive; the simulator retires done jobs
  }
  const Slot remaining = info_.window() - view.since_release;
  const double p = tx_prob(remaining);
  action.declared_prob = p;
  // Exactly one RNG draw per slot regardless of feedback model or variant,
  // so trajectories across models diverge only through decisions, never
  // through stream desynchronization.
  if (rng_.bernoulli(p)) {
    action.transmit = true;
    action.message = sim::make_data(info_.id);
    transmitted_data_ = true;
  }
  // Honest sleep declaration (DESIGN.md §6k): under binary_ack listeners
  // hear nothing by construction, so the epoch-clock tick in on_feedback is
  // content-independent and the radio can stay off on non-transmit slots.
  // Every other model feeds the success-only inference through listener
  // feedback, so the job must stay awake to hear the drain.
  action.sleep = ack_mode_ && !action.transmit;
  return action;
}

void NocdProtocol::set_exponent(int next, Slot global_slot) {
  if (next == k_) {
    return;
  }
  CRMD_TRACE(obs_, obs::EventKind::kEstimate, global_slot, info_.id, k_,
             next);
  k_ = next;
}

void NocdProtocol::end_epoch(Slot global_slot) {
  if (epoch_successes_ > 0) {
    // Productive epoch: the channel is draining. Credit the drained jobs
    // and halve the believed contention once half of it got through.
    drained_ += epoch_successes_;
    if (k_ > 0 && drained_ >= util::pow2(k_ - 1)) {
      drained_ = 0;
      set_exponent(k_ - 1, global_slot);
    }
    dry_streak_ = 0;
    dry_sweeps_ = 0;
  } else {
    // Dry epoch: nothing perceivable got through. Without collision
    // detection this is ambiguous — too-aggressive (collisions read as
    // silence/noise) or too-timid (genuine silence) — so the safe move is
    // to back off, monotonically and capped. Backing ON here instead
    // (raising the probability on dryness) looks symmetric but is
    // catastrophic under jamming: every erased success sends the whole
    // population toward p = 1/2 and the channel collapses into a noise
    // storm that outlives the jammer's budget.
    ++dry_streak_;
    set_exponent(std::min(k_ + 1, k_max_), global_slot);
    if (dry_streak_ > k_max_) {
      // A fully dry ladder: a whole backoff's worth of epochs without one
      // perceived success anywhere. The plain variant stays conservative
      // forever; the robust one counts ladders and escalates.
      dry_streak_ = 0;
      if (robust_) {
        ++dry_sweeps_;
        if (dry_sweeps_ >= params_.nocd_dry_sweep_limit) {
          // Unexplained silence has persisted past tolerance: the channel
          // was jammed silent, or it emptied without us hearing the
          // drain. Probe by halving the exponent — escalating toward
          // p = 1/2 if the silence persists, at a bounded frequency (one
          // probe per tolerated run of ladders), so a straggler on an
          // emptied channel recovers while a jammed crowd injects only a
          // bounded trickle of extra collisions.
          dry_sweeps_ = 0;
          drained_ = 0;
          set_exponent(k_ / 2, global_slot);
        }
      }
    }
  }
  epoch_slot_ = 0;
  epoch_successes_ = 0;
}

void NocdProtocol::on_feedback(const sim::SlotView& view,
                               const sim::SlotFeedback& fb) {
  const bool success = fb.outcome == sim::SlotOutcome::kSuccess;
  // A lone success while we transmitted data is necessarily our own (the
  // channel never fabricates successes, even under noisy degradation).
  if (transmitted_data_ && success) {
    succeeded_ = true;
    return;
  }
  if (ack_mode_ && transmitted_data_) {
    // binary_ack: the transmitter's feedback is the true outcome, so a
    // non-success here is an explicit own-collision cue. Back off one step
    // immediately — with listeners deaf, waiting out the epoch would learn
    // nothing more. The collision also proves the channel has live
    // contenders, so adversarial-silence evidence resets.
    set_exponent(std::min(k_ + 1, k_max_), view.global_slot);
    dry_streak_ = 0;
    dry_sweeps_ = 0;
    epoch_slot_ = 0;
    epoch_successes_ = 0;
    return;
  }
  if (success) {
    ++epoch_successes_;
  }
  if (++epoch_slot_ >= params_.nocd_epoch_len) {
    end_epoch(view.global_slot);
  }
}

bool NocdProtocol::done() const { return succeeded_; }

sim::ProtocolFactory make_nocd_factory(Params params, bool robust) {
  params.validate();
  return sim::make_arena_factory<NocdProtocol>(params, robust);
}

}  // namespace crmd::core::nocd
