#pragma once

#include <cstdint>

#include "util/types.hpp"

/// \file params.hpp
/// The protocol constants the paper leaves symbolic.
///
/// The paper writes λ for "a parameter that affects the failure
/// probability" (each occurrence tunable, one symbol used for simplicity),
/// fixes τ = 64 in the proof of Lemma 8, and needs "sufficiently small" γ.
/// All of them — plus the slingshot/anarchist exponents of §4 — live here
/// so experiments can sweep them. Defaults are chosen to be *runnable at
/// laptop scale* (the proof-grade constants would need astronomically large
/// windows); EXPERIMENTS.md quantifies the resulting constants-vs-
/// asymptotics gap.

namespace crmd::core {

/// All tunable constants for UNIFORM, ALIGNED and PUNCTUAL.
struct Params {
  // --- shared -------------------------------------------------------------

  /// λ: repetition parameter. Estimation phases have λℓ steps, broadcast
  /// phases λ subphases, the slingshot runs λ·polylog election slots, and
  /// anarchists transmit with probability λ·log(w)/w.
  int lambda = 2;

  /// Global cap on any single transmission probability. Lemma 2 assumes no
  /// job sends with probability above 1/2 (round-start markers, which are
  /// deliberate collisions, are exempt).
  double max_tx_prob = 0.5;

  // --- UNIFORM (§2) ---------------------------------------------------------

  /// Number of uniformly random slots each UNIFORM job transmits in (the
  /// paper's Θ(1)).
  int uniform_attempts = 1;

  // --- ALIGNED (§3) ---------------------------------------------------------

  /// τ: the estimate is τ·2^j for the best phase j; τ = 64 per Lemma 8's
  /// proof. Must be a power of two so estimates stay powers of two.
  std::int64_t tau = 64;

  /// ℓ_min: the smallest job class the pecking order tracks; equivalently
  /// the protocol-wide promise that every window has size >= 2^min_class
  /// (the paper's w_0 >= 1/γ). Classes below this never exist.
  int min_class = 9;

  /// Ablation (on = paper): defer to smaller job classes (§3's pecking
  /// order). Off, every class runs its own-window algorithm as if alone,
  /// so nested classes interfere — the design choice E14d quantifies.
  bool pecking_order = true;

  // --- PUNCTUAL (§4) --------------------------------------------------------

  /// a: pullback transmission probability is s/(w · (log2 w)^a) per
  /// election slot. Paper: a = 3.
  double pullback_prob_log_exp = 3.0;

  /// s: scale on the pullback probability (paper: 1). The paper's claim
  /// rate only elects leaders at asymptotic window sizes; experiments that
  /// want to exercise election/handoff at laptop scale raise this (an
  /// explicit constants-vs-asymptotics knob, reported by every bench that
  /// uses it).
  double pullback_prob_scale = 1.0;

  /// b: the pullback stage spans λ·(log2 w)^b election slots. Paper: b = 7
  /// — far beyond any practical window, so the stage is also capped by
  /// `pullback_window_frac` below.
  double pullback_len_log_exp = 7.0;

  /// Cap the pullback stage at this fraction of the job's window (measured
  /// in rounds) so the protocol always reaches its recheck/anarchist
  /// decision with most of the window left.
  double pullback_window_frac = 0.25;

  /// c: anarchists transmit with probability λ·(log2 w)^c / w per anarchy
  /// slot. Paper: c = 1.
  double anarchist_log_exp = 1.0;

  /// Windows smaller than this many slots skip the round machinery entirely
  /// and transmit anarchist-style in every slot (degenerate-window
  /// fallback; γ-slack instances for sensible γ never trigger it).
  Slot punctual_min_window = 64;

  /// Extension (off = paper-faithful): a follower whose ALIGNED run
  /// truncates without success becomes an anarchist for the remainder of
  /// its window instead of giving up.
  bool anarchist_fallback_on_truncation = false;

  /// Graceful-degradation extension (0 = off = paper-faithful): number of
  /// physically impossible observations (transmitted yet heard silence;
  /// busy believed-guard slot) a PUNCTUAL job tolerates before concluding
  /// its round grid or feedback can no longer be trusted and falling back
  /// to the clock-free desperate/anarchist path for the rest of its window.
  /// Meaningful under fault injection (clock skew, feedback loss); keep 0
  /// for fault-free runs — mixed workloads produce rare benign guard-slot
  /// noise (desperate tiny-window jobs), and a small tolerance would
  /// needlessly demote healthy followers.
  int desync_tolerance = 0;

  // --- NOCD (no-collision-detection family, DESIGN.md §6g) ------------------

  /// Slots per success-only inference epoch. A NOCD job aggregates the
  /// successes it perceives over one epoch before updating its density
  /// exponent; longer epochs average out noise at the cost of slower
  /// re-estimation (Jiang–Zheng's batches, collapsed to a constant length
  /// runnable at laptop scale).
  std::int64_t nocd_epoch_len = 8;

  /// Consecutive fully-dry backoff ladders (k_max+1 epochs each, zero
  /// successes perceived anywhere) the robust variant tolerates before
  /// concluding the silence is unexplained — adversarial jamming, or a
  /// channel that emptied unheard — and probing by halving its density
  /// exponent (escalating toward p = 1/2 while the silence persists).
  int nocd_dry_sweep_limit = 2;

  // --- ENERGY_BEB (slow-feedback-loop backoff, DESIGN.md §6k) ---------------

  /// Fraction of the remaining laxity ENERGY_BEB's first spread covers:
  /// attempt k+1 lands uniformly in the next
  /// `energy_spread_frac · 2^k · remaining` slots (each failure doubles the
  /// spread; a draw past the deadline means the job gives up and sleeps).
  /// Larger fractions lower the per-attempt load (fewer retransmissions,
  /// less energy) at the cost of latency; values above 1 shed even first
  /// attempts — deliberate duty-cycling, the energy-extreme end of the E24
  /// Pareto knob. Valid range (0, 8].
  double energy_spread_frac = 0.5;

  /// Spend one awake slot sampling the carrier after each failed attempt
  /// (a noise sample doubles the next spread a second time, beyond the
  /// unconditional failure doubling). Off by default: the failure itself
  /// already drives the multiplicative response, so the sample buys a
  /// sharper congestion estimate at one awake slot per failure. Only
  /// effective on channels with listener-visible outcomes; under
  /// binary_ack the sample is always skipped because listeners are deaf
  /// by construction.
  bool energy_listen_after_failure = false;

  // --- derived quantities ---------------------------------------------------

  /// T_ℓ = λℓ²: total steps of the size-estimation protocol for class ℓ.
  [[nodiscard]] std::int64_t estimation_steps(int level) const noexcept;

  /// λℓ: steps per estimation phase for class ℓ.
  [[nodiscard]] std::int64_t estimation_phase_len(int level) const noexcept;

  /// Active steps of the broadcast stage for class ℓ with estimate n:
  /// decay phases λn + λn/2 + … + λ·2 (present when n >= 2) followed by ℓ
  /// equal phases of λℓ (present when n >= 1). Estimate 0 (believed-empty
  /// class) uses zero broadcast steps.
  [[nodiscard]] std::int64_t broadcast_steps(int level,
                                             std::int64_t estimate) const;

  /// Total active steps for class ℓ with estimate n. For n >= 2 this equals
  /// Lemma 6's 2λ(ℓ² + n − 1).
  [[nodiscard]] std::int64_t total_steps(int level,
                                         std::int64_t estimate) const;

  /// Pullback transmission probability for window size w (capped).
  [[nodiscard]] double pullback_tx_prob(Slot window) const noexcept;

  /// Pullback stage length in election slots for window size w (capped by
  /// the window fraction).
  [[nodiscard]] std::int64_t pullback_elections(Slot window) const noexcept;

  /// Anarchist transmission probability for window size w (capped).
  [[nodiscard]] double anarchist_tx_prob(Slot window) const noexcept;

  /// Deadline-aware blind-fallback probability: the anarchist formula with
  /// the window replaced by the slots the job actually has left, so a
  /// near-deadline job ramps up instead of silently starving on a no-CD
  /// channel. Equals anarchist_tx_prob(window) at full laxity
  /// (remaining >= window), rises monotonically as `remaining` shrinks,
  /// and is capped at max_tx_prob.
  [[nodiscard]] double degraded_floor_tx_prob(Slot window,
                                              Slot remaining) const noexcept;

  /// NOCD's aging floor: keeps every live job at expected Θ(λ) floor
  /// transmissions over its remaining laxity (λ / remaining, capped), so
  /// the robust variant never stalls however wrong its contention
  /// estimate is driven by jamming.
  [[nodiscard]] double nocd_floor_tx_prob(Slot remaining) const noexcept;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

}  // namespace crmd::core
