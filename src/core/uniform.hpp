#pragma once

#include "core/params.hpp"
#include "sim/protocol.hpp"

/// \file uniform.hpp
/// UNIFORM (§2): the natural algorithm — each job transmits its data
/// message in Θ(1) uniformly random slots of its window (without
/// replacement) and does nothing else.
///
/// The paper proves a dichotomy about it: on γ-slack feasible instances
/// with γ < 1/6 a constant fraction of all messages succeed w.h.p. in n
/// (Lemma 4), yet UNIFORM is unfair — instances exist where individual
/// jobs succeed with probability only O(1/n^Θ(1)) (Lemma 5), and
/// ironically the small-window (urgent) jobs are the ones that starve.

namespace crmd::core {

/// Per-job UNIFORM protocol. `attempts` copies of the data message are
/// scheduled in distinct uniformly random slots of the window (fewer when
/// the window is smaller than the attempt count). The declared per-slot
/// transmission probability is attempts/window for contention accounting.
class UniformProtocol final : public sim::Protocol {
 public:
  UniformProtocol(const Params& params, util::Rng rng);

  void on_activate(const sim::JobInfo& info) override;
  sim::SlotAction on_slot(const sim::SlotView& view) override;
  void on_feedback(const sim::SlotView& view,
                   const sim::SlotFeedback& fb) override;
  [[nodiscard]] bool done() const override;
  /// Dormant until the next scheduled attempt offset: the attempt list is
  /// drawn once at activation, feedback is ignored unless this job
  /// transmitted, and the declared probability attempts/window is constant.
  [[nodiscard]] sim::DormantSpan dormant_span(
      const sim::SlotView& view) const override;

 private:
  Params params_;
  util::Rng rng_;
  sim::JobInfo info_;
  /// Chosen transmit offsets (since release), sorted ascending.
  std::vector<Slot> attempts_;
  std::size_t next_attempt_ = 0;
  bool transmitted_this_slot_ = false;
  bool succeeded_ = false;
};

/// Factory adapter for the simulator.
[[nodiscard]] sim::ProtocolFactory make_uniform_factory(Params params);

}  // namespace crmd::core
