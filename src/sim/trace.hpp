#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/metrics.hpp"

/// \file trace.hpp
/// CSV export of simulation artifacts: per-slot traces and per-job
/// outcomes. Used by the CLI driver (`--trace`, `--jobs-csv`) and handy for
/// offline plotting of any run.

namespace crmd::sim {

/// Writes the slot trace as CSV: slot, outcome, success_kind, contention,
/// transmitters, live_jobs, jammed, faults.
void write_slot_trace_csv(std::ostream& out,
                          const std::vector<SlotRecord>& slots);

/// Writes per-job outcomes as CSV: id, release, deadline, window, success,
/// success_slot, latency, transmissions, live_slots, dark_slots.
void write_job_results_csv(std::ostream& out,
                           const std::vector<JobResult>& jobs);

/// Writes injected fault events as CSV: slot, kind, job (see faults.hpp;
/// populated when the run recorded slots and had a non-empty FaultPlan).
void write_fault_events_csv(std::ostream& out,
                            const std::vector<FaultEvent>& events);

/// Convenience wrappers writing to a file path; return false on I/O error.
bool save_slot_trace_csv(const std::string& path,
                         const std::vector<SlotRecord>& slots);
bool save_job_results_csv(const std::string& path,
                          const std::vector<JobResult>& jobs);
bool save_fault_events_csv(const std::string& path,
                           const std::vector<FaultEvent>& events);

}  // namespace crmd::sim
