#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "sim/jammer.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/instance.hpp"

/// \file simulator.hpp
/// Slot-driven simulation of the multiple-access channel.
///
/// Each slot: (1) jobs whose release time arrives become live and their
/// protocols activate; (2) the fault injector (when configured) advances
/// each live job's crash/stall/skew state; (3) every live, non-dark
/// protocol decides its action; (4) the channel resolves (0 transmissions
/// -> silence, 1 -> success, >=2 -> noise); (5) the jamming adversary may
/// turn the slot into noise; (6) every live, non-dark job observes the
/// feedback — filtered per listener through the fault injector; (7) jobs
/// that delivered their data message, report done(), or hit their deadline
/// leave the live set. Idle gaps with no live jobs are skipped in O(1).
/// Success crediting always uses the *true* channel outcome; faults perturb
/// only what protocols perceive.
///
/// Engine layout (DESIGN.md §6e): per-job state is a hot structure-of-arrays
/// (release/deadline/protocol/live flags) plus cold JobResults; protocols
/// live in a per-simulation MonotonicArena; retirement is O(1) swap-remove
/// via a live-position index; per-slot scratch clearing scales with the
/// live set, not the total job count. The layout is bookkeeping only —
/// results are bit-identical to the original heap engine (pinned in
/// tests/test_determinism_golden.cpp).

namespace crmd::obs {
class Tracer;
}  // namespace crmd::obs

namespace crmd::sim {

/// Simulation parameters.
struct SimConfig {
  /// Master seed. Each job's protocol receives `Rng(seed).child(job id)`,
  /// so runs are exactly reproducible and per-job randomness is stable.
  std::uint64_t seed = 1;

  /// Hard stop (exclusive). Defaults to the maximum deadline of the
  /// instance when <= 0.
  Slot horizon = 0;

  /// When true, a SlotRecord is kept for every simulated slot (memory grows
  /// with the horizon — meant for tests and small traces).
  bool record_slots = false;

  /// The channel's feedback semantics (channel.hpp): how the true slot
  /// outcome is projected into what every observer perceives, and which
  /// ChannelCaps protocols are told about (via JobInfo::caps) so they can
  /// pick degraded-mode behavior. The default — the paper's ternary
  /// feedback — is a provable no-op: results are bit-identical to the
  /// pre-model engine (pinned in tests/test_determinism_golden.cpp and
  /// tests/test_feedback_models.cpp).
  FeedbackModel feedback;

  /// Collision-cost channel physics (DESIGN.md §6i; Biswas–Chakraborty–
  /// Young, arXiv:2408.11275): a slot whose post-jam outcome is noise — a
  /// perceived collision — freezes the channel for the next `cost - 1`
  /// slots, modeling PHY-layer recovery. Frozen slots run the full decision
  /// cycle (transmissions are attempted and wasted; energy is spent) but
  /// the true outcome is forced to noise, nothing is delivered, and no new
  /// freeze is armed. The default 1 is the paper's channel and is
  /// bit-identical to the pre-cost engine: the freeze path is never
  /// entered, no counter is consulted, no RNG stream is touched.
  int collision_cost = 1;

  /// Legacy *unadvertised* ablation (default on = the paper's assumption,
  /// §1.1): with collision detection, listeners receive ternary feedback.
  /// Without it, listeners cannot distinguish noise from silence (they
  /// receive kSilence for noisy slots); transmitters still learn that
  /// their own transmission failed (ACK-style). Unlike
  /// FeedbackModel::collision_as_silence this does NOT change the caps
  /// protocols see — it measures what happens when the paper's algorithms
  /// run *unaware* on a weaker channel (bench_model_assumptions). Only
  /// meaningful with the ternary model; validate() rejects other mixes.
  bool collision_detection = true;

  /// Fault injection between channel resolution and protocol observation
  /// (see faults.hpp). The default plan injects nothing and is a provable
  /// no-op: results are bit-identical to a fault-free build of the run.
  FaultPlan faults;

  /// Optional tracing session (non-owning; must outlive the simulation).
  /// Null = tracing off — the default, and guaranteed bit-identical to a
  /// traced run: emission points never touch protocol RNG streams. When
  /// set, the simulator emits channel-level events (job activate/retire,
  /// transmissions, slot resolution, success credits, faults) and every
  /// protocol emits its state-machine events (see obs/events.hpp).
  obs::Tracer* tracer = nullptr;

  /// Throws std::invalid_argument when any field is out of range or the
  /// legacy collision_detection ablation is combined with a non-ternary
  /// feedback model. Called by the Simulation ctor.
  void validate() const;
};

/// Optional per-slot tap for tests and experiment harnesses: called after
/// each slot resolves with the record and the raw transmissions.
using SlotObserver = std::function<void(
    const SlotRecord& record, std::span<const Transmission> transmissions)>;

/// A stepping simulation. Most callers use `run()`; tests use the stepping
/// API to inspect protocol state mid-flight (e.g. the Lemma 7 agreement
/// invariant).
class Simulation {
 public:
  /// Builds the simulation. The instance is normalized (sorted by release).
  /// `jammer` may be null (no adversary).
  Simulation(workload::Instance instance, const ProtocolFactory& factory,
             SimConfig config, std::unique_ptr<Jammer> jammer = nullptr);

  ~Simulation();
  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Simulates one slot (or fast-forwards across an idle gap to the next
  /// release). Returns false once the run is complete — all jobs retired or
  /// the horizon reached.
  bool step();

  /// Slot about to be simulated next.
  [[nodiscard]] Slot now() const noexcept;

  /// True when the run is complete.
  [[nodiscard]] bool finished() const noexcept;

  /// Installs a per-slot observer (replaces any previous one).
  void set_observer(SlotObserver observer);

  /// Ids of currently live jobs (release reached, not yet retired).
  [[nodiscard]] std::vector<JobId> live_jobs() const;

  /// The protocol instance driving job `id`; null when the job is not live.
  /// Tests use this (with dynamic_cast) to check protocol invariants.
  [[nodiscard]] Protocol* protocol(JobId id) noexcept;

  /// Runs to completion and returns the collected results. May be called
  /// after any number of step()s.
  SimResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: build, run to completion, return results.
SimResult run(workload::Instance instance, const ProtocolFactory& factory,
              SimConfig config, std::unique_ptr<Jammer> jammer = nullptr);

}  // namespace crmd::sim
