#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "sim/jammer.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/instance.hpp"

/// \file simulator.hpp
/// Slot-driven simulation of the multiple-access channel.
///
/// Each slot: (1) jobs whose release time arrives become live and their
/// protocols activate; (2) the fault injector (when configured) advances
/// each live job's crash/stall/skew state; (3) every live, non-dark
/// protocol decides its action; (4) the channel resolves (0 transmissions
/// -> silence, 1 -> success, >=2 -> noise); (5) the jamming adversary may
/// turn the slot into noise; (6) every live, non-dark job observes the
/// feedback — filtered per listener through the fault injector; (7) jobs
/// that delivered their data message, report done(), or hit their deadline
/// leave the live set. Idle gaps with no live jobs are skipped in O(1).
/// Success crediting always uses the *true* channel outcome; faults perturb
/// only what protocols perceive.
///
/// Engine layout (DESIGN.md §6e): per-job state is a hot structure-of-arrays
/// (release/deadline/protocol/live flags) plus cold JobResults; protocols
/// live in a per-simulation MonotonicArena; retirement is O(1) swap-remove
/// via a live-position index; per-slot scratch clearing scales with the
/// live set, not the total job count. The layout is bookkeeping only —
/// results are bit-identical to the original heap engine (pinned in
/// tests/test_determinism_golden.cpp).

namespace crmd::obs {
class Tracer;
}  // namespace crmd::obs

namespace crmd::sim {

class ArrivalProcess;

/// Event-driven fast-forward policy (DESIGN.md §6j). With `kOn`, whenever
/// every live job holds a dormancy promise (Protocol::dormant_span) the
/// engine jumps `now` across the whole provably-silent run in O(live),
/// accounting the skipped slots exactly as if simulated: slot counts,
/// silence counts, per-job live-slot counters, and the obs::Timeline
/// buckets all match; the contention distribution matches in count, min,
/// max, and (up to floating-point reassociation of the Welford update)
/// mean/variance. `kValidate` finds the same skips but then simulates every
/// skipped slot in stripped form, throwing std::logic_error if any protocol
/// breaks its promise — its results are bit-identical to `kOn` by
/// construction, which is what tests/test_fast_forward.cpp pins.
///
/// Fast-forward silently disables itself (exactly `kOff` behavior) when the
/// run has per-slot randomness or per-slot artifacts a skip cannot
/// reproduce: a jammer, any fault plan, the noisy feedback model with
/// eps > 0, record_slots, or multiple channels. A SlotObserver suppresses
/// skips while installed.
enum class FastForward {
  kOff,       ///< never skip (the default; bit-identical to the pre-FF engine)
  kOn,        ///< skip provably-silent runs in O(live)
  kValidate,  ///< skip, but re-simulate skipped slots and check the promises
};

/// One-line usage text for --fast-forward error messages.
[[nodiscard]] std::string fast_forward_usage();

/// Parses "off" | "on" | "validate" (the --fast-forward flag). Returns
/// nullopt (after printing a one-line error with fast_forward_usage() to
/// `diag`) on anything else — CLI callers exit 2, matching the --feedback
/// pattern.
[[nodiscard]] std::optional<FastForward> parse_fast_forward_spec(
    const std::string& spec, std::ostream& diag);

/// FDMA-style multi-channel scenario (DESIGN.md §6j): the spectrum is split
/// into `channels` independent sub-channels, each with the paper's slotted
/// semantics, and every job is statically hashed onto one of them (see
/// multichannel.hpp shard_of). One simulated time slot resolves all k
/// channels — slots_simulated counts channel-slots, i.e. k per time slot.
struct MultiChannelConfig {
  /// Number of sub-channels; 1 = the paper's single channel (and the
  /// engine's unchanged hot path).
  int channels = 1;
  /// When true, a job rehashes onto a fresh channel after every
  /// `migrate_after` collisions it suffers (deterministic rehash keyed on
  /// (seed, id, collision count) — no RNG stream is consumed).
  bool migrate = false;
  /// Collisions between migrations; >= 1.
  int migrate_after = 4;
};

/// Simulation parameters.
struct SimConfig {
  /// Master seed. Each job's protocol receives `Rng(seed).child(job id)`,
  /// so runs are exactly reproducible and per-job randomness is stable.
  std::uint64_t seed = 1;

  /// Hard stop (exclusive). Defaults to the maximum deadline of the
  /// instance when <= 0.
  Slot horizon = 0;

  /// When true, a SlotRecord is kept for every simulated slot (memory grows
  /// with the horizon — meant for tests and small traces).
  bool record_slots = false;

  /// The channel's feedback semantics (channel.hpp): how the true slot
  /// outcome is projected into what every observer perceives, and which
  /// ChannelCaps protocols are told about (via JobInfo::caps) so they can
  /// pick degraded-mode behavior. The default — the paper's ternary
  /// feedback — is a provable no-op: results are bit-identical to the
  /// pre-model engine (pinned in tests/test_determinism_golden.cpp and
  /// tests/test_feedback_models.cpp).
  FeedbackModel feedback;

  /// Collision-cost channel physics (DESIGN.md §6i; Biswas–Chakraborty–
  /// Young, arXiv:2408.11275): a slot whose post-jam outcome is noise — a
  /// perceived collision — freezes the channel for the next `cost - 1`
  /// slots, modeling PHY-layer recovery. Frozen slots run the full decision
  /// cycle (transmissions are attempted and wasted; energy is spent) but
  /// the true outcome is forced to noise, nothing is delivered, and no new
  /// freeze is armed. The default 1 is the paper's channel and is
  /// bit-identical to the pre-cost engine: the freeze path is never
  /// entered, no counter is consulted, no RNG stream is touched.
  int collision_cost = 1;

  /// Legacy *unadvertised* ablation (default on = the paper's assumption,
  /// §1.1): with collision detection, listeners receive ternary feedback.
  /// Without it, listeners cannot distinguish noise from silence (they
  /// receive kSilence for noisy slots); transmitters still learn that
  /// their own transmission failed (ACK-style). Unlike
  /// FeedbackModel::collision_as_silence this does NOT change the caps
  /// protocols see — it measures what happens when the paper's algorithms
  /// run *unaware* on a weaker channel (bench_model_assumptions). Only
  /// meaningful with the ternary model; validate() rejects other mixes.
  bool collision_detection = true;

  /// Fault injection between channel resolution and protocol observation
  /// (see faults.hpp). The default plan injects nothing and is a provable
  /// no-op: results are bit-identical to a fault-free build of the run.
  FaultPlan faults;

  /// Optional tracing session (non-owning; must outlive the simulation).
  /// Null = tracing off — the default, and guaranteed bit-identical to a
  /// traced run: emission points never touch protocol RNG streams. When
  /// set, the simulator emits channel-level events (job activate/retire,
  /// transmissions, slot resolution, success credits, faults) and every
  /// protocol emits its state-machine events (see obs/events.hpp).
  obs::Tracer* tracer = nullptr;

  /// Event-driven fast-forward across provably-silent runs of slots (see
  /// FastForward). The default kOff is bit-identical to the pre-FF engine:
  /// no dormant_span call is ever made.
  FastForward fast_forward = FastForward::kOff;

  /// Multi-channel scenario (see MultiChannelConfig). The default single
  /// channel takes the engine's unchanged hot path. With channels > 1 the
  /// feedback model must be ternary, binary_ack, or collision_as_silence
  /// (validate() rejects the noisy/capture models and the legacy
  /// collision_detection ablation), fast-forward is disabled, and the
  /// Simulation ctor rejects a jammer — v1 scope, DESIGN.md §6j.
  MultiChannelConfig multichannel;

  /// Streaming-mode compaction threshold (slots engine memory tolerates
  /// dead jobs at the front of its arrays before erasing them). Smaller
  /// values compact more often; tests shrink it to force the compaction
  /// path. Batch runs never compact.
  std::int64_t stream_compact = 4096;

  /// Streaming mode only: when true (default) per-job JobResults are kept
  /// and returned in SimResult::jobs (sorted by id — memory grows with the
  /// cumulative job count); when false only SimResult::stream is filled,
  /// so a 10^9-slot run holds nothing but the live set. Batch runs always
  /// keep per-job results.
  bool keep_job_results = true;

  /// Throws std::invalid_argument when any field is out of range or the
  /// legacy collision_detection ablation is combined with a non-ternary
  /// feedback model. Called by the Simulation ctor.
  void validate() const;
};

/// Optional per-slot tap for tests and experiment harnesses: called after
/// each slot resolves with the record and the raw transmissions.
using SlotObserver = std::function<void(
    const SlotRecord& record, std::span<const Transmission> transmissions)>;

/// A stepping simulation. Most callers use `run()`; tests use the stepping
/// API to inspect protocol state mid-flight (e.g. the Lemma 7 agreement
/// invariant).
class Simulation {
 public:
  /// Builds the simulation. The instance is normalized (sorted by release).
  /// `jammer` may be null (no adversary).
  Simulation(workload::Instance instance, const ProtocolFactory& factory,
             SimConfig config, std::unique_ptr<Jammer> jammer = nullptr);

  /// Streaming mode (DESIGN.md §6j): jobs are pulled from `arrivals` one at
  /// a time (nondecreasing release order, drawn from the dedicated "ARRV"
  /// child stream of config.seed) and retired jobs are folded into
  /// SimResult::stream incrementally, with the engine's arrays compacted so
  /// memory is bounded by the live set. Requires config.horizon > 0 (an
  /// open-ended stream has no max_deadline to default to). Job ids are
  /// assigned in arrival order, so a VectorArrivals over a normalized
  /// instance produces results bit-identical to the batch ctor on that
  /// instance (pinned in tests/test_fast_forward.cpp).
  Simulation(std::unique_ptr<ArrivalProcess> arrivals,
             const ProtocolFactory& factory, SimConfig config,
             std::unique_ptr<Jammer> jammer = nullptr);

  ~Simulation();
  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Simulates one slot (or fast-forwards across an idle gap to the next
  /// release). Returns false once the run is complete — all jobs retired or
  /// the horizon reached.
  bool step();

  /// Slot about to be simulated next.
  [[nodiscard]] Slot now() const noexcept;

  /// True when the run is complete.
  [[nodiscard]] bool finished() const noexcept;

  /// Installs a per-slot observer (replaces any previous one).
  void set_observer(SlotObserver observer);

  /// Ids of currently live jobs (release reached, not yet retired).
  [[nodiscard]] std::vector<JobId> live_jobs() const;

  /// The protocol instance driving job `id`; null when the job is not live.
  /// Tests use this (with dynamic_cast) to check protocol invariants.
  [[nodiscard]] Protocol* protocol(JobId id) noexcept;

  /// Runs to completion and returns the collected results. May be called
  /// after any number of step()s.
  SimResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: build, run to completion, return results.
SimResult run(workload::Instance instance, const ProtocolFactory& factory,
              SimConfig config, std::unique_ptr<Jammer> jammer = nullptr);

/// Convenience for streaming mode: build from an arrival process, run to
/// the horizon, return results (see the streaming Simulation ctor).
SimResult run_stream(std::unique_ptr<ArrivalProcess> arrivals,
                     const ProtocolFactory& factory, SimConfig config,
                     std::unique_ptr<Jammer> jammer = nullptr);

}  // namespace crmd::sim
