#include "sim/multichannel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/arrivals.hpp"

namespace crmd::sim {
namespace {

/// Seed stream tags. Shard s derives every stream from
/// Rng(seed).child(kShardStream + s); its jammer (when any) from that
/// child's kJamStream — mirroring the replication driver's layout so shard
/// runs are as replayable as replications.
constexpr std::uint64_t kShardStream = 0x53484152ULL;  // "SHAR"
constexpr std::uint64_t kJamStream = 0x4A414DULL;      // "JAM"

int resolve_workers(int requested, int shards) {
  if (requested <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, std::min(requested, shards));
}

/// One shard's parked output, folded in shard order after the join.
struct ShardOutcome {
  SimResult result;
  std::vector<obs::TraceEvent> events;
};

/// Runs `shard_fn(s)` for every shard on `workers` threads (atomic claim,
/// any completion order), parking outcomes; the caller folds serially.
void run_pool(int shards, int workers,
              const std::function<void(int)>& shard_fn) {
  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr error;
  const auto work = [&] {
    for (;;) {
      const int s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards) {
        return;
      }
      try {
        shard_fn(s);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!error) {
          error = std::current_exception();
        }
        next.store(shards, std::memory_order_relaxed);  // stop the pool
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) {
    pool.emplace_back(work);
  }
  work();
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

/// Per-shard single-channel config with the dedicated shard seed stream.
SimConfig shard_config(const SimConfig& config, int shard, Slot horizon,
                       obs::Tracer* tracer) {
  SimConfig cfg = config;
  cfg.multichannel = MultiChannelConfig{};  // each shard is one channel
  cfg.horizon = horizon;
  cfg.seed = util::Rng(config.seed)
                 .child(kShardStream + static_cast<unsigned>(shard))
                 .seed();
  cfg.tracer = tracer;
  return cfg;
}

void replay_events(obs::Tracer* tracer,
                   const std::vector<obs::TraceEvent>& events) {
  for (const obs::TraceEvent& ev : events) {
    CRMD_TRACE(tracer, ev.kind, ev.slot, ev.job, ev.a, ev.b, ev.x, ev.label);
  }
}

}  // namespace

std::string channels_usage() {
  return "expected K | K:migrate | K:migrate:N (K in [1, 256], N >= 1)";
}

std::optional<MultiChannelConfig> parse_channels_spec(const std::string& spec,
                                                      std::ostream& diag) {
  const auto fail = [&]() -> std::optional<MultiChannelConfig> {
    diag << "error: bad --channels spec '" << spec
         << "': " << channels_usage() << '\n';
    return std::nullopt;
  };
  MultiChannelConfig out;
  const auto first_colon = spec.find(':');
  const std::string head = spec.substr(0, first_colon);
  try {
    std::size_t used = 0;
    out.channels = std::stoi(head, &used);
    if (used != head.size()) {
      return fail();
    }
  } catch (const std::exception&) {
    return fail();
  }
  if (out.channels < 1 || out.channels > 256) {
    return fail();
  }
  if (first_colon == std::string::npos) {
    return out;
  }
  const std::string rest = spec.substr(first_colon + 1);
  const auto second_colon = rest.find(':');
  if (rest.substr(0, second_colon) != "migrate") {
    return fail();
  }
  out.migrate = true;
  if (second_colon == std::string::npos) {
    return out;
  }
  const std::string count = rest.substr(second_colon + 1);
  try {
    std::size_t used = 0;
    out.migrate_after = std::stoi(count, &used);
    if (used != count.size()) {
      return fail();
    }
  } catch (const std::exception&) {
    return fail();
  }
  if (out.migrate_after < 1) {
    return fail();
  }
  return out;
}

ShardedResult run_sharded(workload::Instance instance,
                          const ProtocolFactory& factory, SimConfig config,
                          int threads, const ShardJammerGen& jammer_gen) {
  config.validate();
  if (config.multichannel.migrate) {
    throw std::invalid_argument(
        "run_sharded: collision-count migration requires the in-engine "
        "co-simulation path (jobs cannot cross OS threads mid-run); unset "
        "multichannel.migrate or drop to SimConfig::multichannel");
  }
  if (config.record_slots) {
    throw std::invalid_argument(
        "run_sharded: per-slot records are a single-simulation artifact; "
        "record_slots is not supported on the sharded path");
  }
  instance.normalize();
  instance.validate();
  const int k = config.multichannel.channels;
  const Slot horizon =
      config.horizon > 0 ? config.horizon : instance.max_deadline();

  // Static hash partition over normalized positions — the same placement
  // the in-engine co-simulation uses for its (migration-free) jobs.
  const auto ks = static_cast<std::size_t>(k);
  std::vector<workload::Instance> parts(ks);
  std::vector<std::vector<JobId>> orig(ks);
  for (std::size_t i = 0; i < instance.jobs.size(); ++i) {
    const auto s = static_cast<std::size_t>(
        shard_of(config.seed, static_cast<JobId>(i), k));
    parts[s].jobs.push_back(instance.jobs[i]);
    orig[s].push_back(static_cast<JobId>(i));
  }

  obs::Tracer* tracer = config.tracer;
  std::vector<ShardOutcome> outcomes(ks);
  run_pool(k, resolve_workers(threads, k), [&](int shard) {
    const auto s = static_cast<std::size_t>(shard);
    std::unique_ptr<obs::Tracer> local_tracer;
    std::shared_ptr<obs::CollectSink> collect;
    if (tracer != nullptr) {
      local_tracer = std::make_unique<obs::Tracer>();
      collect = std::make_shared<obs::CollectSink>();
      local_tracer->add_sink(collect);
    }
    const SimConfig cfg =
        shard_config(config, shard, horizon, local_tracer.get());
    std::unique_ptr<Jammer> jammer;
    if (jammer_gen) {
      jammer = jammer_gen(util::Rng(cfg.seed).child(kJamStream));
    }
    outcomes[s].result =
        run(std::move(parts[s]), factory, cfg, std::move(jammer));
    if (local_tracer) {
      local_tracer->close();
      outcomes[s].events = collect->events();
    }
  });

  // Serial fold in shard order: bit-identical for every worker count.
  ShardedResult out;
  out.shards = k;
  out.total.jobs.resize(instance.jobs.size());
  out.per_shard.reserve(ks);
  for (std::size_t s = 0; s < ks; ++s) {
    SimResult& r = outcomes[s].result;
    for (JobResult& job : r.jobs) {
      const JobId original = orig[s][job.id];
      job.id = original;
      out.total.jobs[original] = job;
    }
    out.total.metrics.merge(r.metrics);
    out.per_shard.push_back(r.metrics);
    replay_events(tracer, outcomes[s].events);
  }
  obs::global_profiler().note_shards(k);
  return out;
}

ShardedStreamResult run_sharded_stream(const ShardArrivalGen& make_process,
                                       const ProtocolFactory& factory,
                                       SimConfig config, int threads) {
  config.validate();
  if (!make_process) {
    throw std::invalid_argument(
        "run_sharded_stream: arrival generator must be non-null");
  }
  if (config.multichannel.migrate) {
    throw std::invalid_argument(
        "run_sharded_stream: migration is not supported on the sharded "
        "path");
  }
  if (config.record_slots) {
    throw std::invalid_argument(
        "run_sharded_stream: record_slots is not supported on the sharded "
        "path");
  }
  const int k = config.multichannel.channels;
  const auto ks = static_cast<std::size_t>(k);
  obs::Tracer* tracer = config.tracer;
  std::vector<ShardOutcome> outcomes(ks);
  run_pool(k, resolve_workers(threads, k), [&](int shard) {
    const auto s = static_cast<std::size_t>(shard);
    std::unique_ptr<obs::Tracer> local_tracer;
    std::shared_ptr<obs::CollectSink> collect;
    if (tracer != nullptr) {
      local_tracer = std::make_unique<obs::Tracer>();
      collect = std::make_shared<obs::CollectSink>();
      local_tracer->add_sink(collect);
    }
    SimConfig cfg =
        shard_config(config, shard, config.horizon, local_tracer.get());
    cfg.keep_job_results = false;  // bounded memory is the point
    outcomes[s].result = run_stream(make_process(shard), factory, cfg);
    if (local_tracer) {
      local_tracer->close();
      outcomes[s].events = collect->events();
    }
  });

  ShardedStreamResult out;
  out.shards = k;
  out.per_shard.reserve(ks);
  for (std::size_t s = 0; s < ks; ++s) {
    out.metrics.merge(outcomes[s].result.metrics);
    out.stream.merge(outcomes[s].result.stream);
    out.per_shard.push_back(outcomes[s].result.metrics);
    replay_events(tracer, outcomes[s].events);
  }
  obs::global_profiler().note_shards(k);
  return out;
}

}  // namespace crmd::sim
