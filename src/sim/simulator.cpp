#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace crmd::sim {

struct Simulation::Impl {
  struct JobState {
    JobInfo info;
    std::unique_ptr<Protocol> protocol;
    JobResult result;
    bool live = false;
    bool retired = false;
  };

  SimConfig config;
  std::unique_ptr<Jammer> jammer;
  util::Rng jam_rng{0};
  std::unique_ptr<FaultInjector> injector;  // null when the plan is empty

  std::vector<JobState> jobs;     // indexed by JobId, release-sorted
  std::vector<JobId> live;        // ids of live jobs
  std::size_t next_pending = 0;   // first job not yet activated
  Slot now = 0;
  Slot horizon = 0;
  bool finished = false;

  SimMetrics metrics;
  std::vector<SlotRecord> slot_trace;
  SlotObserver observer;

  // Scratch buffers reused across slots.
  std::vector<Transmission> transmissions;
  std::vector<JobId> to_retire;
  std::vector<std::uint8_t> dark;  // per-job "dark this slot" (faulted runs)

  void retire(JobId id) {
    JobState& js = jobs[id];
    if (!js.live) {
      return;
    }
    CRMD_TRACE(config.tracer, obs::EventKind::kJobRetire, now, id,
               js.result.success ? 1 : 0);
    js.live = false;
    js.retired = true;
    js.protocol.reset();
    const auto it = std::find(live.begin(), live.end(), id);
    assert(it != live.end());
    *it = live.back();
    live.pop_back();
  }
};

Simulation::Simulation(workload::Instance instance,
                       const ProtocolFactory& factory, SimConfig config,
                       std::unique_ptr<Jammer> jammer)
    : impl_(std::make_unique<Impl>()) {
  config.validate();
  instance.normalize();
  instance.validate();

  impl_->config = config;
  impl_->jammer = std::move(jammer);
  impl_->jam_rng = util::Rng(config.seed).child(0x4A414D4D4552ULL);  // "JAMMER"
  if (config.faults.any()) {
    impl_->injector =
        std::make_unique<FaultInjector>(config.faults, config.seed);
    impl_->injector->set_record_events(config.record_slots);
    impl_->injector->set_tracer(config.tracer);
  }
  impl_->horizon =
      config.horizon > 0 ? config.horizon : instance.max_deadline();
  impl_->now = instance.empty() ? 0 : instance.min_release();

  const util::Rng master(config.seed);
  impl_->jobs.reserve(instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const auto& spec = instance.jobs[i];
    Impl::JobState js;
    js.info.id = static_cast<JobId>(i);
    js.info.release = spec.release;
    js.info.deadline = spec.deadline;
    js.protocol = factory(js.info, master.child(static_cast<JobId>(i) + 1));
    js.protocol->set_tracer(config.tracer);
    js.result.id = js.info.id;
    js.result.release = spec.release;
    js.result.deadline = spec.deadline;
    impl_->jobs.push_back(std::move(js));
  }
}

Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

Slot Simulation::now() const noexcept { return impl_->now; }

bool Simulation::finished() const noexcept { return impl_->finished; }

void Simulation::set_observer(SlotObserver observer) {
  impl_->observer = std::move(observer);
}

std::vector<JobId> Simulation::live_jobs() const { return impl_->live; }

Protocol* Simulation::protocol(JobId id) noexcept {
  if (id >= impl_->jobs.size() || !impl_->jobs[id].live) {
    return nullptr;
  }
  return impl_->jobs[id].protocol.get();
}

bool Simulation::step() {
  Impl& s = *impl_;
  if (s.finished) {
    return false;
  }

  // Fast-forward across idle gaps: nothing can happen on the channel while
  // no job is live.
  if (s.live.empty()) {
    if (s.next_pending >= s.jobs.size()) {
      s.finished = true;
      return false;
    }
    const Slot next_release = s.jobs[s.next_pending].info.release;
    if (next_release > s.now) {
      s.metrics.slots_skipped += next_release - s.now;
      s.now = next_release;
    }
  }

  if (s.now >= s.horizon) {
    s.finished = true;
    return false;
  }

  // Activate arrivals.
  while (s.next_pending < s.jobs.size() &&
         s.jobs[s.next_pending].info.release <= s.now) {
    Impl::JobState& js = s.jobs[s.next_pending];
    if (js.info.deadline > s.now) {
      js.live = true;
      s.live.push_back(js.info.id);
      CRMD_TRACE(s.config.tracer, obs::EventKind::kJobActivate, s.now,
                 js.info.id, js.info.release, js.info.deadline);
      js.protocol->on_activate(js.info);
    } else {
      js.retired = true;  // window already over (degenerate horizon cases)
      js.protocol.reset();
    }
    ++s.next_pending;
  }

  // Retire jobs whose deadline has arrived (window is [release, deadline)).
  s.to_retire.clear();
  for (const JobId id : s.live) {
    if (s.jobs[id].info.deadline <= s.now) {
      s.to_retire.push_back(id);
    }
  }
  for (const JobId id : s.to_retire) {
    s.retire(id);
  }
  if (s.live.empty()) {
    // All live jobs expired this slot; loop again from the top next call.
    return !s.finished;
  }

  // Fault phase: advance each live job's crash/stall/skew state. Dead jobs
  // retire immediately (the channel cannot tell a dead job from an absent
  // one); dark jobs stay live but neither transmit nor listen this slot.
  const std::int64_t faults_before =
      s.injector ? s.injector->total_injected() : 0;
  if (s.injector != nullptr) {
    s.dark.assign(s.jobs.size(), 0);
    s.to_retire.clear();
    for (const JobId id : s.live) {
      switch (s.injector->tick(id, s.now)) {
        case FaultInjector::JobHealth::kHealthy:
          break;
        case FaultInjector::JobHealth::kDark:
          s.dark[id] = 1;
          break;
        case FaultInjector::JobHealth::kDead:
          s.to_retire.push_back(id);
          break;
      }
    }
    for (const JobId id : s.to_retire) {
      s.retire(id);
    }
    if (s.live.empty()) {
      return !s.finished;
    }
  }

  // Decision phase. A skewed job sees its perceived (slipped-ahead) slot
  // indices; a dark job is skipped entirely (no on_slot, no feedback).
  s.transmissions.clear();
  double contention = 0.0;
  for (const JobId id : s.live) {
    Impl::JobState& js = s.jobs[id];
    ++js.result.live_slots;
    if (s.injector != nullptr && s.dark[id] != 0) {
      ++js.result.dark_slots;
      continue;
    }
    const Slot skew = s.injector ? s.injector->skew(id) : 0;
    SlotView view{/*since_release=*/s.now - js.info.release + skew,
                  /*global_slot=*/s.now + skew};
    const SlotAction action = js.protocol->on_slot(view);
    contention += action.declared_prob;
    if (action.transmit) {
      s.transmissions.push_back(Transmission{id, action.message});
      ++js.result.transmissions;
      CRMD_TRACE(s.config.tracer, obs::EventKind::kTransmit, s.now, id,
                 static_cast<std::int64_t>(action.message.kind), 0,
                 action.declared_prob, to_string(action.message.kind));
    }
  }

  // Channel resolution + adversary.
  SlotFeedback fb = resolve_slot(s.transmissions);
  bool jammed = false;
  if (s.jammer != nullptr) {
    const Message* msg = fb.message ? &*fb.message : nullptr;
    if (s.jammer->wants_jam(s.now, fb.outcome, msg) &&
        s.jam_rng.bernoulli(s.jammer->p_jam())) {
      fb.outcome = SlotOutcome::kNoise;
      fb.message.reset();
      jammed = true;
    }
  }

  // Feedback phase. Faults perturb only what each listener perceives; the
  // true outcome `fb` stays authoritative for crediting below.
  const bool ack_only =
      !s.config.collision_detection && fb.outcome == SlotOutcome::kNoise;
  // Model ablation: without collision detection listeners perceive noisy
  // slots as silent; transmitters still learn their failure (ACK-style).
  SlotFeedback listener_fb = fb;
  if (ack_only) {
    listener_fb.outcome = SlotOutcome::kSilence;
    listener_fb.message.reset();
  }
  for (const JobId id : s.live) {
    Impl::JobState& js = s.jobs[id];
    if (s.injector != nullptr && s.dark[id] != 0) {
      continue;
    }
    const bool transmitted =
        ack_only &&
        std::any_of(s.transmissions.begin(), s.transmissions.end(),
                    [id](const Transmission& t) { return t.job == id; });
    SlotFeedback perceived = transmitted ? fb : listener_fb;
    if (s.injector != nullptr) {
      perceived = s.injector->perceive(id, s.now, perceived);
    }
    const Slot skew = s.injector ? s.injector->skew(id) : 0;
    SlotView view{s.now - js.info.release + skew, s.now + skew};
    js.protocol->on_feedback(view, perceived);
  }

  SlotRecord rec;
  rec.slot = s.now;
  rec.outcome = fb.outcome;
  rec.success_kind = fb.message ? fb.message->kind : MessageKind::kData;
  rec.contention = contention;
  rec.transmitters = static_cast<std::uint32_t>(s.transmissions.size());
  rec.live_jobs = static_cast<std::uint32_t>(s.live.size());
  rec.jammed = jammed;
  if (s.injector != nullptr) {
    rec.faults = static_cast<std::uint32_t>(s.injector->total_injected() -
                                            faults_before);
    s.metrics.dark_job_slots +=
        std::count(s.dark.begin(), s.dark.end(), std::uint8_t{1});
  }
  s.metrics.record(rec);
  CRMD_TRACE(s.config.tracer, obs::EventKind::kSlotResolved, s.now, kNoJob,
             static_cast<std::int64_t>(fb.outcome),
             static_cast<std::int64_t>(s.transmissions.size()), contention,
             to_string(fb.outcome));
  if (s.config.record_slots) {
    s.slot_trace.push_back(rec);
  }
  if (s.observer) {
    s.observer(rec, s.transmissions);
  }

  // Credit a delivered data message and retire finished jobs.
  s.to_retire.clear();
  if (fb.outcome == SlotOutcome::kSuccess &&
      fb.message->kind == MessageKind::kData) {
    const JobId winner = fb.message->sender;
    assert(winner < s.jobs.size() && s.jobs[winner].live);
    CRMD_TRACE(s.config.tracer, obs::EventKind::kSuccessCredit, s.now,
               winner);
    s.jobs[winner].result.success = true;
    s.jobs[winner].result.success_slot = s.now;
    s.to_retire.push_back(winner);
  }
  for (const JobId id : s.live) {
    if (s.jobs[id].protocol->done() &&
        (s.to_retire.empty() || s.to_retire.front() != id)) {
      s.to_retire.push_back(id);
    }
  }
  for (const JobId id : s.to_retire) {
    s.retire(id);
  }

  ++s.now;
  if (s.live.empty() && s.next_pending >= s.jobs.size()) {
    s.finished = true;
  }
  return !s.finished;
}

SimResult Simulation::finish() {
  while (step()) {
  }
  SimResult result;
  result.jobs.reserve(impl_->jobs.size());
  for (auto& js : impl_->jobs) {
    result.jobs.push_back(js.result);
  }
  result.metrics = impl_->metrics;
  if (impl_->injector != nullptr) {
    const FaultInjector& inj = *impl_->injector;
    result.metrics.faults_injected = inj.total_injected();
    result.metrics.feedback_corruptions = inj.count(FaultKind::kFeedbackCorrupt);
    result.metrics.feedback_losses = inj.count(FaultKind::kFeedbackLoss);
    result.metrics.clock_skew_events = inj.count(FaultKind::kClockSkew);
    result.metrics.crashes = inj.count(FaultKind::kCrash);
    result.metrics.restarts = inj.count(FaultKind::kRestart);
    result.fault_events = impl_->injector->take_events();
  }
  result.slots = std::move(impl_->slot_trace);
  // Feed the process-wide profiler so every harness (replication sweep or
  // hand-rolled loop) gets slots/sec for free.
  obs::global_profiler().add_slots(result.metrics.slots_simulated);
  return result;
}

SimResult run(workload::Instance instance, const ProtocolFactory& factory,
              SimConfig config, std::unique_ptr<Jammer> jammer) {
  Simulation sim(std::move(instance), factory, config, std::move(jammer));
  return sim.finish();
}

}  // namespace crmd::sim
