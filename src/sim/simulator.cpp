#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/arena.hpp"

namespace crmd::sim {

void SimConfig::validate() const {
  faults.validate();
  feedback.validate();
  if (collision_cost < 1) {
    throw std::invalid_argument(
        "SimConfig: collision_cost must be >= 1, got " +
        std::to_string(collision_cost));
  }
  if (!collision_detection && feedback.kind != FeedbackKind::kTernary) {
    throw std::invalid_argument(
        "SimConfig: the legacy collision_detection ablation only composes "
        "with the ternary feedback model; use "
        "FeedbackModel::collision_as_silence instead");
  }
}

// Data-oriented engine layout (DESIGN.md §6e). Per-job state is split into
// hot structure-of-arrays scanned every slot (release/deadline/protocol
// pointer/live flag plus the per-job counters the decision loop bumps) and
// cold state touched once per job (JobResult). Protocols are constructed in
// place inside a per-simulation MonotonicArena when the factory supports it
// (all registered factories do); `live_pos` gives O(1) swap-removal from
// the live list; `dark`/`transmitted` are per-slot scratch whose clearing
// cost scales with the jobs actually touched, never with the total job
// count. All of this is bookkeeping only: the order of protocol
// construction, RNG child derivation, ticks, decisions, feedback, and
// retirement is exactly the historical order, so results stay bit-identical
// (pinned in tests/test_determinism_golden.cpp).
struct Simulation::Impl {
  SimConfig config;
  std::unique_ptr<Jammer> jammer;
  util::Rng jam_rng{0};
  /// Dedicated stream for the noisy feedback model's per-slot flip draws.
  /// Advanced only when the model is kNoisy with eps > 0, so every other
  /// model is bit-identical to the pre-model engine.
  util::Rng fb_rng{0};
  /// Dedicated stream for the capture model's winner draws. Advanced only
  /// when the model is kCapture with alpha > 0 on a slot with >= 2
  /// transmitters, so capture:0 is bit-identical to ternary.
  util::Rng cap_rng{0};
  /// Remaining frozen slots of an armed collision cost (collision_cost - 1
  /// after each perceived collision); 0 on the paper's channel.
  Slot freeze_left = 0;
  /// Capabilities stamped into every JobInfo (derived once from the model).
  ChannelCaps caps;
  std::unique_ptr<FaultInjector> injector;  // null when the plan is empty

  // --- Hot per-job state (structure-of-arrays, indexed by JobId). ---
  std::vector<Slot> release;
  std::vector<Slot> deadline;
  std::vector<Protocol*> proto;        // null once retired
  std::vector<std::uint8_t> live_flag;
  std::vector<std::uint32_t> live_pos;  // index into `live`; valid while live
  // Per-job counters bumped in the decision loop; folded into the cold
  // JobResult once, in finish().
  std::vector<std::int64_t> live_slot_count;
  std::vector<std::int64_t> dark_slot_count;
  std::vector<std::int64_t> tx_count;

  // --- Cold per-job state. ---
  std::vector<JobResult> results;

  // Backing store for the protocol objects. `arena_owned` is false only for
  // heap-only (legacy ad-hoc) factories, in which case `proto` holds plain
  // owning pointers released with `delete`.
  util::MonotonicArena arena;
  bool arena_owned = false;

  std::vector<JobId> live;        // ids of live jobs
  std::size_t next_pending = 0;   // first job not yet activated
  Slot now = 0;
  Slot horizon = 0;
  bool finished = false;

  SimMetrics metrics;
  std::vector<SlotRecord> slot_trace;
  SlotObserver observer;

  // Scratch buffers reused across slots. `dark` and `transmitted` are
  // job-indexed but cleared per slot only at the entries written this slot
  // (live jobs resp. transmitters), so per-slot cost tracks the live set.
  std::vector<Transmission> transmissions;
  std::vector<JobId> to_retire;
  std::vector<std::uint8_t> dark;         // "dark this slot" (faulted runs)
  std::vector<std::uint8_t> transmitted;  // "sent this slot" (ACK-only runs)

  [[nodiscard]] std::size_t job_count() const noexcept {
    return release.size();
  }

  // Runs the protocol's destructor and releases (heap path) or abandons
  // (arena path — memory is reclaimed when the arena dies) its storage.
  void destroy_protocol(JobId id) noexcept {
    Protocol* p = proto[id];
    if (p == nullptr) {
      return;
    }
    proto[id] = nullptr;
    if (arena_owned) {
      p->~Protocol();
    } else {
      delete p;
    }
  }

  ~Impl() {
    for (JobId id = 0; id < proto.size(); ++id) {
      destroy_protocol(id);
    }
  }

  void retire(JobId id) {
    if (live_flag[id] == 0) {
      return;
    }
    CRMD_TRACE(config.tracer, obs::EventKind::kJobRetire, now, id,
               results[id].success ? 1 : 0);
    live_flag[id] = 0;
    destroy_protocol(id);
    const std::uint32_t pos = live_pos[id];
    assert(pos < live.size() && live[pos] == id);
    const JobId moved = live.back();
    live[pos] = moved;
    live_pos[moved] = pos;
    live.pop_back();
  }
};

Simulation::Simulation(workload::Instance instance,
                       const ProtocolFactory& factory, SimConfig config,
                       std::unique_ptr<Jammer> jammer)
    : impl_(std::make_unique<Impl>()) {
  config.validate();
  instance.normalize();
  instance.validate();

  Impl& s = *impl_;
  s.config = config;
  s.jammer = std::move(jammer);
  s.jam_rng = util::Rng(config.seed).child(0x4A414D4D4552ULL);  // "JAMMER"
  s.fb_rng = util::Rng(config.seed).child(0x4642464C4950ULL);   // "FBFLIP"
  s.cap_rng = util::Rng(config.seed).child(0x43415054ULL);      // "CAPT"
  s.caps = config.feedback.caps();
  if (config.faults.any()) {
    s.injector = std::make_unique<FaultInjector>(config.faults, config.seed);
    s.injector->set_record_events(config.record_slots);
    s.injector->set_tracer(config.tracer);
  }
  s.horizon = config.horizon > 0 ? config.horizon : instance.max_deadline();
  s.now = instance.empty() ? 0 : instance.min_release();

  const util::Rng master(config.seed);
  const std::size_t n = instance.size();
  s.release.reserve(n);
  s.deadline.reserve(n);
  s.proto.reserve(n);
  s.live_flag.assign(n, 0);
  s.live_pos.assign(n, 0);
  s.live_slot_count.assign(n, 0);
  s.dark_slot_count.assign(n, 0);
  s.tx_count.assign(n, 0);
  s.results.reserve(n);
  s.dark.assign(n, 0);
  s.transmitted.assign(n, 0);
  s.arena_owned = factory.arena_aware();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& spec = instance.jobs[i];
    JobInfo info;
    info.id = static_cast<JobId>(i);
    info.release = spec.release;
    info.deadline = spec.deadline;
    info.caps = s.caps;
    s.release.push_back(spec.release);
    s.deadline.push_back(spec.deadline);
    // Same construction order and the same RNG child stream per job as the
    // original heap engine — the determinism contract depends on it.
    Protocol* p =
        s.arena_owned
            ? factory.emplace(info, master.child(static_cast<JobId>(i) + 1),
                              s.arena)
            : factory(info, master.child(static_cast<JobId>(i) + 1))
                  .release();
    p->set_tracer(config.tracer);
    s.proto.push_back(p);
    JobResult result;
    result.id = info.id;
    result.release = spec.release;
    result.deadline = spec.deadline;
    s.results.push_back(result);
  }
}

Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

Slot Simulation::now() const noexcept { return impl_->now; }

bool Simulation::finished() const noexcept { return impl_->finished; }

void Simulation::set_observer(SlotObserver observer) {
  impl_->observer = std::move(observer);
}

std::vector<JobId> Simulation::live_jobs() const { return impl_->live; }

Protocol* Simulation::protocol(JobId id) noexcept {
  if (id >= impl_->job_count() || impl_->live_flag[id] == 0) {
    return nullptr;
  }
  return impl_->proto[id];
}

bool Simulation::step() {
  Impl& s = *impl_;
  if (s.finished) {
    return false;
  }

  // Fast-forward across idle gaps: nothing can happen on the channel while
  // no job is live.
  if (s.live.empty()) {
    if (s.next_pending >= s.job_count()) {
      s.finished = true;
      return false;
    }
    const Slot next_release = s.release[s.next_pending];
    if (next_release > s.now) {
      // A pending collision-cost freeze elapses across the skipped gap —
      // nobody is live to observe the frozen slots, so they are not
      // simulated (and not counted as cost slots).
      s.freeze_left = std::max<Slot>(0, s.freeze_left - (next_release - s.now));
      s.metrics.slots_skipped += next_release - s.now;
      s.now = next_release;
    }
  }

  if (s.now >= s.horizon) {
    s.finished = true;
    return false;
  }

  // Activate arrivals.
  while (s.next_pending < s.job_count() &&
         s.release[s.next_pending] <= s.now) {
    const JobId id = static_cast<JobId>(s.next_pending);
    if (s.deadline[id] > s.now) {
      s.live_flag[id] = 1;
      s.live_pos[id] = static_cast<std::uint32_t>(s.live.size());
      s.live.push_back(id);
      CRMD_TRACE(s.config.tracer, obs::EventKind::kJobActivate, s.now, id,
                 s.release[id], s.deadline[id]);
      JobInfo info;
      info.id = id;
      info.release = s.release[id];
      info.deadline = s.deadline[id];
      info.caps = s.caps;
      s.proto[id]->on_activate(info);
    } else {
      // Window already over (degenerate horizon cases); never activates.
      s.destroy_protocol(id);
    }
    ++s.next_pending;
  }

  // Retire jobs whose deadline has arrived (window is [release, deadline)).
  s.to_retire.clear();
  for (const JobId id : s.live) {
    if (s.deadline[id] <= s.now) {
      s.to_retire.push_back(id);
    }
  }
  for (const JobId id : s.to_retire) {
    s.retire(id);
  }
  if (s.live.empty()) {
    // All live jobs expired this slot; loop again from the top next call.
    return !s.finished;
  }

  // Fault phase: advance each live job's crash/stall/skew state. Dead jobs
  // retire immediately (the channel cannot tell a dead job from an absent
  // one); dark jobs stay live but neither transmit nor listen this slot.
  // The dark flags of this slot's live set are (re)written unconditionally,
  // so no all-jobs clear is needed — stale entries of retired jobs are
  // never read again.
  const std::int64_t faults_before =
      s.injector ? s.injector->total_injected() : 0;
  if (s.injector != nullptr) {
    s.to_retire.clear();
    std::int64_t dark_this_slot = 0;
    for (const JobId id : s.live) {
      std::uint8_t is_dark = 0;
      switch (s.injector->tick(id, s.now)) {
        case FaultInjector::JobHealth::kHealthy:
          break;
        case FaultInjector::JobHealth::kDark:
          is_dark = 1;
          ++dark_this_slot;
          break;
        case FaultInjector::JobHealth::kDead:
          s.to_retire.push_back(id);
          break;
      }
      s.dark[id] = is_dark;
    }
    s.metrics.dark_job_slots += dark_this_slot;
    for (const JobId id : s.to_retire) {
      s.retire(id);
    }
    if (s.live.empty()) {
      return !s.finished;
    }
  }

  // Decision phase. A skewed job sees its perceived (slipped-ahead) slot
  // indices; a dark job is skipped entirely (no on_slot, no feedback).
  s.transmissions.clear();
  double contention = 0.0;
  for (const JobId id : s.live) {
    ++s.live_slot_count[id];
    if (s.injector != nullptr && s.dark[id] != 0) {
      ++s.dark_slot_count[id];
      continue;
    }
    const Slot skew = s.injector ? s.injector->skew(id) : 0;
    SlotView view{/*since_release=*/s.now - s.release[id] + skew,
                  /*global_slot=*/s.now + skew};
    const SlotAction action = s.proto[id]->on_slot(view);
    contention += action.declared_prob;
    if (action.transmit) {
      s.transmissions.push_back(Transmission{id, action.message});
      ++s.tx_count[id];
      CRMD_TRACE(s.config.tracer, obs::EventKind::kTransmit, s.now, id,
                 static_cast<std::int64_t>(action.message.kind), 0,
                 action.declared_prob, to_string(action.message.kind));
    }
  }

  // Channel resolution + capture + adversary (DESIGN.md §6i). Order:
  // resolve -> freeze override -> capture draw -> jammer. A frozen slot
  // (collision-cost recovery in progress) is noise for everyone no matter
  // what was attempted; capture can leak one winner out of a fresh
  // collision; the jammer acts last so an adaptive adversary can stomp a
  // captured success. The jammer is not consulted on frozen slots — the
  // channel is already noise, and jamming it would only waste budget.
  const bool frozen = s.freeze_left > 0;
  SlotFeedback fb = resolve_slot(s.transmissions);
  JobId capture_winner = kNoJob;
  bool jammed = false;
  if (frozen) {
    --s.freeze_left;
    fb.outcome = SlotOutcome::kNoise;
    fb.message.reset();
    ++s.metrics.collision_cost_slots;
    CRMD_TRACE(s.config.tracer, obs::EventKind::kCostSlot, s.now, kNoJob,
               s.freeze_left,
               static_cast<std::int64_t>(s.transmissions.size()), 0.0,
               "cost");
  } else {
    if (s.config.feedback.kind == FeedbackKind::kCapture &&
        s.config.feedback.alpha > 0.0 && s.transmissions.size() >= 2) {
      // One winner survives a k-way collision with probability
      // p_k = alpha^(k-1); the winner is drawn uniformly. Both draws come
      // from the dedicated cap_rng stream, taken only on this path, so
      // alpha = 0 leaves every other stream untouched.
      const double p_win = std::pow(
          s.config.feedback.alpha,
          static_cast<double>(s.transmissions.size() - 1));
      if (s.cap_rng.bernoulli(p_win)) {
        const std::size_t idx = static_cast<std::size_t>(s.cap_rng.below(
            static_cast<std::uint64_t>(s.transmissions.size())));
        fb.outcome = SlotOutcome::kSuccess;
        fb.message = s.transmissions[idx].message;
        capture_winner = s.transmissions[idx].job;
      }
    }
    if (s.jammer != nullptr) {
      const Message* msg = fb.message ? &*fb.message : nullptr;
      if (s.jammer->wants_jam(s.now, fb.outcome, msg) &&
          s.jam_rng.bernoulli(s.jammer->p_jam())) {
        fb.outcome = SlotOutcome::kNoise;
        fb.message.reset();
        jammed = true;
        capture_winner = kNoJob;  // the jam stomped the captured success
      }
    }
    // A perceived collision — genuine, capture-lost, or jam-created —
    // freezes the channel for the next cost-1 slots. Frozen slots never
    // re-arm, so a burst costs `cost` slots total, not a cascade.
    if (s.config.collision_cost > 1 && fb.outcome == SlotOutcome::kNoise) {
      s.freeze_left = s.config.collision_cost - 1;
    }
  }
  if (capture_winner != kNoJob) {
    ++s.metrics.capture_wins;
    CRMD_TRACE(s.config.tracer, obs::EventKind::kCaptureWin, s.now,
               capture_winner,
               static_cast<std::int64_t>(s.transmissions.size()), 0,
               s.config.feedback.alpha, "capture");
  }

  // Feedback phase. The feedback model projects the true outcome into a
  // common listener view and (when transmitters perceive something
  // different) a transmitter view; faults then perturb per listener. The
  // true outcome `fb` stays authoritative for crediting below. All
  // projection work is O(1) per slot plus — only when the views split —
  // one O(transmitters) bitmap pass, so the per-listener "did I transmit"
  // check is O(1) instead of a rescan. No allocation.
  SlotFeedback listener_fb = fb;     // what a pure listener perceives
  SlotFeedback transmitter_fb = fb;  // what a transmitter perceives
  bool split = false;  // transmitter view differs from listener view
  switch (s.config.feedback.kind) {
    case FeedbackKind::kTernary:
      // Legacy unadvertised ablation: listeners perceive noisy slots as
      // silent; transmitters still learn their failure (ACK-style).
      if (!s.config.collision_detection &&
          fb.outcome == SlotOutcome::kNoise) {
        listener_fb.outcome = SlotOutcome::kSilence;
        listener_fb.message.reset();
        split = true;
      }
      break;
    case FeedbackKind::kBinaryAck:
      // Listeners hear nothing, ever; transmitters get the true outcome
      // (their own success, or noise when their transmission failed).
      listener_fb.outcome = SlotOutcome::kSilence;
      listener_fb.message.reset();
      split = !s.transmissions.empty();
      break;
    case FeedbackKind::kCollisionAsSilence:
      // Empty and collided slots are indistinguishable for everyone —
      // including the transmitters, who get no failure ACK.
      if (fb.outcome == SlotOutcome::kNoise) {
        listener_fb.outcome = SlotOutcome::kSilence;
        listener_fb.message.reset();
        transmitter_fb = listener_fb;
      }
      break;
    case FeedbackKind::kNoisy:
      // One seeded flip draw per simulated slot; on a flip every observer
      // hears the same one-step-degraded outcome.
      if (s.config.feedback.eps > 0.0 &&
          s.fb_rng.bernoulli(s.config.feedback.eps)) {
        listener_fb = degrade_feedback(fb);
        transmitter_fb = listener_fb;
        ++s.metrics.feedback_flips;
      }
      break;
    case FeedbackKind::kCapture:
      // On a captured success, listeners (and the winner, excluded from
      // the transmitted bitmap below) hear the success; the k-1 losers
      // perceive noise — their own signal drowned the broadcast out at
      // their radio. Without a capture win the channel is exactly ternary.
      if (capture_winner != kNoJob) {
        transmitter_fb.outcome = SlotOutcome::kNoise;
        transmitter_fb.message.reset();
        split = true;
      }
      break;
  }
  if (split) {
    for (const Transmission& t : s.transmissions) {
      s.transmitted[t.job] = 1;
    }
    if (capture_winner != kNoJob) {
      s.transmitted[capture_winner] = 0;  // the winner hears its own success
    }
  }
  for (const JobId id : s.live) {
    if (s.injector != nullptr && s.dark[id] != 0) {
      continue;
    }
    const bool sent = split && s.transmitted[id] != 0;
    SlotFeedback perceived = sent ? transmitter_fb : listener_fb;
    if (s.injector != nullptr) {
      perceived = s.injector->perceive(id, s.now, perceived);
    }
    const Slot skew = s.injector ? s.injector->skew(id) : 0;
    SlotView view{s.now - s.release[id] + skew, s.now + skew};
    s.proto[id]->on_feedback(view, perceived);
  }
  if (split) {
    for (const Transmission& t : s.transmissions) {
      s.transmitted[t.job] = 0;
    }
  }

  SlotRecord rec;
  rec.slot = s.now;
  rec.outcome = fb.outcome;
  rec.success_kind = fb.message ? fb.message->kind : MessageKind::kData;
  rec.contention = contention;
  rec.transmitters = static_cast<std::uint32_t>(s.transmissions.size());
  rec.live_jobs = static_cast<std::uint32_t>(s.live.size());
  rec.jammed = jammed;
  if (s.injector != nullptr) {
    rec.faults = static_cast<std::uint32_t>(s.injector->total_injected() -
                                            faults_before);
  }
  s.metrics.record(rec);
  CRMD_TRACE(s.config.tracer, obs::EventKind::kSlotResolved, s.now, kNoJob,
             static_cast<std::int64_t>(fb.outcome),
             static_cast<std::int64_t>(s.transmissions.size()), contention,
             to_string(fb.outcome));
  // The listener-perceived companion event: what the feedback model let
  // pure listeners hear this slot (before per-job fault perturbation),
  // plus the live-set size. The gap between this and kSlotResolved is the
  // channel's perception error — what obs::Timeline charts per bucket.
  CRMD_TRACE(s.config.tracer, obs::EventKind::kSlotPerceived, s.now, kNoJob,
             static_cast<std::int64_t>(listener_fb.outcome),
             static_cast<std::int64_t>(s.live.size()), 0.0,
             to_string(listener_fb.outcome));
  if (s.config.record_slots) {
    s.slot_trace.push_back(rec);
  }
  if (s.observer) {
    s.observer(rec, s.transmissions);
  }

  // Credit a delivered data message and retire finished jobs.
  s.to_retire.clear();
  if (fb.outcome == SlotOutcome::kSuccess &&
      fb.message->kind == MessageKind::kData) {
    const JobId winner = fb.message->sender;
    assert(winner < s.job_count() && s.live_flag[winner] != 0);
    CRMD_TRACE(s.config.tracer, obs::EventKind::kSuccessCredit, s.now,
               winner);
    s.results[winner].success = true;
    s.results[winner].success_slot = s.now;
    s.to_retire.push_back(winner);
  }
  for (const JobId id : s.live) {
    if (s.proto[id]->done() &&
        (s.to_retire.empty() || s.to_retire.front() != id)) {
      s.to_retire.push_back(id);
    }
  }
  for (const JobId id : s.to_retire) {
    s.retire(id);
  }

  ++s.now;
  if (s.live.empty() && s.next_pending >= s.job_count()) {
    s.finished = true;
  }
  return !s.finished;
}

SimResult Simulation::finish() {
  while (step()) {
  }
  Impl& s = *impl_;
  // Fold the hot per-job counters into the cold results exactly once.
  for (std::size_t i = 0; i < s.results.size(); ++i) {
    JobResult& r = s.results[i];
    r.live_slots = s.live_slot_count[i];
    r.dark_slots = s.dark_slot_count[i];
    r.transmissions = s.tx_count[i];
  }
  SimResult result;
  result.jobs = s.results;
  result.metrics = s.metrics;
  if (s.injector != nullptr) {
    const FaultInjector& inj = *s.injector;
    result.metrics.faults_injected = inj.total_injected();
    result.metrics.feedback_corruptions = inj.count(FaultKind::kFeedbackCorrupt);
    result.metrics.feedback_losses = inj.count(FaultKind::kFeedbackLoss);
    result.metrics.clock_skew_events = inj.count(FaultKind::kClockSkew);
    result.metrics.crashes = inj.count(FaultKind::kCrash);
    result.metrics.restarts = inj.count(FaultKind::kRestart);
    result.fault_events = s.injector->take_events();
  }
  result.slots = std::move(s.slot_trace);
  // Feed the process-wide profiler so every harness (replication sweep or
  // hand-rolled loop) gets slots/sec for free.
  obs::global_profiler().add_slots(result.metrics.slots_simulated);
  return result;
}

SimResult run(workload::Instance instance, const ProtocolFactory& factory,
              SimConfig config, std::unique_ptr<Jammer> jammer) {
  Simulation sim(std::move(instance), factory, config, std::move(jammer));
  return sim.finish();
}

}  // namespace crmd::sim
