#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/arrivals.hpp"
#include "sim/multichannel.hpp"
#include "util/arena.hpp"

namespace crmd::sim {

namespace {
constexpr Slot kMaxSlot = std::numeric_limits<Slot>::max();
}  // namespace

std::string fast_forward_usage() { return "expected off | on | validate"; }

std::optional<FastForward> parse_fast_forward_spec(const std::string& spec,
                                                   std::ostream& diag) {
  if (spec == "off") {
    return FastForward::kOff;
  }
  if (spec == "on") {
    return FastForward::kOn;
  }
  if (spec == "validate") {
    return FastForward::kValidate;
  }
  diag << "error: bad --fast-forward spec '" << spec
       << "': " << fast_forward_usage() << '\n';
  return std::nullopt;
}

void SimConfig::validate() const {
  faults.validate();
  feedback.validate();
  if (collision_cost < 1) {
    throw std::invalid_argument(
        "SimConfig: collision_cost must be >= 1, got " +
        std::to_string(collision_cost));
  }
  if (!collision_detection && feedback.kind != FeedbackKind::kTernary) {
    throw std::invalid_argument(
        "SimConfig: the legacy collision_detection ablation only composes "
        "with the ternary feedback model; use "
        "FeedbackModel::collision_as_silence instead");
  }
  if (multichannel.channels < 1 || multichannel.channels > 256) {
    throw std::invalid_argument(
        "SimConfig: multichannel.channels must be in [1, 256], got " +
        std::to_string(multichannel.channels));
  }
  if (multichannel.migrate_after < 1) {
    throw std::invalid_argument(
        "SimConfig: multichannel.migrate_after must be >= 1, got " +
        std::to_string(multichannel.migrate_after));
  }
  if (multichannel.channels > 1) {
    if (feedback.kind == FeedbackKind::kNoisy ||
        feedback.kind == FeedbackKind::kCapture) {
      throw std::invalid_argument(
          "SimConfig: multichannel composes only with the ternary, "
          "binary_ack, and collision_as_silence feedback models (v1 scope, "
          "DESIGN.md §6j)");
    }
    if (!collision_detection) {
      throw std::invalid_argument(
          "SimConfig: multichannel does not compose with the legacy "
          "collision_detection ablation");
    }
  }
  if (stream_compact < 1) {
    throw std::invalid_argument(
        "SimConfig: stream_compact must be >= 1, got " +
        std::to_string(stream_compact));
  }
}

// Data-oriented engine layout (DESIGN.md §6e). Per-job state is split into
// hot structure-of-arrays scanned every slot (release/deadline/protocol
// pointer/live flag plus the per-job counters the decision loop bumps) and
// cold state touched once per job (JobResult). Protocols are constructed in
// place inside a per-simulation MonotonicArena when the factory supports it
// (all registered factories do); `live_pos` gives O(1) swap-removal from
// the live list; `dark`/`transmitted` are per-slot scratch whose clearing
// cost scales with the jobs actually touched, never with the total job
// count. All of this is bookkeeping only: the order of protocol
// construction, RNG child derivation, ticks, decisions, feedback, and
// retirement is exactly the historical order, so results stay bit-identical
// (pinned in tests/test_determinism_golden.cpp).
//
// Streaming mode (DESIGN.md §6j) reuses the same arrays but indexes them by
// ix(id) = id - base_id: jobs are appended at activation (the arrival
// process provides a one-job lookahead in `pending_spec`), folded into
// `stream` at retirement, and the dead prefix of the arrays is erased —
// bumping base_id — once it crosses the compaction threshold, so memory is
// bounded by the live set. In batch mode base_id stays 0 and ix() is the
// identity, so the hot path pays one subtract that constant-folds against a
// register holding zero.
struct Simulation::Impl {
  SimConfig config;
  /// Kept only for streaming appends (empty in batch mode).
  ProtocolFactory factory;
  util::Rng master{0};
  std::unique_ptr<Jammer> jammer;
  util::Rng jam_rng{0};
  /// Dedicated stream for the noisy feedback model's per-slot flip draws.
  /// Advanced only when the model is kNoisy with eps > 0, so every other
  /// model is bit-identical to the pre-model engine.
  util::Rng fb_rng{0};
  /// Dedicated stream for the capture model's winner draws. Advanced only
  /// when the model is kCapture with alpha > 0 on a slot with >= 2
  /// transmitters, so capture:0 is bit-identical to ternary.
  util::Rng cap_rng{0};
  /// Dedicated stream for streaming arrival draws ("ARRV").
  util::Rng arr_rng{0};
  /// Non-null = streaming mode.
  std::unique_ptr<ArrivalProcess> arrivals;
  /// Streaming one-job lookahead; nullopt = the stream is exhausted.
  std::optional<workload::JobSpec> pending_spec;
  /// Global id of arrays[0] (streaming compaction offset; 0 in batch).
  JobId base_id = 0;
  /// Next global id to assign (streaming).
  JobId next_id = 0;
  /// Nondecreasing-release enforcement for arrival processes.
  Slot last_release = 0;
  /// Streaming: arrays[0..dead_prefix) are all retired (never revived).
  std::size_t dead_prefix = 0;
  /// Streaming, keep_job_results: retired JobResults in retirement order
  /// (sorted by id in finish()).
  std::vector<JobResult> finished_results;
  StreamSummary stream;

  /// Remaining frozen slots of an armed collision cost (collision_cost - 1
  /// after each perceived collision); 0 on the paper's channel.
  Slot freeze_left = 0;
  /// Per-channel freeze counters (multichannel; sized channels when k > 1).
  std::vector<Slot> chan_freeze;
  /// Capabilities stamped into every JobInfo (derived once from the model).
  ChannelCaps caps;
  std::unique_ptr<FaultInjector> injector;  // null when the plan is empty

  // --- Hot per-job state (structure-of-arrays, indexed by ix(id)). ---
  std::vector<Slot> release;
  std::vector<Slot> deadline;
  std::vector<Protocol*> proto;        // null once retired
  std::vector<std::uint8_t> live_flag;
  std::vector<std::uint32_t> live_pos;  // index into `live`; valid while live
  // Per-job counters bumped in the decision loop; folded into the cold
  // JobResult once — at finish() in batch mode, at retirement in streaming.
  std::vector<std::int64_t> live_slot_count;
  std::vector<std::int64_t> dark_slot_count;
  std::vector<std::int64_t> tx_count;
  // Radio-energy accounting (DESIGN.md §6k): slots spent listening (awake
  // without transmitting). Sleep slots are the remainder of live_slot_count;
  // fast-forwarded dormant spans add nothing here — a dormant span is
  // exactly a sleep span, so skipped slots batch-account zero awake slots,
  // which is what makes the energy counters bit-identical across
  // --fast-forward modes.
  std::vector<std::int64_t> listen_count;
  // Last observed radio state (1 = awake) per job, for kRadioSleep /
  // kRadioWake transition events. Jobs activate awake (radio on at
  // power-up); a fast-forward skip puts every live job to sleep at the
  // skip's first slot, exactly where slot-by-slot simulation would.
  std::vector<std::uint8_t> prev_awake;
  // Multichannel (k > 1 only): each job's channel and collision count.
  std::vector<std::uint8_t> chan;
  std::vector<std::uint32_t> coll_count;
  // Fast-forward promise cache: absolute slot the job's dormancy promise
  // expires (0 = none cached) and the constant probability it declared.
  // Re-querying dormant_span only for expired entries keeps the skip check
  // at one virtual call per job per *promise*, not per skip.
  std::vector<Slot> ff_until;
  std::vector<double> ff_prob;

  // --- Cold per-job state. ---
  std::vector<JobResult> results;

  // Backing store for the protocol objects. `arena_owned` is false only for
  // heap-only (legacy ad-hoc) factories and for streaming mode (an arena
  // never frees, so an open-ended run must use plain heap objects), in
  // which case `proto` holds plain owning pointers released with `delete`.
  util::MonotonicArena arena;
  bool arena_owned = false;

  std::vector<JobId> live;        // ids of live jobs
  std::size_t next_pending = 0;   // batch: first job not yet activated
  Slot now = 0;
  Slot horizon = 0;
  bool finished = false;
  /// True when this run qualifies for fast-forward at all (computed once;
  /// see SimConfig::fast_forward for the exclusions).
  bool ff_enabled = false;
  /// Lower bound on the earliest live deadline; lets the deadline-retire
  /// scan be skipped entirely while min_deadline > now. May go stale *low*
  /// after retirements (which only triggers a harmless extra scan), never
  /// stale high — activation refreshes it and triggered scans recompute it
  /// exactly — so results are provably identical.
  Slot min_deadline = kMaxSlot;

  SimMetrics metrics;
  std::vector<SlotRecord> slot_trace;
  SlotObserver observer;

  // Scratch buffers reused across slots. `dark` and `transmitted` are
  // job-indexed but cleared per slot only at the entries written this slot
  // (live jobs resp. transmitters), so per-slot cost tracks the live set.
  std::vector<Transmission> transmissions;
  std::vector<JobId> to_retire;
  std::vector<std::uint8_t> dark;         // "dark this slot" (faulted runs)
  std::vector<std::uint8_t> transmitted;  // "sent this slot" (ACK-only runs)
  std::vector<std::uint8_t> asleep;       // "slept this slot" (§6k scrub)
  // Multichannel per-slot scratch (k > 1 only), all indexed by channel.
  std::vector<std::vector<Transmission>> chan_tx;
  std::vector<double> chan_contention;
  std::vector<std::uint32_t> chan_live;
  std::vector<std::uint32_t> chan_awake;
  std::vector<SlotFeedback> chan_fb;           // true outcome
  std::vector<SlotFeedback> chan_listener;     // listener projection
  std::vector<SlotFeedback> chan_transmitter;  // transmitter projection
  std::vector<std::uint8_t> chan_split;

  [[nodiscard]] std::size_t ix(JobId id) const noexcept {
    return static_cast<std::size_t>(id - base_id);
  }

  [[nodiscard]] std::size_t job_count() const noexcept {
    return release.size();
  }

  [[nodiscard]] bool streaming() const noexcept { return arrivals != nullptr; }

  // Runs the protocol's destructor and releases (heap path) or abandons
  // (arena path — memory is reclaimed when the arena dies) its storage.
  void destroy_at(std::size_t i) noexcept {
    Protocol* p = proto[i];
    if (p == nullptr) {
      return;
    }
    proto[i] = nullptr;
    if (arena_owned) {
      p->~Protocol();
    } else {
      delete p;
    }
  }

  ~Impl() {
    for (std::size_t i = 0; i < proto.size(); ++i) {
      destroy_at(i);
    }
  }

  // Folds a retired (or horizon-cut) streaming job into the rolling
  // summary; the per-job counters are final once the job leaves the live
  // set, so this matches batch mode's fold-at-finish exactly.
  void fold_streamed(std::size_t i) {
    JobResult& r = results[i];
    r.live_slots = live_slot_count[i];
    r.dark_slots = dark_slot_count[i];
    r.transmissions = tx_count[i];
    r.listen_slots = listen_count[i];
    stream.add(r);
    if (config.keep_job_results) {
      finished_results.push_back(r);
    }
  }

  void retire(JobId id) {
    const std::size_t i = ix(id);
    if (live_flag[i] == 0) {
      return;
    }
    CRMD_TRACE(config.tracer, obs::EventKind::kJobRetire, now, id,
               results[i].success ? 1 : 0);
    live_flag[i] = 0;
    destroy_at(i);
    const std::uint32_t pos = live_pos[i];
    assert(pos < live.size() && live[pos] == id);
    const JobId moved = live.back();
    live[pos] = moved;
    live_pos[ix(moved)] = pos;
    live.pop_back();
    if (streaming()) {
      fold_streamed(i);
    }
  }

  // Streaming: refills the one-job lookahead, enforcing the process
  // contract (sane windows, nondecreasing releases) and ending the stream
  // at the horizon — releases are nondecreasing, so once one job starts at
  // or past the horizon every later one does too.
  void pull_next() {
    pending_spec.reset();
    auto job = arrivals->next(arr_rng);
    if (!job) {
      return;
    }
    if (job->release < 0 || job->deadline <= job->release) {
      throw std::invalid_argument(
          "ArrivalProcess: jobs need release >= 0 and deadline > release");
    }
    if (job->release < last_release) {
      throw std::runtime_error(
          "ArrivalProcess: releases must be nondecreasing");
    }
    last_release = job->release;
    if (job->release >= horizon) {
      return;
    }
    pending_spec = job;
  }

  // Streaming: appends one job to the arrays and activates it. Ids are
  // assigned in arrival order and each protocol draws from its own
  // master.child(id + 1) stream, exactly as the batch ctor does, so a
  // VectorArrivals replay of a normalized instance is bit-identical to the
  // batch run.
  void append_job(JobId id, const workload::JobSpec& spec) {
    JobInfo info;
    info.id = id;
    info.release = spec.release;
    info.deadline = spec.deadline;
    info.caps = caps;
    release.push_back(spec.release);
    deadline.push_back(spec.deadline);
    Protocol* p = factory(info, master.child(id + 1)).release();
    p->set_tracer(config.tracer);
    proto.push_back(p);
    live_flag.push_back(1);
    live_pos.push_back(static_cast<std::uint32_t>(live.size()));
    live.push_back(id);
    live_slot_count.push_back(0);
    dark_slot_count.push_back(0);
    tx_count.push_back(0);
    listen_count.push_back(0);
    prev_awake.push_back(1);
    dark.push_back(0);
    transmitted.push_back(0);
    asleep.push_back(0);
    ff_until.push_back(0);
    ff_prob.push_back(0.0);
    if (config.multichannel.channels > 1) {
      chan.push_back(static_cast<std::uint8_t>(
          shard_of(config.seed, id, config.multichannel.channels)));
      coll_count.push_back(0);
    }
    JobResult result;
    result.id = id;
    result.release = spec.release;
    result.deadline = spec.deadline;
    results.push_back(result);
    min_deadline = std::min(min_deadline, spec.deadline);
    CRMD_TRACE(config.tracer, obs::EventKind::kJobActivate, now, id,
               spec.release, spec.deadline);
    p->on_activate(info);
  }

  // Streaming: erases the dead prefix of every per-job array once it is
  // both large in absolute terms (stream_compact) and at least half the
  // arrays — each compaction removes >= half, so the per-job cost is
  // amortized O(1) and steady-state memory is O(live + stream_compact).
  void maybe_compact() {
    while (dead_prefix < live_flag.size() && live_flag[dead_prefix] == 0) {
      ++dead_prefix;
    }
    if (dead_prefix < static_cast<std::size_t>(config.stream_compact) ||
        dead_prefix * 2 < live_flag.size()) {
      return;
    }
    const auto n = static_cast<std::ptrdiff_t>(dead_prefix);
    const auto erase_prefix = [n](auto& v) {
      v.erase(v.begin(), v.begin() + n);
    };
    erase_prefix(release);
    erase_prefix(deadline);
    erase_prefix(proto);
    erase_prefix(live_flag);
    erase_prefix(live_pos);
    erase_prefix(live_slot_count);
    erase_prefix(dark_slot_count);
    erase_prefix(tx_count);
    erase_prefix(listen_count);
    erase_prefix(prev_awake);
    erase_prefix(dark);
    erase_prefix(transmitted);
    erase_prefix(asleep);
    erase_prefix(ff_until);
    erase_prefix(ff_prob);
    erase_prefix(results);
    if (config.multichannel.channels > 1) {
      erase_prefix(chan);
      erase_prefix(coll_count);
    }
    base_id += static_cast<JobId>(dead_prefix);
    dead_prefix = 0;
  }

  // kValidate: simulates the k slots a skip is about to cover in stripped
  // form — on_slot plus silent feedback for every live job, exactly the
  // calls the real engine would make on a silent slot under every
  // fast-forward-eligible feedback model — and throws if any protocol
  // breaks its dormancy promise. State advances identically either way
  // (the promise says silent slots are state no-ops), so kValidate and kOn
  // produce bit-identical results; this is the checked proof of that.
  void validate_skip(Slot span, double expect_contention) {
    SlotFeedback silent;
    silent.outcome = SlotOutcome::kSilence;
    silent.message.reset();
    for (Slot t = 0; t < span; ++t) {
      const Slot slot = now + t;
      double contention = 0.0;
      for (const JobId id : live) {
        const std::size_t i = ix(id);
        const SlotView view{slot - release[i], slot};
        const SlotAction action = proto[i]->on_slot(view);
        if (action.transmit || action.declared_prob != ff_prob[i]) {
          throw std::logic_error(
              "fast-forward validate: a protocol broke its dormancy promise "
              "in on_slot (transmitted or changed its declared probability)");
        }
        if (!action.sleep) {
          // A dormant span is exactly a sleep span (DESIGN.md §6k): the
          // batch energy accounting of a skip charges zero awake slots, so
          // a protocol that promises dormancy while listening would make
          // the energy counters diverge between --fast-forward modes.
          throw std::logic_error(
              "fast-forward validate: a protocol promised dormancy without "
              "declaring sleep (the skipped slots would be accounted as "
              "asleep, but slot-by-slot simulation would count them as "
              "listening)");
        }
        contention += action.declared_prob;
      }
      if (contention != expect_contention) {
        throw std::logic_error(
            "fast-forward validate: per-slot contention diverged from the "
            "promised constant");
      }
      for (const JobId id : live) {
        const std::size_t i = ix(id);
        const SlotView view{slot - release[i], slot};
        proto[i]->on_feedback(view, silent);
        if (proto[i]->done()) {
          throw std::logic_error(
              "fast-forward validate: a protocol broke its dormancy promise "
              "in done() after silent feedback");
        }
      }
    }
  }

  // Single-channel decision -> resolve -> feedback -> record -> credit
  // pipeline: the engine's historical hot path, byte-for-byte the same
  // operation order as ever (ix() is the identity in batch mode).
  void step_single(std::int64_t faults_before) {
    // Decision phase. A skewed job sees its perceived (slipped-ahead) slot
    // indices; a dark job is skipped entirely (no on_slot, no feedback).
    // Radio-state accounting (DESIGN.md §6k) rides along: a transmitter is
    // awake by definition, a non-transmitter is listening unless it
    // declared sleep, and a dark job's radio is off (crashed, not asleep).
    transmissions.clear();
    double contention = 0.0;
    std::int64_t tx_this_slot = 0;
    std::int64_t listen_this_slot = 0;
    for (const JobId id : live) {
      const std::size_t i = ix(id);
      ++live_slot_count[i];
      if (injector != nullptr && dark[i] != 0) {
        ++dark_slot_count[i];
        continue;
      }
      const Slot skew = injector ? injector->skew(id) : 0;
      SlotView view{/*since_release=*/now - release[i] + skew,
                    /*global_slot=*/now + skew};
      const SlotAction action = proto[i]->on_slot(view);
      contention += action.declared_prob;
      const bool awake = action.transmit || !action.sleep;
      asleep[i] = awake ? 0 : 1;
      if (awake != (prev_awake[i] != 0)) {
        CRMD_TRACE(config.tracer,
                   awake ? obs::EventKind::kRadioWake
                         : obs::EventKind::kRadioSleep,
                   now, id, now - release[i], 0, 0.0,
                   awake ? "wake" : "sleep");
        prev_awake[i] = awake ? 1 : 0;
      }
      if (action.transmit) {
        transmissions.push_back(Transmission{id, action.message});
        ++tx_count[i];
        ++tx_this_slot;
        CRMD_TRACE(config.tracer, obs::EventKind::kTransmit, now, id,
                   static_cast<std::int64_t>(action.message.kind), 0,
                   action.declared_prob, to_string(action.message.kind));
      } else if (awake) {
        ++listen_count[i];
        ++listen_this_slot;
      }
    }
    metrics.slots_transmitting += tx_this_slot;
    metrics.slots_listening += listen_this_slot;
    metrics.slots_awake += tx_this_slot + listen_this_slot;
    metrics.live_job_slots += static_cast<std::int64_t>(live.size());

    // Channel resolution + capture + adversary (DESIGN.md §6i). Order:
    // resolve -> freeze override -> capture draw -> jammer. A frozen slot
    // (collision-cost recovery in progress) is noise for everyone no matter
    // what was attempted; capture can leak one winner out of a fresh
    // collision; the jammer acts last so an adaptive adversary can stomp a
    // captured success. The jammer is not consulted on frozen slots — the
    // channel is already noise, and jamming it would only waste budget.
    const bool frozen = freeze_left > 0;
    SlotFeedback fb = resolve_slot(transmissions);
    JobId capture_winner = kNoJob;
    bool jammed = false;
    if (frozen) {
      --freeze_left;
      fb.outcome = SlotOutcome::kNoise;
      fb.message.reset();
      ++metrics.collision_cost_slots;
      CRMD_TRACE(config.tracer, obs::EventKind::kCostSlot, now, kNoJob,
                 freeze_left, static_cast<std::int64_t>(transmissions.size()),
                 0.0, "cost");
    } else {
      if (config.feedback.kind == FeedbackKind::kCapture &&
          config.feedback.alpha > 0.0 && transmissions.size() >= 2) {
        // One winner survives a k-way collision with probability
        // p_k = alpha^(k-1); the winner is drawn uniformly. Both draws come
        // from the dedicated cap_rng stream, taken only on this path, so
        // alpha = 0 leaves every other stream untouched.
        const double p_win =
            std::pow(config.feedback.alpha,
                     static_cast<double>(transmissions.size() - 1));
        if (cap_rng.bernoulli(p_win)) {
          const std::size_t idx = static_cast<std::size_t>(cap_rng.below(
              static_cast<std::uint64_t>(transmissions.size())));
          fb.outcome = SlotOutcome::kSuccess;
          fb.message = transmissions[idx].message;
          capture_winner = transmissions[idx].job;
        }
      }
      if (jammer != nullptr) {
        const Message* msg = fb.message ? &*fb.message : nullptr;
        if (jammer->wants_jam(now, fb.outcome, msg) &&
            jam_rng.bernoulli(jammer->p_jam())) {
          fb.outcome = SlotOutcome::kNoise;
          fb.message.reset();
          jammed = true;
          capture_winner = kNoJob;  // the jam stomped the captured success
        }
      }
      // A perceived collision — genuine, capture-lost, or jam-created —
      // freezes the channel for the next cost-1 slots. Frozen slots never
      // re-arm, so a burst costs `cost` slots total, not a cascade.
      if (config.collision_cost > 1 && fb.outcome == SlotOutcome::kNoise) {
        freeze_left = config.collision_cost - 1;
      }
    }
    if (capture_winner != kNoJob) {
      ++metrics.capture_wins;
      CRMD_TRACE(config.tracer, obs::EventKind::kCaptureWin, now,
                 capture_winner,
                 static_cast<std::int64_t>(transmissions.size()), 0,
                 config.feedback.alpha, "capture");
    }

    // Feedback phase. The feedback model projects the true outcome into a
    // common listener view and (when transmitters perceive something
    // different) a transmitter view; faults then perturb per listener. The
    // true outcome `fb` stays authoritative for crediting below. All
    // projection work is O(1) per slot plus — only when the views split —
    // one O(transmitters) bitmap pass, so the per-listener "did I transmit"
    // check is O(1) instead of a rescan. No allocation.
    SlotFeedback listener_fb = fb;     // what a pure listener perceives
    SlotFeedback transmitter_fb = fb;  // what a transmitter perceives
    bool split = false;  // transmitter view differs from listener view
    switch (config.feedback.kind) {
      case FeedbackKind::kTernary:
        // Legacy unadvertised ablation: listeners perceive noisy slots as
        // silent; transmitters still learn their failure (ACK-style).
        if (!config.collision_detection &&
            fb.outcome == SlotOutcome::kNoise) {
          listener_fb.outcome = SlotOutcome::kSilence;
          listener_fb.message.reset();
          split = true;
        }
        break;
      case FeedbackKind::kBinaryAck:
        // Listeners hear nothing, ever; transmitters get the true outcome
        // (their own success, or noise when their transmission failed).
        listener_fb.outcome = SlotOutcome::kSilence;
        listener_fb.message.reset();
        split = !transmissions.empty();
        break;
      case FeedbackKind::kCollisionAsSilence:
        // Empty and collided slots are indistinguishable for everyone —
        // including the transmitters, who get no failure ACK.
        if (fb.outcome == SlotOutcome::kNoise) {
          listener_fb.outcome = SlotOutcome::kSilence;
          listener_fb.message.reset();
          transmitter_fb = listener_fb;
        }
        break;
      case FeedbackKind::kNoisy:
        // One seeded flip draw per simulated slot; on a flip every observer
        // hears the same one-step-degraded outcome.
        if (config.feedback.eps > 0.0 &&
            fb_rng.bernoulli(config.feedback.eps)) {
          listener_fb = degrade_feedback(fb);
          transmitter_fb = listener_fb;
          ++metrics.feedback_flips;
        }
        break;
      case FeedbackKind::kCapture:
        // On a captured success, listeners (and the winner, excluded from
        // the transmitted bitmap below) hear the success; the k-1 losers
        // perceive noise — their own signal drowned the broadcast out at
        // their radio. Without a capture win the channel is exactly ternary.
        if (capture_winner != kNoJob) {
          transmitter_fb.outcome = SlotOutcome::kNoise;
          transmitter_fb.message.reset();
          split = true;
        }
        break;
    }
    if (split) {
      for (const Transmission& t : transmissions) {
        transmitted[ix(t.job)] = 1;
      }
      if (capture_winner != kNoJob) {
        // The winner hears its own success.
        transmitted[ix(capture_winner)] = 0;
      }
    }
    for (const JobId id : live) {
      const std::size_t i = ix(id);
      if (injector != nullptr && dark[i] != 0) {
        continue;
      }
      const bool sent = split && transmitted[i] != 0;
      SlotFeedback perceived = sent ? transmitter_fb : listener_fb;
      if (injector != nullptr) {
        perceived = injector->perceive(id, now, perceived);
      }
      if (asleep[i] != 0) {
        // Enforce the sleep declaration (DESIGN.md §6k): a sleeper's radio
        // is off, so whatever the channel (or a fault) produced, it hears
        // silence. Scrubbed *after* injector->perceive so fault RNG streams
        // and fault metrics are untouched — a protocol that declares sleep
        // honestly (its state was feedback-independent anyway) behaves
        // bit-identically; one that lies sleeps through real cues instead
        // of silently under-reporting energy. on_feedback is still called:
        // it is the protocol's timer tick.
        perceived.outcome = SlotOutcome::kSilence;
        perceived.message.reset();
      }
      const Slot skew = injector ? injector->skew(id) : 0;
      SlotView view{now - release[i] + skew, now + skew};
      proto[i]->on_feedback(view, perceived);
    }
    if (split) {
      for (const Transmission& t : transmissions) {
        transmitted[ix(t.job)] = 0;
      }
    }

    SlotRecord rec;
    rec.slot = now;
    rec.outcome = fb.outcome;
    rec.success_kind = fb.message ? fb.message->kind : MessageKind::kData;
    rec.contention = contention;
    rec.transmitters = static_cast<std::uint32_t>(transmissions.size());
    rec.live_jobs = static_cast<std::uint32_t>(live.size());
    rec.jammed = jammed;
    if (injector != nullptr) {
      rec.faults = static_cast<std::uint32_t>(injector->total_injected() -
                                              faults_before);
    }
    metrics.record(rec);
    CRMD_TRACE(config.tracer, obs::EventKind::kSlotResolved, now, kNoJob,
               static_cast<std::int64_t>(fb.outcome),
               static_cast<std::int64_t>(transmissions.size()), contention,
               to_string(fb.outcome));
    // The listener-perceived companion event: what the feedback model let
    // pure listeners hear this slot (before per-job fault perturbation),
    // plus the live-set size and (in x) the awake job count — the per-slot
    // energy datum obs::Timeline buckets. The gap between this and
    // kSlotResolved is the channel's perception error.
    CRMD_TRACE(config.tracer, obs::EventKind::kSlotPerceived, now, kNoJob,
               static_cast<std::int64_t>(listener_fb.outcome),
               static_cast<std::int64_t>(live.size()),
               static_cast<double>(tx_this_slot + listen_this_slot),
               to_string(listener_fb.outcome));
    if (config.record_slots) {
      slot_trace.push_back(rec);
    }
    if (observer) {
      observer(rec, transmissions);
    }

    // Credit a delivered data message and retire finished jobs.
    to_retire.clear();
    if (fb.outcome == SlotOutcome::kSuccess &&
        fb.message->kind == MessageKind::kData) {
      const JobId winner = fb.message->sender;
      assert(winner >= base_id && ix(winner) < job_count() &&
             live_flag[ix(winner)] != 0);
      CRMD_TRACE(config.tracer, obs::EventKind::kSuccessCredit, now, winner);
      results[ix(winner)].success = true;
      results[ix(winner)].success_slot = now;
      to_retire.push_back(winner);
    }
    for (const JobId id : live) {
      if (proto[ix(id)]->done() &&
          (to_retire.empty() || to_retire.front() != id)) {
        to_retire.push_back(id);
      }
    }
    for (const JobId id : to_retire) {
      retire(id);
    }
  }

  // Multichannel pipeline (DESIGN.md §6j): one pass over the live set
  // buckets decisions per channel, then each of the k sub-channels
  // resolves, projects feedback, and records independently — k
  // channel-slots of metrics per time slot, up to k winners per slot.
  // Validation has already restricted the feedback model to
  // ternary/binary_ack/collision_as_silence and rejected jammers, so there
  // are no capture/jam/noisy draws here.
  void step_multi(std::int64_t faults_before) {
    const int k = config.multichannel.channels;
    const auto kc = static_cast<std::size_t>(k);
    if (chan_tx.size() != kc) {
      chan_tx.resize(kc);
      chan_fb.resize(kc);
      chan_listener.resize(kc);
      chan_transmitter.resize(kc);
    }
    for (auto& v : chan_tx) {
      v.clear();
    }
    chan_contention.assign(kc, 0.0);
    chan_live.assign(kc, 0);
    chan_awake.assign(kc, 0);
    chan_split.assign(kc, 0);

    // Decision phase, bucketed by channel (live order within each bucket).
    // Radio-state accounting mirrors step_single (DESIGN.md §6k).
    for (const JobId id : live) {
      const std::size_t i = ix(id);
      ++live_slot_count[i];
      const std::size_t c = chan[i];
      ++chan_live[c];
      if (injector != nullptr && dark[i] != 0) {
        ++dark_slot_count[i];
        continue;
      }
      const Slot skew = injector ? injector->skew(id) : 0;
      SlotView view{now - release[i] + skew, now + skew};
      const SlotAction action = proto[i]->on_slot(view);
      chan_contention[c] += action.declared_prob;
      const bool awake = action.transmit || !action.sleep;
      asleep[i] = awake ? 0 : 1;
      if (awake != (prev_awake[i] != 0)) {
        CRMD_TRACE(config.tracer,
                   awake ? obs::EventKind::kRadioWake
                         : obs::EventKind::kRadioSleep,
                   now, id, now - release[i],
                   static_cast<std::int64_t>(c), 0.0,
                   awake ? "wake" : "sleep");
        prev_awake[i] = awake ? 1 : 0;
      }
      if (awake) {
        ++chan_awake[c];
      }
      if (action.transmit) {
        chan_tx[c].push_back(Transmission{id, action.message});
        ++tx_count[i];
        ++metrics.slots_transmitting;
        ++metrics.slots_awake;
        CRMD_TRACE(config.tracer, obs::EventKind::kTransmit, now, id,
                   static_cast<std::int64_t>(action.message.kind),
                   static_cast<std::int64_t>(c), action.declared_prob,
                   to_string(action.message.kind));
      } else if (awake) {
        ++listen_count[i];
        ++metrics.slots_listening;
        ++metrics.slots_awake;
      }
    }
    metrics.live_peak = std::max<std::int64_t>(
        metrics.live_peak, static_cast<std::int64_t>(live.size()));
    metrics.live_job_slots += static_cast<std::int64_t>(live.size());

    // Per-channel resolution, freeze physics, and feedback projection.
    bool any_split = false;
    for (std::size_t c = 0; c < kc; ++c) {
      SlotFeedback fb = resolve_slot(chan_tx[c]);
      if (chan_freeze[c] > 0) {
        --chan_freeze[c];
        fb.outcome = SlotOutcome::kNoise;
        fb.message.reset();
        ++metrics.collision_cost_slots;
        CRMD_TRACE(config.tracer, obs::EventKind::kCostSlot, now, kNoJob,
                   chan_freeze[c],
                   static_cast<std::int64_t>(chan_tx[c].size()), 0.0, "cost");
      } else if (config.collision_cost > 1 &&
                 fb.outcome == SlotOutcome::kNoise) {
        chan_freeze[c] = config.collision_cost - 1;
      }
      SlotFeedback listener_fb = fb;
      SlotFeedback transmitter_fb = fb;
      bool split = false;
      switch (config.feedback.kind) {
        case FeedbackKind::kBinaryAck:
          listener_fb.outcome = SlotOutcome::kSilence;
          listener_fb.message.reset();
          split = !chan_tx[c].empty();
          break;
        case FeedbackKind::kCollisionAsSilence:
          if (fb.outcome == SlotOutcome::kNoise) {
            listener_fb.outcome = SlotOutcome::kSilence;
            listener_fb.message.reset();
            transmitter_fb = listener_fb;
          }
          break;
        case FeedbackKind::kTernary:
        default:  // kNoisy/kCapture rejected by validate()
          break;
      }
      chan_fb[c] = fb;
      chan_listener[c] = listener_fb;
      chan_transmitter[c] = transmitter_fb;
      chan_split[c] = split ? 1 : 0;
      any_split = any_split || split;
    }

    // Feedback phase: every live, non-dark job hears its own channel.
    if (any_split) {
      for (std::size_t c = 0; c < kc; ++c) {
        if (chan_split[c] == 0) {
          continue;
        }
        for (const Transmission& t : chan_tx[c]) {
          transmitted[ix(t.job)] = 1;
        }
      }
    }
    for (const JobId id : live) {
      const std::size_t i = ix(id);
      if (injector != nullptr && dark[i] != 0) {
        continue;
      }
      const std::size_t c = chan[i];
      const bool sent = chan_split[c] != 0 && transmitted[i] != 0;
      SlotFeedback perceived = sent ? chan_transmitter[c] : chan_listener[c];
      if (injector != nullptr) {
        perceived = injector->perceive(id, now, perceived);
      }
      if (asleep[i] != 0) {
        // Sleep scrub — see step_single (DESIGN.md §6k).
        perceived.outcome = SlotOutcome::kSilence;
        perceived.message.reset();
      }
      const Slot skew = injector ? injector->skew(id) : 0;
      SlotView view{now - release[i] + skew, now + skew};
      proto[i]->on_feedback(view, perceived);
    }
    if (any_split) {
      for (std::size_t c = 0; c < kc; ++c) {
        if (chan_split[c] == 0) {
          continue;
        }
        for (const Transmission& t : chan_tx[c]) {
          transmitted[ix(t.job)] = 0;
        }
      }
    }

    // Record one channel-slot per channel. The fault-count delta of the
    // time slot is charged to channel 0's record so sums stay exact.
    for (std::size_t c = 0; c < kc; ++c) {
      SlotRecord rec;
      rec.slot = now;
      rec.outcome = chan_fb[c].outcome;
      rec.success_kind =
          chan_fb[c].message ? chan_fb[c].message->kind : MessageKind::kData;
      rec.contention = chan_contention[c];
      rec.transmitters = static_cast<std::uint32_t>(chan_tx[c].size());
      rec.live_jobs = chan_live[c];
      rec.jammed = false;
      if (c == 0 && injector != nullptr) {
        rec.faults = static_cast<std::uint32_t>(injector->total_injected() -
                                                faults_before);
      }
      metrics.record(rec);
      CRMD_TRACE(config.tracer, obs::EventKind::kSlotResolved, now, kNoJob,
                 static_cast<std::int64_t>(chan_fb[c].outcome),
                 static_cast<std::int64_t>(chan_tx[c].size()),
                 chan_contention[c], to_string(chan_fb[c].outcome));
      CRMD_TRACE(config.tracer, obs::EventKind::kSlotPerceived, now,
                 kNoJob, static_cast<std::int64_t>(chan_listener[c].outcome),
                 static_cast<std::int64_t>(chan_live[c]),
                 static_cast<double>(chan_awake[c]),
                 to_string(chan_listener[c].outcome));
      if (config.record_slots) {
        slot_trace.push_back(rec);
      }
      if (observer) {
        observer(rec, chan_tx[c]);
      }
    }

    // Collision accounting + optional migration: a transmitter whose
    // channel resolved (or froze) to noise suffered a collision; after
    // every migrate_after of them it rehashes deterministically — keyed on
    // (seed, id, collision count), no RNG stream — onto a fresh channel.
    for (std::size_t c = 0; c < kc; ++c) {
      if (chan_fb[c].outcome != SlotOutcome::kNoise) {
        continue;
      }
      for (const Transmission& t : chan_tx[c]) {
        const std::size_t i = ix(t.job);
        ++coll_count[i];
        if (config.multichannel.migrate &&
            coll_count[i] %
                    static_cast<std::uint32_t>(
                        config.multichannel.migrate_after) ==
                0) {
          chan[i] = static_cast<std::uint8_t>(shard_of(
              config.seed,
              (static_cast<std::uint64_t>(coll_count[i]) << 32) |
                  static_cast<std::uint64_t>(t.job),
              k));
        }
      }
    }

    // Credit up to one delivered data message per channel, then retire
    // finished jobs (several winners can retire in one slot, so membership
    // in to_retire is checked by scan — it holds at most k + done ids).
    to_retire.clear();
    for (std::size_t c = 0; c < kc; ++c) {
      if (chan_fb[c].outcome == SlotOutcome::kSuccess &&
          chan_fb[c].message->kind == MessageKind::kData) {
        const JobId winner = chan_fb[c].message->sender;
        assert(winner >= base_id && ix(winner) < job_count() &&
               live_flag[ix(winner)] != 0);
        CRMD_TRACE(config.tracer, obs::EventKind::kSuccessCredit, now,
                   winner);
        results[ix(winner)].success = true;
        results[ix(winner)].success_slot = now;
        to_retire.push_back(winner);
      }
    }
    for (const JobId id : live) {
      if (proto[ix(id)]->done() &&
          std::find(to_retire.begin(), to_retire.end(), id) ==
              to_retire.end()) {
        to_retire.push_back(id);
      }
    }
    for (const JobId id : to_retire) {
      retire(id);
    }
  }

  void init(SimConfig cfg, std::unique_ptr<Jammer> jam) {
    cfg.validate();
    config = cfg;
    jammer = std::move(jam);
    if (jammer != nullptr && config.multichannel.channels > 1) {
      throw std::invalid_argument(
          "Simulation: multichannel does not support a jamming adversary "
          "(v1 scope, DESIGN.md §6j)");
    }
    master = util::Rng(config.seed);
    jam_rng = util::Rng(config.seed).child(0x4A414D4D4552ULL);  // "JAMMER"
    fb_rng = util::Rng(config.seed).child(0x4642464C4950ULL);   // "FBFLIP"
    cap_rng = util::Rng(config.seed).child(0x43415054ULL);      // "CAPT"
    arr_rng = util::Rng(config.seed).child(0x41525256ULL);      // "ARRV"
    caps = config.feedback.caps();
    if (config.faults.any()) {
      injector = std::make_unique<FaultInjector>(config.faults, config.seed);
      injector->set_record_events(config.record_slots);
      injector->set_tracer(config.tracer);
    }
    if (config.multichannel.channels > 1) {
      chan_freeze.assign(
          static_cast<std::size_t>(config.multichannel.channels), 0);
    }
    ff_enabled =
        config.fast_forward != FastForward::kOff && jammer == nullptr &&
        !config.faults.any() &&
        !(config.feedback.kind == FeedbackKind::kNoisy &&
          config.feedback.eps > 0.0) &&
        !config.record_slots && config.multichannel.channels == 1;
  }
};

Simulation::Simulation(workload::Instance instance,
                       const ProtocolFactory& factory, SimConfig config,
                       std::unique_ptr<Jammer> jammer)
    : impl_(std::make_unique<Impl>()) {
  instance.normalize();
  instance.validate();

  Impl& s = *impl_;
  s.init(std::move(config), std::move(jammer));
  s.horizon =
      s.config.horizon > 0 ? s.config.horizon : instance.max_deadline();
  s.now = instance.empty() ? 0 : instance.min_release();

  const util::Rng master(s.config.seed);
  const std::size_t n = instance.size();
  s.release.reserve(n);
  s.deadline.reserve(n);
  s.proto.reserve(n);
  s.live_flag.assign(n, 0);
  s.live_pos.assign(n, 0);
  s.live_slot_count.assign(n, 0);
  s.dark_slot_count.assign(n, 0);
  s.tx_count.assign(n, 0);
  s.listen_count.assign(n, 0);
  s.prev_awake.assign(n, 1);
  s.results.reserve(n);
  s.dark.assign(n, 0);
  s.transmitted.assign(n, 0);
  s.asleep.assign(n, 0);
  s.ff_until.assign(n, 0);
  s.ff_prob.assign(n, 0.0);
  if (s.config.multichannel.channels > 1) {
    s.chan.reserve(n);
    s.coll_count.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      s.chan.push_back(static_cast<std::uint8_t>(
          shard_of(s.config.seed, static_cast<JobId>(i),
                   s.config.multichannel.channels)));
    }
  }
  s.arena_owned = factory.arena_aware();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& spec = instance.jobs[i];
    JobInfo info;
    info.id = static_cast<JobId>(i);
    info.release = spec.release;
    info.deadline = spec.deadline;
    info.caps = s.caps;
    s.release.push_back(spec.release);
    s.deadline.push_back(spec.deadline);
    // Same construction order and the same RNG child stream per job as the
    // original heap engine — the determinism contract depends on it.
    Protocol* p =
        s.arena_owned
            ? factory.emplace(info, master.child(static_cast<JobId>(i) + 1),
                              s.arena)
            : factory(info, master.child(static_cast<JobId>(i) + 1))
                  .release();
    p->set_tracer(s.config.tracer);
    s.proto.push_back(p);
    JobResult result;
    result.id = info.id;
    result.release = spec.release;
    result.deadline = spec.deadline;
    s.results.push_back(result);
  }
}

Simulation::Simulation(std::unique_ptr<ArrivalProcess> arrivals,
                       const ProtocolFactory& factory, SimConfig config,
                       std::unique_ptr<Jammer> jammer)
    : impl_(std::make_unique<Impl>()) {
  if (arrivals == nullptr) {
    throw std::invalid_argument("Simulation: arrival process must be non-null");
  }
  if (config.horizon <= 0) {
    throw std::invalid_argument(
        "Simulation: streaming mode requires an explicit horizon > 0 (an "
        "open-ended stream has no max_deadline to default to)");
  }
  Impl& s = *impl_;
  s.init(std::move(config), std::move(jammer));
  s.horizon = s.config.horizon;
  s.factory = factory;
  s.arena_owned = false;  // arena never frees; open-ended runs go heap
  s.arrivals = std::move(arrivals);
  s.pull_next();
  s.now = s.pending_spec ? s.pending_spec->release : 0;
}

Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

Slot Simulation::now() const noexcept { return impl_->now; }

bool Simulation::finished() const noexcept { return impl_->finished; }

void Simulation::set_observer(SlotObserver observer) {
  impl_->observer = std::move(observer);
}

std::vector<JobId> Simulation::live_jobs() const { return impl_->live; }

Protocol* Simulation::protocol(JobId id) noexcept {
  Impl& s = *impl_;
  if (id < s.base_id || s.ix(id) >= s.job_count() ||
      s.live_flag[s.ix(id)] == 0) {
    return nullptr;
  }
  return s.proto[s.ix(id)];
}

bool Simulation::step() {
  Impl& s = *impl_;
  if (s.finished) {
    return false;
  }

  // Fast-forward across idle gaps: nothing can happen on the channel while
  // no job is live.
  if (s.live.empty()) {
    Slot next_release = kMaxSlot;
    if (s.streaming()) {
      if (!s.pending_spec) {
        s.finished = true;
        return false;
      }
      next_release = s.pending_spec->release;
    } else {
      if (s.next_pending >= s.job_count()) {
        s.finished = true;
        return false;
      }
      next_release = s.release[s.next_pending];
    }
    if (next_release > s.now) {
      // A pending collision-cost freeze elapses across the skipped gap —
      // nobody is live to observe the frozen slots, so they are not
      // simulated (and not counted as cost slots).
      const Slot gap = next_release - s.now;
      s.freeze_left = std::max<Slot>(0, s.freeze_left - gap);
      for (Slot& f : s.chan_freeze) {
        f = std::max<Slot>(0, f - gap);
      }
      s.metrics.slots_skipped += gap;
      s.now = next_release;
    }
  }

  if (s.now >= s.horizon) {
    s.finished = true;
    return false;
  }

  // Activate arrivals.
  if (s.streaming()) {
    while (s.pending_spec && s.pending_spec->release <= s.now) {
      const workload::JobSpec spec = *s.pending_spec;
      const JobId id = s.next_id++;
      if (spec.deadline > s.now) {
        s.append_job(id, spec);
      } else {
        // Window already over (degenerate cases); never activates, but it
        // still counts as a job that entered (and failed).
        JobResult result;
        result.id = id;
        result.release = spec.release;
        result.deadline = spec.deadline;
        s.stream.add(result);
        if (s.config.keep_job_results) {
          s.finished_results.push_back(result);
        }
      }
      s.pull_next();
    }
  } else {
    while (s.next_pending < s.job_count() &&
           s.release[s.next_pending] <= s.now) {
      const JobId id = static_cast<JobId>(s.next_pending);
      if (s.deadline[id] > s.now) {
        s.live_flag[id] = 1;
        s.live_pos[id] = static_cast<std::uint32_t>(s.live.size());
        s.live.push_back(id);
        s.min_deadline = std::min(s.min_deadline, s.deadline[id]);
        CRMD_TRACE(s.config.tracer, obs::EventKind::kJobActivate, s.now, id,
                   s.release[id], s.deadline[id]);
        JobInfo info;
        info.id = id;
        info.release = s.release[id];
        info.deadline = s.deadline[id];
        info.caps = s.caps;
        s.proto[id]->on_activate(info);
      } else {
        // Window already over (degenerate horizon cases); never activates.
        s.destroy_at(id);
      }
      ++s.next_pending;
    }
  }

  // Retire jobs whose deadline has arrived (window is [release, deadline)).
  // The min_deadline cache makes the scan conditional: while the earliest
  // live deadline is still in the future nothing can expire, so the
  // per-slot O(live) sweep collapses to one comparison. The cache is a
  // lower bound (stale-low after other retirements), so a triggered scan
  // may find nothing — it then recomputes the exact minimum.
  if (s.min_deadline <= s.now) {
    s.to_retire.clear();
    Slot new_min = kMaxSlot;
    for (const JobId id : s.live) {
      const Slot d = s.deadline[s.ix(id)];
      if (d <= s.now) {
        s.to_retire.push_back(id);
      } else {
        new_min = std::min(new_min, d);
      }
    }
    for (const JobId id : s.to_retire) {
      s.retire(id);
    }
    s.min_deadline = new_min;
    if (s.live.empty()) {
      // All live jobs expired this slot; loop again from the top next call.
      if (s.streaming()) {
        s.maybe_compact();
      }
      return !s.finished;
    }
  }

  // Event-driven fast-forward (DESIGN.md §6j): when every live job holds a
  // dormancy promise, the whole run of provably-silent slots up to the
  // nearest "event" — a promise expiry, a deadline, the next arrival, or
  // the horizon — is accounted in one batch and `now` jumps across it.
  // Checked after activation/retirement (so the live set is current) and
  // before the fault phase (fast-forward and faults are mutually
  // exclusive; see Impl::ff_enabled).
  if (s.ff_enabled && s.freeze_left == 0 && !s.observer) {
    Slot bound = s.horizon - s.now;
    if (s.streaming()) {
      if (s.pending_spec) {
        bound = std::min(bound, s.pending_spec->release - s.now);
      }
    } else if (s.next_pending < s.job_count()) {
      bound = std::min(bound, s.release[s.next_pending] - s.now);
    }
    double contention = 0.0;
    for (const JobId id : s.live) {
      const std::size_t i = s.ix(id);
      bound = std::min(bound, s.deadline[i] - s.now);
      if (s.ff_until[i] <= s.now) {
        const SlotView view{s.now - s.release[i], s.now};
        const DormantSpan span = s.proto[i]->dormant_span(view);
        if (span.slots <= 0) {
          bound = 0;  // no promise — this slot must be simulated
          break;
        }
        s.ff_until[i] = s.now + span.slots;
        s.ff_prob[i] = span.prob;
      }
      bound = std::min(bound, s.ff_until[i] - s.now);
      contention += s.ff_prob[i];
    }
    if (bound >= 1) {
      if (s.config.fast_forward == FastForward::kValidate) {
        s.validate_skip(bound, contention);
      }
      // Account the skipped slots exactly as if simulated: every one is a
      // silent slot with the promised constant contention and the current
      // live set.
      s.metrics.slots_simulated += bound;
      s.metrics.silent_slots += bound;
      s.metrics.fast_forward_slots += bound;
      s.metrics.contention.add_run(contention,
                                   static_cast<std::size_t>(bound));
      s.metrics.live_peak = std::max<std::int64_t>(
          s.metrics.live_peak, static_cast<std::int64_t>(s.live.size()));
      s.metrics.live_job_slots +=
          bound * static_cast<std::int64_t>(s.live.size());
      // Energy batching (DESIGN.md §6k): a dormant span is exactly a sleep
      // span, so the skipped slots add zero awake/listen/transmit job-slots
      // — the same zero the slot-by-slot engine would tally, since
      // validate_skip proves every promised slot declares sleep. Jobs that
      // were awake go to sleep at the skip's first slot, exactly where
      // slot-by-slot simulation would emit the transition.
      for (const JobId id : s.live) {
        const std::size_t i = s.ix(id);
        s.live_slot_count[i] += bound;
        if (s.prev_awake[i] != 0) {
          CRMD_TRACE(s.config.tracer, obs::EventKind::kRadioSleep, s.now, id,
                     s.now - s.release[i], 0, 0.0, "sleep");
          s.prev_awake[i] = 0;
        }
      }
      CRMD_TRACE(s.config.tracer, obs::EventKind::kIdleSkip, s.now, kNoJob,
                 bound, static_cast<std::int64_t>(s.live.size()), contention,
                 "idle-skip");
      s.now += bound;
      return !s.finished;
    }
  }

  // Fault phase: advance each live job's crash/stall/skew state. Dead jobs
  // retire immediately (the channel cannot tell a dead job from an absent
  // one); dark jobs stay live but neither transmit nor listen this slot.
  // The dark flags of this slot's live set are (re)written unconditionally,
  // so no all-jobs clear is needed — stale entries of retired jobs are
  // never read again.
  const std::int64_t faults_before =
      s.injector ? s.injector->total_injected() : 0;
  if (s.injector != nullptr) {
    s.to_retire.clear();
    std::int64_t dark_this_slot = 0;
    for (const JobId id : s.live) {
      const std::size_t i = s.ix(id);
      std::uint8_t is_dark = 0;
      switch (s.injector->tick(id, s.now)) {
        case FaultInjector::JobHealth::kHealthy:
          break;
        case FaultInjector::JobHealth::kDark:
          is_dark = 1;
          ++dark_this_slot;
          break;
        case FaultInjector::JobHealth::kDead:
          s.to_retire.push_back(id);
          break;
      }
      s.dark[i] = is_dark;
    }
    s.metrics.dark_job_slots += dark_this_slot;
    for (const JobId id : s.to_retire) {
      s.retire(id);
    }
    if (s.live.empty()) {
      if (s.streaming()) {
        s.maybe_compact();
      }
      return !s.finished;
    }
  }

  if (s.config.multichannel.channels > 1) {
    s.step_multi(faults_before);
  } else {
    s.step_single(faults_before);
  }

  ++s.now;
  if (s.streaming()) {
    s.maybe_compact();
    if (s.live.empty() && !s.pending_spec) {
      s.finished = true;
    }
  } else if (s.live.empty() && s.next_pending >= s.job_count()) {
    s.finished = true;
  }
  return !s.finished;
}

SimResult Simulation::finish() {
  while (step()) {
  }
  Impl& s = *impl_;
  SimResult result;
  if (s.streaming()) {
    // Fold jobs still live at the horizon (never retired — matching batch
    // mode, which leaves horizon-cut jobs unretired and folds at finish).
    for (std::size_t i = 0; i < s.live_flag.size(); ++i) {
      if (s.live_flag[i] != 0) {
        s.live_flag[i] = 0;
        s.destroy_at(i);
        s.fold_streamed(i);
      }
    }
    s.live.clear();
    if (s.config.keep_job_results) {
      std::sort(s.finished_results.begin(), s.finished_results.end(),
                [](const JobResult& a, const JobResult& b) {
                  return a.id < b.id;
                });
      result.jobs = std::move(s.finished_results);
    }
    result.stream = s.stream;
  } else {
    // Fold the hot per-job counters into the cold results exactly once.
    for (std::size_t i = 0; i < s.results.size(); ++i) {
      JobResult& r = s.results[i];
      r.live_slots = s.live_slot_count[i];
      r.dark_slots = s.dark_slot_count[i];
      r.transmissions = s.tx_count[i];
      r.listen_slots = s.listen_count[i];
    }
    result.jobs = s.results;
  }
  result.metrics = s.metrics;
  if (s.injector != nullptr) {
    const FaultInjector& inj = *s.injector;
    result.metrics.faults_injected = inj.total_injected();
    result.metrics.feedback_corruptions = inj.count(FaultKind::kFeedbackCorrupt);
    result.metrics.feedback_losses = inj.count(FaultKind::kFeedbackLoss);
    result.metrics.clock_skew_events = inj.count(FaultKind::kClockSkew);
    result.metrics.crashes = inj.count(FaultKind::kCrash);
    result.metrics.restarts = inj.count(FaultKind::kRestart);
    result.fault_events = s.injector->take_events();
  }
  result.slots = std::move(s.slot_trace);
  // Feed the process-wide profiler so every harness (replication sweep or
  // hand-rolled loop) gets slots/sec — and the mega-scale meta fields —
  // for free.
  obs::global_profiler().add_slots(result.metrics.slots_simulated);
  obs::global_profiler().add_fast_forward_slots(
      result.metrics.fast_forward_slots);
  obs::global_profiler().note_live_peak(result.metrics.live_peak);
  return result;
}

SimResult run(workload::Instance instance, const ProtocolFactory& factory,
              SimConfig config, std::unique_ptr<Jammer> jammer) {
  Simulation sim(std::move(instance), factory, config, std::move(jammer));
  return sim.finish();
}

SimResult run_stream(std::unique_ptr<ArrivalProcess> arrivals,
                     const ProtocolFactory& factory, SimConfig config,
                     std::unique_ptr<Jammer> jammer) {
  Simulation sim(std::move(arrivals), factory, config, std::move(jammer));
  return sim.finish();
}

}  // namespace crmd::sim
