#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

/// \file multichannel.hpp
/// Multi-channel sharding (DESIGN.md §6j). Two execution paths share one
/// hash partition:
///
///  - *In-engine co-simulation*: SimConfig::multichannel.channels > 1 makes
///    a single Simulation resolve k sub-channels per time slot (supports
///    collision-count migration; serial).
///  - *Sharded parallel runs* (this file): the instance is hash-partitioned
///    into k independent single-channel Simulations — one thread per shard
///    — whose results are folded back in shard order, so the aggregate is
///    bit-identical for every `--threads` value. Static partition only (a
///    job cannot migrate across OS threads mid-run).
///
/// Both paths place job `key` on channel `shard_of(seed, key, k)`, so the
/// serial co-simulation and a sharded run of the same migration-free
/// scenario put every job on the same channel.

namespace crmd::sim {

/// Deterministic channel/shard hash: SplitMix64 over the run seed and an
/// arbitrary 64-bit key (a job id, or (collision_count << 32) | id for
/// migration rehashes). Uniform over [0, shards); consumes no RNG stream.
[[nodiscard]] inline int shard_of(std::uint64_t seed, std::uint64_t key,
                                  int shards) noexcept {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (key + 1));
  return static_cast<int>(util::splitmix64(state) %
                          static_cast<std::uint64_t>(shards));
}

/// One-line usage text for --channels error messages.
[[nodiscard]] std::string channels_usage();

/// Parses "K", "K:migrate", or "K:migrate:N" (K channels; optional
/// collision-count migration, rehashing after N collisions, default 4).
/// Returns nullopt (after printing a one-line error with channels_usage()
/// to `diag`) on anything malformed — CLI callers exit 2, matching the
/// --feedback pattern.
[[nodiscard]] std::optional<MultiChannelConfig> parse_channels_spec(
    const std::string& spec, std::ostream& diag);

/// Builds a fresh adversary for one shard from that shard's jammer stream;
/// may be null / return null (no jamming).
using ShardJammerGen = std::function<std::unique_ptr<Jammer>(util::Rng)>;

/// Builds shard `s`'s arrival process (streaming shards each own a process
/// — e.g. Poisson at rate/k — rather than splitting one stream).
using ShardArrivalGen =
    std::function<std::unique_ptr<ArrivalProcess>(int shard)>;

/// What a sharded batch run produces.
struct ShardedResult {
  /// Folded results: `total.jobs` is indexed by the *original* instance
  /// position (ids rewritten accordingly); `total.metrics` is the
  /// shard-order merge, so slots_simulated counts channel-slots summed over
  /// shards and live_peak is the largest *per-shard* live set.
  SimResult total;
  /// Each shard's own channel metrics, in shard order.
  std::vector<SimMetrics> per_shard;
  int shards = 1;
};

/// What a sharded streaming run produces (per-job results are never kept —
/// bounded memory is the point).
struct ShardedStreamResult {
  SimMetrics metrics;
  StreamSummary stream;
  std::vector<SimMetrics> per_shard;
  int shards = 1;
};

/// Runs `config.multichannel.channels` independent single-channel shards of
/// the instance in parallel and folds them in shard order.
///
/// Partition: normalized-instance position i goes to shard
/// shard_of(config.seed, i, k). Shard s simulates its sub-instance as an
/// ordinary single-channel run whose seed is the dedicated child stream
/// Rng(config.seed).child("SHAR" + s); `jammer_gen`, when given, builds
/// shard s's adversary from that seed's jammer stream. All shards share
/// one horizon (config.horizon, defaulting to the *full* instance's max
/// deadline).
///
/// `threads` <= 0 means one worker per hardware thread; the fold is serial
/// and in shard order regardless, so the result is bit-identical for every
/// thread count (pinned in tests/test_multichannel.cpp). With a tracer,
/// each shard's events are buffered and replayed in shard order (job ids
/// inside the replayed events are shard-local). Rejects
/// multichannel.migrate (jobs cannot cross OS threads) and record_slots.
[[nodiscard]] ShardedResult run_sharded(workload::Instance instance,
                                        const ProtocolFactory& factory,
                                        SimConfig config, int threads = 1,
                                        const ShardJammerGen& jammer_gen =
                                            nullptr);

/// Streaming analogue of run_sharded: shard s pulls jobs from
/// `make_process(s)` and runs a single-channel streaming simulation to
/// config.horizon (required > 0); metrics and stream summaries fold in
/// shard order. Per-job results are always discarded
/// (SimConfig::keep_job_results is forced off).
[[nodiscard]] ShardedStreamResult run_sharded_stream(
    const ShardArrivalGen& make_process, const ProtocolFactory& factory,
    SimConfig config, int threads = 1);

}  // namespace crmd::sim
