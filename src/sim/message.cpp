#include "sim/message.hpp"

namespace crmd::sim {

const char* to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kData:
      return "data";
    case MessageKind::kControl:
      return "control";
    case MessageKind::kStart:
      return "start";
    case MessageKind::kLeaderClaim:
      return "leader-claim";
    case MessageKind::kTimekeeper:
      return "timekeeper";
  }
  return "unknown";
}

Message make_data(JobId sender) noexcept {
  Message m;
  m.kind = MessageKind::kData;
  m.sender = sender;
  return m;
}

Message make_control(JobId sender) noexcept {
  Message m;
  m.kind = MessageKind::kControl;
  m.sender = sender;
  return m;
}

Message make_start(JobId sender) noexcept {
  Message m;
  m.kind = MessageKind::kStart;
  m.sender = sender;
  return m;
}

Message make_leader_claim(JobId sender, std::int64_t deadline_in) noexcept {
  Message m;
  m.kind = MessageKind::kLeaderClaim;
  m.sender = sender;
  m.deadline_in = deadline_in;
  return m;
}

Message make_timekeeper(JobId sender, std::int64_t time,
                        std::int64_t deadline_in, bool abdicating) noexcept {
  Message m;
  m.kind = MessageKind::kTimekeeper;
  m.sender = sender;
  m.time = time;
  m.deadline_in = deadline_in;
  m.abdicating = abdicating;
  return m;
}

}  // namespace crmd::sim
