#include "sim/metrics.hpp"

namespace crmd::sim {

void SimMetrics::record(const SlotRecord& rec) {
  ++slots_simulated;
  contention.add(rec.contention);
  switch (rec.outcome) {
    case SlotOutcome::kSilence:
      ++silent_slots;
      break;
    case SlotOutcome::kSuccess:
      ++success_slots;
      switch (rec.success_kind) {
        case MessageKind::kData:
          ++data_successes;
          break;
        case MessageKind::kControl:
          ++control_successes;
          break;
        case MessageKind::kStart:
          ++start_successes;
          break;
        case MessageKind::kLeaderClaim:
          ++claim_successes;
          break;
        case MessageKind::kTimekeeper:
          ++timekeeper_successes;
          break;
      }
      break;
    case SlotOutcome::kNoise:
      ++noise_slots;
      break;
  }
  if (rec.jammed) {
    ++jammed_slots;
  }
}

double SimMetrics::data_throughput() const noexcept {
  return slots_simulated == 0 ? 0.0
                              : static_cast<double>(data_successes) /
                                    static_cast<double>(slots_simulated);
}

std::int64_t SimResult::successes() const noexcept {
  std::int64_t count = 0;
  for (const auto& j : jobs) {
    count += j.success ? 1 : 0;
  }
  return count;
}

double SimResult::success_rate() const noexcept {
  return jobs.empty() ? 1.0
                      : static_cast<double>(successes()) /
                            static_cast<double>(jobs.size());
}

}  // namespace crmd::sim
