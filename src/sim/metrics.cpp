#include "sim/metrics.hpp"

#include <algorithm>

namespace crmd::sim {

void StreamSummary::add(const JobResult& job) noexcept {
  ++jobs;
  if (job.success) {
    ++delivered;
    latency.add(static_cast<double>(job.latency()));
  }
  accesses.add(static_cast<double>(job.transmissions));
  awake.add(static_cast<double>(job.awake_slots()));
}

void StreamSummary::merge(const StreamSummary& other) noexcept {
  jobs += other.jobs;
  delivered += other.delivered;
  latency.merge(other.latency);
  accesses.merge(other.accesses);
  awake.merge(other.awake);
}

double StreamSummary::delivery_rate() const noexcept {
  return jobs == 0 ? 1.0
                   : static_cast<double>(delivered) /
                         static_cast<double>(jobs);
}

void SimMetrics::record(const SlotRecord& rec) {
  ++slots_simulated;
  live_peak =
      std::max(live_peak, static_cast<std::int64_t>(rec.live_jobs));
  contention.add(rec.contention);
  switch (rec.outcome) {
    case SlotOutcome::kSilence:
      ++silent_slots;
      break;
    case SlotOutcome::kSuccess:
      ++success_slots;
      switch (rec.success_kind) {
        case MessageKind::kData:
          ++data_successes;
          break;
        case MessageKind::kControl:
          ++control_successes;
          break;
        case MessageKind::kStart:
          ++start_successes;
          break;
        case MessageKind::kLeaderClaim:
          ++claim_successes;
          break;
        case MessageKind::kTimekeeper:
          ++timekeeper_successes;
          break;
      }
      break;
    case SlotOutcome::kNoise:
      ++noise_slots;
      break;
  }
  if (rec.jammed) {
    ++jammed_slots;
  }
}

void SimMetrics::merge(const SimMetrics& other) {
  slots_simulated += other.slots_simulated;
  slots_skipped += other.slots_skipped;
  fast_forward_slots += other.fast_forward_slots;
  live_peak = std::max(live_peak, other.live_peak);
  silent_slots += other.silent_slots;
  success_slots += other.success_slots;
  noise_slots += other.noise_slots;
  jammed_slots += other.jammed_slots;
  data_successes += other.data_successes;
  control_successes += other.control_successes;
  start_successes += other.start_successes;
  claim_successes += other.claim_successes;
  timekeeper_successes += other.timekeeper_successes;
  faults_injected += other.faults_injected;
  feedback_corruptions += other.feedback_corruptions;
  feedback_losses += other.feedback_losses;
  clock_skew_events += other.clock_skew_events;
  crashes += other.crashes;
  restarts += other.restarts;
  dark_job_slots += other.dark_job_slots;
  live_job_slots += other.live_job_slots;
  slots_awake += other.slots_awake;
  slots_listening += other.slots_listening;
  slots_transmitting += other.slots_transmitting;
  feedback_flips += other.feedback_flips;
  capture_wins += other.capture_wins;
  collision_cost_slots += other.collision_cost_slots;
  contention.merge(other.contention);
}

double SimMetrics::data_throughput() const noexcept {
  return slots_simulated == 0 ? 0.0
                              : static_cast<double>(data_successes) /
                                    static_cast<double>(slots_simulated);
}

std::int64_t SimResult::successes() const noexcept {
  std::int64_t count = 0;
  for (const auto& j : jobs) {
    count += j.success ? 1 : 0;
  }
  return count;
}

double SimResult::success_rate() const noexcept {
  return jobs.empty() ? 1.0
                      : static_cast<double>(successes()) /
                            static_cast<double>(jobs.size());
}

}  // namespace crmd::sim
