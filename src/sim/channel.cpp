#include "sim/channel.hpp"

namespace crmd::sim {

const char* to_string(SlotOutcome outcome) noexcept {
  switch (outcome) {
    case SlotOutcome::kSilence:
      return "silence";
    case SlotOutcome::kSuccess:
      return "success";
    case SlotOutcome::kNoise:
      return "noise";
  }
  return "unknown";
}

SlotFeedback resolve_slot(std::span<const Transmission> transmissions) {
  SlotFeedback fb;
  if (transmissions.empty()) {
    fb.outcome = SlotOutcome::kSilence;
  } else if (transmissions.size() == 1) {
    fb.outcome = SlotOutcome::kSuccess;
    fb.message = transmissions.front().message;
  } else {
    fb.outcome = SlotOutcome::kNoise;
  }
  return fb;
}

}  // namespace crmd::sim
