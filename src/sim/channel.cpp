#include "sim/channel.hpp"

#include <ostream>
#include <stdexcept>

namespace crmd::sim {

const char* to_string(SlotOutcome outcome) noexcept {
  switch (outcome) {
    case SlotOutcome::kSilence:
      return "silence";
    case SlotOutcome::kSuccess:
      return "success";
    case SlotOutcome::kNoise:
      return "noise";
  }
  return "unknown";
}

SlotFeedback resolve_slot(std::span<const Transmission> transmissions) {
  SlotFeedback fb;
  if (transmissions.empty()) {
    fb.outcome = SlotOutcome::kSilence;
  } else if (transmissions.size() == 1) {
    fb.outcome = SlotOutcome::kSuccess;
    fb.message = transmissions.front().message;
  } else {
    fb.outcome = SlotOutcome::kNoise;
  }
  return fb;
}

const char* to_string(FeedbackKind kind) noexcept {
  switch (kind) {
    case FeedbackKind::kTernary:
      return "ternary";
    case FeedbackKind::kBinaryAck:
      return "binary_ack";
    case FeedbackKind::kCollisionAsSilence:
      return "collision_as_silence";
    case FeedbackKind::kNoisy:
      return "noisy";
    case FeedbackKind::kCapture:
      return "capture";
  }
  return "unknown";
}

ChannelCaps FeedbackModel::caps() const noexcept {
  ChannelCaps c;
  switch (kind) {
    case FeedbackKind::kTernary:
      break;
    case FeedbackKind::kBinaryAck:
      c.collision_detection = false;
      c.listener_success_visible = false;
      break;
    case FeedbackKind::kCollisionAsSilence:
      c.collision_detection = false;
      c.transmitter_ack = false;
      break;
    case FeedbackKind::kNoisy:
      c.reliable = false;
      break;
    case FeedbackKind::kCapture:
      // alpha == 0 advertises exactly ternary's caps: the channel *is* the
      // ternary channel then, and protocols must not be nudged into a
      // different mode for a physically identical radio.
      c.capture = alpha > 0.0;
      break;
  }
  return c;
}

std::string FeedbackModel::spec() const {
  std::string s = to_string(kind);
  if (kind == FeedbackKind::kNoisy) {
    s += ':' + std::to_string(eps);
  } else if (kind == FeedbackKind::kCapture) {
    s += ':' + std::to_string(alpha);
  }
  return s;
}

void FeedbackModel::validate() const {
  if (kind == FeedbackKind::kNoisy) {
    if (!(eps >= 0.0 && eps <= 1.0)) {
      throw std::invalid_argument(
          "FeedbackModel: noisy eps must be in [0, 1], got " +
          std::to_string(eps));
    }
  } else if (eps != 0.0) {
    throw std::invalid_argument(
        "FeedbackModel: eps is meaningful only for the noisy kind");
  }
  if (kind == FeedbackKind::kCapture) {
    if (!(alpha >= 0.0 && alpha <= 1.0)) {
      throw std::invalid_argument(
          "FeedbackModel: capture alpha must be in [0, 1], got " +
          std::to_string(alpha));
    }
  } else if (alpha != 0.0) {
    throw std::invalid_argument(
        "FeedbackModel: alpha is meaningful only for the capture kind");
  }
}

namespace {

std::optional<FeedbackModel> parse_model_parts(const std::string& name,
                                               const std::string& param) {
  if (name == "ternary" && param.empty()) {
    return FeedbackModel::ternary();
  }
  if (name == "binary_ack" && param.empty()) {
    return FeedbackModel::binary_ack();
  }
  if (name == "collision_as_silence" && param.empty()) {
    return FeedbackModel::collision_as_silence();
  }
  if (name == "noisy" || name == "capture") {
    // Both parameterized kinds share the strict numeric path: the full
    // param must parse as a double in [0, 1] ("noisy:junk", "capture:1.5",
    // "capture:0.5:extra" all reject).
    double value = name == "noisy" ? 0.05 : 0.5;
    if (!param.empty()) {
      try {
        std::size_t used = 0;
        value = std::stod(param, &used);
        if (used != param.size()) {
          return std::nullopt;
        }
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    if (!(value >= 0.0 && value <= 1.0)) {
      return std::nullopt;
    }
    return name == "noisy" ? FeedbackModel::noisy(value)
                           : FeedbackModel::capture(value);
  }
  return std::nullopt;
}

}  // namespace

std::optional<FeedbackModel> parse_feedback_model(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (colon != std::string::npos && colon + 1 == spec.size()) {
    return std::nullopt;  // trailing colon with no parameter
  }
  const std::string param =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  return parse_model_parts(name, param);
}

std::vector<std::string> feedback_model_names() {
  return {"ternary", "binary_ack", "collision_as_silence", "noisy",
          "capture"};
}

std::string feedback_usage() {
  return "expected ternary | binary_ack | collision_as_silence | "
         "noisy[:eps] | capture[:alpha] with eps, alpha in [0, 1]";
}

std::optional<FeedbackModel> parse_feedback_spec(const std::string& spec,
                                                 std::ostream& diag) {
  auto model = parse_feedback_model(spec);
  if (!model) {
    diag << "error: bad --feedback spec '" << spec << "': "
         << feedback_usage() << '\n';
  }
  return model;
}

std::optional<int> parse_collision_cost(const std::string& spec,
                                        std::ostream& diag) {
  int cost = 0;
  bool ok = false;
  try {
    std::size_t used = 0;
    cost = std::stoi(spec, &used);
    ok = used == spec.size() && cost >= 1;
  } catch (const std::exception&) {
  }
  if (!ok) {
    diag << "error: bad --collision-cost '" << spec
         << "': expected an integer >= 1\n";
    return std::nullopt;
  }
  return cost;
}

SlotFeedback degrade_feedback(const SlotFeedback& truth) noexcept {
  SlotFeedback degraded;
  switch (truth.outcome) {
    case SlotOutcome::kSuccess:
      // The delivery is garbled; no content is ever fabricated, so a
      // degraded success reads as noise.
      degraded.outcome = SlotOutcome::kNoise;
      break;
    case SlotOutcome::kNoise:
      degraded.outcome = SlotOutcome::kSilence;
      break;
    case SlotOutcome::kSilence:
      degraded.outcome = SlotOutcome::kNoise;
      break;
  }
  return degraded;
}

}  // namespace crmd::sim
