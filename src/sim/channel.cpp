#include "sim/channel.hpp"

#include <stdexcept>

namespace crmd::sim {

const char* to_string(SlotOutcome outcome) noexcept {
  switch (outcome) {
    case SlotOutcome::kSilence:
      return "silence";
    case SlotOutcome::kSuccess:
      return "success";
    case SlotOutcome::kNoise:
      return "noise";
  }
  return "unknown";
}

SlotFeedback resolve_slot(std::span<const Transmission> transmissions) {
  SlotFeedback fb;
  if (transmissions.empty()) {
    fb.outcome = SlotOutcome::kSilence;
  } else if (transmissions.size() == 1) {
    fb.outcome = SlotOutcome::kSuccess;
    fb.message = transmissions.front().message;
  } else {
    fb.outcome = SlotOutcome::kNoise;
  }
  return fb;
}

const char* to_string(FeedbackKind kind) noexcept {
  switch (kind) {
    case FeedbackKind::kTernary:
      return "ternary";
    case FeedbackKind::kBinaryAck:
      return "binary_ack";
    case FeedbackKind::kCollisionAsSilence:
      return "collision_as_silence";
    case FeedbackKind::kNoisy:
      return "noisy";
  }
  return "unknown";
}

ChannelCaps FeedbackModel::caps() const noexcept {
  ChannelCaps c;
  switch (kind) {
    case FeedbackKind::kTernary:
      break;
    case FeedbackKind::kBinaryAck:
      c.collision_detection = false;
      c.listener_success_visible = false;
      break;
    case FeedbackKind::kCollisionAsSilence:
      c.collision_detection = false;
      c.transmitter_ack = false;
      break;
    case FeedbackKind::kNoisy:
      c.reliable = false;
      break;
  }
  return c;
}

std::string FeedbackModel::spec() const {
  std::string s = to_string(kind);
  if (kind == FeedbackKind::kNoisy) {
    s += ':' + std::to_string(eps);
  }
  return s;
}

void FeedbackModel::validate() const {
  if (kind == FeedbackKind::kNoisy) {
    if (!(eps >= 0.0 && eps <= 1.0)) {
      throw std::invalid_argument(
          "FeedbackModel: noisy eps must be in [0, 1], got " +
          std::to_string(eps));
    }
  } else if (eps != 0.0) {
    throw std::invalid_argument(
        "FeedbackModel: eps is meaningful only for the noisy kind");
  }
}

namespace {

std::optional<FeedbackModel> parse_model_parts(const std::string& name,
                                               const std::string& param) {
  if (name == "ternary" && param.empty()) {
    return FeedbackModel::ternary();
  }
  if (name == "binary_ack" && param.empty()) {
    return FeedbackModel::binary_ack();
  }
  if (name == "collision_as_silence" && param.empty()) {
    return FeedbackModel::collision_as_silence();
  }
  if (name == "noisy") {
    double eps = 0.05;
    if (!param.empty()) {
      try {
        std::size_t used = 0;
        eps = std::stod(param, &used);
        if (used != param.size()) {
          return std::nullopt;
        }
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    if (!(eps >= 0.0 && eps <= 1.0)) {
      return std::nullopt;
    }
    return FeedbackModel::noisy(eps);
  }
  return std::nullopt;
}

}  // namespace

std::optional<FeedbackModel> parse_feedback_model(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (colon != std::string::npos && colon + 1 == spec.size()) {
    return std::nullopt;  // trailing colon with no parameter
  }
  const std::string param =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  return parse_model_parts(name, param);
}

std::vector<std::string> feedback_model_names() {
  return {"ternary", "binary_ack", "collision_as_silence", "noisy"};
}

std::string feedback_usage() {
  return "expected ternary | binary_ack | collision_as_silence | "
         "noisy[:eps] with eps in [0, 1]";
}

SlotFeedback degrade_feedback(const SlotFeedback& truth) noexcept {
  SlotFeedback degraded;
  switch (truth.outcome) {
    case SlotOutcome::kSuccess:
      // The delivery is garbled; no content is ever fabricated, so a
      // degraded success reads as noise.
      degraded.outcome = SlotOutcome::kNoise;
      break;
    case SlotOutcome::kNoise:
      degraded.outcome = SlotOutcome::kSilence;
      break;
    case SlotOutcome::kSilence:
      degraded.outcome = SlotOutcome::kNoise;
      break;
  }
  return degraded;
}

}  // namespace crmd::sim
