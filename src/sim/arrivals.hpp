#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/instance.hpp"

/// \file arrivals.hpp
/// Streaming arrival processes for open-ended workloads (DESIGN.md §6j).
///
/// A batch workload::Instance materializes every job up front — fine for
/// the paper's finite instances, hopeless for 10^8–10^9-slot stability
/// horizons with millions of cumulative jobs. An ArrivalProcess instead
/// hands the simulator one JobSpec at a time, in nondecreasing release
/// order, so the engine's memory is bounded by the *live* set (plus a
/// compaction window), never by the cumulative arrival count.
///
/// Determinism: a process draws only from the Rng the simulator passes it
/// (the dedicated "ARRV" child stream of the run seed), so a streaming run
/// is a pure function of (seed, spec) like everything else in the engine.
/// Note the streaming Poisson process is spacing-driven (exponential
/// inter-arrival gaps) and is a *different* process from the batch
/// workload::gen_poisson (which draws a total count and scatters it); the
/// two agree in rate but not per-seed.

namespace crmd::sim {

/// Produces jobs one at a time in nondecreasing release order.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Returns the next job, drawing any randomness from `rng`, or nullopt
  /// once the stream is exhausted (finite traces; infinite processes never
  /// exhaust — the simulator stops pulling at its horizon). Releases must
  /// be nondecreasing across calls; the simulator enforces this.
  [[nodiscard]] virtual std::optional<workload::JobSpec> next(
      util::Rng& rng) = 0;
};

/// Poisson arrivals: exponential inter-arrival gaps at `rate` jobs/slot,
/// each job getting a fixed window of `window` slots.
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double rate, Slot window);
  [[nodiscard]] std::optional<workload::JobSpec> next(util::Rng& rng) override;

 private:
  double rate_;
  Slot window_;
  double clock_ = 0.0;  // continuous arrival time; release = floor(clock_)
};

/// Markov-modulated Poisson: alternates between a low-rate and a high-rate
/// state with geometrically distributed dwell times (mean `dwell` slots),
/// emitting Poisson arrivals at the current state's rate. The bursty
/// workload the stability literature stresses.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double rate_lo, double rate_hi, Slot window, Slot dwell);
  [[nodiscard]] std::optional<workload::JobSpec> next(util::Rng& rng) override;

 private:
  double rate_lo_;
  double rate_hi_;
  Slot window_;
  Slot dwell_;
  bool high_ = false;
  double clock_ = 0.0;
  double state_end_ = 0.0;  // continuous time the current state expires
};

/// Replays "release,deadline" CSV lines from a file (blank lines and
/// #-comments skipped). Construction throws std::runtime_error on an
/// unreadable file or malformed/decreasing rows — trace bugs should fail
/// loudly, not silently truncate an experiment.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(const std::string& path);
  [[nodiscard]] std::optional<workload::JobSpec> next(util::Rng& rng) override;

 private:
  std::vector<workload::JobSpec> jobs_;
  std::size_t next_ = 0;
};

/// Replays an in-memory job list (tests: the streaming-vs-batch
/// equivalence suite feeds the same normalized instance both ways).
class VectorArrivals final : public ArrivalProcess {
 public:
  explicit VectorArrivals(std::vector<workload::JobSpec> jobs);
  [[nodiscard]] std::optional<workload::JobSpec> next(util::Rng& rng) override;

 private:
  std::vector<workload::JobSpec> jobs_;
  std::size_t next_ = 0;
};

/// Parsed `--arrivals=SPEC` value; `make()` builds a fresh process (one per
/// run/shard, so replications and shards draw independent streams).
struct ArrivalSpec {
  enum class Kind { kPoisson, kMmpp, kTrace };
  Kind kind = Kind::kPoisson;
  double rate = 0.01;       // poisson; mmpp low-state rate
  double rate_hi = 0.0;     // mmpp high-state rate
  Slot window = 4096;       // per-job window (release + window = deadline)
  Slot dwell = 4096;        // mmpp mean state dwell (slots)
  std::string path;         // trace file

  [[nodiscard]] std::unique_ptr<ArrivalProcess> make() const;
  /// Canonical spec string (round-trips through parse_arrivals_spec).
  [[nodiscard]] std::string spec() const;
};

/// One-line usage text for --arrivals error messages.
[[nodiscard]] std::string arrivals_usage();

/// Parses "poisson:RATE[:WINDOW]", "mmpp:RLO:RHI[:WINDOW[:DWELL]]", or
/// "trace:PATH". Returns nullopt (after printing a one-line error with
/// arrivals_usage() to `diag`) on anything malformed — CLI callers exit 2,
/// matching the --feedback pattern.
[[nodiscard]] std::optional<ArrivalSpec> parse_arrivals_spec(
    const std::string& spec, std::ostream& diag);

/// Materializes a process into a batch Instance (releases < horizon). Used
/// by crmd_cli's --arrivals path and by the streaming-equivalence tests;
/// mega-scale harnesses feed the process straight to the simulator instead.
[[nodiscard]] workload::Instance materialize_arrivals(ArrivalProcess& process,
                                                      Slot horizon,
                                                      util::Rng& rng);

}  // namespace crmd::sim
