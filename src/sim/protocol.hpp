#pragma once

#include <functional>
#include <memory>

#include "sim/channel.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

/// \file protocol.hpp
/// The per-job protocol interface every algorithm in this library
/// implements (UNIFORM, ALIGNED, PUNCTUAL, and the baselines).
///
/// Model fidelity: a protocol instance is the *local* program of one job.
/// It sees only (a) how many slots have elapsed since its own release, (b)
/// the channel feedback of each slot while it is live, and (c) its own
/// window size. It has no job identifier it may act on and no global clock
/// — with one sanctioned exception: §3's ALIGNED analysis assumes
/// power-of-2-aligned windows whose boundaries provide implicit
/// synchronization, which we surface as the global slot index in
/// `SlotView::global_slot`. PUNCTUAL never reads it.

namespace crmd::obs {
class Tracer;
}  // namespace crmd::obs

namespace crmd::sim {

/// Immutable facts a job knows about itself when it activates.
struct JobInfo {
  /// Harness bookkeeping id; also stamped into transmitted messages so the
  /// simulator can credit successes. Never used in decisions.
  JobId id = kNoJob;
  /// Release slot (global): the job is live in window [release, deadline).
  Slot release = 0;
  /// Deadline slot (global, exclusive).
  Slot deadline = 0;

  /// Window size w_j = deadline - release.
  [[nodiscard]] Slot window() const noexcept { return deadline - release; }
};

/// What a protocol sees about "now".
struct SlotView {
  /// Slots elapsed since this job's release (0 in the release slot).
  Slot since_release = 0;
  /// Global slot index. Only ALIGNED (and harness-side diagnostics) may use
  /// this — see the file comment.
  Slot global_slot = 0;
};

/// A protocol's decision for one slot.
struct SlotAction {
  /// Whether to transmit this slot. When false the job listens.
  bool transmit = false;
  /// The message to put on the channel when `transmit` is true.
  Message message;
  /// The probability p_j(t) with which this job decided to transmit in this
  /// slot, *declared for metrics*: §2.1 defines the contention C(t) as the
  /// sum of these. Deterministic transmissions declare 1, deterministic
  /// silence declares 0. Harness-only; never visible to other jobs.
  double declared_prob = 0.0;
};

/// Per-job protocol state machine.
///
/// Lifecycle: construct -> on_activate (once, in the release slot) -> for
/// each live slot: on_slot (decide) then on_feedback (observe the resolved
/// slot). The simulator drops the job at its deadline, when `done()`
/// becomes true, or when its data message is delivered (whichever first).
class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Called once when the job becomes live.
  virtual void on_activate(const JobInfo& info) = 0;

  /// Decide this slot's action. Called once per live slot, before the
  /// channel resolves.
  [[nodiscard]] virtual SlotAction on_slot(const SlotView& view) = 0;

  /// Observe the resolved slot (the same feedback every listener gets).
  virtual void on_feedback(const SlotView& view, const SlotFeedback& fb) = 0;

  /// True once the job will never transmit again — it succeeded, completed
  /// its algorithm without success ("gives up", §3 Truncation), or has
  /// nothing left to do. The simulator removes done jobs from the live set.
  [[nodiscard]] virtual bool done() const = 0;

  /// Attaches the (optional) tracing session. Called by the simulator
  /// before on_activate; null means tracing is off. Instrumentation must
  /// never change decisions or RNG draws — emitting is observe-only (see
  /// obs/trace.hpp for the cost model).
  void set_tracer(obs::Tracer* tracer) noexcept { obs_ = tracer; }

 protected:
  Protocol() = default;

  /// Tracing session for CRMD_TRACE emission points; null when off.
  obs::Tracer* obs_ = nullptr;
};

/// Creates the protocol instance for one job. `rng` is that job's private,
/// deterministically derived random stream.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(
    const JobInfo& info, util::Rng rng)>;

}  // namespace crmd::sim
