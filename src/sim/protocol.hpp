#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/channel.hpp"
#include "sim/message.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

/// \file protocol.hpp
/// The per-job protocol interface every algorithm in this library
/// implements (UNIFORM, ALIGNED, PUNCTUAL, and the baselines).
///
/// Model fidelity: a protocol instance is the *local* program of one job.
/// It sees only (a) how many slots have elapsed since its own release, (b)
/// the channel feedback of each slot while it is live, and (c) its own
/// window size. It has no job identifier it may act on and no global clock
/// — with one sanctioned exception: §3's ALIGNED analysis assumes
/// power-of-2-aligned windows whose boundaries provide implicit
/// synchronization, which we surface as the global slot index in
/// `SlotView::global_slot`. PUNCTUAL never reads it.

namespace crmd::obs {
class Tracer;
}  // namespace crmd::obs

namespace crmd::sim {

/// Immutable facts a job knows about itself when it activates.
struct JobInfo {
  /// Harness bookkeeping id; also stamped into transmitted messages so the
  /// simulator can credit successes. Never used in decisions.
  JobId id = kNoJob;
  /// Release slot (global): the job is live in window [release, deadline).
  Slot release = 0;
  /// Deadline slot (global, exclusive).
  Slot deadline = 0;
  /// What the channel's feedback model advertises (set by the simulator
  /// from SimConfig::feedback). Knowing the radio hardware is legitimate
  /// deployment-time information, so protocols may condition their
  /// degraded-mode behavior on it — e.g. ALIGNED and PUNCTUAL fall back to
  /// conservative blind schedules when `caps.collision_detection` is off
  /// (DESIGN.md §6f). Defaults to the paper's full ternary channel.
  ChannelCaps caps;

  /// Window size w_j = deadline - release.
  [[nodiscard]] Slot window() const noexcept { return deadline - release; }
};

/// What a protocol sees about "now".
struct SlotView {
  /// Slots elapsed since this job's release (0 in the release slot).
  Slot since_release = 0;
  /// Global slot index. Only ALIGNED (and harness-side diagnostics) may use
  /// this — see the file comment.
  Slot global_slot = 0;
};

///// A dormancy promise for the fast-forward engine (DESIGN.md §6j): "for
/// the next `slots` slots, starting with the one being queried, I will not
/// transmit, I will declare a constant probability `prob`, any feedback I
/// observe leaves my state unchanged (I did not transmit, so success/noise
/// concern other jobs), and done() stays false." `slots == 0` means no
/// promise — the engine must simulate the slot. Protocols with pre-drawn
/// schedules (UNIFORM's attempt list, BEB's backoff slot) can promise the
/// whole gap to their next attempt; adaptive per-slot protocols simply
/// inherit the no-promise default.
struct DormantSpan {
  Slot slots = 0;
  double prob = 0.0;
};

/// A protocol's decision for one slot.
struct SlotAction {
  /// Whether to transmit this slot. When false the job listens — unless it
  /// also declares `sleep`.
  bool transmit = false;
  /// Radio-off declaration (DESIGN.md §6k): "this slot's feedback content
  /// cannot change my state — I am not listening." Only meaningful when
  /// `transmit` is false (a transmitter is awake by definition; the
  /// simulator ignores sleep on transmit slots). The declaration is
  /// *enforced*: a sleeper's perceived feedback is scrubbed to silence
  /// before on_feedback, so a protocol that lies sleeps through real cues
  /// rather than silently cheating the energy meter. on_feedback is still
  /// called every slot (it is the protocol's timer tick). A dormant span
  /// is exactly a run of sleep slots, so fast-forwarded gaps batch-account
  /// the same energy the slot-by-slot engine would.
  bool sleep = false;
  /// The message to put on the channel when `transmit` is true.
  Message message;
  /// The probability p_j(t) with which this job decided to transmit in this
  /// slot, *declared for metrics*: §2.1 defines the contention C(t) as the
  /// sum of these. Deterministic transmissions declare 1, deterministic
  /// silence declares 0. Harness-only; never visible to other jobs.
  double declared_prob = 0.0;
};

/// Per-job protocol state machine.
///
/// Lifecycle: construct -> on_activate (once, in the release slot) -> for
/// each live slot: on_slot (decide) then on_feedback (observe the resolved
/// slot). The simulator drops the job at its deadline, when `done()`
/// becomes true, or when its data message is delivered (whichever first).
class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Called once when the job becomes live.
  virtual void on_activate(const JobInfo& info) = 0;

  /// Decide this slot's action. Called once per live slot, before the
  /// channel resolves.
  [[nodiscard]] virtual SlotAction on_slot(const SlotView& view) = 0;

  /// Observe the resolved slot (the same feedback every listener gets).
  virtual void on_feedback(const SlotView& view, const SlotFeedback& fb) = 0;

  /// True once the job will never transmit again — it succeeded, completed
  /// its algorithm without success ("gives up", §3 Truncation), or has
  /// nothing left to do. The simulator removes done jobs from the live set.
  [[nodiscard]] virtual bool done() const = 0;

  /// Optional dormancy promise for the fast-forward engine (see
  /// DormantSpan). Called only under SimConfig::fast_forward, between the
  /// activation/retire phases and the decision phase, with the same view
  /// on_slot would receive. The default — no promise — is always safe and
  /// makes fast-forward a provable no-op for this protocol.
  [[nodiscard]] virtual DormantSpan dormant_span(const SlotView& view) const {
    (void)view;
    return {};
  }

  /// Attaches the (optional) tracing session. Called by the simulator
  /// before on_activate; null means tracing is off. Instrumentation must
  /// never change decisions or RNG draws — emitting is observe-only (see
  /// obs/trace.hpp for the cost model).
  void set_tracer(obs::Tracer* tracer) noexcept { obs_ = tracer; }

 protected:
  Protocol() = default;

  /// Tracing session for CRMD_TRACE emission points; null when off.
  obs::Tracer* obs_ = nullptr;
};

/// Creates the protocol instance for one job. `rng` is that job's private,
/// deterministically derived random stream.
///
/// Two construction paths coexist:
///  - the *heap* path (`operator()`) returns a `unique_ptr` — this is the
///    historical signature, and any callable with it converts implicitly,
///    so ad-hoc factories (tests, examples) keep working unchanged;
///  - the *arena* path (`emplace`) constructs the protocol in place inside
///    a per-simulation MonotonicArena, which the simulator prefers when
///    available: one bump allocation per job instead of one heap object,
///    and all of a run's protocols packed contiguously.
///
/// The registered factories (`make_*_factory` across core/ and baselines/)
/// provide both paths; the simulator falls back to the heap path — and
/// takes over ownership via `delete` — when a factory is heap-only.
class ProtocolFactory {
 public:
  using HeapFn =
      std::function<std::unique_ptr<Protocol>(const JobInfo&, util::Rng)>;
  using ArenaFn = std::function<Protocol*(const JobInfo&, util::Rng,
                                          util::MonotonicArena&)>;

  ProtocolFactory() = default;

  /// Implicit conversion from any legacy heap-signature callable.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ProtocolFactory> &&
                std::is_invocable_r_v<std::unique_ptr<Protocol>, F&,
                                      const JobInfo&, util::Rng>>>
  ProtocolFactory(F fn)  // NOLINT(google-explicit-constructor)
      : heap_(std::move(fn)) {}

  /// Full factory with both construction paths.
  ProtocolFactory(HeapFn heap, ArenaFn arena)
      : heap_(std::move(heap)), arena_(std::move(arena)) {}

  /// True when a heap path is installed (the factory is usable at all).
  explicit operator bool() const noexcept {
    return static_cast<bool>(heap_);
  }

  /// Heap path: builds the protocol with normal ownership.
  std::unique_ptr<Protocol> operator()(const JobInfo& info,
                                       util::Rng rng) const {
    return heap_(info, std::move(rng));
  }

  /// True when `emplace` may be called.
  [[nodiscard]] bool arena_aware() const noexcept {
    return static_cast<bool>(arena_);
  }

  /// Arena path: constructs in place; the arena owns the memory, the caller
  /// owns the destructor call (see util/arena.hpp).
  Protocol* emplace(const JobInfo& info, util::Rng rng,
                    util::MonotonicArena& arena) const {
    return arena_(info, std::move(rng), arena);
  }

 private:
  HeapFn heap_;
  ArenaFn arena_;
};

/// Builds an arena-aware factory for protocol type P constructed as
/// `P(bound..., rng)` — the shape of every registered protocol. Factories
/// whose constructor arguments depend on the JobInfo spell out the two
/// lambdas instead (see make_aloha_window_factory).
template <typename P, typename... Bound>
[[nodiscard]] ProtocolFactory make_arena_factory(Bound... bound) {
  return ProtocolFactory(
      [bound...](const JobInfo& /*info*/, util::Rng rng) {
        return std::make_unique<P>(bound..., std::move(rng));
      },
      [bound...](const JobInfo& /*info*/, util::Rng rng,
                 util::MonotonicArena& arena) -> Protocol* {
        return arena.create<P>(bound..., std::move(rng));
      });
}

}  // namespace crmd::sim
