#pragma once

#include <cstdint>
#include <vector>

#include "sim/channel.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

/// \file faults.hpp
/// Composable fault injection: seeded, deterministic perturbations applied
/// *between* channel resolution and protocol observation.
///
/// The paper's model (§1.1) assumes perfect ternary feedback, perfectly
/// synchronized slots, and jobs that never die; its only stress is the §3
/// stochastic jammer. Related work weakens exactly these assumptions
/// (unreliable feedback channels in Jiang–Zheng, weakened collision models
/// in Biswas–Chakraborty–Young), and a production system must know how each
/// protocol *degrades* when they crack. A `FaultPlan` describes per-run
/// fault rates; the `FaultInjector` turns the plan into per-job, per-slot
/// perturbations drawn from dedicated RNG streams so that
///   (a) a run replays bit-identically from `(seed, FaultPlan)`, and
///   (b) an all-zero plan is a provable no-op: no stream is ever advanced,
///       so results are bit-identical to a fault-free run.
///
/// Fault taxonomy (each maps to one paper assumption):
///   feedback corruption — ternary feedback is exact. A corrupted listener
///       perceives a *degraded* outcome (success→noise, noise↔silence);
///       faults never fabricate message content.
///   feedback loss — listeners hear every slot. A lossy listener perceives
///       silence regardless of the true outcome (its radio missed the slot).
///   clock skew — slots are perfectly synchronized. A skewed job's
///       perceived slot index slips one slot *ahead* per skew event and the
///       lead accumulates, directly stressing PUNCTUAL's round grid and
///       ALIGNED's phase alignment (relative misalignment is what matters,
///       so forward-only drift loses no generality and keeps perceived
///       time monotone).
///   crash/stall/restart — jobs live until their deadline. A crashed job
///       goes dark — neither transmits nor hears feedback — for a bounded
///       stall or permanently.
///
/// Budgeted/adaptive *jamming* adversaries stay in jammer.hpp (they perturb
/// the channel itself, not a listener's perception).

namespace crmd::obs {
class Tracer;
}  // namespace crmd::obs

namespace crmd::sim {

/// Kinds of injected fault events (recorded for traces and metrics).
enum class FaultKind : std::uint8_t {
  kFeedbackCorrupt,  ///< a listener perceived a degraded outcome
  kFeedbackLoss,     ///< a listener heard silence instead of the truth
  kClockSkew,        ///< a job's perceived slot index slipped one ahead
  kCrash,            ///< a job went dark (stall or permanent)
  kRestart,          ///< a stalled job came back
};

/// Human-readable fault-kind name.
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One injected fault occurrence (kept when slot recording is on, so a
/// trace shows exactly which perturbations produced it).
struct FaultEvent {
  Slot slot = 0;
  FaultKind kind = FaultKind::kFeedbackCorrupt;
  JobId job = kNoJob;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Declarative description of every fault source in a run. All rates are
/// per live job per slot; 0 disables the source. The default plan injects
/// nothing.
struct FaultPlan {
  /// ε: probability a listener's perceived outcome is degraded
  /// (success→noise, noise→silence, silence→noise).
  double feedback_corrupt_rate = 0.0;

  /// Probability a listener hears nothing for a slot (perceives silence).
  double feedback_loss_rate = 0.0;

  /// Probability a job's perceived clock slips one slot ahead (the lead
  /// accumulates for the rest of its window).
  double clock_skew_rate = 0.0;

  /// Probability a live job crashes this slot.
  double crash_rate = 0.0;

  /// Fraction of crashes that are permanent (the job never restarts);
  /// the rest stall for a uniform duration in [stall_min, stall_max].
  double crash_permanent_frac = 0.0;

  /// Stall-duration bounds (slots) for non-permanent crashes.
  Slot stall_min = 8;
  Slot stall_max = 64;

  /// True when any fault source is enabled.
  [[nodiscard]] bool any() const noexcept;

  /// Throws std::invalid_argument (with the offending field named) when a
  /// rate is outside [0, 1] or the stall bounds are invalid.
  void validate() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Executes a FaultPlan for one simulation. Each job draws from its own
/// child stream (derived from the simulation seed), so per-job fault
/// randomness is stable under changes to the number of jobs, and replays
/// from `(seed, plan)` are exact.
class FaultInjector {
 public:
  /// A job's fault status for the current slot.
  enum class JobHealth : std::uint8_t {
    kHealthy,  ///< participates normally
    kDark,     ///< stalled: neither transmits nor hears feedback this slot
    kDead,     ///< permanently crashed: the simulator retires it
  };

  /// `seed` is the simulation master seed; the injector derives its own
  /// stream family from it (never shared with protocol or jammer streams).
  FaultInjector(const FaultPlan& plan, std::uint64_t seed);

  /// Advances job `id`'s crash/stall/skew state for `slot`. Called exactly
  /// once per live job per simulated slot, before the decision phase.
  JobHealth tick(JobId id, Slot slot);

  /// Accumulated perceived-clock lead of job `id` (slots). Stable within a
  /// slot once tick() ran.
  [[nodiscard]] Slot skew(JobId id) const noexcept;

  /// Filters the feedback job `id` is about to observe; applies loss and
  /// corruption draws. Called once per *hearing* (non-dark) job per slot.
  [[nodiscard]] SlotFeedback perceive(JobId id, Slot slot,
                                      const SlotFeedback& truth);

  /// The plan this injector executes.
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Total faults injected so far (all kinds).
  [[nodiscard]] std::int64_t total_injected() const noexcept {
    return total_;
  }

  /// Per-kind counters.
  [[nodiscard]] std::int64_t count(FaultKind kind) const noexcept;

  /// When enabled, every fault is kept as a FaultEvent (memory grows with
  /// the fault count — meant for tests and small traces, mirroring
  /// SimConfig::record_slots).
  void set_record_events(bool record) noexcept { record_events_ = record; }

  /// Optional tracing session: every injection also emits an
  /// obs::EventKind::kFault event (null = off; set by the simulator from
  /// SimConfig::tracer).
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// The recorded events (empty unless recording was enabled).
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }

  /// Moves the recorded events out (used by Simulation::finish).
  [[nodiscard]] std::vector<FaultEvent> take_events() noexcept {
    return std::move(events_);
  }

 private:
  struct JobState {
    util::Rng rng{0};
    bool initialized = false;
    Slot skew = 0;
    bool dead = false;
    /// Dark while the current slot < dark_until; kNoSlot means not stalled.
    Slot dark_until = kNoSlot;
  };

  JobState& state_for(JobId id);
  void record(Slot slot, FaultKind kind, JobId job);

  FaultPlan plan_;
  util::Rng master_;
  std::vector<JobState> jobs_;
  std::vector<FaultEvent> events_;
  std::int64_t counts_[5] = {0, 0, 0, 0, 0};
  std::int64_t total_ = 0;
  bool record_events_ = false;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace crmd::sim
