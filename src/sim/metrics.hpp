#pragma once

#include <cstdint>
#include <vector>

#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

/// \file metrics.hpp
/// Aggregated and per-slot measurements collected by the simulator.

namespace crmd::sim {

/// Snapshot of one resolved slot (recorded only when
/// `SimConfig::record_slots` is on, or streamed to a SlotObserver).
struct SlotRecord {
  Slot slot = 0;
  /// Outcome after jamming — what listeners perceived.
  SlotOutcome outcome = SlotOutcome::kSilence;
  /// Kind of the successful message; meaningful iff outcome == kSuccess.
  MessageKind success_kind = MessageKind::kData;
  /// §2.1 contention C(t): sum of the declared transmit probabilities of
  /// all live jobs in this slot.
  double contention = 0.0;
  /// Number of jobs that actually transmitted.
  std::uint32_t transmitters = 0;
  /// Number of live jobs during the slot.
  std::uint32_t live_jobs = 0;
  /// True when the adversary successfully jammed this slot.
  bool jammed = false;
  /// Number of fault events injected during this slot (crashes, skews,
  /// per-listener corruptions/losses — see faults.hpp).
  std::uint32_t faults = 0;
};

/// Whole-run channel statistics.
struct SimMetrics {
  /// Slots actually resolved (live jobs present). Includes fast-forwarded
  /// slots: they are accounted exactly as if simulated (DESIGN.md §6j).
  std::int64_t slots_simulated = 0;
  /// Idle slots skipped by fast-forwarding between arrival bursts (no live
  /// jobs; nothing to account — NOT part of slots_simulated).
  std::int64_t slots_skipped = 0;
  /// Slots covered by the event-driven fast-forward engine instead of
  /// per-slot simulation (SimConfig::fast_forward; subset of
  /// slots_simulated, zero with fast-forward off). Like capture_wins this
  /// is a pinned artifact of the engine's traversal, deliberately excluded
  /// from the golden report digest (tests/report_digest.hpp).
  std::int64_t fast_forward_slots = 0;
  /// Largest live-set size observed in any single slot (max-merged across
  /// runs; excluded from the golden report digest like fast_forward_slots).
  std::int64_t live_peak = 0;

  std::int64_t silent_slots = 0;
  std::int64_t success_slots = 0;
  std::int64_t noise_slots = 0;
  /// Slots turned to noise by the adversary (subset of noise_slots).
  std::int64_t jammed_slots = 0;

  /// Successful messages by kind.
  std::int64_t data_successes = 0;
  std::int64_t control_successes = 0;
  std::int64_t start_successes = 0;
  std::int64_t claim_successes = 0;
  std::int64_t timekeeper_successes = 0;

  /// Injected faults by kind (see faults.hpp; zero in fault-free runs).
  std::int64_t faults_injected = 0;
  std::int64_t feedback_corruptions = 0;
  std::int64_t feedback_losses = 0;
  std::int64_t clock_skew_events = 0;
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
  /// Job-slots spent dark (crashed/stalled jobs that were live but deaf).
  std::int64_t dark_job_slots = 0;
  /// Job-slots spent live (every live job counts every slot, dark or not;
  /// fast-forwarded spans batch-account theirs). The denominator for the
  /// radio duty cycle below: an always-listening protocol has
  /// slots_awake == live_job_slots − dark_job_slots. Added alongside the
  /// §6k energy counters and, like them, excluded from the frozen golden
  /// report digest.
  std::int64_t live_job_slots = 0;

  /// Slots whose broadcast feedback was flipped by the noisy feedback
  /// model (channel.hpp FeedbackKind::kNoisy; zero for every other model).
  std::int64_t feedback_flips = 0;

  /// Radio-energy accounting (DESIGN.md §6k): job-slots spent with the
  /// radio on, summed over every live job. A job-slot is *transmitting*
  /// when the job put a message on the channel, *listening* when it was
  /// live, non-dark, and did not declare sleep (SlotAction::sleep or a
  /// dormancy promise), and asleep otherwise. The states are disjoint, so
  /// slots_awake == slots_listening + slots_transmitting always (pinned by
  /// tests/test_energy.cpp). Fast-forwarded spans account zero awake
  /// job-slots both ways — a dormant span is exactly a sleep span — which
  /// is why these counters are bit-identical across --fast-forward modes.
  /// Like capture_wins, deliberately excluded from the golden report
  /// digest (tests/report_digest.hpp); pinned by their own kGoldenEnergy
  /// digests instead.
  std::int64_t slots_awake = 0;
  std::int64_t slots_listening = 0;
  std::int64_t slots_transmitting = 0;

  /// Collisions from which the capture model leaked a winning broadcast
  /// (FeedbackKind::kCapture; subset of success_slots, zero otherwise).
  std::int64_t capture_wins = 0;
  /// Slots lost to collision-cost recovery freezes (simulator.hpp
  /// SimConfig::collision_cost; subset of noise_slots, zero when cost
  /// is 1).
  std::int64_t collision_cost_slots = 0;

  /// Distribution of per-slot contention across simulated slots.
  util::RunningStats contention;

  /// Registers one resolved slot.
  void record(const SlotRecord& rec);

  /// Accumulates another run's metrics into this one (field-wise sums;
  /// contention distributions merge exactly). Used by the replication
  /// driver and any custom harness loop that aggregates runs.
  void merge(const SimMetrics& other);

  /// Fraction of simulated slots carrying a successful data message.
  [[nodiscard]] double data_throughput() const noexcept;
};

/// Outcome of one job.
struct JobResult {
  JobId id = kNoJob;
  Slot release = 0;
  Slot deadline = 0;
  /// True when the job's data message was delivered inside its window.
  bool success = false;
  /// Slot of the successful delivery; kNoSlot when the job failed.
  Slot success_slot = kNoSlot;
  /// Channel accesses: slots in which the job transmitted anything. The
  /// energy-complexity literature the paper cites measures protocols by
  /// exactly this count.
  std::int64_t transmissions = 0;
  /// Slots the job spent live (awake or asleep).
  std::int64_t live_slots = 0;
  /// Live slots the job spent dark (crashed/stalled; subset of live_slots).
  std::int64_t dark_slots = 0;
  /// Live slots spent listening: radio on without transmitting
  /// (DESIGN.md §6k). Disjoint from transmissions; excludes sleep slots,
  /// dark slots, and fast-forwarded dormant spans.
  std::int64_t listen_slots = 0;

  /// Window size.
  [[nodiscard]] Slot window() const noexcept { return deadline - release; }
  /// Slots the radio was on: listening or transmitting (DESIGN.md §6k).
  [[nodiscard]] std::int64_t awake_slots() const noexcept {
    return listen_slots + transmissions;
  }
  /// Delivery latency (slots from release to success); only meaningful for
  /// successful jobs.
  [[nodiscard]] Slot latency() const noexcept {
    return success ? success_slot - release + 1 : -1;
  }
};

/// Rolling per-job aggregate for streaming (open-ended arrival) runs:
/// jobs are folded in as they retire so memory stays bounded by the live
/// set, not the cumulative job count (DESIGN.md §6j).
struct StreamSummary {
  /// Cumulative jobs that entered the system (including degenerate
  /// zero-window arrivals that never activate).
  std::int64_t jobs = 0;
  /// Jobs whose data message was delivered inside their window.
  std::int64_t delivered = 0;
  /// Delivery latency (slots from release to success) over delivered jobs.
  util::RunningStats latency;
  /// Channel accesses (transmissions) per job, over all folded jobs.
  util::RunningStats accesses;
  /// Awake (listening + transmitting) slots per job, over all folded jobs
  /// (DESIGN.md §6k).
  util::RunningStats awake;

  /// Folds one retired job in (the same fields SimResult::jobs would keep).
  void add(const JobResult& job) noexcept;
  /// Accumulates another summary (shard fold; exact parallel merges).
  void merge(const StreamSummary& other) noexcept;
  /// Fraction of folded jobs delivered (1.0 when empty, like
  /// SimResult::success_rate).
  [[nodiscard]] double delivery_rate() const noexcept;
};

/// Everything a simulation run produces.
struct SimResult {
  std::vector<JobResult> jobs;
  SimMetrics metrics;
  /// Per-slot trace; empty unless recording was requested.
  std::vector<SlotRecord> slots;
  /// Every injected fault, in order; empty unless recording was requested
  /// (or no faults were configured).
  std::vector<FaultEvent> fault_events;
  /// Streaming-mode rolling job aggregate; zero-initialized (jobs == 0)
  /// for batch runs, which keep per-job results in `jobs` instead.
  StreamSummary stream;

  /// Number of jobs that met their deadline.
  [[nodiscard]] std::int64_t successes() const noexcept;
  /// Fraction of jobs that met their deadline (1.0 for empty runs).
  [[nodiscard]] double success_rate() const noexcept;
};

}  // namespace crmd::sim
