#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "util/types.hpp"

/// \file channel.hpp
/// The multiple-access channel: slot resolution and ternary feedback.
///
/// §1.1 of the paper: in each slot a player may transmit; the transmission
/// succeeds only if no other player transmits in the same slot. Listening
/// players receive ternary feedback (collision detection): the slot is
/// silent, contains one successful broadcast (whose content is delivered),
/// or is noisy.

namespace crmd::sim {

/// What every listener perceives in a slot.
enum class SlotOutcome : std::uint8_t {
  kSilence,  ///< nobody transmitted
  kSuccess,  ///< exactly one transmission; content delivered to listeners
  kNoise,    ///< two or more transmissions collided, or the slot was jammed
};

/// Human-readable name of an outcome.
[[nodiscard]] const char* to_string(SlotOutcome outcome) noexcept;

/// One job's transmission attempt in a slot.
struct Transmission {
  JobId job = kNoJob;
  Message message;
};

/// Per-slot feedback delivered to every live job. `message` is engaged iff
/// `outcome == kSuccess`. Jobs cannot tell noise-from-collision apart from
/// noise-from-jamming — both are kNoise (the paper's adversary "creates
/// noise").
struct SlotFeedback {
  SlotOutcome outcome = SlotOutcome::kSilence;
  std::optional<Message> message;
};

/// Resolves a slot from the set of transmissions: 0 -> silence, 1 ->
/// success carrying that message, >=2 -> noise. Pure function of the
/// transmission multiset; jamming is applied afterwards by the simulator.
[[nodiscard]] SlotFeedback resolve_slot(
    std::span<const Transmission> transmissions);

}  // namespace crmd::sim
