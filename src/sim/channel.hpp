#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "util/types.hpp"

/// \file channel.hpp
/// The multiple-access channel: slot resolution and pluggable feedback.
///
/// §1.1 of the paper: in each slot a player may transmit; the transmission
/// succeeds only if no other player transmits in the same slot. Listening
/// players receive ternary feedback (collision detection): the slot is
/// silent, contains one successful broadcast (whose content is delivered),
/// or is noisy.
///
/// The paper assumes that ternary feedback; the strongest nearby results
/// study strictly weaker channels (Bender–Kuszmaul "Contention Resolution
/// Without Collision Detection"; Jiang–Zheng "Robust and Optimal Contention
/// Resolution without Collision Detection"). `FeedbackModel` makes the
/// feedback semantics a first-class axis: the channel still *resolves*
/// slots identically (resolve_slot is the physics), but what each observer
/// *perceives* is a model-dependent projection of the true outcome — see
/// DESIGN.md §6f and the per-kind comments below.

namespace crmd::sim {

/// What every listener perceives in a slot.
enum class SlotOutcome : std::uint8_t {
  kSilence,  ///< nobody transmitted
  kSuccess,  ///< exactly one transmission; content delivered to listeners
  kNoise,    ///< two or more transmissions collided, or the slot was jammed
};

/// Human-readable name of an outcome.
[[nodiscard]] const char* to_string(SlotOutcome outcome) noexcept;

/// One job's transmission attempt in a slot.
struct Transmission {
  JobId job = kNoJob;
  Message message;
};

/// Per-slot feedback delivered to every live job. `message` is engaged iff
/// `outcome == kSuccess`. Jobs cannot tell noise-from-collision apart from
/// noise-from-jamming — both are kNoise (the paper's adversary "creates
/// noise").
struct SlotFeedback {
  SlotOutcome outcome = SlotOutcome::kSilence;
  std::optional<Message> message;
};

/// Resolves a slot from the set of transmissions: 0 -> silence, 1 ->
/// success carrying that message, >=2 -> noise. Pure function of the
/// transmission multiset; jamming is applied afterwards by the simulator.
[[nodiscard]] SlotFeedback resolve_slot(
    std::span<const Transmission> transmissions);

/// The feedback semantics of the channel — how the true slot outcome is
/// projected into what each observer perceives.
enum class FeedbackKind : std::uint8_t {
  /// The paper's model (§1.1): every observer receives the exact ternary
  /// outcome. The default; pinned golden digests are recorded under it.
  kTernary,
  /// ACK-only channel: a transmitter learns whether its own transmission
  /// succeeded (the true outcome: its success, or noise when it failed);
  /// listeners hear nothing at all — every listened slot reads as silence
  /// and no payload is ever delivered to a non-transmitter. The simulator
  /// still credits true successes, so "delivered" keeps its meaning.
  kBinaryAck,
  /// No collision detection (Bender–Kuszmaul, Jiang–Zheng): empty and
  /// collided slots are indistinguishable for *every* observer — noisy
  /// slots read as silence even for the jobs that transmitted into them
  /// (while transmitting you cannot listen, so a failed transmitter gets
  /// no explicit failure cue). Successes are delivered normally.
  kCollisionAsSilence,
  /// Ternary feedback over an unreliable receiver chain: once per slot,
  /// with probability `eps`, the broadcast outcome every observer hears is
  /// degraded one step (success -> noise, noise -> silence, silence ->
  /// noise — the same never-fabricate mapping as the per-listener fault
  /// layer, see degrade_feedback). Deterministic from (seed, eps); the
  /// per-listener fault injector composes on top rather than being
  /// duplicated.
  kNoisy,
  /// Capture effect (SINR-style; Biswas–Chakraborty–Young,
  /// arXiv:2408.11275): when k >= 2 stations transmit simultaneously, one
  /// seeded-deterministically-drawn winner still gets through with
  /// probability p_k(alpha) = alpha^(k-1); otherwise the slot is noise as
  /// usual. k = 1 always succeeds. Listeners and the winner perceive the
  /// captured success; the k-1 losers perceive noise (their own signal was
  /// drowned out). alpha = 0 reproduces the ternary channel bit-identically
  /// — no RNG draw is ever taken, so trajectories and digests match the
  /// pinned goldens exactly. See DESIGN.md §6i.
  kCapture,
};

/// Human-readable name of a feedback kind ("ternary", "binary_ack", ...).
[[nodiscard]] const char* to_string(FeedbackKind kind) noexcept;

/// What a protocol may assume about the channel it runs on. Derived from
/// the FeedbackModel and handed to every protocol via JobInfo::caps, so
/// degraded-mode behavior is an *informed* choice (the radio hardware is
/// known at deployment time), never an in-band inference.
struct ChannelCaps {
  /// Noise is distinguishable from silence (collision detection). False
  /// for kBinaryAck and kCollisionAsSilence — the cue ALIGNED's
  /// decay/backon bookkeeping and PUNCTUAL's round grid rely on.
  bool collision_detection = true;
  /// Listeners receive successful broadcasts (payload delivery). False
  /// only for kBinaryAck.
  bool listener_success_visible = true;
  /// A transmitter gets an explicit own-failure cue (perceives noise when
  /// its transmission collided). False only for kCollisionAsSilence.
  bool transmitter_ack = true;
  /// Feedback is never flipped by the channel itself. False for kNoisy
  /// (per-listener fault injection is reported separately, via FaultPlan).
  bool reliable = true;
  /// Collisions can leak a captured success (kCapture with alpha > 0): a
  /// heard success no longer implies exactly one transmitter, so estimators
  /// that count collisions-vs-successes (ALIGNED's tracker, PUNCTUAL's
  /// round grid) see optimistically biased samples. Advertised so that
  /// choice is informed; false for every other kind and for alpha == 0,
  /// keeping capture:0 caps identical to ternary's.
  bool capture = false;

  friend bool operator==(const ChannelCaps&, const ChannelCaps&) = default;
};

/// A pluggable feedback model: the kind plus its parameters. Value type;
/// the simulator owns the per-slot application (see simulator.cpp).
struct FeedbackModel {
  FeedbackKind kind = FeedbackKind::kTernary;
  /// Per-slot flip probability; meaningful only for kNoisy.
  double eps = 0.0;
  /// Capture strength in [0, 1]; meaningful only for kCapture. A k-way
  /// collision leaks one winner with probability alpha^(k-1).
  double alpha = 0.0;

  [[nodiscard]] static FeedbackModel ternary() noexcept { return {}; }
  [[nodiscard]] static FeedbackModel binary_ack() noexcept {
    return {FeedbackKind::kBinaryAck, 0.0, 0.0};
  }
  [[nodiscard]] static FeedbackModel collision_as_silence() noexcept {
    return {FeedbackKind::kCollisionAsSilence, 0.0, 0.0};
  }
  [[nodiscard]] static FeedbackModel noisy(double eps) noexcept {
    return {FeedbackKind::kNoisy, eps, 0.0};
  }
  [[nodiscard]] static FeedbackModel capture(double alpha) noexcept {
    return {FeedbackKind::kCapture, 0.0, alpha};
  }

  /// The capability flags this model advertises to protocols.
  [[nodiscard]] ChannelCaps caps() const noexcept;

  /// Canonical spec string: "ternary", "noisy:0.05", "capture:0.5", ...
  [[nodiscard]] std::string spec() const;

  /// Throws std::invalid_argument when eps/alpha are outside [0, 1] or set
  /// for a kind they are not meaningful for.
  void validate() const;

  friend bool operator==(const FeedbackModel&, const FeedbackModel&) = default;
};

/// Parses "--feedback=" specs: "ternary" | "binary_ack" |
/// "collision_as_silence" | "noisy[:eps]" (eps defaults to 0.05) |
/// "capture[:alpha]" (alpha defaults to 0.5).
/// Returns std::nullopt on unknown names or malformed parameters.
[[nodiscard]] std::optional<FeedbackModel> parse_feedback_model(
    const std::string& spec);

/// CLI front half of parse_feedback_model, shared by every bench harness
/// and `crmd_cli`: on failure, prints the canonical one-line diagnostic
/// ("error: bad --feedback spec '...': <usage>") to `diag` and returns
/// std::nullopt — callers exit 2. Keeps the usage path byte-identical
/// across binaries instead of each one composing its own message.
[[nodiscard]] std::optional<FeedbackModel> parse_feedback_spec(
    const std::string& spec, std::ostream& diag);

/// Parses "--collision-cost=" values: an integer c >= 1, where a perceived
/// collision freezes the channel for the next c-1 slots (c = 1 is the
/// paper's channel, bit-identical to not passing the flag). On failure
/// prints "error: bad --collision-cost ..." to `diag` and returns
/// std::nullopt — callers exit 2.
[[nodiscard]] std::optional<int> parse_collision_cost(const std::string& spec,
                                                      std::ostream& diag);

/// All model spec names, in degradation-ladder order (for --help and
/// sweep harnesses). The "noisy" entry is the bare kind name.
[[nodiscard]] std::vector<std::string> feedback_model_names();

/// One-line usage hint for `--feedback=` error messages, shared by every
/// bench harness and `crmd_cli` so a malformed spec ("noisy:junk",
/// "ternary:0.5", eps outside [0,1], unknown model) always produces the
/// same diagnostic and a nonzero exit, never an uncaught exception.
[[nodiscard]] std::string feedback_usage();

/// One degradation step of the ternary outcome (success -> noise, noise ->
/// silence, silence -> noise). Never fabricates message content. Shared by
/// the kNoisy model and the fault layer's per-listener corruption so the
/// two compose instead of diverging.
[[nodiscard]] SlotFeedback degrade_feedback(const SlotFeedback& truth)
    noexcept;

}  // namespace crmd::sim
