#include "sim/arrivals.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace crmd::sim {

namespace {

/// Exponential gap with mean 1/rate, drawn from a uniform in [0, 1). The
/// 1 - u flip keeps the argument of log strictly positive.
double exp_gap(util::Rng& rng, double rate) {
  return -std::log(1.0 - rng.next_double()) / rate;
}

}  // namespace

// ---------------------------------------------------------------------------
// PoissonArrivals

PoissonArrivals::PoissonArrivals(double rate, Slot window)
    : rate_(rate), window_(window) {
  if (!(rate > 0.0) || window <= 0) {
    throw std::invalid_argument("PoissonArrivals: rate and window must be > 0");
  }
}

std::optional<workload::JobSpec> PoissonArrivals::next(util::Rng& rng) {
  clock_ += exp_gap(rng, rate_);
  const auto release = static_cast<Slot>(clock_);
  return workload::JobSpec{release, release + window_};
}

// ---------------------------------------------------------------------------
// MmppArrivals

MmppArrivals::MmppArrivals(double rate_lo, double rate_hi, Slot window,
                           Slot dwell)
    : rate_lo_(rate_lo), rate_hi_(rate_hi), window_(window), dwell_(dwell) {
  if (!(rate_lo > 0.0) || !(rate_hi > 0.0) || window <= 0 || dwell <= 0) {
    throw std::invalid_argument(
        "MmppArrivals: rates, window, and dwell must be > 0");
  }
}

std::optional<workload::JobSpec> MmppArrivals::next(util::Rng& rng) {
  // Advance through state boundaries until an arrival falls inside the
  // current state. Capping each candidate gap at the state boundary (and
  // redrawing in the next state) is the standard memoryless construction.
  for (;;) {
    if (clock_ >= state_end_) {
      high_ = !high_;
      state_end_ = clock_ + exp_gap(rng, 1.0 / static_cast<double>(dwell_));
    }
    const double rate = high_ ? rate_hi_ : rate_lo_;
    const double candidate = clock_ + exp_gap(rng, rate);
    if (candidate < state_end_) {
      clock_ = candidate;
      const auto release = static_cast<Slot>(clock_);
      return workload::JobSpec{release, release + window_};
    }
    clock_ = state_end_;  // no arrival before the state flips; move on
  }
}

// ---------------------------------------------------------------------------
// TraceArrivals

TraceArrivals::TraceArrivals(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("TraceArrivals: cannot open '" + path + "'");
  }
  std::string line;
  std::size_t lineno = 0;
  Slot prev_release = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream row(line);
    Slot release = 0;
    Slot deadline = 0;
    char comma = 0;
    if (!(row >> release >> comma >> deadline) || comma != ',') {
      throw std::runtime_error("TraceArrivals: " + path + ":" +
                               std::to_string(lineno) +
                               ": expected 'release,deadline'");
    }
    if (release < 0 || deadline <= release) {
      throw std::runtime_error("TraceArrivals: " + path + ":" +
                               std::to_string(lineno) +
                               ": need release >= 0 and deadline > release");
    }
    if (release < prev_release) {
      throw std::runtime_error("TraceArrivals: " + path + ":" +
                               std::to_string(lineno) +
                               ": releases must be nondecreasing");
    }
    prev_release = release;
    jobs_.push_back({release, deadline});
  }
}

std::optional<workload::JobSpec> TraceArrivals::next(util::Rng& /*rng*/) {
  if (next_ >= jobs_.size()) {
    return std::nullopt;
  }
  return jobs_[next_++];
}

// ---------------------------------------------------------------------------
// VectorArrivals

VectorArrivals::VectorArrivals(std::vector<workload::JobSpec> jobs)
    : jobs_(std::move(jobs)) {}

std::optional<workload::JobSpec> VectorArrivals::next(util::Rng& /*rng*/) {
  if (next_ >= jobs_.size()) {
    return std::nullopt;
  }
  return jobs_[next_++];
}

// ---------------------------------------------------------------------------
// ArrivalSpec

std::unique_ptr<ArrivalProcess> ArrivalSpec::make() const {
  switch (kind) {
    case Kind::kPoisson:
      return std::make_unique<PoissonArrivals>(rate, window);
    case Kind::kMmpp:
      return std::make_unique<MmppArrivals>(rate, rate_hi, window, dwell);
    case Kind::kTrace:
      return std::make_unique<TraceArrivals>(path);
  }
  return nullptr;  // unreachable
}

std::string ArrivalSpec::spec() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kPoisson:
      out << "poisson:" << rate << ':' << window;
      break;
    case Kind::kMmpp:
      out << "mmpp:" << rate << ':' << rate_hi << ':' << window << ':'
          << dwell;
      break;
    case Kind::kTrace:
      out << "trace:" << path;
      break;
  }
  return out.str();
}

std::string arrivals_usage() {
  return "expected poisson:RATE[:WINDOW] | mmpp:RLO:RHI[:WINDOW[:DWELL]] | "
         "trace:PATH";
}

namespace {

std::vector<std::string> split_colon(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const auto colon = s.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, colon - begin));
    begin = colon + 1;
  }
}

bool parse_rate(const std::string& s, double& out) {
  std::size_t used = 0;
  try {
    out = std::stod(s, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == s.size() && out > 0.0 && std::isfinite(out);
}

bool parse_slots(const std::string& s, Slot& out) {
  std::size_t used = 0;
  try {
    out = std::stoll(s, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == s.size() && out > 0;
}

}  // namespace

std::optional<ArrivalSpec> parse_arrivals_spec(const std::string& spec,
                                               std::ostream& diag) {
  const auto fail = [&]() -> std::optional<ArrivalSpec> {
    diag << "error: bad --arrivals spec '" << spec
         << "': " << arrivals_usage() << '\n';
    return std::nullopt;
  };

  const auto parts = split_colon(spec);
  ArrivalSpec out;
  if (parts[0] == "poisson") {
    out.kind = ArrivalSpec::Kind::kPoisson;
    if (parts.size() < 2 || parts.size() > 3 ||
        !parse_rate(parts[1], out.rate)) {
      return fail();
    }
    if (parts.size() == 3 && !parse_slots(parts[2], out.window)) {
      return fail();
    }
    return out;
  }
  if (parts[0] == "mmpp") {
    out.kind = ArrivalSpec::Kind::kMmpp;
    if (parts.size() < 3 || parts.size() > 5 ||
        !parse_rate(parts[1], out.rate) || !parse_rate(parts[2], out.rate_hi)) {
      return fail();
    }
    if (parts.size() >= 4 && !parse_slots(parts[3], out.window)) {
      return fail();
    }
    if (parts.size() == 5 && !parse_slots(parts[4], out.dwell)) {
      return fail();
    }
    return out;
  }
  if (parts[0] == "trace") {
    out.kind = ArrivalSpec::Kind::kTrace;
    // Rejoin: Windows-style paths may legitimately contain ':'.
    if (spec.size() <= 6) {
      return fail();
    }
    out.path = spec.substr(6);
    return out;
  }
  return fail();
}

workload::Instance materialize_arrivals(ArrivalProcess& process, Slot horizon,
                                        util::Rng& rng) {
  workload::Instance instance;
  for (;;) {
    auto job = process.next(rng);
    if (!job || job->release >= horizon) {
      break;
    }
    instance.jobs.push_back(*job);
  }
  instance.normalize();
  return instance;
}

}  // namespace crmd::sim
