#include "sim/faults.hpp"

#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace crmd::sim {

namespace {

void check_rate(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be in [0, 1], got " +
                                std::to_string(value));
  }
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kFeedbackCorrupt:
      return "feedback-corrupt";
    case FaultKind::kFeedbackLoss:
      return "feedback-loss";
    case FaultKind::kClockSkew:
      return "clock-skew";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
  }
  return "unknown";
}

bool FaultPlan::any() const noexcept {
  return feedback_corrupt_rate > 0.0 || feedback_loss_rate > 0.0 ||
         clock_skew_rate > 0.0 || crash_rate > 0.0;
}

void FaultPlan::validate() const {
  check_rate(feedback_corrupt_rate, "feedback_corrupt_rate");
  check_rate(feedback_loss_rate, "feedback_loss_rate");
  check_rate(clock_skew_rate, "clock_skew_rate");
  check_rate(crash_rate, "crash_rate");
  check_rate(crash_permanent_frac, "crash_permanent_frac");
  if (stall_min < 1 || stall_max < stall_min) {
    throw std::invalid_argument(
        "FaultPlan: require 1 <= stall_min <= stall_max, got [" +
        std::to_string(stall_min) + ", " + std::to_string(stall_max) + "]");
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan),
      master_(util::Rng(seed).child(0x4641554C54ULL /* "FAULT" */)) {
  plan_.validate();
}

FaultInjector::JobState& FaultInjector::state_for(JobId id) {
  if (id >= jobs_.size()) {
    jobs_.resize(id + 1);
  }
  JobState& js = jobs_[id];
  if (!js.initialized) {
    // Per-job child stream: stable regardless of how many other jobs exist
    // or in which order they are visited.
    js.rng = master_.child(static_cast<std::uint64_t>(id) + 1);
    js.initialized = true;
  }
  return js;
}

void FaultInjector::record(Slot slot, FaultKind kind, JobId job) {
  ++counts_[static_cast<std::size_t>(kind)];
  ++total_;
  if (record_events_) {
    events_.push_back(FaultEvent{slot, kind, job});
  }
  CRMD_TRACE(tracer_, obs::EventKind::kFault, slot, job,
             static_cast<std::int64_t>(kind), 0, 0.0, to_string(kind));
}

std::int64_t FaultInjector::count(FaultKind kind) const noexcept {
  return counts_[static_cast<std::size_t>(kind)];
}

FaultInjector::JobHealth FaultInjector::tick(JobId id, Slot slot) {
  JobState& js = state_for(id);
  if (js.dead) {
    return JobHealth::kDead;
  }
  if (js.dark_until != kNoSlot) {
    if (slot < js.dark_until) {
      return JobHealth::kDark;
    }
    js.dark_until = kNoSlot;
    record(slot, FaultKind::kRestart, id);
  }
  // Draw order is fixed (crash, then skew) so replays are exact.
  if (plan_.crash_rate > 0.0 && js.rng.bernoulli(plan_.crash_rate)) {
    record(slot, FaultKind::kCrash, id);
    if (js.rng.bernoulli(plan_.crash_permanent_frac)) {
      js.dead = true;
      return JobHealth::kDead;
    }
    js.dark_until = slot + js.rng.range(plan_.stall_min, plan_.stall_max);
    return JobHealth::kDark;
  }
  if (plan_.clock_skew_rate > 0.0 && js.rng.bernoulli(plan_.clock_skew_rate)) {
    ++js.skew;
    record(slot, FaultKind::kClockSkew, id);
  }
  return JobHealth::kHealthy;
}

Slot FaultInjector::skew(JobId id) const noexcept {
  return id < jobs_.size() ? jobs_[id].skew : 0;
}

SlotFeedback FaultInjector::perceive(JobId id, Slot slot,
                                     const SlotFeedback& truth) {
  JobState& js = state_for(id);
  // Draw order is fixed (loss, then corruption) so replays are exact.
  if (plan_.feedback_loss_rate > 0.0 &&
      js.rng.bernoulli(plan_.feedback_loss_rate)) {
    record(slot, FaultKind::kFeedbackLoss, id);
    return SlotFeedback{};  // heard nothing: silence, no message
  }
  if (plan_.feedback_corrupt_rate > 0.0 &&
      js.rng.bernoulli(plan_.feedback_corrupt_rate)) {
    record(slot, FaultKind::kFeedbackCorrupt, id);
    // Same one-step never-fabricate degradation the noisy feedback model
    // applies channel-wide (channel.hpp), so the two layers compose.
    return degrade_feedback(truth);
  }
  return truth;
}

}  // namespace crmd::sim
