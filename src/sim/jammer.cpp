#include "sim/jammer.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace crmd::sim {
namespace {

void check_prob(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("Jammer: ") + name +
                                " must be in [0, 1], got " +
                                std::to_string(value));
  }
}

class BlanketJammer final : public Jammer {
 public:
  explicit BlanketJammer(double p) : p_(p) {}
  bool wants_jam(Slot, SlotOutcome, const Message*) override { return true; }
  double p_jam() const noexcept override { return p_; }

 private:
  double p_;
};

class RandomJammer final : public Jammer {
 public:
  RandomJammer(double attempt_rate, double p, util::Rng rng)
      : attempt_rate_(attempt_rate), p_(p), rng_(rng) {}
  bool wants_jam(Slot, SlotOutcome, const Message*) override {
    return rng_.bernoulli(attempt_rate_);
  }
  double p_jam() const noexcept override { return p_; }

 private:
  double attempt_rate_;
  double p_;
  util::Rng rng_;
};

class ReactiveJammer final : public Jammer {
 public:
  explicit ReactiveJammer(double p) : p_(p) {}
  bool wants_jam(Slot, SlotOutcome outcome, const Message*) override {
    return outcome == SlotOutcome::kSuccess;
  }
  double p_jam() const noexcept override { return p_; }

 private:
  double p_;
};

class KindJammer final : public Jammer {
 public:
  KindJammer(MessageKind kind, double p) : kind_(kind), p_(p) {}
  bool wants_jam(Slot, SlotOutcome outcome, const Message* msg) override {
    return outcome == SlotOutcome::kSuccess && msg != nullptr &&
           msg->kind == kind_;
  }
  double p_jam() const noexcept override { return p_; }

 private:
  MessageKind kind_;
  double p_;
};

/// Budget wrapper around an arbitrary policy jammer.
class PolicyBudgetedJammer final : public BudgetedJammer {
 public:
  PolicyBudgetedJammer(std::unique_ptr<Jammer> policy, std::int64_t budget,
                       Slot window_length)
      : BudgetedJammer(budget, window_length), policy_(std::move(policy)) {
    if (policy_ == nullptr) {
      throw std::invalid_argument("make_budgeted_jammer: null policy");
    }
  }
  double p_jam() const noexcept override { return policy_->p_jam(); }

 protected:
  bool want(Slot slot, SlotOutcome outcome, const Message* msg) override {
    return policy_->wants_jam(slot, outcome, msg);
  }

 private:
  std::unique_ptr<Jammer> policy_;
};

/// Value-aware budget spender: the fuller the purse, the wider the target
/// set (see make_adaptive_jammer's doc comment for the thresholds).
class AdaptiveBudgetJammer final : public BudgetedJammer {
 public:
  AdaptiveBudgetJammer(std::int64_t budget, Slot window_length, double p)
      : BudgetedJammer(budget, window_length), p_(p) {}
  double p_jam() const noexcept override { return p_; }

 protected:
  bool want(Slot, SlotOutcome outcome, const Message* msg) override {
    if (outcome != SlotOutcome::kSuccess || msg == nullptr) {
      return false;  // collisions/silence are never worth energy
    }
    const std::int64_t left = remaining();
    switch (msg->kind) {
      case MessageKind::kData:
        return true;
      case MessageKind::kLeaderClaim:
      case MessageKind::kTimekeeper:
        return left * 4 > budget();
      case MessageKind::kControl:
        return left * 2 > budget();
      case MessageKind::kStart:
        return left * 4 > budget() * 3;
    }
    return false;
  }

 private:
  double p_;
};

}  // namespace

BudgetedJammer::BudgetedJammer(std::int64_t budget, Slot window_length)
    : budget_(budget), window_(window_length) {
  if (budget < 0) {
    throw std::invalid_argument("BudgetedJammer: budget must be >= 0, got " +
                                std::to_string(budget));
  }
  if (window_length < 1) {
    throw std::invalid_argument(
        "BudgetedJammer: window_length must be >= 1, got " +
        std::to_string(window_length));
  }
}

bool BudgetedJammer::wants_jam(Slot slot, SlotOutcome outcome,
                               const Message* message) {
  const std::int64_t window_index =
      slot >= 0 ? slot / window_ : (slot - (window_ - 1)) / window_;
  if (window_index != window_index_) {
    window_index_ = window_index;
    window_attempts_ = 0;
  }
  if (window_attempts_ >= budget_) {
    return false;  // purse empty: want() is not even consulted
  }
  if (!want(slot, outcome, message)) {
    return false;
  }
  ++window_attempts_;
  ++attempts_total_;
  max_window_attempts_ = std::max(max_window_attempts_, window_attempts_);
  return true;
}

std::unique_ptr<Jammer> make_blanket_jammer(double p_jam) {
  check_prob(p_jam, "p_jam");
  return std::make_unique<BlanketJammer>(p_jam);
}

std::unique_ptr<Jammer> make_random_jammer(double attempt_rate, double p_jam,
                                           util::Rng rng) {
  check_prob(attempt_rate, "attempt_rate");
  check_prob(p_jam, "p_jam");
  return std::make_unique<RandomJammer>(attempt_rate, p_jam, rng);
}

std::unique_ptr<Jammer> make_reactive_jammer(double p_jam) {
  check_prob(p_jam, "p_jam");
  return std::make_unique<ReactiveJammer>(p_jam);
}

std::unique_ptr<Jammer> make_control_jammer(double p_jam) {
  check_prob(p_jam, "p_jam");
  return std::make_unique<KindJammer>(MessageKind::kControl, p_jam);
}

std::unique_ptr<Jammer> make_data_jammer(double p_jam) {
  check_prob(p_jam, "p_jam");
  return std::make_unique<KindJammer>(MessageKind::kData, p_jam);
}

std::unique_ptr<Jammer> make_budgeted_jammer(std::unique_ptr<Jammer> policy,
                                             std::int64_t budget,
                                             Slot window_length) {
  return std::make_unique<PolicyBudgetedJammer>(std::move(policy), budget,
                                                window_length);
}

std::unique_ptr<Jammer> make_adaptive_jammer(std::int64_t budget,
                                             Slot window_length, double p_jam) {
  check_prob(p_jam, "p_jam");
  return std::make_unique<AdaptiveBudgetJammer>(budget, window_length, p_jam);
}

}  // namespace crmd::sim
