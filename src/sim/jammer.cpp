#include "sim/jammer.hpp"

namespace crmd::sim {
namespace {

class BlanketJammer final : public Jammer {
 public:
  explicit BlanketJammer(double p) : p_(p) {}
  bool wants_jam(Slot, SlotOutcome, const Message*) override { return true; }
  double p_jam() const noexcept override { return p_; }

 private:
  double p_;
};

class RandomJammer final : public Jammer {
 public:
  RandomJammer(double attempt_rate, double p, util::Rng rng)
      : attempt_rate_(attempt_rate), p_(p), rng_(rng) {}
  bool wants_jam(Slot, SlotOutcome, const Message*) override {
    return rng_.bernoulli(attempt_rate_);
  }
  double p_jam() const noexcept override { return p_; }

 private:
  double attempt_rate_;
  double p_;
  util::Rng rng_;
};

class ReactiveJammer final : public Jammer {
 public:
  explicit ReactiveJammer(double p) : p_(p) {}
  bool wants_jam(Slot, SlotOutcome outcome, const Message*) override {
    return outcome == SlotOutcome::kSuccess;
  }
  double p_jam() const noexcept override { return p_; }

 private:
  double p_;
};

class KindJammer final : public Jammer {
 public:
  KindJammer(MessageKind kind, double p) : kind_(kind), p_(p) {}
  bool wants_jam(Slot, SlotOutcome outcome, const Message* msg) override {
    return outcome == SlotOutcome::kSuccess && msg != nullptr &&
           msg->kind == kind_;
  }
  double p_jam() const noexcept override { return p_; }

 private:
  MessageKind kind_;
  double p_;
};

}  // namespace

std::unique_ptr<Jammer> make_blanket_jammer(double p_jam) {
  return std::make_unique<BlanketJammer>(p_jam);
}

std::unique_ptr<Jammer> make_random_jammer(double attempt_rate, double p_jam,
                                           util::Rng rng) {
  return std::make_unique<RandomJammer>(attempt_rate, p_jam, rng);
}

std::unique_ptr<Jammer> make_reactive_jammer(double p_jam) {
  return std::make_unique<ReactiveJammer>(p_jam);
}

std::unique_ptr<Jammer> make_control_jammer(double p_jam) {
  return std::make_unique<KindJammer>(MessageKind::kControl, p_jam);
}

std::unique_ptr<Jammer> make_data_jammer(double p_jam) {
  return std::make_unique<KindJammer>(MessageKind::kData, p_jam);
}

}  // namespace crmd::sim
