#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

/// \file message.hpp
/// Messages carried on the multiple-access channel.
///
/// The paper distinguishes *data messages* (the unit-length payload each job
/// must deliver inside its window) from *control messages* (everything the
/// protocols use to coordinate: estimation probes, round-start markers,
/// leader claims, and the leader's timekeeper broadcasts). A successful slot
/// delivers its message payload to every listening job.

namespace crmd::sim {

/// Discriminates the message types used by the protocols in the paper.
enum class MessageKind : std::uint8_t {
  /// The job's payload. Delivering one of these inside the window is the
  /// job's goal. PUNCTUAL leaders piggyback timekeeping fields on their
  /// final data message ("I am abdicating", §4).
  kData,
  /// Estimation probe used by ALIGNED's size-estimation protocol (§3).
  kControl,
  /// Round-start marker broadcast in the two sync slots of every PUNCTUAL
  /// round (§4). Start messages routinely collide; only the fact that the
  /// slot is busy matters.
  kStart,
  /// "I am the leader with deadline d" — sent in leader-election slots
  /// during SLINGSHOT's pullback stage (§4).
  kLeaderClaim,
  /// Leader heartbeat sent in every timekeeper slot: the global time (in
  /// rounds, leader frame) plus the leader's deadline (§4).
  kTimekeeper,
};

/// Human-readable name of a message kind (for logs and tables).
[[nodiscard]] const char* to_string(MessageKind kind) noexcept;

/// A message as it appears on the channel. Field use depends on `kind`;
/// unused fields are zero. Deadlines travel as *relative* offsets ("my
/// deadline is `deadline_in` slots from the slot you are hearing this in")
/// because the model has no global clock — two relative deadlines heard in
/// the same slot are directly comparable.
struct Message {
  MessageKind kind = MessageKind::kData;

  /// Harness bookkeeping only: which job transmitted. The model gives jobs
  /// no identifiers, and no protocol decision may depend on this field; the
  /// simulator uses it to credit data-message successes.
  JobId sender = kNoJob;

  /// kTimekeeper / abdicating kData: leader-frame global time, measured in
  /// rounds since the leader's frame origin.
  std::int64_t time = 0;

  /// kLeaderClaim / kTimekeeper / abdicating kData: slots from the current
  /// slot until the sender's deadline.
  std::int64_t deadline_in = 0;

  /// True on the leader's final message: the leadership seat is now empty.
  bool abdicating = false;
};

/// Builds a plain data message.
[[nodiscard]] Message make_data(JobId sender) noexcept;

/// Builds an estimation probe.
[[nodiscard]] Message make_control(JobId sender) noexcept;

/// Builds a round-start marker.
[[nodiscard]] Message make_start(JobId sender) noexcept;

/// Builds a leader claim with the sender's relative deadline.
[[nodiscard]] Message make_leader_claim(JobId sender,
                                        std::int64_t deadline_in) noexcept;

/// Builds a timekeeper heartbeat.
[[nodiscard]] Message make_timekeeper(JobId sender, std::int64_t time,
                                      std::int64_t deadline_in,
                                      bool abdicating = false) noexcept;

}  // namespace crmd::sim
