#include "sim/trace.hpp"

#include <fstream>
#include <ostream>

namespace crmd::sim {

void write_slot_trace_csv(std::ostream& out,
                          const std::vector<SlotRecord>& slots) {
  out << "slot,outcome,success_kind,contention,transmitters,live_jobs,"
         "jammed,faults\n";
  for (const auto& rec : slots) {
    out << rec.slot << ',' << to_string(rec.outcome) << ','
        << (rec.outcome == SlotOutcome::kSuccess
                ? to_string(rec.success_kind)
                : "")
        << ',' << rec.contention << ',' << rec.transmitters << ','
        << rec.live_jobs << ',' << (rec.jammed ? 1 : 0) << ',' << rec.faults
        << '\n';
  }
}

void write_job_results_csv(std::ostream& out,
                           const std::vector<JobResult>& jobs) {
  out << "id,release,deadline,window,success,success_slot,latency,"
         "transmissions,live_slots,dark_slots\n";
  for (const auto& job : jobs) {
    out << job.id << ',' << job.release << ',' << job.deadline << ','
        << job.window() << ',' << (job.success ? 1 : 0) << ','
        << (job.success ? job.success_slot : -1) << ',' << job.latency()
        << ',' << job.transmissions << ',' << job.live_slots << ','
        << job.dark_slots << '\n';
  }
}

void write_fault_events_csv(std::ostream& out,
                            const std::vector<FaultEvent>& events) {
  out << "slot,kind,job\n";
  for (const auto& ev : events) {
    out << ev.slot << ',' << to_string(ev.kind) << ',' << ev.job << '\n';
  }
}

bool save_slot_trace_csv(const std::string& path,
                         const std::vector<SlotRecord>& slots) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_slot_trace_csv(out, slots);
  return static_cast<bool>(out);
}

bool save_job_results_csv(const std::string& path,
                          const std::vector<JobResult>& jobs) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_job_results_csv(out, jobs);
  return static_cast<bool>(out);
}

bool save_fault_events_csv(const std::string& path,
                           const std::vector<FaultEvent>& events) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_fault_events_csv(out, events);
  return static_cast<bool>(out);
}

}  // namespace crmd::sim
