#pragma once

#include <memory>

#include "sim/channel.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

/// \file jammer.hpp
/// The paper's stochastic jamming adversary (§3, "Jamming").
///
/// The adversary inspects each slot — including the resolved outcome and
/// the content of a successful message — and decides whether to attempt to
/// jam it. An attempted jam succeeds independently with probability
/// `p_jam`, turning the slot's outcome into noise for every listener.
/// The paper analyzes ALIGNED under p_jam <= 1/2; the policies below cover
/// the adversaries its discussion suggests (including one that targets the
/// estimation protocol to skew the estimate).

namespace crmd::sim {

/// Adversary interface. One instance observes an entire simulation run, so
/// stateful adversaries are possible.
class Jammer {
 public:
  virtual ~Jammer() = default;

  /// Whether the adversary *attempts* to jam this slot. `slot` is the
  /// global slot index (the adversary is omniscient), `outcome`/`message`
  /// describe the slot before jamming (`message` is null unless the outcome
  /// is a success).
  [[nodiscard]] virtual bool wants_jam(Slot slot, SlotOutcome outcome,
                                       const Message* message) = 0;

  /// Success probability of an attempted jam.
  [[nodiscard]] virtual double p_jam() const noexcept = 0;
};

/// Jams every slot (attempts always). With p_jam <= 1/2 this is the
/// densest oblivious adversary the analysis tolerates.
[[nodiscard]] std::unique_ptr<Jammer> make_blanket_jammer(double p_jam);

/// Attempts to jam each slot independently with probability `attempt_rate`.
[[nodiscard]] std::unique_ptr<Jammer> make_random_jammer(double attempt_rate,
                                                         double p_jam,
                                                         util::Rng rng);

/// Reactive adversary: attempts to jam exactly the slots that would
/// otherwise contain a successful broadcast — the worst case for protocols
/// since silence/collisions are already useless.
[[nodiscard]] std::unique_ptr<Jammer> make_reactive_jammer(double p_jam);

/// Estimation-targeted adversary: jams only successful *control* messages,
/// attempting to skew ALIGNED's size estimate (the paper notes an adversary
/// "could conceivably skew the estimate n_l by jamming only some of the
/// phases during the estimation protocol").
[[nodiscard]] std::unique_ptr<Jammer> make_control_jammer(double p_jam);

/// Data-targeted adversary: jams only successful *data* messages, letting
/// estimation run clean but attacking the broadcast stage.
[[nodiscard]] std::unique_ptr<Jammer> make_data_jammer(double p_jam);

}  // namespace crmd::sim
