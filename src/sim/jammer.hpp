#pragma once

#include <cstdint>
#include <memory>

#include "sim/channel.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

/// \file jammer.hpp
/// The paper's stochastic jamming adversary (§3, "Jamming").
///
/// The adversary inspects each slot — including the resolved outcome and
/// the content of a successful message — and decides whether to attempt to
/// jam it. An attempted jam succeeds independently with probability
/// `p_jam`, turning the slot's outcome into noise for every listener.
/// The paper analyzes ALIGNED under p_jam <= 1/2; the policies below cover
/// the adversaries its discussion suggests (including one that targets the
/// estimation protocol to skew the estimate).

namespace crmd::sim {

/// Adversary interface. One instance observes an entire simulation run, so
/// stateful adversaries are possible.
class Jammer {
 public:
  virtual ~Jammer() = default;

  /// Whether the adversary *attempts* to jam this slot. `slot` is the
  /// global slot index (the adversary is omniscient), `outcome`/`message`
  /// describe the slot before jamming (`message` is null unless the outcome
  /// is a success).
  [[nodiscard]] virtual bool wants_jam(Slot slot, SlotOutcome outcome,
                                       const Message* message) = 0;

  /// Success probability of an attempted jam.
  [[nodiscard]] virtual double p_jam() const noexcept = 0;
};

/// Energy-constrained adversary: at most `budget` jam *attempts* per window
/// of `window_length` consecutive slots ([0,W), [W,2W), ...). Subclasses
/// implement want() — the policy deciding which slots are worth spending
/// budget on; the final wants_jam() enforces the budget, so no policy can
/// exceed it. Models the related-work resource-competitive adversaries
/// (Bender et al.): real jammers pay energy per jammed slot and cannot
/// blanket the channel forever.
class BudgetedJammer : public Jammer {
 public:
  /// `budget` >= 0 attempts per window; `window_length` >= 1 slots.
  /// Throws std::invalid_argument otherwise. A zero budget never attempts
  /// and (by wants_jam short-circuit) leaves the run bit-identical to an
  /// adversary-free one.
  BudgetedJammer(std::int64_t budget, Slot window_length);

  /// Final: charges the budget and delegates the decision to want().
  [[nodiscard]] bool wants_jam(Slot slot, SlotOutcome outcome,
                               const Message* message) final;

  [[nodiscard]] std::int64_t budget() const noexcept { return budget_; }
  [[nodiscard]] Slot window_length() const noexcept { return window_; }
  /// Attempts charged in the window containing the last observed slot.
  [[nodiscard]] std::int64_t window_attempts() const noexcept {
    return window_attempts_;
  }
  /// Budget left in the window containing the last observed slot.
  [[nodiscard]] std::int64_t remaining() const noexcept {
    return budget_ - window_attempts_;
  }
  /// Total attempts charged over the whole run.
  [[nodiscard]] std::int64_t attempts_total() const noexcept {
    return attempts_total_;
  }
  /// Largest number of attempts charged in any single window (tests assert
  /// this never exceeds budget()).
  [[nodiscard]] std::int64_t max_window_attempts() const noexcept {
    return max_window_attempts_;
  }

 protected:
  /// Policy hook: would the adversary jam this slot if budget allowed?
  /// Called only while budget remains in the current window.
  [[nodiscard]] virtual bool want(Slot slot, SlotOutcome outcome,
                                  const Message* message) = 0;

 private:
  std::int64_t budget_;
  Slot window_;
  std::int64_t window_index_ = -1;
  std::int64_t window_attempts_ = 0;
  std::int64_t attempts_total_ = 0;
  std::int64_t max_window_attempts_ = 0;
};

/// Jams every slot (attempts always). With p_jam <= 1/2 this is the
/// densest oblivious adversary the analysis tolerates.
[[nodiscard]] std::unique_ptr<Jammer> make_blanket_jammer(double p_jam);

/// Attempts to jam each slot independently with probability `attempt_rate`.
[[nodiscard]] std::unique_ptr<Jammer> make_random_jammer(double attempt_rate,
                                                         double p_jam,
                                                         util::Rng rng);

/// Reactive adversary: attempts to jam exactly the slots that would
/// otherwise contain a successful broadcast — the worst case for protocols
/// since silence/collisions are already useless.
[[nodiscard]] std::unique_ptr<Jammer> make_reactive_jammer(double p_jam);

/// Estimation-targeted adversary: jams only successful *control* messages,
/// attempting to skew ALIGNED's size estimate (the paper notes an adversary
/// "could conceivably skew the estimate n_l by jamming only some of the
/// phases during the estimation protocol").
[[nodiscard]] std::unique_ptr<Jammer> make_control_jammer(double p_jam);

/// Data-targeted adversary: jams only successful *data* messages, letting
/// estimation run clean but attacking the broadcast stage.
[[nodiscard]] std::unique_ptr<Jammer> make_data_jammer(double p_jam);

/// Wraps any jammer policy in a per-window budget: the wrapped policy's
/// wants_jam decides *desire*; the wrapper only charges (and forwards) it
/// while budget remains in the current window. p_jam is the policy's.
[[nodiscard]] std::unique_ptr<Jammer> make_budgeted_jammer(
    std::unique_ptr<Jammer> policy, std::int64_t budget, Slot window_length);

/// Budgeted *adaptive* adversary: spends its per-window budget by message
/// value, becoming pickier as the budget drains. Data successes are always
/// worth an attempt; timekeeper beacons when > 1/4 of the budget remains;
/// control (estimation) when > 1/2 remains; start announcements when > 3/4
/// remains. Collisions and silence are never worth energy.
[[nodiscard]] std::unique_ptr<Jammer> make_adaptive_jammer(
    std::int64_t budget, Slot window_length, double p_jam);

}  // namespace crmd::sim
