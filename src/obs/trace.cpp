#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace crmd::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kJobActivate:
      return "job-activate";
    case EventKind::kJobRetire:
      return "job-retire";
    case EventKind::kTransmit:
      return "transmit";
    case EventKind::kSlotResolved:
      return "slot-resolved";
    case EventKind::kSlotPerceived:
      return "slot-perceived";
    case EventKind::kSuccessCredit:
      return "success-credit";
    case EventKind::kFault:
      return "fault";
    case EventKind::kCaptureWin:
      return "capture-win";
    case EventKind::kCostSlot:
      return "cost-slot";
    case EventKind::kIdleSkip:
      return "idle-skip";
    case EventKind::kRadioSleep:
      return "radio-sleep";
    case EventKind::kRadioWake:
      return "radio-wake";
    case EventKind::kStage:
      return "stage";
    case EventKind::kRoundSync:
      return "round-sync";
    case EventKind::kBecomeLeader:
      return "become-leader";
    case EventKind::kWindowTrim:
      return "window-trim";
    case EventKind::kDesyncEvidence:
      return "desync-evidence";
    case EventKind::kEstimate:
      return "estimate";
    case EventKind::kClassActive:
      return "class-active";
    case EventKind::kSubphase:
      return "subphase";
    case EventKind::kSchedule:
      return "schedule";
  }
  return "unknown";
}

bool parse_event_kind(const char* name, EventKind& out) noexcept {
  if (name == nullptr) {
    return false;
  }
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (std::strcmp(name, to_string(kind)) == 0) {
      out = kind;
      return true;
    }
  }
  return false;
}

namespace {

/// Shortest %g rendering (JSON-safe: always finite inputs here).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void write_event_jsonl(std::ostream& out, const TraceEvent& ev) {
  out << "{\"seq\":" << ev.seq << ",\"slot\":" << ev.slot << ",\"kind\":\""
      << to_string(ev.kind) << '"';
  if (ev.job != kNoJob) {
    out << ",\"job\":" << ev.job;
  }
  out << ",\"a\":" << ev.a << ",\"b\":" << ev.b;
  if (ev.x != 0.0) {
    out << ",\"x\":" << fmt_double(ev.x);
  }
  if (ev.label != nullptr) {
    out << ",\"label\":\"" << ev.label << '"';
  }
  out << "}\n";
}

// ---- Tracer ---------------------------------------------------------------

Tracer::Tracer(std::size_t ring_capacity) : ring_(ring_capacity) {}

Tracer::~Tracer() { close(); }

void Tracer::add_sink(std::shared_ptr<EventSink> sink) {
  const std::lock_guard<std::mutex> lock(drain_mu_);
  sinks_.push_back(std::move(sink));
}

void Tracer::emit(EventKind kind, Slot slot, JobId job, std::int64_t a,
                  std::int64_t b, double x, const char* label) {
  if (closed_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent ev;
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ev.slot = slot;
  ev.kind = kind;
  ev.job = job;
  ev.a = a;
  ev.b = b;
  ev.x = x;
  ev.label = label;
  // Ring full: drain inline and retry. With concurrent emitters another
  // thread can refill the ring between our drain and retry, so loop.
  while (!ring_.try_push(ev)) {
    flush();
  }
}

void Tracer::flush() {
  const std::lock_guard<std::mutex> lock(drain_mu_);
  // Draining with zero sinks is the one place events are lost (the
  // "tracing on, no sink" discard path); count them so truncated traces
  // cannot masquerade as complete.
  if (sinks_.empty()) {
    std::uint64_t lost = 0;
    ring_.pop_all([&lost](const TraceEvent&) { ++lost; });
    dropped_.fetch_add(lost, std::memory_order_relaxed);
    return;
  }
  ring_.pop_all([this](const TraceEvent& ev) {
    for (const auto& sink : sinks_) {
      sink->on_event(ev);
    }
  });
}

void Tracer::close() {
  if (closed_.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  // Late emitters may still be pushing; after `closed_` flips they stop,
  // and this final drain publishes everything already in the ring.
  const std::lock_guard<std::mutex> lock(drain_mu_);
  if (sinks_.empty()) {
    std::uint64_t lost = 0;
    ring_.pop_all([&lost](const TraceEvent&) { ++lost; });
    dropped_.fetch_add(lost, std::memory_order_relaxed);
    return;
  }
  ring_.pop_all([this](const TraceEvent& ev) {
    for (const auto& sink : sinks_) {
      sink->on_event(ev);
    }
  });
  for (const auto& sink : sinks_) {
    sink->close();
  }
}

// ---- JSONL sinks ----------------------------------------------------------

void JsonlSink::on_event(const TraceEvent& ev) {
  write_event_jsonl(*out_, ev);
}

struct JsonlFileSink::Impl {
  std::ofstream out;
};

JsonlFileSink::JsonlFileSink(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path);
  if (!impl_->out) {
    throw std::runtime_error("JsonlFileSink: cannot open " + path);
  }
}

JsonlFileSink::~JsonlFileSink() = default;

void JsonlFileSink::on_event(const TraceEvent& ev) {
  write_event_jsonl(impl_->out, ev);
}

void JsonlFileSink::close() { impl_->out.flush(); }

// ---- Chrome trace sink ----------------------------------------------------

struct ChromeTraceSink::Impl {
  std::string path;  // empty: render-only (tests)
  std::vector<std::string> records;
  struct OpenSpan {
    const char* name;
    Slot since;
  };
  std::map<JobId, OpenSpan> open;  // per-tid current stage span
  std::map<JobId, bool> named;     // thread_name metadata emitted?
  Slot last_slot = 0;
  bool closed = false;

  void add(const std::string& rec) { records.push_back(rec); }

  void name_thread(JobId job) {
    if (job == kNoJob || named[job]) {
      return;
    }
    named[job] = true;
    std::ostringstream os;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << job
       << ",\"args\":{\"name\":\"job " << job << "\"}}";
    add(os.str());
  }

  void close_span(JobId job, Slot until) {
    const auto it = open.find(job);
    if (it == open.end()) {
      return;
    }
    const Slot dur = until > it->second.since ? until - it->second.since : 1;
    std::ostringstream os;
    os << "{\"name\":\"" << it->second.name
       << "\",\"ph\":\"X\",\"ts\":" << it->second.since << ",\"dur\":" << dur
       << ",\"pid\":0,\"tid\":" << job << "}";
    add(os.str());
    open.erase(it);
  }
};

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  if (!path.empty()) {
    // Fail fast on an unwritable path rather than at close().
    std::ofstream probe(path);
    if (!probe) {
      throw std::runtime_error("ChromeTraceSink: cannot open " + path);
    }
  }
}

ChromeTraceSink::~ChromeTraceSink() {
  // Deliberately no implicit write here: close() is the contract (the
  // Tracer calls it); destruction without close discards the buffer.
}

void ChromeTraceSink::on_event(const TraceEvent& ev) {
  Impl& s = *impl_;
  s.last_slot = ev.slot;
  switch (ev.kind) {
    case EventKind::kStage: {
      s.name_thread(ev.job);
      s.close_span(ev.job, ev.slot);
      s.open[ev.job] =
          Impl::OpenSpan{ev.label != nullptr ? ev.label : "stage", ev.slot};
      return;
    }
    case EventKind::kJobRetire: {
      s.close_span(ev.job, ev.slot);
      return;  // retirement is the span edge; no extra instant
    }
    case EventKind::kSlotResolved: {
      std::ostringstream os;
      os << "{\"name\":\"contention\",\"ph\":\"C\",\"ts\":" << ev.slot
         << ",\"pid\":0,\"args\":{\"C\":" << fmt_double(ev.x)
         << ",\"tx\":" << ev.b << "}}";
      s.add(os.str());
      return;
    }
    case EventKind::kTransmit:
    case EventKind::kSlotPerceived:
      return;  // too dense for a span view; JSONL keeps them
    default: {
      s.name_thread(ev.job);
      std::ostringstream os;
      os << "{\"name\":\"" << (ev.label != nullptr ? ev.label : to_string(ev.kind))
         << "\",\"ph\":\"i\",\"ts\":" << ev.slot << ",\"pid\":0,\"tid\":"
         << (ev.job == kNoJob ? 0 : ev.job) << ",\"s\":\"t\",\"args\":{\"a\":"
         << ev.a << ",\"b\":" << ev.b << "}}";
      s.add(os.str());
      return;
    }
  }
}

void ChromeTraceSink::render(std::ostream& out) {
  Impl& s = *impl_;
  // Close dangling spans at the last seen slot (+1 so they are visible).
  while (!s.open.empty()) {
    impl_->close_span(s.open.begin()->first, s.last_slot + 1);
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"crmd\"}}";
  for (const auto& rec : s.records) {
    out << ",\n" << rec;
  }
  out << "\n]}\n";
}

void ChromeTraceSink::close() {
  Impl& s = *impl_;
  if (s.closed) {
    return;
  }
  s.closed = true;
  if (s.path.empty()) {
    return;
  }
  std::ofstream out(s.path);
  if (out) {
    render(out);
  }
}

}  // namespace crmd::obs
