#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.hpp"
#include "obs/taxonomy.hpp"

/// \file trace_analysis.hpp (obs)
/// Offline analysis of JSONL event streams (the JsonlFileSink /
/// --trace-jsonl format): parsing back into events, a per-kind summary, a
/// coverage audit against the declared taxonomy (taxonomy.hpp), and a
/// first-divergence diff of two streams. This is the library behind the
/// `crmd_trace` binary (tools/crmd_trace.cpp); it lives in src/obs so
/// unit tests can exercise the logic without shelling out.

namespace crmd::obs {

/// One event parsed back from JSONL. Mirrors TraceEvent but owns its
/// label (the JSONL line is the only storage backing it).
struct ParsedEvent {
  std::uint64_t seq = 0;
  Slot slot = 0;
  EventKind kind = EventKind::kSlotResolved;
  JobId job = kNoJob;
  std::int64_t a = 0;
  std::int64_t b = 0;
  double x = 0.0;
  std::string label;  ///< empty when the line had no label

  [[nodiscard]] bool operator==(const ParsedEvent& other) const = default;
};

/// Parses one JSONL line as written by write_event_jsonl. Keys may appear
/// in any order; absent optional keys take the writer's defaults (job =
/// kNoJob, x = 0, label empty). Returns std::nullopt and fills `error`
/// (when non-null) on malformed input or an unknown kind.
[[nodiscard]] std::optional<ParsedEvent> parse_event_jsonl(
    std::string_view line, std::string* error = nullptr);

/// Reads a whole JSONL stream; blank lines are skipped. Throws
/// std::runtime_error naming the first malformed line.
[[nodiscard]] std::vector<ParsedEvent> load_trace_jsonl(std::istream& in);

/// load_trace_jsonl from a path; throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] std::vector<ParsedEvent> load_trace_file(
    const std::string& path);

/// Per-stream roll-up (the `crmd_trace summary` payload).
struct TraceSummary {
  std::uint64_t events = 0;
  Slot first_slot = 0;
  Slot last_slot = 0;
  std::int64_t jobs_seen = 0;       ///< distinct job ids
  std::int64_t kind_counts[kEventKindCount] = {};
  std::int64_t activations = 0;
  std::int64_t success_retires = 0;
  std::int64_t expiries = 0;
  std::int64_t attempts = 0;        ///< kTransmit events
  std::int64_t resolved_slots = 0;
  std::int64_t true_success = 0;    ///< kSlotResolved successes
  std::int64_t seen_success = 0;    ///< kSlotPerceived successes
  std::int64_t faults = 0;
  double contention_sum = 0.0;      ///< over kSlotResolved
};

[[nodiscard]] TraceSummary summarize(const std::vector<ParsedEvent>& events);

/// Renders the summary as aligned human-readable text.
void write_summary(std::ostream& out, const TraceSummary& summary);

/// One observed stage transition (kStage payload) with its event count.
struct TransitionCount {
  std::int64_t from = 0;
  std::int64_t to = 0;
  std::int64_t count = 0;
};

/// Coverage audit result: observed kinds/stages/transitions against the
/// declared taxonomy of one protocol family (or channel-level only when
/// the family is unknown).
struct CoverageReport {
  const ProtocolTaxonomy* taxonomy = nullptr;  ///< null = channel-only
  std::vector<EventKind> expected;        ///< full expected-kind set
  std::vector<EventKind> hit_kinds;       ///< expected kinds observed
  std::vector<EventKind> missing_kinds;   ///< expected kinds never fired
  std::vector<EventKind> extra_kinds;     ///< observed but not expected
  std::vector<const char*> hit_stages;    ///< declared stages observed
  std::vector<const char*> missing_stages;
  std::vector<TransitionCount> transitions;        ///< observed, sorted
  std::vector<StageTransition> missing_transitions;  ///< declared, unhit
  std::vector<TransitionCount> undeclared_transitions;

  /// Fraction of expected kinds observed (1.0 = full coverage).
  [[nodiscard]] double kind_coverage() const noexcept;
  /// True when every expected kind, declared stage, and declared
  /// transition was observed.
  [[nodiscard]] bool complete() const noexcept;
};

/// Audits `events` against the family taxonomy (null = channel base set
/// only). `required` adds kinds that must appear regardless of family —
/// the hook for asserting that a scenario exercised, say, kFault.
[[nodiscard]] CoverageReport audit_coverage(
    const std::vector<ParsedEvent>& events, const ProtocolTaxonomy* taxonomy,
    const std::vector<EventKind>& required = {});

/// Renders the coverage report as human-readable text.
void write_coverage(std::ostream& out, const CoverageReport& report);

/// Where two streams first part ways.
struct Divergence {
  bool diverged = false;       ///< false = streams identical
  std::uint64_t index = 0;     ///< event index of the first difference
  std::optional<ParsedEvent> a;  ///< event at `index` (absent: stream ended)
  std::optional<ParsedEvent> b;
};

/// Compares two streams event by event (all fields, seq included) and
/// reports the first difference; a pure prefix relation diverges at the
/// shorter stream's end.
[[nodiscard]] Divergence first_divergence(const std::vector<ParsedEvent>& a,
                                          const std::vector<ParsedEvent>& b);

}  // namespace crmd::obs
