#include "obs/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace crmd::obs {

namespace {

// SlotOutcome values as emitted in kSlotResolved/kSlotPerceived payloads.
// obs sits below sim, so the enum cannot be named here; the mapping is
// drift-checked against sim::SlotOutcome in test_timeline.cpp.
constexpr std::int64_t kOutcomeSilence = 0;
constexpr std::int64_t kOutcomeSuccess = 1;
constexpr std::int64_t kOutcomeNoise = 2;

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Round-trippable shortest double rendering (JSON-safe: finite inputs).
void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

void TimelineBucket::merge(const TimelineBucket& other) noexcept {
  resolved_slots += other.resolved_slots;
  live_job_slots += other.live_job_slots;
  attempts += other.attempts;
  contention_sum += other.contention_sum;
  true_silence += other.true_silence;
  true_success += other.true_success;
  true_noise += other.true_noise;
  seen_silence += other.seen_silence;
  seen_success += other.seen_success;
  seen_noise += other.seen_noise;
  activations += other.activations;
  retires += other.retires;
  expiries += other.expiries;
  faults += other.faults;
  capture_wins += other.capture_wins;
  cost_slots += other.cost_slots;
  awake_job_slots += other.awake_job_slots;
  radio_sleeps += other.radio_sleeps;
  radio_wakes += other.radio_wakes;
  for (std::size_t i = 0; i < kProbLevels; ++i) {
    prob_level[i] += other.prob_level[i];
  }
}

bool TimelineBucket::empty() const noexcept {
  if (resolved_slots != 0 || live_job_slots != 0 || attempts != 0 ||
      contention_sum != 0.0 || true_silence != 0 || true_success != 0 ||
      true_noise != 0 || seen_silence != 0 || seen_success != 0 ||
      seen_noise != 0 || activations != 0 || retires != 0 || expiries != 0 ||
      faults != 0 || capture_wins != 0 || cost_slots != 0 ||
      awake_job_slots != 0 || radio_sleeps != 0 || radio_wakes != 0) {
    return false;
  }
  for (const std::int64_t n : prob_level) {
    if (n != 0) {
      return false;
    }
  }
  return true;
}

Timeline::Timeline(std::size_t bucket_count)
    : buckets_(round_up_pow2(bucket_count)) {}

void Timeline::rescale() {
  // Double the width: bucket i absorbs old buckets 2i and 2i+1; the upper
  // half of the array becomes untouched windows of the new width.
  const std::size_t n = buckets_.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    TimelineBucket merged = buckets_[2 * i];
    merged.merge(buckets_[2 * i + 1]);
    buckets_[i] = merged;
  }
  for (std::size_t i = n / 2; i < n; ++i) {
    buckets_[i] = TimelineBucket{};
  }
  ++width_log2_;
}

void Timeline::on_event(const TraceEvent& ev) {
  ++events_seen_;
  if (ev.slot > max_slot_) {
    max_slot_ = ev.slot;
  }
  assert(ev.slot >= 0);
  if (ev.kind == EventKind::kIdleSkip) {
    // One event stands in for a run of `a` provably silent slots the
    // fast-forward engine never simulated individually. Spread the run
    // across every bucket it overlaps so the aggregate is exactly what
    // per-slot kSlotResolved + kSlotPerceived events would have produced:
    // each covered slot is one resolved silent slot, seen as silence, with
    // `b` live jobs and constant contention `x`.
    const std::int64_t span = ev.a;
    if (span <= 0) {
      return;
    }
    const std::int64_t last = ev.slot + span - 1;
    if (last > max_slot_) {
      max_slot_ = last;
    }
    fast_forward_slots_ += span;
    if (ev.b > live_peak_) {
      live_peak_ = ev.b;
    }
    auto last_idx = static_cast<std::uint64_t>(last) >>
                    static_cast<unsigned>(width_log2_);
    while (last_idx >= buckets_.size()) {
      rescale();
      last_idx = static_cast<std::uint64_t>(last) >>
                 static_cast<unsigned>(width_log2_);
    }
    std::int64_t lo = ev.slot;
    while (lo <= last) {
      const auto i = static_cast<std::size_t>(
          static_cast<std::uint64_t>(lo) >>
          static_cast<unsigned>(width_log2_));
      const std::int64_t bucket_hi =
          (static_cast<std::int64_t>(i) + 1) * bucket_width() - 1;
      const std::int64_t overlap = std::min(last, bucket_hi) - lo + 1;
      TimelineBucket& fb = buckets_[i];
      fb.resolved_slots += overlap;
      fb.true_silence += overlap;
      fb.seen_silence += overlap;
      fb.live_job_slots += ev.b * overlap;
      fb.contention_sum += ev.x * static_cast<double>(overlap);
      lo = bucket_hi + 1;
    }
    return;
  }
  auto idx = static_cast<std::uint64_t>(ev.slot) >>
             static_cast<unsigned>(width_log2_);
  while (idx >= buckets_.size()) {
    rescale();
    idx = static_cast<std::uint64_t>(ev.slot) >>
          static_cast<unsigned>(width_log2_);
  }
  TimelineBucket& b = buckets_[idx];

  switch (ev.kind) {
    case EventKind::kJobActivate:
      ++b.activations;
      return;
    case EventKind::kJobRetire:
      if (ev.a != 0) {
        ++b.retires;
      } else {
        ++b.expiries;
      }
      return;
    case EventKind::kTransmit: {
      ++b.attempts;
      // Backoff depth from the declared probability: level 0 is p > 1/2,
      // deeper levels halve; p <= 0 clamps to the deepest level.
      std::size_t level = TimelineBucket::kProbLevels - 1;
      if (ev.x > 0.0) {
        const double depth = -std::log2(ev.x);
        if (depth <= 0.0) {
          level = 0;
        } else if (depth < static_cast<double>(TimelineBucket::kProbLevels)) {
          level = static_cast<std::size_t>(depth);
        }
      }
      ++b.prob_level[level];
      return;
    }
    case EventKind::kSlotResolved:
      ++b.resolved_slots;
      b.contention_sum += ev.x;
      if (ev.a == kOutcomeSilence) {
        ++b.true_silence;
      } else if (ev.a == kOutcomeSuccess) {
        ++b.true_success;
      } else if (ev.a == kOutcomeNoise) {
        ++b.true_noise;
      }
      return;
    case EventKind::kSlotPerceived:
      b.live_job_slots += ev.b;
      b.awake_job_slots += static_cast<std::int64_t>(ev.x);
      if (ev.b > live_peak_) {
        live_peak_ = ev.b;
      }
      if (ev.a == kOutcomeSilence) {
        ++b.seen_silence;
      } else if (ev.a == kOutcomeSuccess) {
        ++b.seen_success;
      } else if (ev.a == kOutcomeNoise) {
        ++b.seen_noise;
      }
      return;
    case EventKind::kFault:
      ++b.faults;
      return;
    case EventKind::kCaptureWin:
      ++b.capture_wins;
      return;
    case EventKind::kCostSlot:
      ++b.cost_slots;
      return;
    case EventKind::kRadioSleep:
      ++b.radio_sleeps;
      return;
    case EventKind::kRadioWake:
      ++b.radio_wakes;
      return;
    default:
      return;  // protocol-level kinds are not aggregated (JSONL keeps them)
  }
}

void Timeline::write_json(std::ostream& out) const {
  out << "{\"meta\": {\"schema\": \"crmd-timeline-v1\", \"bucket_width\": "
      << bucket_width() << ", \"bucket_count\": " << buckets_.size()
      << ", \"max_slot\": " << max_slot_ << ", \"events\": " << events_seen_
      << ", \"fast_forward_slots\": " << fast_forward_slots_
      << ", \"live_peak\": " << live_peak_ << ", \"shards\": " << shards_
      << "},\n\"buckets\": [";
  const std::size_t used =
      max_slot_ < 0 ? 0
                    : (static_cast<std::uint64_t>(max_slot_) >>
                       static_cast<unsigned>(width_log2_)) +
                          1;
  for (std::size_t i = 0; i < used; ++i) {
    const TimelineBucket& b = buckets_[i];
    const std::int64_t lo = static_cast<std::int64_t>(i) * bucket_width();
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"slot_lo\": " << lo
        << ", \"slot_hi\": " << lo + bucket_width() - 1
        << ", \"resolved_slots\": " << b.resolved_slots
        << ", \"live_job_slots\": " << b.live_job_slots
        << ", \"attempts\": " << b.attempts << ", \"contention_sum\": ";
    write_double(out, b.contention_sum);
    out << ", \"true_silence\": " << b.true_silence
        << ", \"true_success\": " << b.true_success
        << ", \"true_noise\": " << b.true_noise
        << ", \"seen_silence\": " << b.seen_silence
        << ", \"seen_success\": " << b.seen_success
        << ", \"seen_noise\": " << b.seen_noise
        << ", \"activations\": " << b.activations
        << ", \"retires\": " << b.retires << ", \"expiries\": " << b.expiries
        << ", \"faults\": " << b.faults
        << ", \"capture_wins\": " << b.capture_wins
        << ", \"cost_slots\": " << b.cost_slots
        << ", \"awake_job_slots\": " << b.awake_job_slots
        << ", \"radio_sleeps\": " << b.radio_sleeps
        << ", \"radio_wakes\": " << b.radio_wakes << ", \"prob_level\": [";
    for (std::size_t lvl = 0; lvl < TimelineBucket::kProbLevels; ++lvl) {
      out << (lvl == 0 ? "" : ", ") << b.prob_level[lvl];
    }
    out << "]}";
  }
  out << "\n]}\n";
}

bool Timeline::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace crmd::obs
