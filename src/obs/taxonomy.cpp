#include "obs/taxonomy.hpp"

namespace crmd::obs {

static_assert(kEventKindCount == 21,
              "new EventKind added: extend the taxonomy tables and keep "
              "kSchedule last (or update kEventKindCount)");

const std::vector<EventKind>& channel_taxonomy() {
  static const std::vector<EventKind> kinds = {
      EventKind::kJobActivate,  EventKind::kJobRetire,
      EventKind::kTransmit,     EventKind::kSlotResolved,
      EventKind::kSlotPerceived, EventKind::kSuccessCredit,
  };
  return kinds;
}

const std::vector<EventKind>& conditional_channel_taxonomy() {
  static const std::vector<EventKind> kinds = {
      EventKind::kFault,       // only fired by a configured FaultPlan
      EventKind::kCaptureWin,  // only under --feedback=capture:alpha, a > 0
      EventKind::kCostSlot,    // only under --collision-cost c > 1
      EventKind::kIdleSkip,    // only under --fast-forward
      EventKind::kRadioSleep,  // only when a protocol declares sleep (§6k)
      EventKind::kRadioWake,   // only after a kRadioSleep
  };
  return kinds;
}

namespace {

// Stage indices mirror core::PunctualProtocol::Stage; see taxonomy.hpp for
// the duplication rationale (drift-checked in test_trace_analysis.cpp).
// Transitions are the edges the state machine can legally take: activation
// self-edges, the sync/probe/slingshot walk of §4, the desync fallback
// (any pre-terminal stage can drop to desperate), and terminal entries.
ProtocolTaxonomy make_punctual() {
  ProtocolTaxonomy t;
  t.family = "punctual";
  t.expected_kinds = {EventKind::kStage, EventKind::kRoundSync,
                      EventKind::kBecomeLeader, EventKind::kWindowTrim};
  t.stages = {"sync-listen", "sync-announce", "probe",     "slingshot",
              "recheck",     "follow-wait",   "follow-run", "lead",
              "lead-handoff", "anarchist",    "desperate",  "succeeded",
              "gave-up"};
  t.transitions = {
      {0, 0},                  // activation (stage field starts at 0)
      {0, 1},  {0, 2},         // idle announce / sync pair heard
      {1, 2},                  // announce done -> probe
      {2, 3},  {2, 5},         // probe -> slingshot / follow a leader
      {3, 4},  {3, 5}, {3, 7}, // pullback out / follow / claim won
      {4, 5},  {4, 7}, {4, 9}, // recheck -> follow / lead / anarchy
      {5, 6},  {5, 9},         // core built / no core left
      {6, 5},  {6, 9}, {6, 11}, {6, 12},  // restart / truncation / done
      {7, 8},  {7, 11}, {7, 12},          // deposed / success / jammed out
      {8, 11}, {8, 12},                   // handoff delivered / lost
      {9, 11},                            // anarchy success
      {10, 11},                           // desperate success
      // Desync fallback: evidence of an untrustworthy grid drops any
      // pre-terminal stage to desperate (note_desync_evidence).
      {0, 10}, {1, 10}, {2, 10}, {3, 10}, {4, 10},
      {5, 10}, {6, 10}, {7, 10}, {8, 10}, {9, 10},
  };
  return t;
}

ProtocolTaxonomy make_aligned() {
  ProtocolTaxonomy t;
  t.family = "aligned";
  t.expected_kinds = {EventKind::kStage, EventKind::kEstimate,
                      EventKind::kClassActive, EventKind::kSubphase};
  t.stages = {"running", "succeeded", "gave-up"};
  // No activation event: "running" is the constructed state, observed only
  // as the from-side of a terminal transition.
  t.transitions = {{0, 1}, {0, 2}};
  return t;
}

ProtocolTaxonomy make_nocd() {
  ProtocolTaxonomy t;
  t.family = "nocd";
  t.expected_kinds = {EventKind::kEstimate};
  return t;
}

ProtocolTaxonomy make_uniform() {
  ProtocolTaxonomy t;
  t.family = "uniform";
  t.expected_kinds = {EventKind::kSchedule};
  return t;
}

}  // namespace

const std::vector<ProtocolTaxonomy>& protocol_taxonomies() {
  static const std::vector<ProtocolTaxonomy> families = {
      make_punctual(), make_aligned(), make_nocd(), make_uniform()};
  return families;
}

const ProtocolTaxonomy* taxonomy_for_protocol(
    std::string_view protocol_name) noexcept {
  const ProtocolTaxonomy* best = nullptr;
  std::size_t best_len = 0;
  for (const ProtocolTaxonomy& t : protocol_taxonomies()) {
    const std::string_view family = t.family;
    if (protocol_name.substr(0, family.size()) == family &&
        family.size() > best_len) {
      best = &t;
      best_len = family.size();
    }
  }
  return best;
}

}  // namespace crmd::obs
