#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace crmd::obs {

// ---- LogHistogram ---------------------------------------------------------

namespace {

std::size_t bucket_for(std::int64_t v) noexcept {
  if (v < 1) {
    return 0;
  }
  // bucket i >= 1 holds [2^(i-1), 2^i): width = bit position of the MSB.
  return static_cast<std::size_t>(
             std::bit_width(static_cast<std::uint64_t>(v)));
}

}  // namespace

void LogHistogram::add(std::int64_t v) noexcept {
  std::size_t i = bucket_for(v);
  if (i >= kBuckets) {
    i = kBuckets - 1;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of fetch_add: atomic<double>::fetch_add needs
  // hardware support libstdc++ only guarantees from C++20 onward.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + static_cast<double>(v),
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t LogHistogram::bucket_count(std::size_t i) const noexcept {
  return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

std::int64_t LogHistogram::bucket_lo(std::size_t i) const noexcept {
  if (i == 0) {
    return 0;
  }
  return std::int64_t{1} << (i - 1);
}

std::int64_t LogHistogram::bucket_hi(std::size_t i) const noexcept {
  if (i == 0) {
    return 1;
  }
  if (i >= 63) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return std::int64_t{1} << i;
}

std::int64_t LogHistogram::percentile(double q) const noexcept {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target && cum > 0) {
      return bucket_hi(i);
    }
  }
  return bucket_hi(kBuckets - 1);
}

// ---- Registry -------------------------------------------------------------

Registry::Entry& Registry::entry(const std::string& name, Kind kind) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with another type");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  return entry(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return entry(name, Kind::kGauge).gauge;
}

LogHistogram& Registry::histogram(const std::string& name) {
  return entry(name, Kind::kHistogram).histogram;
}

bool Registry::has(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) != 0;
}

std::int64_t Registry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto& e = entries_.at(name);
  if (e.kind != Kind::kCounter) {
    throw std::out_of_range("metric '" + name + "' is not a counter");
  }
  return e.counter.value();
}

double Registry::gauge_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto& e = entries_.at(name);
  if (e.kind != Kind::kGauge) {
    throw std::out_of_range("metric '" + name + "' is not a gauge");
  }
  return e.gauge.value();
}

std::size_t Registry::size() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

util::Table Registry::to_table() const {
  const std::lock_guard<std::mutex> lock(mu_);
  util::Table table({"metric", "type", "value"});
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        table.add_row({name, "counter", std::to_string(e.counter.value())});
        break;
      case Kind::kGauge:
        table.add_row({name, "gauge", num(e.gauge.value())});
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = e.histogram;
        table.add_row({name, "histogram",
                       "count=" + std::to_string(h.count()) +
                           " mean=" + num(h.mean()) +
                           " p50<=" + std::to_string(h.percentile(0.5)) +
                           " p99<=" + std::to_string(h.percentile(0.99))});
        break;
      }
    }
  }
  return table;
}

void Registry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  out << "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    out << (first ? "" : ", ") << '"' << name << "\": ";
    first = false;
    switch (e.kind) {
      case Kind::kCounter:
        out << e.counter.value();
        break;
      case Kind::kGauge:
        out << num(e.gauge.value());
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = e.histogram;
        out << "{\"count\": " << h.count() << ", \"mean\": " << num(h.mean())
            << ", \"p50\": " << h.percentile(0.5)
            << ", \"p99\": " << h.percentile(0.99) << "}";
        break;
      }
    }
  }
  out << "}\n";
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace crmd::obs
