#pragma once

#include <atomic>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/ring.hpp"

/// \file trace.hpp (obs)
/// The event tracing session: protocols and the simulator emit TraceEvents
/// through a Tracer, which buffers them in a lock-free ring and drains to
/// any number of sinks (JSONL, Chrome trace-event JSON, the watchdog,
/// in-memory collectors).
///
/// Cost model — the property the whole design hangs on:
///   * tracing OFF: the emission site is `CRMD_TRACE(ptr, ...)` where
///     `ptr == nullptr`; the macro compiles to one pointer test. No ring,
///     no sinks, no RNG perturbation — bit-identical runs (tested by
///     test_obs.cpp DeterminismTracingOnOff, measured by bench_micro).
///   * tracing ON, no sink: one ring push per event; full rings discard
///     oldest-first in bulk (pop_all with a no-op consumer).
///   * tracing ON with sinks: ring pushes plus a bulk drain whenever the
///     ring fills (and at flush/close).
///
/// Emission must never change protocol behavior: emitters may not draw
/// from protocol RNG streams and sinks only observe.
///
/// Thread safety: emit() may be called from any number of threads (seq
/// stamping is atomic, the ring is multi-producer); draining to sinks
/// (flush/close, and the inline drain when the ring fills) is serialized
/// by a mutex, so sinks themselves never see concurrent on_event calls.
/// With concurrent emitters the *interleaving* of events across threads
/// is nondeterministic — the parallel replication engine therefore
/// buffers per-replication events and replays them in replication order
/// (see analysis/runner.cpp), which keeps sink streams bit-identical to
/// a serial run.

namespace crmd::obs {

/// Consumer of a drained event stream. Sinks see events in emission
/// (seq) order.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// One event, in seq order.
  virtual void on_event(const TraceEvent& event) = 0;

  /// Stream end: write footers, flush files. Idempotent.
  virtual void close() {}
};

/// A tracing session. Create one per run (or per process), hand
/// `Tracer*` to `sim::SimConfig::tracer`, and close() (or destroy) when
/// done. Null `Tracer*` everywhere means tracing is off.
class Tracer {
 public:
  /// `ring_capacity` is rounded up to a power of two.
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers a sink. Events emitted before registration that are still
  /// in the ring will reach the sink; already-drained events will not.
  void add_sink(std::shared_ptr<EventSink> sink);

  /// Appends one event (stamps the global seq). Thread-safe; drains the
  /// ring (under the drain mutex) when it is full.
  void emit(EventKind kind, Slot slot, JobId job = kNoJob, std::int64_t a = 0,
            std::int64_t b = 0, double x = 0.0, const char* label = nullptr);

  /// Drains buffered events to the sinks. Thread-safe (serialized).
  void flush();

  /// Flushes and closes every sink. Further emits are discarded.
  /// Idempotent and thread-safe.
  void close();

  /// Total events emitted so far (including drained and discarded ones).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Events that never reached a sink: drained while no sink was attached
  /// (ring overflow with zero sinks discards oldest-first) or emitted
  /// after close(). With at least one sink attached for the whole session
  /// this stays 0 — emit() blocks on a full ring by draining inline, so
  /// sinks never miss events. A nonzero value means an exported trace is
  /// incomplete; bench_common and crmd_cli surface it as a warning and a
  /// metrics-registry counter.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  EventRing ring_;
  std::mutex drain_mu_;  // serializes sink access (flush/close/add_sink)
  std::vector<std::shared_ptr<EventSink>> sinks_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> closed_{false};
};

/// Collects events into a vector (tests, ad-hoc analysis).
class CollectSink final : public EventSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Writes one JSON object per event, newline-delimited (JSONL). The stream
/// is borrowed and must outlive the sink.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  void on_event(const TraceEvent& event) override;

 private:
  std::ostream* out_;
};

/// JsonlSink that owns the file it writes to.
class JsonlFileSink final : public EventSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;
  void on_event(const TraceEvent& event) override;
  void close() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Emits Chrome trace-event JSON (the `chrome://tracing` / Perfetto
/// format): stage transitions become per-job "X" (complete) spans,
/// everything else instant events, and per-slot contention a counter
/// track. Buffers formatted events in memory and writes the document at
/// close() — meant for runs small enough to eyeball, like the CSV slot
/// trace.
class ChromeTraceSink final : public EventSink {
 public:
  /// Writes to `path` at close(). Throws std::runtime_error when the file
  /// cannot be created.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  void on_event(const TraceEvent& event) override;
  void close() override;

  /// Renders the document to any stream (used by tests; close() uses it).
  void render(std::ostream& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Writes a single event as one JSONL line (shared by sinks and tests).
void write_event_jsonl(std::ostream& out, const TraceEvent& event);

}  // namespace crmd::obs

/// Emission macro: zero work when `tracer` is null, one call otherwise.
/// Usage: CRMD_TRACE(obs_, obs::EventKind::kStage, slot, job, from, to).
/// Compile out entirely with -DCRMD_TRACING_DISABLED (the microbenchmark
/// measures the runtime-off cost; this kills even the pointer test).
#ifdef CRMD_TRACING_DISABLED
#define CRMD_TRACE(tracer, ...) \
  do {                          \
  } while (0)
#else
#define CRMD_TRACE(tracer, ...)        \
  do {                                 \
    if ((tracer) != nullptr) {         \
      (tracer)->emit(__VA_ARGS__);     \
    }                                  \
  } while (0)
#endif
