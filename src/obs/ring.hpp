#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "obs/events.hpp"

/// \file ring.hpp
/// Bounded lock-free ring buffer for TraceEvents.
///
/// Single-consumer, multi-producer-safe: producers claim a cell with one
/// fetch_add, write the event, then publish it by stamping the cell's
/// sequence number (Vyukov bounded-queue scheme). The simulator today emits
/// from one thread, but the buffer is written so a future sharded/parallel
/// runner can share one tracer without a mutex on the hot path.
///
/// The ring never blocks and never allocates after construction: when full,
/// try_push fails and the caller (the Tracer) drains to its sinks — so the
/// steady-state cost of tracing is one claimed cell + one 48-byte store per
/// event, and the cost with tracing off is a single null-pointer test at
/// the emission site (see CRMD_TRACE in trace.hpp).

namespace crmd::obs {

/// Fixed-capacity event ring. Capacity is rounded up to a power of two.
class EventRing {
 public:
  /// Creates a ring holding at least `capacity` events (default 64Ki).
  explicit EventRing(std::size_t capacity = 1 << 16) {
    std::size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Number of cells.
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Events currently buffered (approximate under concurrency).
  [[nodiscard]] std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) - tail_;
  }

  /// Attempts to append one event. Returns false when the ring is full
  /// (caller decides whether to drain or drop). Never blocks.
  bool try_push(const TraceEvent& ev) noexcept {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.event = ev;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Drains every published event, oldest first, into `fn(const
  /// TraceEvent&)`. Single-consumer: callers must serialize pop_all against
  /// itself. Returns the number of events drained.
  template <typename Fn>
  std::size_t pop_all(Fn&& fn) {
    std::size_t drained = 0;
    for (;;) {
      Cell& cell = cells_[tail_ & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(tail_ + 1) <
          0) {
        break;  // next cell not yet published
      }
      fn(static_cast<const TraceEvent&>(cell.event));
      cell.seq.store(tail_ + capacity(), std::memory_order_release);
      ++tail_;
      ++drained;
    }
    return drained;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    TraceEvent event;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};  // next cell to claim (producers)
  std::uint64_t tail_ = 0;              // next cell to drain (consumer)
};

}  // namespace crmd::obs
