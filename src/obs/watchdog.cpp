#include "obs/watchdog.hpp"

#include <cstring>
#include <sstream>

namespace crmd::obs {

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {}

void Watchdog::flag(Slot slot, JobId job, std::string what) {
  ++count_;
  if (kept_.size() < config_.max_kept) {
    kept_.push_back(Violation{slot, job, std::move(what)});
  }
}

namespace {

bool label_is(const char* label, const char* expected) noexcept {
  return label != nullptr && std::strcmp(label, expected) == 0;
}

}  // namespace

void Watchdog::on_event(const TraceEvent& ev) {
  if (ev.slot < prev_slot_) {
    cost_slot_ = -1;  // a new replication replays from slot 0
  }
  prev_slot_ = ev.slot;
  switch (ev.kind) {
    case EventKind::kJobActivate: {
      JobState& js = jobs_[ev.job];
      if (js.live) {
        flag(ev.slot, ev.job, "double-activate");
      }
      js.release = ev.a;
      js.deadline = ev.b;
      js.effective_window = ev.b - ev.a;
      js.live = true;
      js.succeeded = false;
      js.grid_free = false;
      return;
    }

    case EventKind::kJobRetire: {
      const auto it = jobs_.find(ev.job);
      if (it != jobs_.end()) {
        it->second.live = false;
      }
      return;
    }

    case EventKind::kTransmit: {
      const auto it = jobs_.find(ev.job);
      if (it == jobs_.end() || !it->second.live) {
        flag(ev.slot, ev.job, "tx-from-non-live-job");
        return;
      }
      const JobState& js = it->second;
      if (ev.slot < js.release || ev.slot >= js.deadline) {
        flag(ev.slot, ev.job, "tx-outside-window");
        return;
      }
      if (label_is(ev.label, "data") && !js.grid_free &&
          ev.slot >= js.release + js.effective_window) {
        flag(ev.slot, ev.job, "data-tx-beyond-trimmed-window");
      }
      return;
    }

    case EventKind::kStage:
      if (label_is(ev.label, "anarchist") || label_is(ev.label, "desperate")) {
        const auto it = jobs_.find(ev.job);
        if (it != jobs_.end()) {
          it->second.grid_free = true;
        }
      }
      return;

    case EventKind::kWindowTrim: {
      const auto it = jobs_.find(ev.job);
      if (it != jobs_.end()) {
        it->second.effective_window = ev.a;
      }
      return;
    }

    case EventKind::kCostSlot:
      cost_slot_ = ev.slot;
      return;

    case EventKind::kSuccessCredit: {
      if (ev.slot == cost_slot_) {
        flag(ev.slot, ev.job, "success-credit-during-cost-slot");
      }
      const auto it = jobs_.find(ev.job);
      if (it == jobs_.end() || !it->second.live) {
        flag(ev.slot, ev.job, "success-credit-dead-job");
        return;
      }
      if (it->second.succeeded) {
        flag(ev.slot, ev.job, "duplicate-success-credit");
        return;
      }
      it->second.succeeded = true;
      return;
    }

    case EventKind::kSlotResolved: {
      ++resolved_slots_;
      if (resolved_slots_ <= config_.settle_slots) {
        return;
      }
      if (config_.contention_cap > 0.0 && ev.x > config_.contention_cap) {
        flag(ev.slot, kNoJob, "contention-above-cap");
      }
      if (config_.contention_floor > 0.0 && ev.x < config_.contention_floor) {
        flag(ev.slot, kNoJob, "contention-below-floor");
      }
      return;
    }

    default:
      return;  // informational kinds carry no checked invariant (yet)
  }
}

std::string Watchdog::report() const {
  std::ostringstream os;
  for (const Violation& v : kept_) {
    os << "slot " << v.slot;
    if (v.job != kNoJob) {
      os << " job " << v.job;
    }
    os << ": " << v.what << "\n";
  }
  const auto dropped = count_ - static_cast<std::int64_t>(kept_.size());
  if (dropped > 0) {
    os << "(+" << dropped << " more)\n";
  }
  return os.str();
}

}  // namespace crmd::obs
