#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hpp"

/// \file metrics.hpp (obs)
/// Named metrics registry: counters, gauges, and log-bucketed histograms
/// that benches and tests query by name instead of growing yet another
/// field on a struct.
///
/// The channel's own aggregate (sim::SimMetrics) stays a plain struct —
/// its fields are the paper's vocabulary and the determinism contract is
/// written against it — but everything *around* a run (per-phase wall
/// clock, export counts, harness-side tallies, registry snapshots of a
/// SimMetrics) goes through here, keyed by dotted names ("sim.success_
/// slots", "profile.wall_ms"). Snapshots export through util::Table, so
/// `--json` / `--csv` emission is uniform with every other bench output.
///
/// References returned by counter()/gauge()/histogram() are stable for
/// the registry's lifetime (node-based map), so hot loops can resolve a
/// metric once and bump it without further lookups.
///
/// Thread safety: the parallel replication engine updates metrics from
/// every worker, so all three metric types accumulate atomically and the
/// registry guards its name map with a mutex. Increments use relaxed
/// ordering — exact totals once writers quiesce (what benches read), no
/// cross-metric ordering guarantees mid-run.

namespace crmd::obs {

/// Monotonic integer counter. Increments are atomic (relaxed).
class Counter {
 public:
  void inc(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins real value. Stores are atomic (relaxed).
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram with power-of-two ("log") buckets: bucket 0 counts values
/// < 1, bucket i (i >= 1) counts values in [2^(i-1), 2^i). Built for
/// latency-like quantities spanning many orders of magnitude where equal-
/// width bins (util::Histogram) would waste resolution.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Adds one observation (negative values clamp into bucket 0).
  /// Thread-safe; concurrent adds land atomically (counts stay exact,
  /// readers racing writers may see a bucket/sum snapshot mid-update).
  void add(std::int64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Count in bucket i.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept;

  /// Inclusive lower value bound of bucket i (0 for bucket 0).
  [[nodiscard]] std::int64_t bucket_lo(std::size_t i) const noexcept;

  /// Exclusive upper value bound of bucket i.
  [[nodiscard]] std::int64_t bucket_hi(std::size_t i) const noexcept;

  /// Upper bound of the bucket where the cumulative count reaches
  /// fraction `q` (0..1) — a conservative percentile estimate.
  [[nodiscard]] std::int64_t percentile(double q) const noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → metric registry. Names are dotted paths by convention.
class Registry {
 public:
  /// Returns (creating on first use) the named metric. A name owns its
  /// first-used type: re-requesting it as a different type throws
  /// std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  /// True when `name` exists (any type).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Convenience readers; throw std::out_of_range on unknown names.
  [[nodiscard]] std::int64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  /// Number of registered metrics.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Snapshot as a table: metric | type | value (name-sorted). Histograms
  /// render as count/mean/p50/p99.
  [[nodiscard]] util::Table to_table() const;

  /// Snapshot as a JSON object {"name": value-or-histogram-object, ...}.
  void write_json(std::ostream& out) const;

  /// Drops every metric.
  void clear();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    Counter counter;
    Gauge gauge;
    LogHistogram histogram;
  };
  Entry& entry(const std::string& name, Kind kind);

  mutable std::mutex mu_;  // guards entries_ (the map, not the metrics)
  std::map<std::string, Entry> entries_;
};

/// Process-wide registry: the default home for harness metrics so benches
/// and the CLI can export without threading a Registry through every call.
Registry& global_registry();

}  // namespace crmd::obs
