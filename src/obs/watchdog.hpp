#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

/// \file watchdog.hpp (obs)
/// Online invariant checker over the event stream: a sink that replays
/// the simulator's and protocols' own account of a run and flags
/// paper-level violations as they happen — no debugger, no post-hoc
/// grepping of CSVs.
///
/// Checks (always on — true for every correct run, faulted or not):
///   * a transmission attributed to a job that is not live,
///   * a transmission outside the job's [release, deadline) window,
///   * a *data* transmission beyond a PUNCTUAL-trimmed effective window
///     while the job still claims to be grid-bound (§4's recheck rule says
///     a trimmed follower never sends data past its halved deadline;
///     anarchist/desperate stages are exempt because they are the
///     explicitly grid-free fallbacks),
///   * a success credited to a job that is dead or already succeeded,
///   * a success credited during a collision-cost freeze (a kCostSlot
///     marked the slot as channel recovery — nothing can be delivered),
///   * a job activated twice without retiring.
///
/// Checks (opt-in via WatchdogConfig — they encode *expected* behavior of
/// specific workloads, e.g. §2.1/§3's steady-state contention envelope
/// [γ/e, e·γ], not universal truths):
///   * per-slot contention above `contention_cap`,
///   * per-slot contention below `contention_floor` while jobs are live,
///   both only after `settle_slots` simulated slots.
///
/// Fault-free feasible runs must report zero violations; the determinism
/// suite asserts exactly that.

namespace crmd::obs {

/// Tunable expectations for the opt-in checks. Defaults disable them.
struct WatchdogConfig {
  /// Flag slots whose contention C(t) exceeds this (0 = disabled).
  double contention_cap = 0.0;

  /// Flag slots with live transmitting jobs whose contention is below
  /// this (0 = disabled).
  double contention_floor = 0.0;

  /// Resolved slots to skip before contention checks apply (start-up
  /// transients: estimation ramps, sync listening).
  std::int64_t settle_slots = 0;

  /// Keep at most this many Violation records (the count keeps rising).
  std::size_t max_kept = 64;
};

/// One flagged violation.
struct Violation {
  Slot slot = 0;
  JobId job = kNoJob;
  std::string what;
};

/// EventSink that checks invariants online. Add it to the Tracer next to
/// the export sinks; query it after the run (or mid-run).
class Watchdog final : public EventSink {
 public:
  explicit Watchdog(WatchdogConfig config = {});

  void on_event(const TraceEvent& event) override;

  /// Total violations seen (kept or not).
  [[nodiscard]] std::int64_t violation_count() const noexcept {
    return count_;
  }

  /// True when no invariant was ever violated.
  [[nodiscard]] bool ok() const noexcept { return count_ == 0; }

  /// The kept violation records (up to config.max_kept), oldest first.
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return kept_;
  }

  /// One-line-per-violation report ("slot 12 job 3: tx-outside-window").
  [[nodiscard]] std::string report() const;

 private:
  struct JobState {
    Slot release = 0;
    Slot deadline = 0;
    Slot effective_window = 0;  // since-release; trimmed by kWindowTrim
    bool live = false;
    bool succeeded = false;
    bool grid_free = false;  // entered an anarchist/desperate stage
  };

  void flag(Slot slot, JobId job, std::string what);

  WatchdogConfig config_;
  std::map<JobId, JobState> jobs_;
  std::vector<Violation> kept_;
  std::int64_t count_ = 0;
  std::int64_t resolved_slots_ = 0;
  /// Slot of the last kCostSlot seen; reset when the stream's slot index
  /// regresses (a new replication replaying from slot 0).
  Slot cost_slot_ = -1;
  Slot prev_slot_ = -1;
};

}  // namespace crmd::obs
