#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

/// \file timeline.hpp (obs)
/// Streaming per-slot-bucket aggregator: the time-resolved companion to
/// the end-of-run scalars in sim::SimMetrics. A Timeline is an EventSink —
/// attach it to a Tracer and every channel-level event folds into one of a
/// fixed number of slot buckets, so a 10^9-slot horizon costs the same
/// memory as a 10^3-slot one.
///
/// Bounded-memory contract: the bucket count is fixed at construction
/// (rounded up to a power of two) and bucket widths are powers of two.
/// Buckets start one slot wide; when an event lands past the last bucket,
/// widths double and adjacent bucket pairs fold together (sum of counts,
/// sum of contention) until the slot fits. Growth is therefore O(log
/// horizon) total fold passes over a constant-size array — never an
/// allocation proportional to the horizon.
///
/// Determinism: a Timeline only ever adds integers and sums doubles in
/// the order events arrive. The tracer replays parallel replications in
/// replication order (see analysis/runner.cpp), so the aggregate — and
/// its serialized JSON — is bit-identical for every --threads value, and
/// attaching a Timeline never perturbs simulation results (sinks only
/// observe; see trace.hpp's cost model).
///
/// Replication folding: every replication restarts at slot 0, so bucket b
/// aggregates slot-window [b*width, (b+1)*width) across *all*
/// replications — the per-window view the paper's trajectory claims are
/// stated over.

namespace crmd::obs {

/// Aggregates for one slot window. "true_*" counts come from the
/// authoritative channel outcome (kSlotResolved); "seen_*" from the
/// listener-perceived outcome after the feedback model (kSlotPerceived) —
/// the gap between the two is exactly what a degraded feedback model or a
/// jammer hides from protocols.
struct TimelineBucket {
  /// Log2 buckets of declared per-transmission probability: index
  /// min(floor(-log2(p)), kProbLevels-1), so level 0 is p in (1/2, 1] and
  /// deeper levels are deeper backoff.
  static constexpr std::size_t kProbLevels = 16;

  std::int64_t resolved_slots = 0;   ///< slots resolved in this window
  std::int64_t live_job_slots = 0;   ///< sum of live-set size per slot
  std::int64_t attempts = 0;         ///< transmissions (kTransmit)
  double contention_sum = 0.0;       ///< sum of C(t) over resolved slots
  std::int64_t true_silence = 0;     ///< channel outcome tallies
  std::int64_t true_success = 0;
  std::int64_t true_noise = 0;
  std::int64_t seen_silence = 0;     ///< listener-perceived tallies
  std::int64_t seen_success = 0;
  std::int64_t seen_noise = 0;
  std::int64_t activations = 0;      ///< kJobActivate
  std::int64_t retires = 0;          ///< kJobRetire with success (a=1)
  std::int64_t expiries = 0;         ///< kJobRetire without success (a=0)
  std::int64_t faults = 0;           ///< kFault injections
  std::int64_t capture_wins = 0;     ///< kCaptureWin (capture model leaks)
  std::int64_t cost_slots = 0;       ///< kCostSlot (collision-cost freezes)
  std::int64_t awake_job_slots = 0;  ///< sum of awake jobs per slot
                                     ///< (kSlotPerceived x payload, §6k);
                                     ///< fast-forwarded spans add zero
  std::int64_t radio_sleeps = 0;     ///< kRadioSleep transitions
  std::int64_t radio_wakes = 0;      ///< kRadioWake transitions
  std::array<std::int64_t, kProbLevels> prob_level{};  ///< backoff ladder

  /// Folds `other` into this bucket (used when widths double).
  void merge(const TimelineBucket& other) noexcept;

  /// True when every field is zero (an untouched window).
  [[nodiscard]] bool empty() const noexcept;
};

/// The streaming aggregator. See the file comment for the contracts.
class Timeline final : public EventSink {
 public:
  /// `bucket_count` is rounded up to a power of two (minimum 2).
  explicit Timeline(std::size_t bucket_count = 256);

  void on_event(const TraceEvent& event) override;

  /// Slots covered by each bucket (a power of two).
  [[nodiscard]] std::int64_t bucket_width() const noexcept {
    return std::int64_t{1} << width_log2_;
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] const TimelineBucket& bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  /// Highest slot index seen so far (-1 before any event).
  [[nodiscard]] std::int64_t max_slot() const noexcept { return max_slot_; }
  /// Events folded in (all kinds, including ignored protocol-level ones).
  [[nodiscard]] std::uint64_t events_seen() const noexcept {
    return events_seen_;
  }
  /// Slots covered by fast-forward kIdleSkip batches (each expanded into
  /// its buckets exactly as if simulated per slot).
  [[nodiscard]] std::int64_t fast_forward_slots() const noexcept {
    return fast_forward_slots_;
  }
  /// Largest live-set size observed (kSlotPerceived / kIdleSkip payloads).
  [[nodiscard]] std::int64_t live_peak() const noexcept { return live_peak_; }

  /// Stamps the shard count into the JSON meta (harness-provided; the
  /// event stream itself cannot know how many shards fed it). Default 1.
  void note_shards(int shards) noexcept {
    if (shards > shards_) {
      shards_ = shards;
    }
  }
  [[nodiscard]] int shards() const noexcept { return shards_; }

  /// Serializes as {"meta": {...}, "buckets": [...]}: meta carries the
  /// schema tag, bucket geometry, max slot, and event count; buckets run
  /// from slot 0 through the bucket containing max_slot (inclusive), each
  /// with its slot window and every TimelineBucket field. Deterministic
  /// byte-for-byte for a deterministic event stream.
  void write_json(std::ostream& out) const;

  /// write_json to a file; false when the file cannot be written.
  [[nodiscard]] bool save_json(const std::string& path) const;

 private:
  void rescale();  // double widths, fold bucket pairs

  std::vector<TimelineBucket> buckets_;
  int width_log2_ = 0;
  std::int64_t max_slot_ = -1;
  std::uint64_t events_seen_ = 0;
  std::int64_t fast_forward_slots_ = 0;
  std::int64_t live_peak_ = 0;
  int shards_ = 1;
};

}  // namespace crmd::obs
