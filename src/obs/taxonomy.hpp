#pragma once

#include <string_view>
#include <vector>

#include "obs/events.hpp"

/// \file taxonomy.hpp (obs)
/// The *declared* event taxonomy per protocol family: which EventKinds a
/// healthy saturated run is expected to fire, the stage-name inventory of
/// the family's state machine, and the legal stage transitions. This is
/// what `crmd_trace coverage` audits an observed JSONL stream against —
/// an unhit kind or transition means either dead instrumentation or a
/// scenario that never exercised that path.
///
/// Layering: obs sits below core, so the stage-name tables here are
/// deliberate literal duplicates of core's to_string(Stage) tables. A
/// drift check in tests/test_trace_analysis.cpp compares them entry by
/// entry against the core tables; editing one side without the other
/// fails that test, not a user's coverage report.

namespace crmd::obs {

/// One legal stage transition (indices into ProtocolTaxonomy::stages).
struct StageTransition {
  int from;
  int to;
};

/// Declared taxonomy of one protocol family.
struct ProtocolTaxonomy {
  /// Family key ("punctual", "aligned", "nocd", "uniform"). Protocol
  /// registry names map onto families by longest-prefix match, so
  /// "nocd_robust" and "punctual_gap" audit against their base family.
  const char* family;
  /// Protocol-level kinds a saturated run of this family must fire (the
  /// channel-level base set from channel_taxonomy() is implied).
  std::vector<EventKind> expected_kinds;
  /// Stage names, indexed by the core Stage enum value; empty when the
  /// family has no stage machine.
  std::vector<const char*> stages;
  /// Legal transitions of the stage machine (empty when stages is empty).
  std::vector<StageTransition> transitions;
};

/// Channel-level kinds every simulated run fires regardless of protocol.
[[nodiscard]] const std::vector<EventKind>& channel_taxonomy();

/// Channel-level kinds that fire only when their physics is configured
/// (kFault needs a FaultPlan, kCaptureWin a capture model with alpha > 0,
/// kCostSlot a collision cost > 1). Not part of the always-expected set —
/// auditing them on a run that enables the feature is done via
/// `crmd_trace coverage --require=...`. Together with channel_taxonomy()
/// this partitions every channel-level kind; a drift check in
/// tests/test_trace_analysis.cpp trips when a new channel kind joins
/// neither list.
[[nodiscard]] const std::vector<EventKind>& conditional_channel_taxonomy();

/// All declared families.
[[nodiscard]] const std::vector<ProtocolTaxonomy>& protocol_taxonomies();

/// Longest-prefix match of a protocol registry name ("punctual",
/// "nocd_robust", "aligned_gap", ...) onto a declared family; null when
/// no family matches (baselines such as beb audit channel-level only).
[[nodiscard]] const ProtocolTaxonomy* taxonomy_for_protocol(
    std::string_view protocol_name) noexcept;

}  // namespace crmd::obs
