#include "obs/profiler.hpp"

#include <cstdio>

namespace crmd::obs {

void RunProfiler::add_phase_ms(const std::string& name, double ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Phase& p : phases_) {
    if (p.name == name) {
      p.ms += ms;
      ++p.calls;
      return;
    }
  }
  phases_.push_back(Phase{name, ms, 1});
}

double RunProfiler::wall_ms() const {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double RunProfiler::slots_per_sec() const {
  double ms = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Phase& p : phases_) {
      if (p.name == "simulation") {
        ms = p.ms;
        break;
      }
    }
  }
  if (ms <= 0.0) {
    ms = wall_ms();
  }
  const std::int64_t slots = this->slots();
  if (ms <= 0.0 || slots == 0) {
    return 0.0;
  }
  return static_cast<double>(slots) / (ms / 1000.0);
}

std::vector<RunProfiler::Phase> RunProfiler::phases() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return phases_;
}

util::Table RunProfiler::to_table() const {
  util::Table table({"phase", "ms", "calls"});
  for (const Phase& p : phases()) {
    table.add_row({p.name, util::fmt(p.ms, 2), std::to_string(p.calls)});
  }
  table.add_row({"(wall)", util::fmt(wall_ms(), 2), "1"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", slots_per_sec());
  table.add_row({"(slots/sec)", buf, std::to_string(slots())});
  return table;
}

void RunProfiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
  slots_.store(0, std::memory_order_relaxed);
  ff_slots_.store(0, std::memory_order_relaxed);
  live_peak_.store(0, std::memory_order_relaxed);
  shards_.store(1, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
}

RunProfiler& global_profiler() {
  static RunProfiler profiler;
  return profiler;
}

}  // namespace crmd::obs
