#pragma once

#include <cstddef>
#include <cstdint>

#include "util/types.hpp"

/// \file events.hpp
/// The protocol-internal event taxonomy: everything a run can *explain*
/// about itself beyond the channel-level SlotRecord stream.
///
/// The paper's guarantees live in quantities the channel trace cannot show:
/// ALIGNED's contention envelope is maintained by estimation updates and
/// class hand-offs (§3), PUNCTUAL's success path is a walk through its
/// stage machine (§4), and fault injection perturbs what individual jobs
/// perceive. A TraceEvent is one timestamped, attributed fact from inside
/// that machinery. Events are fixed-size PODs so the ring buffer
/// (ring.hpp) can store them without allocation and the hot path stays
/// branch-plus-store cheap.
///
/// Payload convention: `a` and `b` are kind-specific integer arguments,
/// `x` a kind-specific real argument, and `label` an optional static
/// string naming the event more precisely than the kind (e.g. the PUNCTUAL
/// stage name). `label` must point at storage outliving the tracer —
/// string literals and to_string(Stage) tables qualify.

namespace crmd::obs {

/// What happened. Channel-level kinds are emitted by the simulator;
/// protocol-level kinds by the protocol state machines themselves.
enum class EventKind : std::uint8_t {
  // --- channel level (emitted by sim::Simulation) -------------------------
  kJobActivate,    ///< job became live; a=release, b=deadline
  kJobRetire,      ///< job left the live set; a=1 when it succeeded
  kTransmit,       ///< one transmission; a=MessageKind, x=declared prob
  kSlotResolved,   ///< slot resolved; a=SlotOutcome, b=transmitters,
                   ///< x=contention C(t)
  kSlotPerceived,  ///< listener-perceived outcome after the feedback model
                   ///< (before per-job faults); a=SlotOutcome, b=live jobs,
                   ///< x=awake (listening or transmitting) jobs (§6k)
  kSuccessCredit,  ///< data delivery credited; job=winner
  kFault,          ///< injected fault; a=FaultKind (see sim/faults.hpp)
  kCaptureWin,     ///< capture model leaked one winner out of a collision;
                   ///< job=winner, a=colliders, x=alpha
  kCostSlot,       ///< slot frozen by collision-cost recovery; a=remaining
                   ///< freeze after this slot, b=transmitters wasted
  kIdleSkip,       ///< fast-forward batch: a provably silent run of slots
                   ///< accounted without per-slot simulation; slot=first
                   ///< skipped slot, a=span length, b=live jobs, x=the
                   ///< constant contention C(t) of every skipped slot
  kRadioSleep,     ///< job turned its radio off (DESIGN.md §6k): declared
                   ///< sleep after an awake slot, or entered a fast-forward
                   ///< dormant span; a=slots since release, b=channel
  kRadioWake,      ///< job turned its radio back on (transmitted or
                   ///< listened after a sleep slot); a=slots since release,
                   ///< b=channel

  // --- protocol level ------------------------------------------------------
  kStage,          ///< stage transition; a=from, b=to, label=to-name
  kRoundSync,      ///< PUNCTUAL locked onto the round grid; a=anchor slot
  kBecomeLeader,   ///< PUNCTUAL won a leader election; a=first lead round
  kWindowTrim,     ///< PUNCTUAL halved its window; a=new effective window
  kDesyncEvidence, ///< PUNCTUAL saw an impossible observation; a=count
  kEstimate,       ///< ALIGNED class estimate fixed; a=class, b=estimate
  kClassActive,    ///< ALIGNED active class changed; a=from, b=to
  kSubphase,       ///< ALIGNED broadcast subphase began; a=id, b=length
  kSchedule,       ///< UNIFORM picked its slots; a=attempts, x=per-slot p
};

/// Number of EventKind values (kSchedule is last by construction; the
/// static_assert in taxonomy.cpp trips if a new kind forgets to move it).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kSchedule) + 1;

/// Human-readable kind name (stable; used by the JSONL sink and tests).
[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// Inverse of to_string: parses a kind name as the JSONL sink writes it.
/// Returns false (out untouched) on an unknown name.
[[nodiscard]] bool parse_event_kind(const char* name, EventKind& out) noexcept;

/// One observed fact. 48 bytes; trivially copyable by design.
struct TraceEvent {
  std::uint64_t seq = 0;  ///< global emission order (stamped by the Tracer)
  Slot slot = 0;          ///< global slot index the event belongs to
  EventKind kind = EventKind::kSlotResolved;
  JobId job = kNoJob;     ///< owning job; kNoJob for channel-wide events
  std::int64_t a = 0;     ///< kind-specific (see EventKind comments)
  std::int64_t b = 0;     ///< kind-specific
  double x = 0.0;         ///< kind-specific
  const char* label = nullptr;  ///< optional static name (may be null)
};

static_assert(sizeof(TraceEvent) <= 64, "keep events cache-line sized");

}  // namespace crmd::obs
