#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hpp"

/// \file profiler.hpp (obs)
/// Run profiler: wall-clock per phase (generation, simulation,
/// aggregation, export) plus a slots/second throughput figure, so every
/// bench JSON carries its own perf trajectory and hot-path regressions
/// show up in the artifacts instead of in a vague "feels slower".
///
/// Timing is wall-clock and therefore the one deliberately
/// non-deterministic output of the harness; it is exported only through
/// JSON `meta` fields and the `--profile` tables, never through the
/// deterministic result rows (the byte-identical-given-a-seed contract in
/// the verify notes covers stdout tables and CSV, which stay untouched).
///
/// Thread safety: the parallel replication engine charges phases and slots
/// from every worker concurrently, so accumulation (add_phase_ms,
/// add_slots) and the readers are guarded — a mutex around the phase list,
/// an atomic slot counter. Under parallel workers the per-phase ms are
/// *summed across workers*: the "simulation" phase accrues ~workers× the
/// wall time spent simulating, which is exactly what makes
/// slots_per_sec() a per-worker throughput (see below).

namespace crmd::obs {

/// Accumulates named phase timings and a slot throughput counter.
class RunProfiler {
 public:
  RunProfiler() { reset(); }

  /// One accumulated phase.
  struct Phase {
    std::string name;
    double ms = 0.0;
    std::int64_t calls = 0;
  };

  /// RAII phase timer: charges the elapsed time on destruction.
  class Scope {
   public:
    Scope(RunProfiler& profiler, const char* name)
        : profiler_(&profiler),
          name_(name),
          start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      const auto end = std::chrono::steady_clock::now();
      profiler_->add_phase_ms(
          name_, std::chrono::duration<double, std::milli>(end - start_)
                     .count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RunProfiler* profiler_;
    const char* name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Starts a scoped timer charged to `name` (a static string).
  [[nodiscard]] Scope phase(const char* name) { return Scope(*this, name); }

  /// Adds `ms` milliseconds to phase `name` directly. Thread-safe.
  void add_phase_ms(const std::string& name, double ms);

  /// Registers `n` simulated slots (called by Simulation::finish, so any
  /// harness — replication sweep or hand-rolled loop — accumulates).
  /// Thread-safe.
  void add_slots(std::int64_t n) noexcept {
    slots_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Registers `n` fast-forwarded slots (a subset of add_slots' total; fed
  /// by Simulation::finish like add_slots). Thread-safe.
  void add_fast_forward_slots(std::int64_t n) noexcept {
    ff_slots_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Records a run's peak live-set size (max across runs). Thread-safe.
  void note_live_peak(std::int64_t n) noexcept {
    std::int64_t cur = live_peak_.load(std::memory_order_relaxed);
    while (n > cur && !live_peak_.compare_exchange_weak(
                          cur, n, std::memory_order_relaxed)) {
    }
  }

  /// Records a sharded run's shard count (max across runs; 1 = unsharded).
  /// Thread-safe.
  void note_shards(int n) noexcept {
    int cur = shards_.load(std::memory_order_relaxed);
    while (n > cur &&
           !shards_.compare_exchange_weak(cur, n,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Wall-clock milliseconds since construction or reset().
  [[nodiscard]] double wall_ms() const;

  /// Total simulated slots registered.
  [[nodiscard]] std::int64_t slots() const noexcept {
    return slots_.load(std::memory_order_relaxed);
  }

  /// Total fast-forwarded slots registered (subset of slots()).
  [[nodiscard]] std::int64_t fast_forward_slots() const noexcept {
    return ff_slots_.load(std::memory_order_relaxed);
  }

  /// Largest per-run live-set peak observed; 0 when nothing ran.
  [[nodiscard]] std::int64_t live_peak() const noexcept {
    return live_peak_.load(std::memory_order_relaxed);
  }

  /// Largest shard count observed; 1 when no sharded run happened.
  [[nodiscard]] int shards() const noexcept {
    return shards_.load(std::memory_order_relaxed);
  }

  /// Slots per second of *simulation* time when a "simulation" phase was
  /// recorded, else per second of wall time. 0 when nothing ran. Because
  /// phase ms sum across workers, under the parallel engine this is the
  /// per-worker (per-thread) simulation throughput; divide slots() by
  /// wall_ms() for the aggregate rate.
  [[nodiscard]] double slots_per_sec() const;

  /// Snapshot of the accumulated phases in first-use order.
  [[nodiscard]] std::vector<Phase> phases() const;

  /// Snapshot as a table: phase | ms | calls, plus totals.
  [[nodiscard]] util::Table to_table() const;

  /// Clears phases/slots and restarts the wall clock.
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<Phase> phases_;
  std::atomic<std::int64_t> slots_{0};
  std::atomic<std::int64_t> ff_slots_{0};
  std::atomic<std::int64_t> live_peak_{0};
  std::atomic<int> shards_{1};
  std::chrono::steady_clock::time_point start_;
};

/// Process-wide profiler. Simulation and analysis::run_replications feed
/// it automatically; bench_common stamps its figures into every `--json`.
RunProfiler& global_profiler();

}  // namespace crmd::obs
