#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace crmd::obs {

namespace {

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
}

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                          s[i] == '\n')) {
    ++i;
  }
}

/// Parses a JSON string without escapes (our labels are plain kind/stage
/// names); escapes are rejected rather than mis-decoded.
bool parse_json_string(std::string_view s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') {
    return false;
  }
  ++i;
  const std::size_t start = i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      return false;
    }
    ++i;
  }
  if (i >= s.size()) {
    return false;
  }
  out.assign(s.substr(start, i - start));
  ++i;  // closing quote
  return true;
}

/// Parses a JSON number as a double (integers pass through exactly up to
/// 2^53, far beyond any slot index a simulation reaches).
bool parse_json_number(std::string_view s, std::size_t& i, double& out) {
  const std::size_t start = i;
  while (i < s.size() && (s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                          s[i] == 'e' || s[i] == 'E' ||
                          (s[i] >= '0' && s[i] <= '9'))) {
    ++i;
  }
  if (i == start) {
    return false;
  }
  const std::string text(s.substr(start, i - start));
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::optional<ParsedEvent> parse_event_jsonl(std::string_view line,
                                             std::string* error) {
  ParsedEvent ev;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') {
    set_error(error, "expected '{'");
    return std::nullopt;
  }
  ++i;
  bool have_kind = false;
  bool first = true;
  while (true) {
    skip_ws(line, i);
    if (i < line.size() && line[i] == '}') {
      ++i;
      break;
    }
    if (!first) {
      if (i >= line.size() || line[i] != ',') {
        set_error(error, "expected ',' between members");
        return std::nullopt;
      }
      ++i;
      skip_ws(line, i);
    }
    first = false;
    std::string key;
    if (!parse_json_string(line, i, key)) {
      set_error(error, "expected a key string");
      return std::nullopt;
    }
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') {
      set_error(error, "expected ':' after key \"" + key + "\"");
      return std::nullopt;
    }
    ++i;
    skip_ws(line, i);
    if (key == "kind" || key == "label") {
      std::string value;
      if (!parse_json_string(line, i, value)) {
        set_error(error, "expected a string value for \"" + key + "\"");
        return std::nullopt;
      }
      if (key == "label") {
        ev.label = value;
      } else {
        if (!parse_event_kind(value.c_str(), ev.kind)) {
          set_error(error, "unknown event kind \"" + value + "\"");
          return std::nullopt;
        }
        have_kind = true;
      }
    } else {
      double value = 0.0;
      if (!parse_json_number(line, i, value)) {
        set_error(error, "expected a number value for \"" + key + "\"");
        return std::nullopt;
      }
      if (key == "seq") {
        ev.seq = static_cast<std::uint64_t>(value);
      } else if (key == "slot") {
        ev.slot = static_cast<Slot>(value);
      } else if (key == "job") {
        ev.job = static_cast<JobId>(value);
      } else if (key == "a") {
        ev.a = static_cast<std::int64_t>(value);
      } else if (key == "b") {
        ev.b = static_cast<std::int64_t>(value);
      } else if (key == "x") {
        ev.x = value;
      } else {
        set_error(error, "unknown key \"" + key + "\"");
        return std::nullopt;
      }
    }
  }
  skip_ws(line, i);
  if (i != line.size()) {
    set_error(error, "trailing characters after '}'");
    return std::nullopt;
  }
  if (!have_kind) {
    set_error(error, "missing \"kind\"");
    return std::nullopt;
  }
  return ev;
}

std::vector<ParsedEvent> load_trace_jsonl(std::istream& in) {
  std::vector<ParsedEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    skip_ws(line, i);
    if (i == line.size()) {
      continue;  // blank line
    }
    std::string error;
    const auto ev = parse_event_jsonl(line, &error);
    if (!ev) {
      throw std::runtime_error("line " + std::to_string(line_no) + ": " +
                               error);
    }
    events.push_back(*ev);
  }
  return events;
}

std::vector<ParsedEvent> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  try {
    return load_trace_jsonl(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

// ---- summary ---------------------------------------------------------------

TraceSummary summarize(const std::vector<ParsedEvent>& events) {
  TraceSummary s;
  s.events = events.size();
  std::set<JobId> jobs;
  bool first = true;
  for (const ParsedEvent& ev : events) {
    if (first) {
      s.first_slot = ev.slot;
      s.last_slot = ev.slot;
      first = false;
    } else {
      s.first_slot = std::min(s.first_slot, ev.slot);
      s.last_slot = std::max(s.last_slot, ev.slot);
    }
    if (ev.job != kNoJob) {
      jobs.insert(ev.job);
    }
    ++s.kind_counts[static_cast<std::size_t>(ev.kind)];
    switch (ev.kind) {
      case EventKind::kJobActivate:
        ++s.activations;
        break;
      case EventKind::kJobRetire:
        if (ev.a != 0) {
          ++s.success_retires;
        } else {
          ++s.expiries;
        }
        break;
      case EventKind::kTransmit:
        ++s.attempts;
        break;
      case EventKind::kSlotResolved:
        ++s.resolved_slots;
        s.contention_sum += ev.x;
        if (ev.a == 1) {
          ++s.true_success;
        }
        break;
      case EventKind::kSlotPerceived:
        if (ev.a == 1) {
          ++s.seen_success;
        }
        break;
      case EventKind::kFault:
        ++s.faults;
        break;
      default:
        break;
    }
  }
  s.jobs_seen = static_cast<std::int64_t>(jobs.size());
  return s;
}

void write_summary(std::ostream& out, const TraceSummary& s) {
  out << "events          " << s.events << "\n";
  out << "slots           " << s.first_slot << " .. " << s.last_slot << "\n";
  out << "jobs            " << s.jobs_seen << "\n";
  out << "activations     " << s.activations << " (retired ok "
      << s.success_retires << ", expired " << s.expiries << ")\n";
  out << "attempts        " << s.attempts << "\n";
  out << "resolved slots  " << s.resolved_slots << " (true successes "
      << s.true_success << ", perceived " << s.seen_success << ")\n";
  if (s.resolved_slots > 0) {
    out << "mean contention "
        << s.contention_sum / static_cast<double>(s.resolved_slots) << "\n";
  }
  out << "faults          " << s.faults << "\n";
  out << "by kind:\n";
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (s.kind_counts[i] > 0) {
      out << "  " << to_string(static_cast<EventKind>(i)) << "  "
          << s.kind_counts[i] << "\n";
    }
  }
}

// ---- coverage --------------------------------------------------------------

double CoverageReport::kind_coverage() const noexcept {
  if (expected.empty()) {
    return 1.0;
  }
  return static_cast<double>(hit_kinds.size()) /
         static_cast<double>(expected.size());
}

bool CoverageReport::complete() const noexcept {
  return missing_kinds.empty() && missing_stages.empty() &&
         missing_transitions.empty();
}

CoverageReport audit_coverage(const std::vector<ParsedEvent>& events,
                              const ProtocolTaxonomy* taxonomy,
                              const std::vector<EventKind>& required) {
  CoverageReport report;
  report.taxonomy = taxonomy;

  // Expected kinds: channel base + family + caller-required, deduplicated
  // in enum order so reports render stably.
  bool expected_set[kEventKindCount] = {};
  for (const EventKind k : channel_taxonomy()) {
    expected_set[static_cast<std::size_t>(k)] = true;
  }
  if (taxonomy != nullptr) {
    for (const EventKind k : taxonomy->expected_kinds) {
      expected_set[static_cast<std::size_t>(k)] = true;
    }
  }
  for (const EventKind k : required) {
    expected_set[static_cast<std::size_t>(k)] = true;
  }

  bool observed_set[kEventKindCount] = {};
  std::set<std::int64_t> observed_stages;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> transitions;
  for (const ParsedEvent& ev : events) {
    observed_set[static_cast<std::size_t>(ev.kind)] = true;
    if (ev.kind == EventKind::kStage) {
      observed_stages.insert(ev.a);
      observed_stages.insert(ev.b);
      ++transitions[{ev.a, ev.b}];
    }
  }

  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (expected_set[i]) {
      report.expected.push_back(kind);
      (observed_set[i] ? report.hit_kinds : report.missing_kinds)
          .push_back(kind);
    } else if (observed_set[i]) {
      report.extra_kinds.push_back(kind);
    }
  }

  for (const auto& [edge, count] : transitions) {
    report.transitions.push_back({edge.first, edge.second, count});
  }

  if (taxonomy != nullptr && !taxonomy->stages.empty()) {
    for (std::size_t i = 0; i < taxonomy->stages.size(); ++i) {
      const auto idx = static_cast<std::int64_t>(i);
      (observed_stages.count(idx) != 0 ? report.hit_stages
                                       : report.missing_stages)
          .push_back(taxonomy->stages[i]);
    }
    for (const StageTransition& t : taxonomy->transitions) {
      if (transitions.find({t.from, t.to}) == transitions.end()) {
        report.missing_transitions.push_back(t);
      }
    }
    for (const auto& [edge, count] : transitions) {
      const bool declared = std::any_of(
          taxonomy->transitions.begin(), taxonomy->transitions.end(),
          [&edge](const StageTransition& t) {
            return t.from == edge.first && t.to == edge.second;
          });
      if (!declared) {
        report.undeclared_transitions.push_back(
            {edge.first, edge.second, count});
      }
    }
  }
  return report;
}

namespace {

const char* stage_name(const ProtocolTaxonomy* taxonomy, std::int64_t idx) {
  if (taxonomy != nullptr && idx >= 0 &&
      idx < static_cast<std::int64_t>(taxonomy->stages.size())) {
    return taxonomy->stages[static_cast<std::size_t>(idx)];
  }
  return nullptr;
}

void write_stage(std::ostream& out, const ProtocolTaxonomy* taxonomy,
                 std::int64_t idx) {
  if (const char* name = stage_name(taxonomy, idx)) {
    out << name;
  } else {
    out << "#" << idx;
  }
}

}  // namespace

void write_coverage(std::ostream& out, const CoverageReport& r) {
  out << "family: " << (r.taxonomy != nullptr ? r.taxonomy->family : "(none)")
      << "\n";
  out << "kind coverage: " << r.hit_kinds.size() << "/" << r.expected.size();
  {
    std::ostringstream pct;
    pct.precision(1);
    pct << std::fixed << 100.0 * r.kind_coverage();
    out << " (" << pct.str() << "%)\n";
  }
  for (const EventKind k : r.missing_kinds) {
    out << "  MISSING kind: " << to_string(k) << "\n";
  }
  for (const EventKind k : r.extra_kinds) {
    out << "  extra kind (not in taxonomy): " << to_string(k) << "\n";
  }
  if (r.taxonomy != nullptr && !r.taxonomy->stages.empty()) {
    out << "stages hit: " << r.hit_stages.size() << "/"
        << r.taxonomy->stages.size() << "\n";
    for (const char* name : r.missing_stages) {
      out << "  unhit stage: " << name << "\n";
    }
    out << "transitions observed: " << r.transitions.size() << "\n";
    for (const TransitionCount& t : r.transitions) {
      out << "  ";
      write_stage(out, r.taxonomy, t.from);
      out << " -> ";
      write_stage(out, r.taxonomy, t.to);
      out << "  x" << t.count << "\n";
    }
    for (const StageTransition& t : r.missing_transitions) {
      out << "  unhit transition: ";
      write_stage(out, r.taxonomy, t.from);
      out << " -> ";
      write_stage(out, r.taxonomy, t.to);
      out << "\n";
    }
    for (const TransitionCount& t : r.undeclared_transitions) {
      out << "  UNDECLARED transition: ";
      write_stage(out, r.taxonomy, t.from);
      out << " -> ";
      write_stage(out, r.taxonomy, t.to);
      out << "  x" << t.count << "\n";
    }
  }
}

// ---- divergence ------------------------------------------------------------

Divergence first_divergence(const std::vector<ParsedEvent>& a,
                            const std::vector<ParsedEvent>& b) {
  Divergence d;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      d.diverged = true;
      d.index = i;
      d.a = a[i];
      d.b = b[i];
      return d;
    }
  }
  if (a.size() != b.size()) {
    d.diverged = true;
    d.index = n;
    if (n < a.size()) {
      d.a = a[n];
    }
    if (n < b.size()) {
      d.b = b[n];
    }
  }
  return d;
}

}  // namespace crmd::obs
