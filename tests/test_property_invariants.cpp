// Seeded property-based cross-model invariant suite (DESIGN.md §6i).
//
// Instead of hand-picked fixtures, a master-seeded Rng draws randomized
// (protocol, workload geometry, replication seed) cases and checks the
// channel-physics contracts on every draw:
//
//   1. capture:0 is digest-identical to ternary — the capture stream must
//      never be consulted when alpha == 0.
//   2. --collision-cost=1 is digest-identical to the default engine — the
//      freeze path must never be entered when cost == 1.
//   3. delivered successes are monotone non-decreasing in alpha (within a
//      deviation budget scaled to the trial count — the runs are coupled
//      by seed but trajectories diverge, so exact coupling is not claimed;
//      estimator-coupled protocols are exempt, see the test body).
//   4. every new channel configuration is bit-identical for every
//      --threads value (the determinism contract extended to capture and
//      collision-cost physics).
//
// The suite is deterministic end to end: kMasterSeed fixes the cases, the
// cases fix the replication seeds. On failure every assertion prints a
// REPRODUCE line with the master seed and the full case spec, so a
// regression can be replayed without rerunning the whole suite.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "core/registry.hpp"
#include "report_digest.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace crmd::analysis {
namespace {

using tests::report_digest;

constexpr std::uint64_t kMasterSeed = 0x20260808C0FFEEULL;
constexpr int kCases = 12;
constexpr int kReps = 3;

/// One randomized draw: a protocol on a saturated-ish aligned batch.
struct Case {
  std::string protocol;
  int level = 0;          // window = 2^level
  std::int64_t jobs = 0;  // drawn from [window/8, window/2]
  std::uint64_t seed = 0;

  [[nodiscard]] std::string spec() const {
    std::ostringstream out;
    out << "protocol=" << protocol << " level=" << level << " jobs=" << jobs
        << " seed=" << seed;
    return out.str();
  }

  /// Everything needed to replay this exact case in isolation.
  [[nodiscard]] std::string reproduce() const {
    std::ostringstream out;
    out << "REPRODUCE: master_seed=0x" << std::hex << kMasterSeed
        << std::dec << " reps=" << kReps << " " << spec();
    return out.str();
  }
};

std::vector<Case> draw_cases() {
  util::Rng rng(kMasterSeed);
  const std::vector<std::string> names = core::protocol_names();
  std::vector<Case> cases;
  cases.reserve(kCases);
  for (int i = 0; i < kCases; ++i) {
    Case c;
    c.protocol = names[rng.below(names.size())];
    c.level = static_cast<int>(rng.range(7, 9));
    const Slot window = Slot{1} << c.level;
    c.jobs = rng.range(window / 8, window / 2);
    c.seed = rng.next_u64() | 1ULL;  // nonzero
    cases.push_back(c);
  }
  return cases;
}

ReplicationReport run_case(const Case& c, const RunOptions& options) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = c.level;
  const auto factory = core::make_protocol(c.protocol, params);
  EXPECT_TRUE(factory.has_value()) << c.reproduce();
  const Slot window = Slot{1} << c.level;
  const InstanceGen gen = [&c, window](util::Rng&) {
    return workload::gen_batch(c.jobs, window, 0);
  };
  return run_replications(gen, *factory, kReps, c.seed, options);
}

TEST(PropertyInvariants, CaptureZeroIsDigestIdenticalToTernary) {
  for (const Case& c : draw_cases()) {
    RunOptions ternary;  // default feedback
    RunOptions capture0;
    capture0.feedback = sim::FeedbackModel::capture(0.0);
    const ReplicationReport base = run_case(c, ternary);
    const ReplicationReport zero = run_case(c, capture0);
    EXPECT_EQ(report_digest(zero), report_digest(base))
        << "capture:0 diverged from ternary\n" << c.reproduce();
    EXPECT_EQ(zero.channel.capture_wins, 0) << c.reproduce();
    EXPECT_EQ(zero.channel.collision_cost_slots, 0) << c.reproduce();
  }
}

TEST(PropertyInvariants, CostOneIsDigestIdenticalToBaseline) {
  for (const Case& c : draw_cases()) {
    RunOptions baseline;  // implicit cost = 1
    RunOptions explicit_one;
    explicit_one.collision_cost = 1;
    EXPECT_EQ(report_digest(run_case(c, explicit_one)),
              report_digest(run_case(c, baseline)))
        << "--collision-cost=1 diverged from the default engine\n"
        << c.reproduce();
  }
}

TEST(PropertyInvariants, SuccessesMonotoneNonDecreasingInAlpha) {
  const double alphas[] = {0.0, 0.5, 1.0};
  for (const Case& c : draw_cases()) {
    // Monotonicity is only an invariant for protocols whose control loop
    // ignores the physics being swept: ALIGNED/PUNCTUAL estimate contention
    // from collision counts, and capture turns collisions into successes,
    // so their estimator — and thus their rate — can legitimately move
    // either way (same exemption as bench_capture self-check 2).
    const auto info = core::protocol_info(c.protocol);
    if (info.has_value() && info->estimates_from_collisions) {
      continue;
    }
    std::int64_t prev = -1;
    double prev_alpha = 0.0;
    for (const double alpha : alphas) {
      RunOptions options;
      options.feedback = sim::FeedbackModel::capture(alpha);
      const ReplicationReport report = run_case(c, options);
      const std::int64_t successes =
          report.outcomes.overall().successes();
      if (prev >= 0) {
        // Deviation budget: ~3 binomial standard deviations on the trial
        // count. The ladder is statistical, not coupled slot-for-slot.
        const auto trials =
            static_cast<double>(report.outcomes.overall().trials());
        const auto slack =
            static_cast<std::int64_t>(3.0 * std::sqrt(trials * 0.25)) + 1;
        EXPECT_GE(successes + slack, prev)
            << "successes dropped from " << prev << " (alpha=" << prev_alpha
            << ") to " << successes << " (alpha=" << alpha << ")\n"
            << c.reproduce();
      }
      prev = successes;
      prev_alpha = alpha;
    }
  }
}

TEST(PropertyInvariants, NewChannelPhysicsAreThreadCountInvariant) {
  // Three configurations per case: pure capture, pure collision cost, and
  // both at once. Each must produce a bit-identical report for every
  // worker count — the determinism contract (analysis/runner.hpp) must
  // hold for the new physics, including the cap_rng stream and the freeze
  // state machine.
  struct Physics {
    double alpha;
    int cost;
  };
  const Physics configs[] = {{0.7, 1}, {0.0, 3}, {0.5, 4}};
  for (const Case& c : draw_cases()) {
    for (const Physics& physics : configs) {
      RunOptions options;
      options.feedback = sim::FeedbackModel::capture(physics.alpha);
      options.collision_cost = physics.cost;
      options.threads = 1;
      const std::uint64_t serial = report_digest(run_case(c, options));
      for (const int threads : {2, 8}) {
        options.threads = threads;
        EXPECT_EQ(report_digest(run_case(c, options)), serial)
            << "threads=" << threads << " alpha=" << physics.alpha
            << " cost=" << physics.cost << "\n"
            << c.reproduce();
      }
    }
  }
}

TEST(PropertyInvariants, CaseDrawIsStable) {
  // The draws themselves are part of the pinned surface: if someone
  // reorders the Rng calls in draw_cases, every REPRODUCE line ever
  // written becomes stale. Pin the first case instead of discovering the
  // drift one confusing repro at a time.
  const std::vector<Case> cases = draw_cases();
  ASSERT_EQ(cases.size(), static_cast<std::size_t>(kCases));
  const std::vector<std::string> names = core::protocol_names();
  for (const Case& c : cases) {
    EXPECT_TRUE(core::is_protocol(c.protocol)) << c.spec();
    EXPECT_GE(c.level, 7);
    EXPECT_LE(c.level, 9);
    const Slot window = Slot{1} << c.level;
    EXPECT_GE(c.jobs, window / 8) << c.spec();
    EXPECT_LE(c.jobs, window / 2) << c.spec();
  }
  EXPECT_EQ(draw_cases()[0].spec(), cases[0].spec());
}

}  // namespace
}  // namespace crmd::analysis
