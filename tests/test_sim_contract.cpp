// Contract tests for the simulator's interaction with protocols: call
// ordering, no callbacks after retirement, horizon defaults, and arrival
// edge cases.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace crmd::sim {
namespace {

/// Records every callback for post-hoc contract checks.
class AuditProtocol final : public Protocol {
 public:
  struct Log {
    int activations = 0;
    std::int64_t on_slots = 0;
    std::int64_t on_feedbacks = 0;
    bool called_after_done = false;
    Slot first_slot = kNoSlot;
    Slot last_slot = kNoSlot;
  };

  AuditProtocol(std::shared_ptr<Log> log, Slot succeed_at)
      : log_(std::move(log)), succeed_at_(succeed_at) {}

  void on_activate(const JobInfo& info) override {
    info_ = info;
    ++log_->activations;
  }

  SlotAction on_slot(const SlotView& view) override {
    if (done_) {
      log_->called_after_done = true;
    }
    ++log_->on_slots;
    if (log_->first_slot == kNoSlot) {
      log_->first_slot = view.since_release;
    }
    log_->last_slot = view.since_release;
    SlotAction action;
    if (view.since_release == succeed_at_) {
      action.transmit = true;
      action.message = make_data(info_.id);
      tx_ = true;
    }
    return action;
  }

  void on_feedback(const SlotView&, const SlotFeedback& fb) override {
    ++log_->on_feedbacks;
    if (tx_ && fb.outcome == SlotOutcome::kSuccess) {
      done_ = true;
    }
    tx_ = false;
  }

  bool done() const override { return done_; }

 private:
  std::shared_ptr<Log> log_;
  Slot succeed_at_;
  JobInfo info_;
  bool tx_ = false;
  bool done_ = false;
};

TEST(SimContract, CallbackOrderingAndCounts) {
  auto log = std::make_shared<AuditProtocol::Log>();
  workload::Instance instance;
  instance.jobs = {{5, 25}};
  const ProtocolFactory factory = [&](const JobInfo&, util::Rng) {
    return std::make_unique<AuditProtocol>(log, 3);
  };
  const auto result = run(instance, factory, SimConfig{});
  EXPECT_EQ(log->activations, 1);
  // Slots 0..3 since release, then retirement on success.
  EXPECT_EQ(log->on_slots, 4);
  EXPECT_EQ(log->on_feedbacks, 4);
  EXPECT_EQ(log->first_slot, 0);
  EXPECT_EQ(log->last_slot, 3);
  EXPECT_FALSE(log->called_after_done);
  EXPECT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].success_slot, 8);  // release 5 + offset 3
}

TEST(SimContract, NoCallbacksAfterDeadline) {
  auto log = std::make_shared<AuditProtocol::Log>();
  workload::Instance instance;
  instance.jobs = {{0, 10}};
  const ProtocolFactory factory = [&](const JobInfo&, util::Rng) {
    return std::make_unique<AuditProtocol>(log, 50);  // never succeeds
  };
  // Another job keeps the simulation alive past the first's deadline.
  instance.jobs.push_back(workload::JobSpec{0, 100});
  const ProtocolFactory both = [&](const JobInfo& info, util::Rng rng) {
    if (info.id == 0) {
      return std::unique_ptr<Protocol>(
          std::make_unique<AuditProtocol>(log, 50));
    }
    return std::unique_ptr<Protocol>(
        std::make_unique<test::ScriptProtocol>(std::vector<Slot>{99}));
  };
  const auto result = run(instance, both, SimConfig{});
  EXPECT_EQ(log->on_slots, 10) << "window [0,10) has exactly 10 slots";
  EXPECT_EQ(log->last_slot, 9);
  EXPECT_FALSE(result.jobs[0].success);
  EXPECT_TRUE(result.jobs[1].success);
}

TEST(SimContract, HorizonDefaultsToMaxDeadline) {
  workload::Instance instance;
  instance.jobs = {{0, 10}, {20, 37}};
  Simulation sim(instance, test::script_factory({1000}), SimConfig{});
  const auto result = sim.finish();
  // Nothing succeeds (attempt offset beyond windows); the run still ends
  // by the max deadline.
  EXPECT_EQ(result.successes(), 0);
  EXPECT_LE(sim.now(), 37);
}

TEST(SimContract, ZeroLengthWindowNeverActivates) {
  workload::Instance instance;
  instance.jobs = {{0, 10}};
  // A degenerate job whose window closed before the horizon even starts
  // would violate valid(); the simulator asserts validity, so only test
  // the supported boundary: a 1-slot window activates for exactly 1 slot.
  instance.jobs.push_back(workload::JobSpec{3, 4});
  auto log = std::make_shared<AuditProtocol::Log>();
  const ProtocolFactory factory = [&](const JobInfo& info, util::Rng) {
    if (info.id == 1) {
      return std::unique_ptr<Protocol>(
          std::make_unique<AuditProtocol>(log, 0));
    }
    return std::unique_ptr<Protocol>(
        std::make_unique<test::ScriptProtocol>(std::vector<Slot>{8}));
  };
  const auto result = run(instance, factory, SimConfig{});
  EXPECT_EQ(log->on_slots, 1);
  EXPECT_TRUE(result.jobs[1].success);
}

TEST(SimContract, ManySimultaneousArrivalsAllActivate) {
  workload::Instance instance;
  for (int i = 0; i < 300; ++i) {
    instance.jobs.push_back(workload::JobSpec{7, 7 + 512});
  }
  Simulation sim(instance, test::script_factory({10000}), SimConfig{});
  sim.step();
  EXPECT_EQ(sim.live_jobs().size(), 300u);
  sim.finish();
}

TEST(SimContract, SeedChangesOutcomesForRandomProtocols) {
  // Different seeds must give protocols different randomness (child
  // streams derive from the config seed).
  const auto instance = workload::Instance{{{{0, 512}, {0, 512}}}};
  const ProtocolFactory factory = [](const JobInfo& info, util::Rng rng) {
    class P final : public Protocol {
     public:
      explicit P(util::Rng r) : rng_(r) {}
      void on_activate(const JobInfo& i) override { info_ = i; }
      SlotAction on_slot(const SlotView&) override {
        SlotAction a;
        tx_ = rng_.bernoulli(0.1);
        if (tx_) {
          a.transmit = true;
          a.message = make_data(info_.id);
        }
        return a;
      }
      void on_feedback(const SlotView&, const SlotFeedback& fb) override {
        if (tx_ && fb.outcome == SlotOutcome::kSuccess) {
          done_ = true;
        }
      }
      bool done() const override { return done_; }

     private:
      util::Rng rng_;
      JobInfo info_;
      bool tx_ = false;
      bool done_ = false;
    };
    (void)info;
    return std::make_unique<P>(rng);
  };
  SimConfig a;
  a.seed = 1;
  SimConfig b;
  b.seed = 2;
  const auto ra = run(instance, factory, a);
  const auto rb = run(instance, factory, b);
  EXPECT_TRUE(ra.jobs[0].success_slot != rb.jobs[0].success_slot ||
              ra.jobs[1].success_slot != rb.jobs[1].success_slot);
}

}  // namespace
}  // namespace crmd::sim
