#pragma once

// Shared helpers for the crmd test suite: a scriptable protocol for driving
// the simulator deterministically, and small instance builders.

#include <memory>
#include <utility>
#include <vector>

#include "sim/protocol.hpp"
#include "workload/instance.hpp"

namespace crmd::test {

/// A protocol that transmits its data message at a fixed list of offsets
/// (slots since release) and otherwise listens. Never gives up on its own.
class ScriptProtocol final : public sim::Protocol {
 public:
  explicit ScriptProtocol(std::vector<Slot> offsets)
      : offsets_(std::move(offsets)) {}

  void on_activate(const sim::JobInfo& info) override { info_ = info; }

  sim::SlotAction on_slot(const sim::SlotView& view) override {
    sim::SlotAction action;
    transmitted_ = false;
    for (const Slot o : offsets_) {
      if (o == view.since_release) {
        action.transmit = true;
        action.message = sim::make_data(info_.id);
        action.declared_prob = 1.0;
        transmitted_ = true;
        break;
      }
    }
    return action;
  }

  void on_feedback(const sim::SlotView& /*view*/,
                   const sim::SlotFeedback& fb) override {
    if (transmitted_ && fb.outcome == sim::SlotOutcome::kSuccess) {
      succeeded_ = true;
    }
    ++feedbacks_;
  }

  [[nodiscard]] bool done() const override { return succeeded_; }

  [[nodiscard]] int feedbacks() const noexcept { return feedbacks_; }

 private:
  std::vector<Slot> offsets_;
  sim::JobInfo info_;
  bool transmitted_ = false;
  bool succeeded_ = false;
  int feedbacks_ = 0;
};

/// Factory where every job transmits at the same offsets-since-release.
inline sim::ProtocolFactory script_factory(std::vector<Slot> offsets) {
  return [offsets](const sim::JobInfo& /*info*/, util::Rng /*rng*/) {
    return std::make_unique<ScriptProtocol>(offsets);
  };
}

/// Factory scripting each job separately: scripts[i] holds job i's offsets.
inline sim::ProtocolFactory per_job_script_factory(
    std::vector<std::vector<Slot>> scripts) {
  return [scripts](const sim::JobInfo& info, util::Rng /*rng*/) {
    return std::make_unique<ScriptProtocol>(scripts.at(info.id));
  };
}

/// Builds an instance from (release, deadline) pairs.
inline workload::Instance instance_of(
    std::initializer_list<std::pair<Slot, Slot>> jobs) {
  workload::Instance out;
  for (const auto& [r, d] : jobs) {
    out.jobs.push_back(workload::JobSpec{r, d});
  }
  return out;
}

}  // namespace crmd::test
