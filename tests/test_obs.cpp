// Tests for the observability subsystem (src/obs/): ring buffer semantics,
// tracer/sink plumbing, golden JSONL and Chrome trace output, metrics
// registry, run profiler, watchdog invariants — and the contract the whole
// design hangs on: tracing must never change simulation results.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/punctual/protocol.hpp"
#include "core/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace crmd {
namespace {

obs::TraceEvent event_with_seq(std::uint64_t seq) {
  obs::TraceEvent ev;
  ev.seq = seq;
  ev.slot = static_cast<Slot>(seq * 3);
  return ev;
}

// ---- EventRing ------------------------------------------------------------

TEST(EventRing, RoundsCapacityUpToPowerOfTwo) {
  obs::EventRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  obs::EventRing exact(16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(EventRing, PushPopPreservesOrder) {
  obs::EventRing ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(event_with_seq(i)));
  }
  EXPECT_FALSE(ring.try_push(event_with_seq(99)));  // full

  std::vector<std::uint64_t> seen;
  const std::size_t drained =
      ring.pop_all([&](const obs::TraceEvent& ev) { seen.push_back(ev.seq); });
  EXPECT_EQ(drained, 8u);
  ASSERT_EQ(seen.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(seen[i], i);
  }
}

TEST(EventRing, WrapsAroundAfterDraining) {
  obs::EventRing ring(4);
  std::uint64_t next = 0;
  std::vector<std::uint64_t> seen;
  // Push/drain several times the capacity so tail and head wrap repeatedly.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(event_with_seq(next++)));
    }
    ring.pop_all([&](const obs::TraceEvent& ev) { seen.push_back(ev.seq); });
  }
  ASSERT_EQ(seen.size(), 30u);
  for (std::uint64_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(EventRing, InterleavedProducersLoseNothing) {
  // Multi-producer claim/publish: every pushed event is drained exactly
  // once, regardless of interleaving.
  obs::EventRing ring(1 << 12);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::TraceEvent ev;
        ev.seq = static_cast<std::uint64_t>(t) * kPerThread + i;
        while (!ring.try_push(ev)) {
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<std::uint64_t> seen;
  ring.pop_all([&](const obs::TraceEvent& ev) { seen.insert(ev.seq); });
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
}

// ---- Tracer + sinks -------------------------------------------------------

TEST(Tracer, StampsMonotonicSeqAndDrainsInOrder) {
  obs::Tracer tracer(16);
  auto collect = std::make_shared<obs::CollectSink>();
  tracer.add_sink(collect);
  // Interleave emitters (different jobs) and overflow the tiny ring so the
  // inline drain path runs too.
  for (int i = 0; i < 100; ++i) {
    tracer.emit(obs::EventKind::kSlotResolved, i, i % 3);
  }
  tracer.flush();
  ASSERT_EQ(collect->events().size(), 100u);
  for (std::size_t i = 0; i < collect->events().size(); ++i) {
    EXPECT_EQ(collect->events()[i].seq, i);
    EXPECT_EQ(collect->events()[i].job, static_cast<JobId>(i % 3));
  }
  EXPECT_EQ(tracer.emitted(), 100u);
}

TEST(Tracer, EmitAfterCloseIsDiscarded) {
  obs::Tracer tracer;
  auto collect = std::make_shared<obs::CollectSink>();
  tracer.add_sink(collect);
  tracer.emit(obs::EventKind::kSlotResolved, 1);
  tracer.close();
  tracer.emit(obs::EventKind::kSlotResolved, 2);
  tracer.flush();
  EXPECT_EQ(collect->events().size(), 1u);
}

TEST(JsonlSink, GoldenLineShape) {
  obs::TraceEvent ev;
  ev.seq = 7;
  ev.slot = 42;
  ev.kind = obs::EventKind::kStage;
  ev.job = 3;
  ev.a = 1;
  ev.b = 2;
  ev.x = 0.5;
  ev.label = "probe";
  std::ostringstream out;
  obs::write_event_jsonl(out, ev);
  EXPECT_EQ(out.str(),
            "{\"seq\":7,\"slot\":42,\"kind\":\"stage\",\"job\":3,\"a\":1,"
            "\"b\":2,\"x\":0.5,\"label\":\"probe\"}\n");

  // Channel-wide event: job/x/label fields are omitted when defaulted.
  obs::TraceEvent bare;
  bare.seq = 0;
  bare.slot = 9;
  bare.kind = obs::EventKind::kSlotResolved;
  std::ostringstream out2;
  obs::write_event_jsonl(out2, bare);
  EXPECT_EQ(out2.str(),
            "{\"seq\":0,\"slot\":9,\"kind\":\"slot-resolved\",\"a\":0,"
            "\"b\":0}\n");
}

TEST(ChromeTraceSink, RendersSpansCountersAndMetadata) {
  obs::ChromeTraceSink sink("/tmp/crmd_test_chrome_trace.json");
  auto ev = [](obs::EventKind kind, Slot slot, JobId job, std::int64_t a,
               std::int64_t b, double x, const char* label) {
    obs::TraceEvent e;
    e.kind = kind;
    e.slot = slot;
    e.job = job;
    e.a = a;
    e.b = b;
    e.x = x;
    e.label = label;
    return e;
  };
  sink.on_event(ev(obs::EventKind::kJobActivate, 0, 1, 0, 64, 0, nullptr));
  sink.on_event(ev(obs::EventKind::kStage, 0, 1, 0, 1, 0, "sync-listen"));
  sink.on_event(ev(obs::EventKind::kStage, 10, 1, 1, 2, 0, "probe"));
  sink.on_event(
      ev(obs::EventKind::kSlotResolved, 5, kNoJob, 0, 2, 1.25, nullptr));
  sink.on_event(ev(obs::EventKind::kJobRetire, 20, 1, 1, 0, 0, nullptr));

  std::ostringstream out;
  sink.render(out);
  const std::string doc = out.str();
  // Structure: one document object with a traceEvents array.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Stage spans: sync-listen spans [0, 10), probe closes at retirement.
  EXPECT_NE(doc.find("\"name\":\"sync-listen\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  // Contention counter track.
  EXPECT_NE(doc.find("\"contention\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  // Process metadata for tooling.
  EXPECT_NE(doc.find("process_name"), std::string::npos);
}

// ---- LogHistogram ---------------------------------------------------------

TEST(LogHistogram, BucketBoundaries) {
  obs::LogHistogram h;
  // Bucket 0: values < 1 (including negatives, clamped).
  h.add(0);
  h.add(-5);
  // Bucket 1: [1, 2).
  h.add(1);
  // Bucket 2: [2, 4).
  h.add(2);
  h.add(3);
  // Bucket 3: [4, 8).
  h.add(4);
  h.add(7);
  // Bucket 4: [8, 16).
  h.add(8);

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.count(), 8u);

  EXPECT_EQ(h.bucket_lo(0), 0);
  EXPECT_EQ(h.bucket_hi(0), 1);
  EXPECT_EQ(h.bucket_lo(3), 4);
  EXPECT_EQ(h.bucket_hi(3), 8);

  // Exact powers of two land in the bucket whose *lower* bound they are.
  obs::LogHistogram p;
  p.add(1024);
  EXPECT_EQ(p.bucket_count(11), 1u);  // [1024, 2048)
}

TEST(LogHistogram, PercentileIsBucketUpperBound) {
  obs::LogHistogram h;
  for (int i = 0; i < 99; ++i) {
    h.add(3);  // bucket [2, 4)
  }
  h.add(1000);  // bucket [512, 1024)
  EXPECT_EQ(h.percentile(0.5), 4);
  EXPECT_EQ(h.percentile(0.99), 4);
  EXPECT_EQ(h.percentile(1.0), 1024);
}

// ---- Registry -------------------------------------------------------------

TEST(Registry, NamedMetricsAndTypeOwnership) {
  obs::Registry reg;
  reg.counter("sim.slots").inc(10);
  reg.counter("sim.slots").inc(5);
  reg.gauge("run.gamma").set(0.03125);
  reg.histogram("job.latency").add(100);

  EXPECT_EQ(reg.counter_value("sim.slots"), 15);
  EXPECT_DOUBLE_EQ(reg.gauge_value("run.gamma"), 0.03125);
  EXPECT_TRUE(reg.has("job.latency"));
  EXPECT_FALSE(reg.has("nope"));
  EXPECT_EQ(reg.size(), 3u);

  // A name owns its first-used type.
  EXPECT_THROW(reg.gauge("sim.slots"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter_value("run.gamma"), std::out_of_range);

  util::Table table = reg.to_table();
  EXPECT_EQ(table.rows(), 3u);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"sim.slots\": 15"), std::string::npos);

  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

// ---- RunProfiler ----------------------------------------------------------

TEST(RunProfiler, AccumulatesPhasesAndSlots) {
  obs::RunProfiler prof;
  {
    const auto scope = prof.phase("simulation");
  }
  {
    const auto scope = prof.phase("simulation");
  }
  prof.add_phase_ms("export", 2.5);
  prof.add_slots(1000);

  ASSERT_EQ(prof.phases().size(), 2u);
  EXPECT_EQ(prof.phases()[0].name, "simulation");
  EXPECT_EQ(prof.phases()[0].calls, 2);
  EXPECT_EQ(prof.phases()[1].name, "export");
  EXPECT_DOUBLE_EQ(prof.phases()[1].ms, 2.5);
  EXPECT_EQ(prof.slots(), 1000);
  EXPECT_GE(prof.wall_ms(), 0.0);
  EXPECT_GE(prof.slots_per_sec(), 0.0);

  prof.reset();
  EXPECT_TRUE(prof.phases().empty());
  EXPECT_EQ(prof.slots(), 0);
}

// ---- Watchdog -------------------------------------------------------------

obs::TraceEvent make_event(obs::EventKind kind, Slot slot, JobId job,
                           std::int64_t a = 0, std::int64_t b = 0,
                           double x = 0.0, const char* label = nullptr) {
  obs::TraceEvent ev;
  ev.kind = kind;
  ev.slot = slot;
  ev.job = job;
  ev.a = a;
  ev.b = b;
  ev.x = x;
  ev.label = label;
  return ev;
}

TEST(Watchdog, FlagsTransmissionFromNonLiveJob) {
  obs::Watchdog dog;
  dog.on_event(make_event(obs::EventKind::kTransmit, 5, 0, 0, 0, 1.0,
                          "data"));
  EXPECT_FALSE(dog.ok());
  ASSERT_EQ(dog.violations().size(), 1u);
  EXPECT_NE(dog.violations()[0].what.find("non-live"), std::string::npos);
}

TEST(Watchdog, FlagsTransmissionOutsideWindow) {
  obs::Watchdog dog;
  dog.on_event(make_event(obs::EventKind::kJobActivate, 10, 0, 10, 20));
  dog.on_event(
      make_event(obs::EventKind::kTransmit, 25, 0, 0, 0, 1.0, "data"));
  EXPECT_EQ(dog.violation_count(), 1);
  EXPECT_NE(dog.report().find("tx-outside-window"), std::string::npos);
}

TEST(Watchdog, FlagsDataBeyondTrimmedWindowUnlessGridFree) {
  // Job released at 0 with window 100, trimmed to 50. A data send at slot
  // 60 violates the recheck rule — unless the job went anarchist first.
  obs::Watchdog dog;
  dog.on_event(make_event(obs::EventKind::kJobActivate, 0, 0, 0, 100));
  dog.on_event(make_event(obs::EventKind::kWindowTrim, 30, 0, 50));
  dog.on_event(
      make_event(obs::EventKind::kTransmit, 60, 0, 0, 0, 1.0, "data"));
  EXPECT_EQ(dog.violation_count(), 1);

  obs::Watchdog lenient;
  lenient.on_event(make_event(obs::EventKind::kJobActivate, 0, 0, 0, 100));
  lenient.on_event(make_event(obs::EventKind::kWindowTrim, 30, 0, 50));
  lenient.on_event(make_event(obs::EventKind::kStage, 55, 0, 5, 9,
                              0.0, "anarchist"));
  lenient.on_event(
      make_event(obs::EventKind::kTransmit, 60, 0, 0, 0, 1.0, "data"));
  EXPECT_TRUE(lenient.ok());
}

TEST(Watchdog, FlagsSuccessCreditedToDeadOrDoneJob) {
  obs::Watchdog dog;
  dog.on_event(make_event(obs::EventKind::kJobActivate, 0, 0, 0, 100));
  dog.on_event(make_event(obs::EventKind::kSuccessCredit, 10, 0));
  EXPECT_TRUE(dog.ok());
  dog.on_event(make_event(obs::EventKind::kSuccessCredit, 11, 0));
  EXPECT_EQ(dog.violation_count(), 1);  // duplicate credit

  obs::Watchdog dead;
  dead.on_event(make_event(obs::EventKind::kJobActivate, 0, 1, 0, 100));
  dead.on_event(make_event(obs::EventKind::kJobRetire, 50, 1, 0));
  dead.on_event(make_event(obs::EventKind::kSuccessCredit, 60, 1));
  EXPECT_EQ(dead.violation_count(), 1);
}

TEST(Watchdog, FlagsSuccessCreditDuringCostSlot) {
  // A collision-cost freeze forces the slot to noise, so crediting a
  // success in the same slot means the freeze override leaked.
  obs::Watchdog dog;
  dog.on_event(make_event(obs::EventKind::kJobActivate, 0, 0, 0, 100));
  dog.on_event(make_event(obs::EventKind::kCostSlot, 10, kNoJob, 1, 2));
  dog.on_event(make_event(obs::EventKind::kSuccessCredit, 10, 0));
  EXPECT_EQ(dog.violation_count(), 1);
  EXPECT_NE(dog.report().find("success-credit-during-cost-slot"),
            std::string::npos);

  // Credit in a *different* slot is fine.
  obs::Watchdog fine;
  fine.on_event(make_event(obs::EventKind::kJobActivate, 0, 0, 0, 100));
  fine.on_event(make_event(obs::EventKind::kCostSlot, 10, kNoJob, 1, 2));
  fine.on_event(make_event(obs::EventKind::kSuccessCredit, 11, 0));
  EXPECT_TRUE(fine.ok());
}

TEST(Watchdog, CostSlotStateResetsAcrossReplicationReplay) {
  // Parallel replications replay their buffered streams back-to-back into
  // one sink; slot numbers regress to 0 at each boundary. A cost slot
  // from replication r must not taint the same slot index in r+1.
  obs::Watchdog dog;
  dog.on_event(make_event(obs::EventKind::kJobActivate, 0, 0, 0, 100));
  dog.on_event(make_event(obs::EventKind::kCostSlot, 10, kNoJob, 1, 2));
  // Next replication: slot counter restarts.
  dog.on_event(make_event(obs::EventKind::kJobActivate, 0, 1, 0, 100));
  dog.on_event(make_event(obs::EventKind::kSuccessCredit, 10, 1));
  EXPECT_TRUE(dog.ok()) << dog.report();
}

TEST(Watchdog, OptInContentionCap) {
  obs::WatchdogConfig config;
  config.contention_cap = 2.0;
  config.settle_slots = 2;
  obs::Watchdog dog(config);
  // First two resolved slots are settling: no flag even above the cap.
  dog.on_event(
      make_event(obs::EventKind::kSlotResolved, 0, kNoJob, 0, 3, 5.0));
  dog.on_event(
      make_event(obs::EventKind::kSlotResolved, 1, kNoJob, 0, 3, 5.0));
  EXPECT_TRUE(dog.ok());
  dog.on_event(
      make_event(obs::EventKind::kSlotResolved, 2, kNoJob, 0, 3, 5.0));
  EXPECT_EQ(dog.violation_count(), 1);
}

// ---- End-to-end: simulator + protocols through the tracer -----------------

workload::Instance general_instance(std::uint64_t seed) {
  workload::GeneralConfig config;
  config.min_window = 1 << 9;
  config.max_window = 1 << 11;
  config.gamma = 1.0 / 32;
  config.horizon = 1 << 13;
  util::Rng rng(seed);
  return workload::gen_general(config, rng);
}

// ---- Concurrent producers -------------------------------------------------
//
// The parallel replication engine feeds one Tracer (and through it the
// watchdog/collector sinks), the global profiler, and the metrics registry
// from every worker thread. These tests drive each from several threads
// and assert exactness: no lost events, no lost increments, no spurious
// watchdog violations.

TEST(ObsConcurrent, TracerKeepsEveryEventFromConcurrentEmitters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  obs::Tracer tracer(/*ring_capacity=*/1 << 8);  // small: forces mid-run drains
  auto sink = std::make_shared<obs::CollectSink>();
  tracer.add_sink(sink);

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.emit(obs::EventKind::kTransmit, i, static_cast<JobId>(t), t,
                    i);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  tracer.close();

  EXPECT_EQ(tracer.emitted(), kThreads * kPerThread);
  ASSERT_EQ(sink->events().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Seq stamps are unique (atomic), and per-thread event order survives the
  // drains: each thread's i payloads must arrive ascending.
  std::set<std::uint64_t> seqs;
  std::int64_t next_i[kThreads] = {};
  for (const obs::TraceEvent& ev : sink->events()) {
    seqs.insert(ev.seq);
    ASSERT_LT(ev.a, kThreads);
    EXPECT_EQ(ev.b, next_i[ev.a]) << "thread " << ev.a
                                  << " events reordered";
    ++next_i[ev.a];
  }
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(ObsConcurrent, WatchdogStaysExactUnderConcurrentJobStreams) {
  // Four threads each walk disjoint jobs through a correct lifecycle
  // (activate -> in-window transmit -> success credit -> retire). A
  // correct stream interleaved across threads must produce zero
  // violations — the "counts exact, no spurious flags" half of the
  // concurrent-sink contract.
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 200;
  obs::Tracer tracer(/*ring_capacity=*/1 << 8);
  auto dog = std::make_shared<obs::Watchdog>();
  auto sink = std::make_shared<obs::CollectSink>();
  tracer.add_sink(dog);
  tracer.add_sink(sink);

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        const JobId job = static_cast<JobId>(t * kJobsPerThread + j);
        const Slot release = j;
        const Slot deadline = release + 16;
        tracer.emit(obs::EventKind::kJobActivate, release, job, release,
                    deadline);
        tracer.emit(obs::EventKind::kTransmit, release + 1, job, 0, 0, 0.5,
                    "data");
        tracer.emit(obs::EventKind::kSuccessCredit, release + 1, job);
        tracer.emit(obs::EventKind::kJobRetire, release + 2, job, 1);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  tracer.close();

  EXPECT_TRUE(dog->ok()) << dog->report();
  EXPECT_EQ(dog->violation_count(), 0);
  EXPECT_EQ(sink->events().size(),
            static_cast<std::size_t>(kThreads * kJobsPerThread * 4));
}

TEST(ObsConcurrent, RegistryCountsStayExactUnderContention) {
  obs::Registry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      // Resolve through the registry each round: hammers the name map
      // (mutex) as well as the metric atomics.
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("concurrent.hits").inc();
        registry.histogram("concurrent.lat").add(i & 1023);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  EXPECT_EQ(registry.counter_value("concurrent.hits"),
            kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("concurrent.lat").count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ObsConcurrent, ProfilerPhaseCallsStayExactUnderContention) {
  obs::RunProfiler prof;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&prof] {
      for (int i = 0; i < kPerThread; ++i) {
        prof.add_phase_ms("simulation", 0.25);
        prof.add_slots(3);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  const auto phases = prof.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].calls, kThreads * kPerThread);
  EXPECT_NEAR(phases[0].ms, 0.25 * kThreads * kPerThread, 1e-6);
  EXPECT_EQ(prof.slots(), 3 * kThreads * kPerThread);
}

TEST(ObsEndToEnd, TracingOnIsBitIdenticalToTracingOff) {
  core::Params params;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  sim::SimConfig off;
  off.seed = 99;
  const sim::SimResult base = sim::run(general_instance(5), factory, off);

  obs::Tracer tracer;
  auto collect = std::make_shared<obs::CollectSink>();
  tracer.add_sink(collect);
  sim::SimConfig on = off;
  on.tracer = &tracer;
  const sim::SimResult traced = sim::run(general_instance(5), factory, on);
  tracer.flush();

  ASSERT_GT(collect->events().size(), 0u);
  ASSERT_EQ(base.jobs.size(), traced.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(base.jobs[i].success, traced.jobs[i].success);
    EXPECT_EQ(base.jobs[i].success_slot, traced.jobs[i].success_slot);
    EXPECT_EQ(base.jobs[i].transmissions, traced.jobs[i].transmissions);
  }
  EXPECT_EQ(base.metrics.slots_simulated, traced.metrics.slots_simulated);
  EXPECT_EQ(base.metrics.data_successes, traced.metrics.data_successes);
  EXPECT_EQ(base.metrics.noise_slots, traced.metrics.noise_slots);
  EXPECT_DOUBLE_EQ(base.metrics.contention.mean(),
                   traced.metrics.contention.mean());
}

TEST(ObsEndToEnd, EveryPunctualJobEmitsStageTransitions) {
  core::Params params;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  obs::Tracer tracer;
  auto collect = std::make_shared<obs::CollectSink>();
  auto watchdog = std::make_shared<obs::Watchdog>();
  tracer.add_sink(collect);
  tracer.add_sink(watchdog);
  sim::SimConfig config;
  config.seed = 99;
  config.tracer = &tracer;
  const sim::SimResult result = sim::run(general_instance(5), factory, config);
  tracer.flush();

  ASSERT_GT(result.jobs.size(), 0u);
  std::set<JobId> with_stage;
  for (const auto& ev : collect->events()) {
    if (ev.kind == obs::EventKind::kStage) {
      with_stage.insert(ev.job);
    }
  }
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(with_stage.count(job.id)) << "job " << job.id;
  }
  // Fault-free feasible instance: the protocols' own account of the run
  // violates no invariant.
  EXPECT_TRUE(watchdog->ok()) << watchdog->report();
}

TEST(ObsEndToEnd, ScriptedRunTraceMatchesGroundTruth) {
  // Two jobs transmitting at disjoint offsets: the trace must show exactly
  // two kTransmit events, each inside its job's window.
  obs::Tracer tracer;
  auto collect = std::make_shared<obs::CollectSink>();
  tracer.add_sink(collect);
  sim::SimConfig config;
  config.tracer = &tracer;
  const auto result =
      sim::run(test::instance_of({{0, 16}, {4, 24}}),
               test::per_job_script_factory({{2}, {5}}), config);
  tracer.flush();

  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_TRUE(result.jobs[0].success);
  EXPECT_TRUE(result.jobs[1].success);

  int transmits = 0;
  int activates = 0;
  int credits = 0;
  for (const auto& ev : collect->events()) {
    switch (ev.kind) {
      case obs::EventKind::kTransmit:
        ++transmits;
        break;
      case obs::EventKind::kJobActivate:
        ++activates;
        break;
      case obs::EventKind::kSuccessCredit:
        ++credits;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(transmits, 2);
  EXPECT_EQ(activates, 2);
  EXPECT_EQ(credits, 2);
  // Events arrive in seq order.
  for (std::size_t i = 1; i < collect->events().size(); ++i) {
    EXPECT_LT(collect->events()[i - 1].seq, collect->events()[i].seq);
  }
}

}  // namespace
}  // namespace crmd
