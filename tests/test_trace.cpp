// Tests for the CSV trace exporters.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "test_helpers.hpp"

namespace crmd::sim {
namespace {

TEST(Trace, SlotTraceCsvShape) {
  auto instance = test::instance_of({{0, 6}});
  SimConfig config;
  config.record_slots = true;
  const auto result = run(instance, test::script_factory({2}), config);

  std::ostringstream out;
  write_slot_trace_csv(out, result.slots);
  const std::string csv = out.str();
  // Header + one line per recorded slot.
  std::size_t lines = 0;
  for (const char ch : csv) {
    lines += (ch == '\n') ? 1 : 0;
  }
  EXPECT_EQ(lines, result.slots.size() + 1);
  EXPECT_NE(csv.find("slot,outcome"), std::string::npos);
  EXPECT_NE(csv.find("success,data"), std::string::npos)
      << "the delivery slot carries its message kind";
  EXPECT_NE(csv.find("silence"), std::string::npos);
}

TEST(Trace, JobResultsCsvShape) {
  auto instance = test::instance_of({{0, 10}, {0, 10}});
  const auto result =
      run(instance, test::per_job_script_factory({{2}, {2}}), SimConfig{});
  std::ostringstream out;
  write_job_results_csv(out, result.jobs);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("id,release,deadline"), std::string::npos);
  // Both jobs collided: success=0 and success_slot=-1.
  EXPECT_NE(csv.find(",0,-1,"), std::string::npos);
}

TEST(Trace, SaveToFileRoundTrips) {
  auto instance = test::instance_of({{0, 6}});
  SimConfig config;
  config.record_slots = true;
  const auto result = run(instance, test::script_factory({1}), config);
  const std::string path = "/tmp/crmd_trace_test.csv";
  ASSERT_TRUE(save_slot_trace_csv(path, result.slots));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "slot,outcome,success_kind,contention,transmitters,live_jobs,"
            "jammed,faults");
}

TEST(Trace, SaveFailsOnBadPath) {
  EXPECT_FALSE(save_slot_trace_csv("/nonexistent-dir/x.csv", {}));
  EXPECT_FALSE(save_job_results_csv("/nonexistent-dir/x.csv", {}));
}

}  // namespace
}  // namespace crmd::sim
