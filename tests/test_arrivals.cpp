// Streaming arrival processes (sim/arrivals.hpp): spec parsing round-trips
// and rejections, determinism and nondecreasing-release guarantees of the
// stochastic processes, trace file round-trip and loud-failure behavior,
// and materialize_arrivals horizon clipping.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/arrivals.hpp"
#include "util/rng.hpp"
#include "workload/instance.hpp"

namespace crmd::sim {
namespace {

std::optional<ArrivalSpec> parse_quiet(const std::string& spec) {
  std::ostringstream diag;
  return parse_arrivals_spec(spec, diag);
}

/// RAII temp trace file; removed on destruction.
class TempTrace {
 public:
  explicit TempTrace(const std::string& body) {
    path_ = testing::TempDir() + "crmd_arrivals_trace.csv";
    std::ofstream out(path_);
    out << body;
  }
  ~TempTrace() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ArrivalSpecParse, AcceptsCanonicalForms) {
  const auto poisson = parse_quiet("poisson:0.25");
  ASSERT_TRUE(poisson.has_value());
  EXPECT_EQ(poisson->kind, ArrivalSpec::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(poisson->rate, 0.25);
  EXPECT_EQ(poisson->window, 4096);

  const auto poisson_w = parse_quiet("poisson:0.25:128");
  ASSERT_TRUE(poisson_w.has_value());
  EXPECT_EQ(poisson_w->window, 128);

  const auto mmpp = parse_quiet("mmpp:0.001:0.1:256:1024");
  ASSERT_TRUE(mmpp.has_value());
  EXPECT_EQ(mmpp->kind, ArrivalSpec::Kind::kMmpp);
  EXPECT_DOUBLE_EQ(mmpp->rate, 0.001);
  EXPECT_DOUBLE_EQ(mmpp->rate_hi, 0.1);
  EXPECT_EQ(mmpp->window, 256);
  EXPECT_EQ(mmpp->dwell, 1024);

  const auto trace = parse_quiet("trace:/some/file.csv");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->kind, ArrivalSpec::Kind::kTrace);
  EXPECT_EQ(trace->path, "/some/file.csv");
}

TEST(ArrivalSpecParse, SpecStringRoundTrips) {
  for (const char* spec :
       {"poisson:0.25:128", "mmpp:0.001:0.1:256:1024", "trace:/f.csv"}) {
    const auto parsed = parse_quiet(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    const auto reparsed = parse_quiet(parsed->spec());
    ASSERT_TRUE(reparsed.has_value()) << parsed->spec();
    EXPECT_EQ(reparsed->kind, parsed->kind) << spec;
    EXPECT_DOUBLE_EQ(reparsed->rate, parsed->rate) << spec;
    EXPECT_EQ(reparsed->window, parsed->window) << spec;
  }
}

TEST(ArrivalSpecParse, RejectsMalformedSpecsWithOneLineError) {
  for (const char* bad :
       {"", "poisson", "poisson:", "poisson:-0.5", "poisson:0",
        "poisson:nan", "poisson:0.1:0", "poisson:0.1:junk",
        "mmpp:0.1", "mmpp:0.1:-1", "mmpp:0.1:0.2:0", "trace:",
        "uniform:0.1", "poisson:0.1:64:extra"}) {
    std::ostringstream diag;
    EXPECT_FALSE(parse_arrivals_spec(bad, diag).has_value()) << bad;
    const std::string msg = diag.str();
    EXPECT_NE(msg.find("error: bad --arrivals spec"), std::string::npos)
        << bad << " -> " << msg;
    // One line exactly.
    EXPECT_EQ(msg.find('\n'), msg.size() - 1) << bad << " -> " << msg;
  }
}

TEST(PoissonArrivalsTest, DeterministicAndNondecreasing) {
  const auto draw = [](std::uint64_t seed) {
    PoissonArrivals process(0.05, 64);
    util::Rng rng(seed);
    std::vector<workload::JobSpec> jobs;
    for (int i = 0; i < 200; ++i) {
      const auto job = process.next(rng);
      EXPECT_TRUE(job.has_value());  // infinite process never exhausts
      if (job.has_value()) {
        jobs.push_back(*job);
      }
    }
    return jobs;
  };
  const auto a = draw(7);
  const auto b = draw(7);
  EXPECT_EQ(a, b);  // pure function of the seed
  const auto c = draw(8);
  EXPECT_NE(a, c);  // and actually seed-sensitive

  Slot prev = 0;
  for (const workload::JobSpec& job : a) {
    EXPECT_GE(job.release, prev);
    EXPECT_EQ(job.deadline, job.release + 64);
    prev = job.release;
  }
}

TEST(MmppArrivalsTest, DeterministicNondecreasingAndBursty) {
  MmppArrivals process(0.001, 0.2, 32, 256);
  util::Rng rng(11);
  std::vector<Slot> releases;
  for (int i = 0; i < 400; ++i) {
    const auto job = process.next(rng);
    ASSERT_TRUE(job.has_value());
    if (!releases.empty()) {
      EXPECT_GE(job->release, releases.back());
    }
    EXPECT_EQ(job->deadline, job->release + 32);
    releases.push_back(job->release);
  }
  // Burstiness: with a 200x rate ratio the gap distribution must be far
  // from uniform — some consecutive arrivals land in the same slot (high
  // state) while at least one low-state gap spans hundreds of slots.
  Slot max_gap = 0;
  std::int64_t zero_gaps = 0;
  for (std::size_t i = 1; i < releases.size(); ++i) {
    const Slot gap = releases[i] - releases[i - 1];
    max_gap = std::max(max_gap, gap);
    zero_gaps += gap == 0 ? 1 : 0;
  }
  EXPECT_GT(max_gap, 100);
  EXPECT_GT(zero_gaps, 0);
}

TEST(TraceArrivalsTest, RoundTripsThroughCsv) {
  const TempTrace trace(
      "# release,deadline\n"
      "0,16\n"
      "\n"
      "4,36\n"
      "4,20\n"
      "100,228\n");
  TraceArrivals process(trace.path());
  util::Rng rng(1);
  const std::vector<workload::JobSpec> expected = {
      {0, 16}, {4, 36}, {4, 20}, {100, 228}};
  for (const workload::JobSpec& want : expected) {
    const auto got = process.next(rng);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(process.next(rng).has_value());  // finite: exhausts
  EXPECT_FALSE(process.next(rng).has_value());  // and stays exhausted
}

TEST(TraceArrivalsTest, ThrowsLoudlyOnBadInput) {
  EXPECT_THROW(TraceArrivals("/nonexistent/crmd/trace.csv"),
               std::runtime_error);
  {
    const TempTrace malformed("0,16\nnot-a-row\n");
    EXPECT_THROW(TraceArrivals{malformed.path()}, std::runtime_error);
  }
  {
    const TempTrace decreasing("10,20\n5,30\n");
    EXPECT_THROW(TraceArrivals{decreasing.path()}, std::runtime_error);
  }
  {
    const TempTrace empty_window("4,4\n");
    EXPECT_THROW(TraceArrivals{empty_window.path()}, std::runtime_error);
  }
}

TEST(VectorArrivalsTest, ReplaysInOrder) {
  const std::vector<workload::JobSpec> jobs = {{0, 8}, {2, 10}, {2, 4}};
  VectorArrivals process(jobs);
  util::Rng rng(1);
  for (const workload::JobSpec& want : jobs) {
    const auto got = process.next(rng);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(process.next(rng).has_value());
}

TEST(MaterializeArrivals, ClipsAtHorizonAndNormalizes) {
  PoissonArrivals process(0.1, 32);
  util::Rng rng(5);
  const Slot horizon = 512;
  const workload::Instance instance =
      materialize_arrivals(process, horizon, rng);
  ASSERT_FALSE(instance.empty());
  Slot prev = 0;
  for (const workload::JobSpec& job : instance.jobs) {
    EXPECT_LT(job.release, horizon);
    EXPECT_GE(job.release, prev);
    prev = job.release;
  }
  // The clip is exclusive on releases only: deadlines may overhang. The
  // first arrival at/past the horizon is consumed by the clip, so the
  // process's clock is already past it — later draws stay past it too.
  const auto next = process.next(rng);
  ASSERT_TRUE(next.has_value());
  EXPECT_GE(next->release, horizon);
}

TEST(MaterializeArrivals, SpecFactoryBuildsWorkingProcess) {
  const auto spec = parse_quiet("mmpp:0.01:0.2:64:512");
  ASSERT_TRUE(spec.has_value());
  const auto process = spec->make();
  ASSERT_NE(process, nullptr);
  util::Rng rng(3);
  const workload::Instance instance =
      materialize_arrivals(*process, 2048, rng);
  EXPECT_FALSE(instance.empty());
}

}  // namespace
}  // namespace crmd::sim
