// Executable invariants for PUNCTUAL, checked while stepping random general
// instances (parameterized by seed):
//
//  * grid agreement — every pair of synced live jobs computes the same
//    round offset for the current slot;
//  * frame agreement — every pair of frame-knowing jobs computes the same
//    leader round for the current slot;
//  * guard silence — nobody transmits in guard slots;
//  * busy pairs — two consecutive busy slots occur only at round starts
//    (the synchronization invariant the 11-slot round restores);
//  * timekeeper uniqueness — at most one transmitter in timekeeper slots;
//  * deliveries land inside windows.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::core::punctual {
namespace {

class PunctualInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PunctualInvariants, AllInvariantsHold) {
  const std::uint64_t seed = GetParam();
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 8;
  // Mix of regimes: moderate claim scale so some runs elect leaders.
  p.pullback_prob_log_exp = 1.0;
  p.pullback_prob_scale = (seed % 2 == 0) ? 1.0 : 64.0;

  workload::GeneralConfig config;
  config.min_window = 1 << 10;
  config.max_window = 1 << 12;
  config.gamma = 1.0 / 16;
  config.fill = 0.5;
  config.horizon = 1 << 14;
  util::Rng rng(seed);
  const workload::Instance instance = workload::gen_general(config, rng);
  if (instance.empty()) {
    GTEST_SKIP() << "empty instance for this seed";
  }
  std::vector<Slot> releases;
  for (const auto& j : instance.jobs) {
    releases.push_back(j.release);
  }

  sim::SimConfig sc;
  sc.seed = seed;
  sim::Simulation sim(instance, make_punctual_factory(p), sc);

  std::optional<Slot> anchor;  // global slot of a round start
  bool prev_busy = false;
  Slot prev_slot = kNoSlot;
  std::int64_t grid_checks = 0;

  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission> tx) {
    const bool busy = rec.outcome != sim::SlotOutcome::kSilence;
    if (anchor.has_value()) {
      const std::int64_t off = (rec.slot - *anchor) % kRoundLength;
      const SlotType type = slot_type(off);
      // Guard silence.
      if (type == SlotType::kGuard) {
        EXPECT_TRUE(tx.empty()) << "guard transmission at slot " << rec.slot;
      }
      // Timekeeper uniqueness.
      if (type == SlotType::kTimekeeper) {
        EXPECT_LE(tx.size(), 1u)
            << "competing timekeepers at slot " << rec.slot;
      }
      // Busy pairs only at round start: if this and the previous slot are
      // both busy, this slot must have offset 1.
      if (busy && prev_busy && prev_slot == rec.slot - 1) {
        EXPECT_EQ(off, 1) << "mid-round busy pair at slot " << rec.slot;
      }
    }
    prev_busy = busy;
    prev_slot = rec.slot;
  });

  while (!sim.finished()) {
    const Slot now = sim.now();
    // Grid + frame agreement across live jobs.
    std::optional<std::int64_t> grid_offset;
    std::optional<std::int64_t> leader_round;
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(id));
      if (proto == nullptr || !proto->clock().synced()) {
        continue;
      }
      const Slot t = now - releases[id];
      if (t < 0) {
        continue;
      }
      const std::int64_t off = proto->clock().offset(t);
      if (!grid_offset.has_value()) {
        grid_offset = off;
        if (!anchor.has_value()) {
          anchor = now - off;
        }
      } else {
        EXPECT_EQ(off, *grid_offset) << "grid disagreement at slot " << now;
        ++grid_checks;
      }
      if (proto->clock().frame_known()) {
        const std::int64_t lr = proto->clock().leader_round(t);
        if (!leader_round.has_value()) {
          leader_round = lr;
        } else {
          EXPECT_EQ(lr, *leader_round)
              << "leader-frame disagreement at slot " << now;
        }
      }
    }
    if (!sim.step()) {
      break;
    }
  }
  EXPECT_GT(grid_checks, 0) << "the invariant was never exercised";

  const auto result = sim.finish();
  for (const auto& job : result.jobs) {
    if (job.success) {
      EXPECT_GE(job.success_slot, job.release);
      EXPECT_LT(job.success_slot, job.deadline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PunctualInvariants,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace crmd::core::punctual
