// Golden-seed determinism digests. Each protocol's ReplicationReport for a
// pinned (seed, instance-generator) pair is hashed — integers directly,
// doubles by bit pattern — and compared against a recorded digest. The
// failure mode this guards against is silent RNG-stream reordering: a
// refactor (parallel runner, seed-derivation change, extra draw in a
// protocol) that shuffles which coin flips reach which job would leave all
// statistical tests green while quietly changing every "reproducible"
// result in the repo. Here it fails loudly instead.
//
// If a digest change is *intentional* (a protocol or seed-derivation
// change that is supposed to alter results), regenerate: run this test,
// copy the "got 0x..." digests from the failure output into kGolden
// below, and note the reason in the commit message.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "baselines/sawtooth.hpp"
#include "core/aligned/protocol.hpp"
#include "core/nocd/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "core/uniform.hpp"
#include "workload/generators.hpp"

namespace crmd::analysis {
namespace {

constexpr std::uint64_t kSeed = 20260806;

// splitmix64-style combine: order-sensitive, avalanching.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) noexcept {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix_stats(std::uint64_t h, const util::RunningStats& s) {
  h = mix(h, s.count());
  h = mix_double(h, s.mean());
  h = mix_double(h, s.variance());
  h = mix_double(h, s.min());
  h = mix_double(h, s.max());
  return h;
}

std::uint64_t mix_counter(std::uint64_t h, const util::SuccessCounter& c) {
  h = mix(h, c.successes());
  return mix(h, c.trials());
}

/// Digest over every deterministic field of a ReplicationReport, in a
/// fixed traversal order.
std::uint64_t digest(const ReplicationReport& r) {
  std::uint64_t h = 0x43524D44ULL;  // "CRMD"
  h = mix(h, static_cast<std::uint64_t>(r.replications));
  h = mix_stats(h, r.jobs_per_rep);

  const sim::SimMetrics& m = r.channel;
  for (const std::int64_t v :
       {m.slots_simulated, m.slots_skipped, m.silent_slots, m.success_slots,
        m.noise_slots, m.jammed_slots, m.data_successes,
        m.control_successes, m.start_successes, m.claim_successes,
        m.timekeeper_successes, m.faults_injected, m.feedback_corruptions,
        m.feedback_losses, m.clock_skew_events, m.crashes, m.restarts,
        m.dark_job_slots}) {
    h = mix(h, static_cast<std::uint64_t>(v));
  }
  h = mix_stats(h, m.contention);

  h = mix_counter(h, r.outcomes.overall());
  h = mix_stats(h, r.outcomes.accesses());
  for (const auto& [window, bucket] : r.outcomes.by_window()) {
    h = mix(h, static_cast<std::uint64_t>(window));
    h = mix_counter(h, bucket.deadline_met);
    h = mix_stats(h, bucket.latency);
    h = mix_stats(h, bucket.accesses);
  }
  return h;
}

InstanceGen golden_gen() {
  return [](util::Rng& rng) {
    workload::GeneralConfig config;
    config.min_window = 1 << 8;
    config.max_window = 1 << 10;
    config.gamma = 1.0 / 8;
    config.horizon = 1 << 12;
    return workload::gen_general(config, rng);
  };
}

InstanceGen golden_aligned_gen() {
  return [](util::Rng& rng) {
    workload::AlignedConfig config;
    config.min_class = 8;
    config.max_class = 10;
    config.gamma = 1.0 / 8;
    config.horizon = 1 << 12;
    return workload::gen_aligned(config, rng);
  };
}

struct Golden {
  const char* name;
  std::uint64_t expected;
};

// Pinned digests for (kSeed, generator) per protocol. Regenerate only for
// intentional behavior changes — see the file comment.
constexpr Golden kGolden[] = {
    {"uniform", 0xae737dffa1b5093bULL},
    {"aligned", 0x62650eb9b68e28feULL},
    {"punctual", 0x11281381ef74d150ULL},
    {"nocd", 0x50dabc885b81f78eULL},
    {"nocd_robust", 0x6c7b9ea8671ee578ULL},
    {"aloha", 0x12dcf80c482edf41ULL},
    {"beb", 0x901e13c705aed951ULL},
    {"sawtooth", 0x2c19ba5a0ea3928dULL},
};

std::uint64_t run_digest(const std::string& name) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  sim::ProtocolFactory factory;
  InstanceGen gen = golden_gen();
  if (name == "uniform") {
    factory = core::make_uniform_factory(params);
  } else if (name == "aligned") {
    factory = core::aligned::make_aligned_factory(params);
    gen = golden_aligned_gen();
  } else if (name == "punctual") {
    factory = core::punctual::make_punctual_factory(params);
  } else if (name == "nocd") {
    factory = core::nocd::make_nocd_factory(params, /*robust=*/false);
  } else if (name == "nocd_robust") {
    factory = core::nocd::make_nocd_factory(params, /*robust=*/true);
  } else if (name == "aloha") {
    factory = baselines::make_aloha_window_factory(4.0);
  } else if (name == "beb") {
    factory = baselines::make_beb_factory();
  } else {
    factory = baselines::make_sawtooth_factory();
  }
  return digest(run_replications(gen, factory, /*reps=*/3, kSeed));
}

TEST(DeterminismGolden, PerProtocolOutcomeDigests) {
  for (const Golden& g : kGolden) {
    const std::uint64_t got = run_digest(g.name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llxULL",
                  static_cast<unsigned long long>(got));
    EXPECT_EQ(got, g.expected)
        << "golden outcome digest mismatch for '" << g.name << "': got "
        << buf
        << "\nAn RNG stream or aggregation-order change reached this "
           "protocol's results. If the change is intentional, update "
           "kGolden in tests/test_determinism_golden.cpp with the digest "
           "above; otherwise you have a determinism regression.";
  }
}

// The digests must also be stable under the parallel engine — same pinned
// values, any worker count (belt and braces on top of
// test_runner_parallel's field-by-field comparison).
TEST(DeterminismGolden, DigestsAreThreadCountInvariant) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  const sim::ProtocolFactory factories[] = {
      core::punctual::make_punctual_factory(params),
      core::nocd::make_nocd_factory(params, /*robust=*/true),
  };
  for (const auto& factory : factories) {
    const auto serial =
        digest(run_replications(golden_gen(), factory, 3, kSeed));
    for (const int threads : {2, 8}) {
      EXPECT_EQ(digest(run_replications(golden_gen(), factory, 3, kSeed,
                                        nullptr, {}, nullptr, threads)),
                serial)
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace crmd::analysis
