// Golden-seed determinism digests. Each protocol's ReplicationReport for a
// pinned (seed, instance-generator) pair is hashed — integers directly,
// doubles by bit pattern (tests/report_digest.hpp) — and compared against
// a recorded digest. The failure mode this guards against is silent
// RNG-stream reordering: a refactor (parallel runner, seed-derivation
// change, extra draw in a protocol) that shuffles which coin flips reach
// which job would leave all statistical tests green while quietly changing
// every "reproducible" result in the repo. Here it fails loudly instead.
//
// If a digest change is *intentional* (a protocol or seed-derivation
// change that is supposed to alter results), regenerate: run this test,
// copy the "got 0x..." digests from the failure output into kGolden /
// kGoldenChannel below, and note the reason in the commit message.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "baselines/energy_beb.hpp"
#include "baselines/sawtooth.hpp"
#include "core/aligned/protocol.hpp"
#include "core/nocd/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "core/uniform.hpp"
#include "report_digest.hpp"
#include "workload/generators.hpp"

namespace crmd::analysis {
namespace {

using tests::report_digest;

constexpr std::uint64_t kSeed = 20260806;

InstanceGen golden_gen() {
  return [](util::Rng& rng) {
    workload::GeneralConfig config;
    config.min_window = 1 << 8;
    config.max_window = 1 << 10;
    config.gamma = 1.0 / 8;
    config.horizon = 1 << 12;
    return workload::gen_general(config, rng);
  };
}

InstanceGen golden_aligned_gen() {
  return [](util::Rng& rng) {
    workload::AlignedConfig config;
    config.min_class = 8;
    config.max_class = 10;
    config.gamma = 1.0 / 8;
    config.horizon = 1 << 12;
    return workload::gen_aligned(config, rng);
  };
}

sim::ProtocolFactory golden_factory(const std::string& name,
                                    InstanceGen* gen) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  *gen = golden_gen();
  if (name == "uniform") {
    return core::make_uniform_factory(params);
  }
  if (name == "aligned") {
    *gen = golden_aligned_gen();
    return core::aligned::make_aligned_factory(params);
  }
  if (name == "punctual") {
    return core::punctual::make_punctual_factory(params);
  }
  if (name == "nocd") {
    return core::nocd::make_nocd_factory(params, /*robust=*/false);
  }
  if (name == "nocd_robust") {
    return core::nocd::make_nocd_factory(params, /*robust=*/true);
  }
  if (name == "aloha") {
    return baselines::make_aloha_window_factory(4.0);
  }
  if (name == "beb") {
    return baselines::make_beb_factory();
  }
  if (name == "energy_beb") {
    return baselines::make_energy_beb_factory(params);
  }
  if (name == "energy_beb_cs") {
    // Carrier-sampling variant: exercises the slots_listening path (one
    // awake sample after each failure on listener-visible channels).
    params.energy_listen_after_failure = true;
    return baselines::make_energy_beb_factory(params);
  }
  return baselines::make_sawtooth_factory();
}

struct Golden {
  const char* name;
  std::uint64_t expected;
};

// Pinned digests for (kSeed, generator) per protocol. Regenerate only for
// intentional behavior changes — see the file comment.
constexpr Golden kGolden[] = {
    {"uniform", 0xae737dffa1b5093bULL},
    {"aligned", 0x62650eb9b68e28feULL},
    {"punctual", 0x11281381ef74d150ULL},
    {"nocd", 0x50dabc885b81f78eULL},
    {"nocd_robust", 0x6c7b9ea8671ee578ULL},
    {"aloha", 0x12dcf80c482edf41ULL},
    {"beb", 0x901e13c705aed951ULL},
    {"sawtooth", 0x2c19ba5a0ea3928dULL},
};

std::uint64_t run_digest(const std::string& name,
                         const RunOptions& options = {}) {
  InstanceGen gen;
  const sim::ProtocolFactory factory = golden_factory(name, &gen);
  return report_digest(run_replications(gen, factory, /*reps=*/3, kSeed,
                                        options));
}

TEST(DeterminismGolden, PerProtocolOutcomeDigests) {
  for (const Golden& g : kGolden) {
    const std::uint64_t got = run_digest(g.name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llxULL",
                  static_cast<unsigned long long>(got));
    EXPECT_EQ(got, g.expected)
        << "golden outcome digest mismatch for '" << g.name << "': got "
        << buf
        << "\nAn RNG stream or aggregation-order change reached this "
           "protocol's results. If the change is intentional, update "
           "kGolden in tests/test_determinism_golden.cpp with the digest "
           "above; otherwise you have a determinism regression.";
  }
}

// The digests must also be stable under the parallel engine — same pinned
// values, any worker count (belt and braces on top of
// test_runner_parallel's field-by-field comparison).
TEST(DeterminismGolden, DigestsAreThreadCountInvariant) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  const sim::ProtocolFactory factories[] = {
      core::punctual::make_punctual_factory(params),
      core::nocd::make_nocd_factory(params, /*robust=*/true),
  };
  for (const auto& factory : factories) {
    const auto serial = report_digest(
        run_replications(golden_gen(), factory, 3, kSeed));
    for (const int threads : {2, 8}) {
      EXPECT_EQ(report_digest(run_replications(golden_gen(), factory, 3,
                                               kSeed, nullptr, {}, nullptr,
                                               threads)),
                serial)
          << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Channel-physics variants (DESIGN.md §6i)
// ---------------------------------------------------------------------------

struct GoldenChannel {
  const char* name;
  double alpha;        // capture strength; < 0 = ternary model
  int collision_cost;  // SimConfig::collision_cost
  std::uint64_t expected;
};

// Pinned digests for the capture and collision-cost channels, one
// collision-heavy protocol from each family. Regenerate exactly like
// kGolden: run, copy the "got 0x..." value, note the reason.
constexpr GoldenChannel kGoldenChannel[] = {
    {"uniform", 0.5, 1, 0xe0ded762d1efc3d7ULL},
    {"punctual", 0.5, 1, 0x2649a801c3d1ac0aULL},
    {"nocd_robust", 0.5, 1, 0x81722a2866eb1f83ULL},
    {"beb", 0.5, 1, 0x8fba8f3500eb0e9dULL},
    {"uniform", -1.0, 3, 0x81ea9f9e9a00cbeaULL},
    {"punctual", -1.0, 3, 0x37d4cb3cb5b8e5b4ULL},
    {"nocd_robust", -1.0, 3, 0x4552c5201e56cb35ULL},
    {"beb", -1.0, 3, 0xe500efd66a7f5a70ULL},
};

RunOptions channel_options(const GoldenChannel& g, int threads = 1) {
  RunOptions options;
  if (g.alpha >= 0.0) {
    options.feedback = sim::FeedbackModel::capture(g.alpha);
  }
  options.collision_cost = g.collision_cost;
  options.threads = threads;
  return options;
}

TEST(DeterminismGolden, ChannelPhysicsDigests) {
  for (const GoldenChannel& g : kGoldenChannel) {
    const std::uint64_t got = run_digest(g.name, channel_options(g));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llxULL",
                  static_cast<unsigned long long>(got));
    EXPECT_EQ(got, g.expected)
        << "golden channel-physics digest mismatch for '" << g.name
        << "' (alpha=" << g.alpha << ", cost=" << g.collision_cost
        << "): got " << buf
        << "\nIf the change is intentional, update kGoldenChannel in "
           "tests/test_determinism_golden.cpp with the digest above.";
  }
}

TEST(DeterminismGolden, ChannelPhysicsDigestsAreThreadCountInvariant) {
  for (const GoldenChannel& g : kGoldenChannel) {
    const std::uint64_t serial = run_digest(g.name, channel_options(g));
    for (const int threads : {2, 8}) {
      EXPECT_EQ(run_digest(g.name, channel_options(g, threads)), serial)
          << g.name << " alpha=" << g.alpha << " cost=" << g.collision_cost
          << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Mega-scale engine variants (DESIGN.md §6j)
// ---------------------------------------------------------------------------

struct GoldenEngine {
  const char* name;
  sim::FastForward fast_forward;
  int channels;
  std::uint64_t expected;
};

// Pinned digests for the fast-forward and multi-channel engines. uniform
// and beb carry dormancy promises, so kOn actually skips slots for them;
// punctual and sawtooth inherit the no-promise default, so their kOn rows
// are pinned to the SAME values as kGolden — drift there means
// fast-forward stopped being a provable no-op for promise-free protocols.
// Regenerate exactly like kGolden: run, copy the "got 0x..." value, note
// the reason in the commit message.
constexpr GoldenEngine kGoldenEngine[] = {
    {"uniform", sim::FastForward::kOn, 1, 0xb96f71a3a8d6bb1dULL},
    {"beb", sim::FastForward::kOn, 1, 0xbf6a59c4fe13b4a2ULL},
    {"punctual", sim::FastForward::kOn, 1,
     0x11281381ef74d150ULL},  // == kGolden: no promise, FF no-op
    {"sawtooth", sim::FastForward::kOn, 1,
     0x2c19ba5a0ea3928dULL},  // == kGolden: no promise, FF no-op
    {"uniform", sim::FastForward::kOff, 4, 0x02db7cd733b94fb1ULL},
    {"beb", sim::FastForward::kOff, 4, 0x3e0c703111d4dba1ULL},
};

RunOptions engine_options(const GoldenEngine& g, int threads = 1) {
  RunOptions options;
  options.fast_forward = g.fast_forward;
  options.multichannel.channels = g.channels;
  options.threads = threads;
  return options;
}

TEST(DeterminismGolden, EngineVariantDigests) {
  for (const GoldenEngine& g : kGoldenEngine) {
    const std::uint64_t got = run_digest(g.name, engine_options(g));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llxULL",
                  static_cast<unsigned long long>(got));
    EXPECT_EQ(got, g.expected)
        << "golden engine-variant digest mismatch for '" << g.name
        << "' (ff=" << static_cast<int>(g.fast_forward)
        << ", channels=" << g.channels << "): got " << buf
        << "\nIf the change is intentional, update kGoldenEngine in "
           "tests/test_determinism_golden.cpp with the digest above.";
    if (g.fast_forward == sim::FastForward::kOn) {
      // kValidate re-simulates every skipped slot and throws on a broken
      // dormancy promise; its digest must match kOn bit for bit.
      GoldenEngine validating = g;
      validating.fast_forward = sim::FastForward::kValidate;
      EXPECT_EQ(run_digest(g.name, engine_options(validating)), got)
          << g.name << ": kValidate digest diverged from kOn";
    }
  }
}

TEST(DeterminismGolden, EngineVariantDigestsAreThreadCountInvariant) {
  for (const GoldenEngine& g : kGoldenEngine) {
    const std::uint64_t serial = run_digest(g.name, engine_options(g));
    for (const int threads : {2, 8}) {
      EXPECT_EQ(run_digest(g.name, engine_options(g, threads)), serial)
          << g.name << " ff=" << static_cast<int>(g.fast_forward)
          << " channels=" << g.channels << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Radio-energy accounting (DESIGN.md §6k)
// ---------------------------------------------------------------------------

using tests::energy_digest;

struct GoldenEnergy {
  const char* name;
  bool binary_ack;  // feedback model: binary_ack instead of ternary
  std::uint64_t expected;
};

// Pinned energy digests (slots_awake/listening/transmitting,
// live/dark job-slots, per-job awake stats) for every protocol, plus
// binary_ack variants for the two protocols whose radio schedule depends
// on the feedback model (nocd sleeps only under binary_ack; energy_beb
// skips carrier samples there). These counters are deliberately outside
// report_digest's frozen traversal, so this is the family that would catch
// a silent change to the §6k energy meter. Regenerate exactly like
// kGolden: run, copy the "got 0x..." value, note the reason.
constexpr GoldenEnergy kGoldenEnergy[] = {
    {"uniform", false, 0xed99610f1af0b52bULL},
    {"aligned", false, 0xbf488948f09a2e54ULL},
    {"punctual", false, 0x5456334c6ae74eafULL},
    {"nocd", false, 0xf983ee502fc72695ULL},
    {"nocd_robust", false, 0x9d8332a924cdb962ULL},
    {"beb", false, 0xaf5f3794d37c26fdULL},
    {"energy_beb", false, 0x86dbfc167256a8daULL},
    {"sawtooth", false, 0x217b62e7f46b7192ULL},
    {"aloha", false, 0x019419b2d2c7c38fULL},
    // nocd's radio schedule depends on the feedback model (it sleeps only
    // under binary_ack, where success-drain inference has nothing to hear).
    {"nocd", true, 0xecb5b5875867a651ULL},
    // With the carrier sample off (the default), energy_beb's schedule is
    // feedback-blind: the binary_ack digest EQUALS the ternary one above.
    // Divergence here means the default protocol started consulting
    // listener feedback.
    {"energy_beb", true, 0x86dbfc167256a8daULL},
    // Carrier-sampling variant: ternary exercises slots_listening; under
    // binary_ack the sample is suppressed (listeners are deaf), collapsing
    // back to the plain energy_beb digest.
    {"energy_beb_cs", false, 0x0c50eb89d99da468ULL},
    {"energy_beb_cs", true, 0x86dbfc167256a8daULL},
};

RunOptions energy_options(const GoldenEnergy& g, int threads = 1,
                          sim::FastForward ff = sim::FastForward::kOff) {
  RunOptions options;
  if (g.binary_ack) {
    options.feedback = sim::FeedbackModel::binary_ack();
  }
  options.fast_forward = ff;
  options.threads = threads;
  return options;
}

std::uint64_t run_energy_digest(const std::string& name,
                                const RunOptions& options) {
  InstanceGen gen;
  const sim::ProtocolFactory factory = golden_factory(name, &gen);
  return energy_digest(
      run_replications(gen, factory, /*reps=*/3, kSeed, options));
}

TEST(DeterminismGolden, EnergyDigests) {
  for (const GoldenEnergy& g : kGoldenEnergy) {
    const std::uint64_t got = run_energy_digest(g.name, energy_options(g));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llxULL",
                  static_cast<unsigned long long>(got));
    EXPECT_EQ(got, g.expected)
        << "golden energy digest mismatch for '" << g.name
        << "' (binary_ack=" << g.binary_ack << "): got " << buf
        << "\nA radio-state accounting or RNG-stream change reached this "
           "protocol's energy counters. If the change is intentional, "
           "update kGoldenEnergy in tests/test_determinism_golden.cpp with "
           "the digest above.";
  }
}

// The energy meter must not notice HOW the engine covered the slots: a
// fast-forwarded dormant span is exactly a sleep span, so skipping it
// batch-accounts the same zero awake job-slots the slot-by-slot engine
// tallies. Pinned against the kOff digests above, for the promise-carrying
// protocols where kOn actually skips.
TEST(DeterminismGolden, EnergyDigestsAreFastForwardInvariant) {
  for (const GoldenEnergy& g : kGoldenEnergy) {
    const std::uint64_t off = run_energy_digest(g.name, energy_options(g));
    for (const auto ff :
         {sim::FastForward::kOn, sim::FastForward::kValidate}) {
      EXPECT_EQ(run_energy_digest(g.name, energy_options(g, 1, ff)), off)
          << g.name << " (binary_ack=" << g.binary_ack
          << "): energy digest diverged under fast-forward mode "
          << static_cast<int>(ff);
    }
  }
}

TEST(DeterminismGolden, EnergyDigestsAreThreadCountInvariant) {
  for (const GoldenEnergy& g : kGoldenEnergy) {
    const std::uint64_t serial =
        run_energy_digest(g.name, energy_options(g));
    for (const int threads : {2, 8}) {
      EXPECT_EQ(run_energy_digest(g.name, energy_options(g, threads)),
                serial)
          << g.name << " binary_ack=" << g.binary_ack
          << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace crmd::analysis
