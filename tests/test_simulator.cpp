// Tests for the slot-driven simulator: job lifecycle, channel resolution,
// success crediting, deadlines, fast-forwarding, jamming, determinism.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace crmd::sim {
namespace {

using test::instance_of;
using test::per_job_script_factory;
using test::script_factory;

TEST(Simulator, LoneJobSucceeds) {
  auto instance = instance_of({{0, 10}});
  SimConfig config;
  config.seed = 1;
  const SimResult result = run(instance, script_factory({3}), config);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].success_slot, 3);
  EXPECT_EQ(result.jobs[0].latency(), 4);
  EXPECT_EQ(result.metrics.data_successes, 1);
}

TEST(Simulator, CollidingJobsBothFail) {
  auto instance = instance_of({{0, 10}, {0, 10}});
  const SimResult result = run(instance, script_factory({3}), SimConfig{});
  EXPECT_EQ(result.successes(), 0);
  EXPECT_EQ(result.metrics.noise_slots, 1);
}

TEST(Simulator, DisjointAttemptsBothSucceed) {
  auto instance = instance_of({{0, 10}, {0, 10}});
  const SimResult result =
      run(instance, per_job_script_factory({{2}, {5}}), SimConfig{});
  EXPECT_EQ(result.successes(), 2);
}

TEST(Simulator, DeadlineCutsOffTransmission) {
  // The job would transmit at offset 12, but its window is [0, 10).
  auto instance = instance_of({{0, 10}});
  const SimResult result = run(instance, script_factory({12}), SimConfig{});
  EXPECT_EQ(result.successes(), 0);
  EXPECT_FALSE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].success_slot, kNoSlot);
}

TEST(Simulator, LastWindowSlotIsUsable) {
  auto instance = instance_of({{0, 10}});
  const SimResult result = run(instance, script_factory({9}), SimConfig{});
  EXPECT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].success_slot, 9);
}

TEST(Simulator, FastForwardSkipsIdleGaps) {
  auto instance = instance_of({{0, 4}, {1000000, 1000004}});
  const SimResult result =
      run(instance, script_factory({0}), SimConfig{});
  EXPECT_EQ(result.successes(), 2);
  // Only a handful of slots actually simulated; the long gap was skipped.
  EXPECT_LE(result.metrics.slots_simulated, 10);
  EXPECT_GE(result.metrics.slots_skipped, 999990);
}

TEST(Simulator, DeterministicGivenSeed) {
  workload::Instance instance;
  for (int i = 0; i < 50; ++i) {
    instance.jobs.push_back(workload::JobSpec{i % 7, i % 7 + 64});
  }
  SimConfig config;
  config.seed = 12345;
  // A randomized protocol: ALOHA-style scripted via rng in helpers is not
  // available here, so use per-slot random scripts through the seed-driven
  // factory below.
  auto factory = [](const sim::JobInfo& /*info*/, util::Rng rng) {
    class RandomProto final : public Protocol {
     public:
      explicit RandomProto(util::Rng r) : rng_(r) {}
      void on_activate(const JobInfo& info) override { info_ = info; }
      SlotAction on_slot(const SlotView&) override {
        SlotAction a;
        tx_ = rng_.bernoulli(0.05);
        if (tx_) {
          a.transmit = true;
          a.message = make_data(info_.id);
          a.declared_prob = 0.05;
        }
        return a;
      }
      void on_feedback(const SlotView&, const SlotFeedback& fb) override {
        if (tx_ && fb.outcome == SlotOutcome::kSuccess) {
          done_ = true;
        }
      }
      bool done() const override { return done_; }

     private:
      util::Rng rng_;
      JobInfo info_;
      bool tx_ = false;
      bool done_ = false;
    };
    return std::make_unique<RandomProto>(rng);
  };

  const SimResult a = run(instance, factory, config);
  const SimResult b = run(instance, factory, config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].success, b.jobs[i].success);
    EXPECT_EQ(a.jobs[i].success_slot, b.jobs[i].success_slot);
  }
  EXPECT_EQ(a.metrics.data_successes, b.metrics.data_successes);
  EXPECT_EQ(a.metrics.noise_slots, b.metrics.noise_slots);
}

TEST(Simulator, RecordSlotsTracesEverySimulatedSlot) {
  auto instance = instance_of({{0, 5}});
  SimConfig config;
  config.record_slots = true;
  const SimResult result = run(instance, script_factory({2}), config);
  // Slots 0,1,2 are simulated; the job retires on success at slot 2.
  ASSERT_EQ(result.slots.size(), 3u);
  EXPECT_EQ(result.slots[0].outcome, SlotOutcome::kSilence);
  EXPECT_EQ(result.slots[2].outcome, SlotOutcome::kSuccess);
  EXPECT_EQ(result.slots[2].success_kind, MessageKind::kData);
  EXPECT_EQ(result.slots[2].transmitters, 1u);
}

TEST(Simulator, ObserverSeesTransmissions) {
  auto instance = instance_of({{0, 5}, {0, 5}});
  Simulation sim(instance, script_factory({1}), SimConfig{});
  int observed_tx = 0;
  int observed_slots = 0;
  sim.set_observer([&](const SlotRecord& rec,
                       std::span<const Transmission> tx) {
    ++observed_slots;
    observed_tx += static_cast<int>(tx.size());
    if (rec.slot == 1) {
      EXPECT_EQ(tx.size(), 2u);
    }
  });
  sim.finish();
  EXPECT_GT(observed_slots, 0);
  EXPECT_EQ(observed_tx, 2);
}

TEST(Simulator, ContentionIsSumOfDeclaredProbs) {
  auto instance = instance_of({{0, 4}, {0, 4}, {0, 4}});
  SimConfig config;
  config.record_slots = true;
  // Script transmits at offset 1 with declared probability 1 each.
  const SimResult result = run(instance, script_factory({1}), config);
  ASSERT_GE(result.slots.size(), 2u);
  EXPECT_DOUBLE_EQ(result.slots[0].contention, 0.0);
  EXPECT_DOUBLE_EQ(result.slots[1].contention, 3.0);
}

TEST(Simulator, HorizonStopsEarly) {
  auto instance = instance_of({{0, 100}});
  SimConfig config;
  config.horizon = 5;
  const SimResult result = run(instance, script_factory({50}), config);
  EXPECT_FALSE(result.jobs[0].success);
  EXPECT_LE(result.metrics.slots_simulated, 5);
}

TEST(Simulator, SteppingApiExposesLiveJobs) {
  auto instance = instance_of({{0, 10}, {3, 10}});
  Simulation sim(instance, script_factory({100}), SimConfig{});
  EXPECT_FALSE(sim.finished());
  ASSERT_TRUE(sim.step());  // slot 0
  EXPECT_EQ(sim.live_jobs().size(), 1u);
  EXPECT_NE(sim.protocol(0), nullptr);
  EXPECT_EQ(sim.protocol(1), nullptr);
  ASSERT_TRUE(sim.step());  // slot 1
  ASSERT_TRUE(sim.step());  // slot 2
  ASSERT_TRUE(sim.step());  // slot 3: second job activates
  EXPECT_EQ(sim.live_jobs().size(), 2u);
  const SimResult result = sim.finish();
  EXPECT_TRUE(sim.finished());
  EXPECT_EQ(result.jobs.size(), 2u);
}

TEST(Simulator, BlanketJamTurnsSuccessIntoNoise) {
  auto instance = instance_of({{0, 6}});
  SimConfig config;
  config.record_slots = true;
  const SimResult result = run(instance, script_factory({2}), config,
                               make_blanket_jammer(/*p_jam=*/1.0));
  EXPECT_EQ(result.successes(), 0);
  EXPECT_GT(result.metrics.jammed_slots, 0);
  // The job's attempt slot became noise.
  EXPECT_EQ(result.slots[2].outcome, SlotOutcome::kNoise);
  EXPECT_TRUE(result.slots[2].jammed);
}

TEST(Simulator, ZeroProbJammerNeverFires) {
  auto instance = instance_of({{0, 6}});
  const SimResult result = run(instance, script_factory({2}), SimConfig{},
                               make_blanket_jammer(/*p_jam=*/0.0));
  EXPECT_EQ(result.successes(), 1);
  EXPECT_EQ(result.metrics.jammed_slots, 0);
}

TEST(Simulator, ReactiveJammerHalvesSuccessRate) {
  // 200 lone jobs in disjoint windows; reactive jamming at p=0.5 should
  // kill roughly half the successes.
  workload::Instance instance;
  for (int i = 0; i < 200; ++i) {
    instance.jobs.push_back(workload::JobSpec{i * 10, i * 10 + 5});
  }
  SimConfig config;
  config.seed = 7;
  const SimResult result = run(instance, script_factory({0}), config,
                               make_reactive_jammer(0.5));
  EXPECT_GT(result.successes(), 60);
  EXPECT_LT(result.successes(), 140);
}

TEST(Simulator, EmptyInstanceFinishesImmediately) {
  const SimResult result =
      run(workload::Instance{}, script_factory({0}), SimConfig{});
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(result.metrics.slots_simulated, 0);
  EXPECT_DOUBLE_EQ(result.success_rate(), 1.0);
}

TEST(Simulator, JobReleasedAtSameSlotAsOthersRetire) {
  // Job 0 succeeds at slot 2 and retires; job 1 releases at slot 2.
  auto instance = instance_of({{0, 10}, {2, 12}});
  const SimResult result =
      run(instance, per_job_script_factory({{2}, {1}}), SimConfig{});
  // Job 1 transmits at since_release=1 => slot 3. Both should succeed
  // (job 0 at slot 2, job 1 at slot 3).
  EXPECT_EQ(result.successes(), 2);
}

}  // namespace
}  // namespace crmd::sim
