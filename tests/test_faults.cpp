// Tests for the fault-injection subsystem (faults.hpp): deterministic
// replay, the all-zero no-op property, budgeted adversaries, input
// validation, and PUNCTUAL's desync fallback.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/punctual/protocol.hpp"
#include "core/registry.hpp"
#include "sim/faults.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace crmd::sim {
namespace {

bool same_record(const SlotRecord& a, const SlotRecord& b) {
  return a.slot == b.slot && a.outcome == b.outcome &&
         a.success_kind == b.success_kind && a.contention == b.contention &&
         a.transmitters == b.transmitters && a.live_jobs == b.live_jobs &&
         a.jammed == b.jammed && a.faults == b.faults;
}

bool same_trace(const SimResult& a, const SimResult& b) {
  if (a.slots.size() != b.slots.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    if (!same_record(a.slots[i], b.slots[i])) {
      return false;
    }
  }
  if (a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobResult& x = a.jobs[i];
    const JobResult& y = b.jobs[i];
    if (x.success != y.success || x.success_slot != y.success_slot ||
        x.transmissions != y.transmissions || x.live_slots != y.live_slots ||
        x.dark_slots != y.dark_slots) {
      return false;
    }
  }
  return true;
}

ProtocolFactory beb_factory() {
  core::Params params;
  auto factory = core::make_protocol("beb", params);
  EXPECT_TRUE(factory.has_value());
  return *factory;
}

FaultPlan full_plan() {
  FaultPlan plan;
  plan.feedback_corrupt_rate = 0.05;
  plan.feedback_loss_rate = 0.05;
  plan.clock_skew_rate = 0.02;
  plan.crash_rate = 0.002;
  plan.crash_permanent_frac = 0.25;
  plan.stall_min = 4;
  plan.stall_max = 16;
  return plan;
}

SimResult run_with(const FaultPlan& plan, std::uint64_t seed) {
  SimConfig config;
  config.seed = seed;
  config.record_slots = true;
  config.faults = plan;
  return run(workload::gen_batch(8, 1024, 0), beb_factory(), config);
}

// --- determinism ----------------------------------------------------------

TEST(Faults, SameSeedAndPlanReplayBitIdentically) {
  const auto a = run_with(full_plan(), 7);
  const auto b = run_with(full_plan(), 7);
  EXPECT_TRUE(same_trace(a, b));
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.metrics.faults_injected, b.metrics.faults_injected);
  EXPECT_GT(a.metrics.faults_injected, 0) << "the plan should fire at all";
}

TEST(Faults, DifferentSeedsDiverge) {
  const auto a = run_with(full_plan(), 7);
  const auto b = run_with(full_plan(), 8);
  EXPECT_FALSE(same_trace(a, b));
}

// --- the no-op property ---------------------------------------------------

TEST(Faults, AllZeroPlanIsBitIdenticalToFaultFree) {
  SimConfig clean;
  clean.seed = 11;
  clean.record_slots = true;
  const auto baseline =
      run(workload::gen_batch(8, 1024, 0), beb_factory(), clean);

  // Explicit all-zero plan (including nonzero knobs that are gated on the
  // rates, like crash_permanent_frac): still a no-op.
  FaultPlan zero;
  zero.crash_permanent_frac = 1.0;
  zero.stall_min = 2;
  zero.stall_max = 3;
  EXPECT_FALSE(zero.any());
  const auto zeroed = run_with(zero, 11);

  EXPECT_TRUE(same_trace(baseline, zeroed));
  EXPECT_EQ(zeroed.metrics.faults_injected, 0);
  EXPECT_EQ(zeroed.metrics.dark_job_slots, 0);
  EXPECT_TRUE(zeroed.fault_events.empty());
}

TEST(Faults, ZeroBudgetJammerIsBitIdenticalToNoJammer) {
  SimConfig config;
  config.seed = 13;
  config.record_slots = true;
  const auto instance = workload::gen_batch(8, 1024, 0);
  const auto clean = run(instance, beb_factory(), config);
  const auto budgeted = run(instance, beb_factory(), config,
                            make_adaptive_jammer(0, 128, 0.9));
  EXPECT_TRUE(same_trace(clean, budgeted));
  EXPECT_EQ(budgeted.metrics.jammed_slots, 0);
}

// --- fault semantics ------------------------------------------------------

TEST(Faults, PerceiveDegradesNeverFabricates) {
  FaultPlan plan;
  plan.feedback_corrupt_rate = 1.0;
  FaultInjector inj(plan, 1);

  SlotFeedback success;
  success.outcome = SlotOutcome::kSuccess;
  success.message = make_data(3);
  EXPECT_EQ(inj.perceive(0, 0, success).outcome, SlotOutcome::kNoise);
  EXPECT_FALSE(inj.perceive(0, 1, success).message.has_value());

  SlotFeedback noise;
  noise.outcome = SlotOutcome::kNoise;
  EXPECT_EQ(inj.perceive(0, 2, noise).outcome, SlotOutcome::kSilence);

  SlotFeedback silence;
  EXPECT_EQ(inj.perceive(0, 3, silence).outcome, SlotOutcome::kNoise);
  EXPECT_EQ(inj.count(FaultKind::kFeedbackCorrupt), 4);
}

TEST(Faults, LossAlwaysHearsSilence) {
  FaultPlan plan;
  plan.feedback_loss_rate = 1.0;
  FaultInjector inj(plan, 1);
  SlotFeedback success;
  success.outcome = SlotOutcome::kSuccess;
  success.message = make_data(3);
  const SlotFeedback heard = inj.perceive(5, 0, success);
  EXPECT_EQ(heard.outcome, SlotOutcome::kSilence);
  EXPECT_FALSE(heard.message.has_value());
  EXPECT_EQ(inj.count(FaultKind::kFeedbackLoss), 1);
}

TEST(Faults, PermanentCrashRetiresForever) {
  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.crash_permanent_frac = 1.0;
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.tick(0, 0), FaultInjector::JobHealth::kDead);
  EXPECT_EQ(inj.tick(0, 1), FaultInjector::JobHealth::kDead);
  EXPECT_EQ(inj.count(FaultKind::kCrash), 1) << "dead jobs stop drawing";
}

TEST(Faults, StallGoesDarkThenRestarts) {
  FaultPlan plan;
  plan.crash_rate = 1.0;  // crashes immediately...
  plan.crash_permanent_frac = 0.0;
  plan.stall_min = 3;
  plan.stall_max = 3;  // ...for exactly 3 slots
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.tick(0, 0), FaultInjector::JobHealth::kDark);
  EXPECT_EQ(inj.tick(0, 1), FaultInjector::JobHealth::kDark);
  EXPECT_EQ(inj.tick(0, 2), FaultInjector::JobHealth::kDark);
  // Slot 3: the stall ends; with crash_rate=1 it immediately re-crashes,
  // but the restart must have been recorded.
  (void)inj.tick(0, 3);
  EXPECT_EQ(inj.count(FaultKind::kRestart), 1);
  EXPECT_EQ(inj.count(FaultKind::kCrash), 2);
}

TEST(Faults, SkewAccumulatesForwardOnly) {
  FaultPlan plan;
  plan.clock_skew_rate = 1.0;
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.skew(0), 0);
  (void)inj.tick(0, 0);
  EXPECT_EQ(inj.skew(0), 1);
  (void)inj.tick(0, 1);
  EXPECT_EQ(inj.skew(0), 2);
  EXPECT_EQ(inj.skew(1), 0) << "per-job state is independent";
}

TEST(Faults, CrashedJobsGoDarkInTheSimulator) {
  FaultPlan plan;
  plan.crash_rate = 0.05;
  plan.crash_permanent_frac = 0.0;
  plan.stall_min = 4;
  plan.stall_max = 8;
  const auto result = run_with(plan, 3);
  EXPECT_GT(result.metrics.crashes, 0);
  EXPECT_GT(result.metrics.dark_job_slots, 0);
  std::int64_t job_dark = 0;
  for (const auto& job : result.jobs) {
    job_dark += job.dark_slots;
    EXPECT_LE(job.dark_slots, job.live_slots);
  }
  EXPECT_EQ(job_dark, result.metrics.dark_job_slots)
      << "per-job and channel dark accounting must agree";
}

TEST(Faults, EventsAreRecordedInSlotOrder) {
  const auto result = run_with(full_plan(), 21);
  ASSERT_FALSE(result.fault_events.empty());
  std::int64_t by_kind = 0;
  for (std::size_t i = 1; i < result.fault_events.size(); ++i) {
    EXPECT_LE(result.fault_events[i - 1].slot, result.fault_events[i].slot);
  }
  for (const auto& ev : result.fault_events) {
    by_kind += 1;
    EXPECT_NE(to_string(ev.kind), std::string("unknown"));
  }
  EXPECT_EQ(by_kind, result.metrics.faults_injected);
}

// --- budgeted adversaries -------------------------------------------------

TEST(BudgetedJammer, NeverExceedsBudgetPerWindow) {
  auto jammer = make_budgeted_jammer(make_blanket_jammer(1.0), /*budget=*/2,
                                     /*window_length=*/10);
  auto* budgeted = dynamic_cast<BudgetedJammer*>(jammer.get());
  ASSERT_NE(budgeted, nullptr);
  int granted = 0;
  for (Slot t = 0; t < 30; ++t) {
    granted += budgeted->wants_jam(t, SlotOutcome::kSilence, nullptr) ? 1 : 0;
  }
  EXPECT_EQ(granted, 6) << "2 attempts in each of 3 windows";
  EXPECT_EQ(budgeted->attempts_total(), 6);
  EXPECT_EQ(budgeted->max_window_attempts(), 2);
  EXPECT_LE(budgeted->max_window_attempts(), budgeted->budget());
}

TEST(BudgetedJammer, BudgetEnforcedAcrossFullSimulation) {
  SimConfig config;
  config.seed = 5;
  auto jammer = make_budgeted_jammer(make_reactive_jammer(1.0), 3, 64);
  // The jammer outlives finish() inside the Simulation object, so the raw
  // pointer stays valid for the post-run assertions.
  auto* budgeted = dynamic_cast<BudgetedJammer*>(jammer.get());
  ASSERT_NE(budgeted, nullptr);
  Simulation sim(workload::gen_batch(12, 1024, 0), beb_factory(), config,
                 std::move(jammer));
  const auto result = sim.finish();
  EXPECT_GT(budgeted->attempts_total(), 0);
  EXPECT_LE(budgeted->max_window_attempts(), 3);
  EXPECT_GT(result.metrics.jammed_slots, 0);
}

TEST(BudgetedJammer, AdaptivePolicySpendsOnData) {
  auto jammer = make_adaptive_jammer(/*budget=*/4, /*window_length=*/100,
                                     /*p_jam=*/1.0);
  auto* budgeted = dynamic_cast<BudgetedJammer*>(jammer.get());
  ASSERT_NE(budgeted, nullptr);
  const Message data = make_data(1);
  // Data is always worth an attempt while budget remains.
  EXPECT_TRUE(budgeted->wants_jam(0, SlotOutcome::kSuccess, &data));
  // Collisions and silence never are.
  EXPECT_FALSE(budgeted->wants_jam(1, SlotOutcome::kNoise, nullptr));
  EXPECT_FALSE(budgeted->wants_jam(2, SlotOutcome::kSilence, nullptr));
  EXPECT_EQ(budgeted->attempts_total(), 1);
}

// --- validation -----------------------------------------------------------

TEST(Validation, FaultPlanRejectsOutOfRangeRates) {
  FaultPlan plan;
  plan.feedback_corrupt_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = FaultPlan{};
  plan.crash_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = FaultPlan{};
  plan.stall_min = 8;
  plan.stall_max = 4;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  EXPECT_NO_THROW(FaultPlan{}.validate());
}

TEST(Validation, SimulationRejectsBadFaultPlan) {
  SimConfig config;
  config.faults.feedback_loss_rate = 2.0;
  EXPECT_THROW(Simulation(workload::gen_batch(2, 64, 0), beb_factory(),
                          config, nullptr),
               std::invalid_argument);
}

TEST(Validation, JammerFactoriesRejectBadProbabilities) {
  EXPECT_THROW(make_blanket_jammer(1.5), std::invalid_argument);
  EXPECT_THROW(make_reactive_jammer(-0.5), std::invalid_argument);
  EXPECT_THROW(make_control_jammer(2.0), std::invalid_argument);
  EXPECT_THROW(make_data_jammer(-1.0), std::invalid_argument);
  EXPECT_THROW(make_random_jammer(1.5, 0.5, util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(make_random_jammer(0.5, -0.1, util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(make_adaptive_jammer(-1, 10, 0.5), std::invalid_argument);
  EXPECT_THROW(make_adaptive_jammer(5, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(make_budgeted_jammer(nullptr, 1, 1), std::invalid_argument);
  EXPECT_NO_THROW(make_adaptive_jammer(0, 1, 1.0));
}

TEST(Validation, InstanceRejectsEmptyWindowsAndNegativeReleases) {
  workload::Instance bad;
  bad.jobs.push_back(workload::JobSpec{10, 10});  // d_j == r_j
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.jobs[0] = workload::JobSpec{10, 5};  // d_j < r_j
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.jobs[0] = workload::JobSpec{-1, 5};  // negative release
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.jobs[0] = workload::JobSpec{0, 1};
  EXPECT_NO_THROW(bad.validate());

  // The simulator refuses malformed instances at construction.
  EXPECT_THROW(Simulation(test::instance_of({{4, 4}}), beb_factory(),
                          SimConfig{}, nullptr),
               std::invalid_argument);
}

// --- PUNCTUAL graceful degradation ---------------------------------------

TEST(DesyncFallback, ImpossibleObservationsTriggerDesperateFallback) {
  core::Params params;
  params.desync_tolerance = 2;
  params.validate();
  core::punctual::PunctualProtocol proto(params, util::Rng(1));
  JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = 1024;
  proto.on_activate(info);

  // Silence for a full round makes the job announce its own frame...
  Slot t = 0;
  while (proto.stage() == core::punctual::PunctualProtocol::Stage::kSyncListen) {
    ASSERT_LT(t, 100) << "sync-listen should end";
    (void)proto.on_slot(SlotView{t, t});
    proto.on_feedback(SlotView{t, t}, SlotFeedback{});
    ++t;
  }
  ASSERT_EQ(proto.stage(),
            core::punctual::PunctualProtocol::Stage::kSyncAnnounce);

  // ...and its two announce transmissions each come back as *silence* —
  // physically impossible, so after tolerance=2 observations the job
  // abandons the grid.
  for (int i = 0; i < 2; ++i) {
    const SlotAction a = proto.on_slot(SlotView{t, t});
    EXPECT_TRUE(a.transmit);
    proto.on_feedback(SlotView{t, t}, SlotFeedback{});  // lost feedback
    ++t;
  }
  EXPECT_TRUE(proto.desync_fallback());
  EXPECT_EQ(proto.desync_evidence(), 2);
  EXPECT_EQ(proto.stage(),
            core::punctual::PunctualProtocol::Stage::kDesperate);
  EXPECT_TRUE(proto.was_anarchist());
}

TEST(DesyncFallback, DisabledByDefaultAndNeverFiresFaultFree) {
  core::Params params;
  EXPECT_EQ(params.desync_tolerance, 0) << "off = paper-faithful default";
  params.desync_tolerance = -1;
  EXPECT_THROW(params.validate(), std::invalid_argument);

  // A fault-free PUNCTUAL run with the fallback enabled behaves exactly as
  // with it disabled: the evidence signals are physically impossible on a
  // clean channel.
  const auto instance = workload::gen_batch(8, 8192, 0);
  core::Params on;
  on.tau = 8;
  on.min_class = 13;
  on.desync_tolerance = 1;
  core::Params off = on;
  off.desync_tolerance = 0;
  SimConfig config;
  config.seed = 9;
  config.record_slots = true;
  const auto with_fallback =
      run(instance, core::punctual::make_punctual_factory(on), config);
  const auto without =
      run(instance, core::punctual::make_punctual_factory(off), config);
  EXPECT_TRUE(same_trace(with_fallback, without));
}

}  // namespace
}  // namespace crmd::sim
