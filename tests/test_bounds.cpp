// Tests for the Lemma 2 contention-bound calculators: envelope shapes, the
// exact success-probability formula, and a Monte-Carlo cross-check that
// empirical slot outcomes respect the bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/bounds.hpp"
#include "util/rng.hpp"

namespace crmd::analysis {
namespace {

TEST(Bounds, EnvelopeValues) {
  // C = 1: lower = e^-2, upper = 2/e.
  EXPECT_NEAR(success_prob_lower(1.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(success_prob_upper(1.0), 2.0 / std::exp(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(success_prob_lower(0.0), 0.0);
  EXPECT_DOUBLE_EQ(success_prob_upper(0.0), 0.0);
}

TEST(Bounds, LowerNeverExceedsUpper) {
  for (double c = 0.01; c < 20.0; c += 0.07) {
    EXPECT_LE(success_prob_lower(c), success_prob_upper(c)) << "C=" << c;
  }
}

TEST(Bounds, HighContentionKillsSuccess) {
  // Corollary 3: C = Ω(1) implies exponentially small success.
  EXPECT_LT(success_prob_upper(20.0), 1e-6);
}

TEST(Bounds, ExactFormulaSimpleCases) {
  // One transmitter with p: success prob p.
  const std::vector<double> one{0.3};
  EXPECT_NEAR(success_prob_exact(one), 0.3, 1e-12);
  // Two with p, q: p(1-q) + q(1-p).
  const std::vector<double> two{0.3, 0.5};
  EXPECT_NEAR(success_prob_exact(two), 0.3 * 0.5 + 0.5 * 0.7, 1e-12);
  // Degenerate p = 1 transmitter: success iff everyone else silent.
  const std::vector<double> with_one{1.0, 0.25};
  EXPECT_NEAR(success_prob_exact(with_one), 0.75, 1e-12);
  // Two certain transmitters always collide.
  const std::vector<double> both_one{1.0, 1.0};
  EXPECT_NEAR(success_prob_exact(both_one), 0.0, 1e-12);
  EXPECT_NEAR(success_prob_exact(std::vector<double>{}), 0.0, 1e-12);
}

TEST(Bounds, SilenceFormula) {
  const std::vector<double> probs{0.5, 0.5};
  EXPECT_NEAR(silence_prob_exact(probs), 0.25, 1e-12);
  EXPECT_NEAR(silence_prob_exact(std::vector<double>{}), 1.0, 1e-12);
}

TEST(Bounds, ExactRespectsEnvelopesWhenProbsAtMostHalf) {
  // Lemma 2's hypothesis: all p_i <= 1/2. Check random profiles.
  util::Rng rng(246);
  for (int rep = 0; rep < 500; ++rep) {
    const int n = static_cast<int>(rng.range(1, 30));
    std::vector<double> probs;
    double contention = 0.0;
    for (int i = 0; i < n; ++i) {
      const double p = rng.next_double() * 0.5;
      probs.push_back(p);
      contention += p;
    }
    const double exact = success_prob_exact(probs);
    EXPECT_GE(exact, success_prob_lower(contention) - 1e-12)
        << "rep " << rep;
    EXPECT_LE(exact, success_prob_upper(contention) + 1e-12)
        << "rep " << rep;
  }
}

TEST(Bounds, MonteCarloMatchesExact) {
  const std::vector<double> probs{0.1, 0.25, 0.4, 0.05};
  const double exact = success_prob_exact(probs);
  util::Rng rng(135);
  int successes = 0;
  constexpr int kTrials = 200000;
  for (int trial = 0; trial < kTrials; ++trial) {
    int tx = 0;
    for (const double p : probs) {
      tx += rng.bernoulli(p) ? 1 : 0;
    }
    successes += (tx == 1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(successes) / kTrials, exact, 0.005);
}

}  // namespace
}  // namespace crmd::analysis
