// Event-driven fast-forward correctness (DESIGN.md §6j). The contract under
// test: FastForward::kOn is bit-identical to kValidate (which re-simulates
// every skipped slot in stripped form and throws std::logic_error on any
// broken dormancy promise), kOn preserves every job outcome and integer
// metric of the slot-by-slot kOff engine, protocols without a promise and
// runs with per-slot randomness degrade to exact kOff behavior, and the
// streaming (arrival-process) engine is bit-identical to the batch engine
// on the same job set — including under forced compaction.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/beb.hpp"
#include "baselines/sawtooth.hpp"
#include "core/params.hpp"
#include "core/uniform.hpp"
#include "report_digest.hpp"
#include "sim/arrivals.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::sim {
namespace {

using tests::mix;
using tests::mix_stats;

/// Order-sensitive digest over everything a SimResult carries that the
/// fast-forward engine must reproduce bit-exactly (jobs bitwise, every
/// integer metric including fast_forward_slots, contention by bit
/// pattern). Local to this suite — the pinned golden digest in
/// tests/report_digest.hpp deliberately excludes the FF provenance fields.
std::uint64_t sim_digest(const SimResult& r) {
  std::uint64_t h = 0x46465357ULL;  // "FFSW"
  h = mix(h, r.jobs.size());
  for (const JobResult& j : r.jobs) {
    h = mix(h, j.id);
    h = mix(h, static_cast<std::uint64_t>(j.release));
    h = mix(h, static_cast<std::uint64_t>(j.deadline));
    h = mix(h, j.success ? 1 : 0);
    h = mix(h, static_cast<std::uint64_t>(j.success_slot));
    h = mix(h, static_cast<std::uint64_t>(j.transmissions));
    h = mix(h, static_cast<std::uint64_t>(j.live_slots));
    h = mix(h, static_cast<std::uint64_t>(j.dark_slots));
  }
  const SimMetrics& m = r.metrics;
  for (const std::int64_t v :
       {m.slots_simulated, m.slots_skipped, m.fast_forward_slots,
        m.live_peak, m.silent_slots, m.success_slots, m.noise_slots,
        m.jammed_slots, m.data_successes, m.capture_wins,
        m.collision_cost_slots}) {
    h = mix(h, static_cast<std::uint64_t>(v));
  }
  h = mix_stats(h, m.contention);
  // SimResult::stream is deliberately NOT hashed: the streaming engine
  // folds a rolling summary that batch runs leave zero-initialized, so the
  // streaming-vs-batch equivalence is over jobs + metrics (the stream
  // summary has its own consistency test below).
  return h;
}

/// Sparse stagger: long dormant stretches inside each live window plus
/// empty-live gaps between windows — the workload fast-forward exists for.
workload::Instance sparse_instance(std::int64_t jobs) {
  workload::Instance instance;
  for (std::int64_t i = 0; i < jobs; ++i) {
    instance.jobs.push_back(workload::JobSpec{i * 512, i * 512 + 256});
  }
  return instance;
}

struct Factory {
  const char* name;
  ProtocolFactory factory;
};

std::vector<Factory> promising_factories() {
  core::Params params;
  params.lambda = 2;
  std::vector<Factory> out;
  out.push_back({"uniform", core::make_uniform_factory(params)});
  out.push_back({"beb", baselines::make_beb_factory()});
  return out;
}

std::vector<std::pair<std::string, FeedbackModel>> feedback_models() {
  return {
      {"ternary", FeedbackModel{}},
      {"binary_ack", FeedbackModel::binary_ack()},
      {"collision_as_silence", FeedbackModel::collision_as_silence()},
      {"capture:0.5", FeedbackModel::capture(0.5)},
  };
}

SimResult run_with(const workload::Instance& instance,
                   const ProtocolFactory& factory, FastForward ff,
                   const FeedbackModel& feedback, int cost,
                   std::uint64_t seed = 99) {
  SimConfig config;
  config.seed = seed;
  config.fast_forward = ff;
  config.feedback = feedback;
  config.collision_cost = cost;
  return run(instance, factory, config);
}

// kOn must be bit-identical to kValidate — and kValidate must not throw —
// across protocols x feedback models x collision costs x workloads. This
// is the central FF correctness claim: the validating engine *simulates*
// every skipped slot and checks the dormancy promises, so digest equality
// proves the skip accounted exactly what simulation would have.
TEST(FastForward, OnMatchesValidateAcrossModels) {
  const auto workloads = std::vector<std::pair<std::string, workload::Instance>>{
      {"sparse", sparse_instance(48)},
      {"burst", workload::gen_batch(48, 4096)},
  };
  std::int64_t total_ff_slots = 0;
  for (const Factory& f : promising_factories()) {
    for (const auto& [fb_name, feedback] : feedback_models()) {
      for (const int cost : {1, 3}) {
        for (const auto& [wl_name, instance] : workloads) {
          const SimResult on =
              run_with(instance, f.factory, FastForward::kOn, feedback,
                       cost);
          SimResult validated;
          ASSERT_NO_THROW(
              validated = run_with(instance, f.factory,
                                   FastForward::kValidate, feedback, cost))
              << f.name << "/" << fb_name << "/cost=" << cost << "/"
              << wl_name;
          EXPECT_EQ(sim_digest(on), sim_digest(validated))
              << f.name << "/" << fb_name << "/cost=" << cost << "/"
              << wl_name;
          total_ff_slots += on.metrics.fast_forward_slots;
        }
      }
    }
  }
  // The sweep must actually exercise the skip path, not vacuously pass.
  EXPECT_GT(total_ff_slots, 0);
}

// kOn preserves the slot-by-slot engine's results: jobs bitwise, every
// integer metric, and the contention distribution in count/min/max (its
// mean and variance may differ from kOff only by floating-point
// reassociation of the batched Welford update).
TEST(FastForward, OnPreservesSlotBySlotResults) {
  for (const Factory& f : promising_factories()) {
    const workload::Instance instance = sparse_instance(64);
    const SimResult off = run_with(instance, f.factory, FastForward::kOff,
                                   FeedbackModel{}, 1);
    const SimResult on = run_with(instance, f.factory, FastForward::kOn,
                                  FeedbackModel{}, 1);
    EXPECT_GT(on.metrics.fast_forward_slots, 0) << f.name;
    EXPECT_EQ(off.metrics.fast_forward_slots, 0) << f.name;

    ASSERT_EQ(on.jobs.size(), off.jobs.size()) << f.name;
    for (std::size_t i = 0; i < on.jobs.size(); ++i) {
      EXPECT_EQ(on.jobs[i].success, off.jobs[i].success) << f.name;
      EXPECT_EQ(on.jobs[i].success_slot, off.jobs[i].success_slot)
          << f.name;
      EXPECT_EQ(on.jobs[i].transmissions, off.jobs[i].transmissions)
          << f.name;
      EXPECT_EQ(on.jobs[i].live_slots, off.jobs[i].live_slots) << f.name;
    }
    EXPECT_EQ(on.metrics.slots_simulated, off.metrics.slots_simulated)
        << f.name;
    EXPECT_EQ(on.metrics.slots_skipped, off.metrics.slots_skipped)
        << f.name;
    EXPECT_EQ(on.metrics.silent_slots, off.metrics.silent_slots) << f.name;
    EXPECT_EQ(on.metrics.success_slots, off.metrics.success_slots)
        << f.name;
    EXPECT_EQ(on.metrics.noise_slots, off.metrics.noise_slots) << f.name;
    EXPECT_EQ(on.metrics.live_peak, off.metrics.live_peak) << f.name;
    EXPECT_EQ(on.metrics.contention.count(), off.metrics.contention.count())
        << f.name;
    EXPECT_EQ(on.metrics.contention.min(), off.metrics.contention.min())
        << f.name;
    EXPECT_EQ(on.metrics.contention.max(), off.metrics.contention.max())
        << f.name;
    EXPECT_NEAR(on.metrics.contention.mean(), off.metrics.contention.mean(),
                1e-9)
        << f.name;
  }
}

// A protocol without a dormancy promise (sawtooth inherits the no-promise
// default) makes fast-forward a provable no-op: zero skipped slots and a
// digest identical to kOff down to the last contention bit.
TEST(FastForward, NoPromiseProtocolDegradesToExactOff) {
  const auto sawtooth = baselines::make_sawtooth_factory();
  const workload::Instance instance = sparse_instance(32);
  const SimResult off =
      run_with(instance, sawtooth, FastForward::kOff, FeedbackModel{}, 1);
  const SimResult on =
      run_with(instance, sawtooth, FastForward::kOn, FeedbackModel{}, 1);
  EXPECT_EQ(on.metrics.fast_forward_slots, 0);
  EXPECT_EQ(sim_digest(on), sim_digest(off));
}

// Per-slot randomness the skip cannot reproduce disables fast-forward
// outright: a jammer consumes a draw per slot, so kOn silently becomes
// exact kOff behavior rather than skewing the jam stream.
TEST(FastForward, JammerDisablesFastForward) {
  core::Params params;
  params.lambda = 2;
  const auto uniform = core::make_uniform_factory(params);
  const workload::Instance instance = sparse_instance(32);
  const auto run_jammed = [&](FastForward ff) {
    SimConfig config;
    config.seed = 7;
    config.fast_forward = ff;
    return run(instance, uniform, config, make_blanket_jammer(0.2));
  };
  const SimResult off = run_jammed(FastForward::kOff);
  const SimResult on = run_jammed(FastForward::kOn);
  EXPECT_EQ(on.metrics.fast_forward_slots, 0);
  EXPECT_EQ(sim_digest(on), sim_digest(off));
}

// A SlotObserver needs every slot materialized; installing one suppresses
// skips (results still exact) so observers never see gaps.
TEST(FastForward, ObserverSuppressesSkips) {
  core::Params params;
  params.lambda = 2;
  const auto uniform = core::make_uniform_factory(params);
  SimConfig config;
  config.seed = 11;
  config.fast_forward = FastForward::kOn;
  Simulation simulation(sparse_instance(16), uniform, config);
  std::int64_t observed = 0;
  simulation.set_observer(
      [&](const SlotRecord&, std::span<const Transmission>) { ++observed; });
  const SimResult result = simulation.finish();
  EXPECT_EQ(result.metrics.fast_forward_slots, 0);
  EXPECT_EQ(observed, result.metrics.slots_simulated);
}

// ---------------------------------------------------------------------------
// Streaming-vs-batch bit equality
// ---------------------------------------------------------------------------

workload::Instance poisson_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  workload::Instance instance =
      workload::gen_poisson(0.02, 1024, 4096, rng);
  instance.normalize();
  return instance;
}

SimResult run_streamed(const workload::Instance& instance,
                       const ProtocolFactory& factory, SimConfig config) {
  return run_stream(std::make_unique<VectorArrivals>(instance.jobs), factory,
                    std::move(config));
}

// Feeding the engine the same normalized job list through a VectorArrivals
// process must reproduce the batch run bit-for-bit: same ids, same
// per-job protocol streams, same metrics — with fast-forward off and on,
// and under a compaction threshold small enough to force many array
// erasures mid-run.
TEST(FastForward, StreamingMatchesBatchBitExactly) {
  core::Params params;
  params.lambda = 2;
  const auto uniform = core::make_uniform_factory(params);
  const workload::Instance instance = poisson_instance(123);
  ASSERT_FALSE(instance.empty());
  const Slot horizon = instance.max_deadline();

  for (const FastForward ff : {FastForward::kOff, FastForward::kOn}) {
    SimConfig config;
    config.seed = 42;
    config.horizon = horizon;
    config.fast_forward = ff;
    const SimResult batch = run(instance, uniform, config);
    const SimResult streamed = run_streamed(instance, uniform, config);
    EXPECT_EQ(sim_digest(batch), sim_digest(streamed))
        << "ff=" << static_cast<int>(ff);
    // jobs come back sorted by id in both modes.
    ASSERT_EQ(streamed.jobs.size(), instance.size());

    // Forced compaction must be invisible in the results.
    SimConfig tight = config;
    tight.stream_compact = 2;
    const SimResult compacted = run_streamed(instance, uniform, tight);
    EXPECT_EQ(sim_digest(batch), sim_digest(compacted))
        << "ff=" << static_cast<int>(ff) << " (stream_compact=2)";
  }
}

// keep_job_results=false is the bounded-memory mode: per-job results are
// dropped but the rolling StreamSummary must still agree with what the
// full-results run folded.
TEST(FastForward, StreamSummaryMatchesKeptResults) {
  core::Params params;
  params.lambda = 2;
  const auto uniform = core::make_uniform_factory(params);
  const workload::Instance instance = poisson_instance(321);
  ASSERT_FALSE(instance.empty());

  SimConfig config;
  config.seed = 5;
  config.horizon = instance.max_deadline();
  const SimResult kept = run_streamed(instance, uniform, config);
  SimConfig summary_only = config;
  summary_only.keep_job_results = false;
  const SimResult summary = run_streamed(instance, uniform, summary_only);

  EXPECT_TRUE(summary.jobs.empty());
  EXPECT_EQ(kept.stream.jobs,
            static_cast<std::int64_t>(instance.size()));
  EXPECT_EQ(summary.stream.jobs, kept.stream.jobs);
  EXPECT_EQ(summary.stream.delivered, kept.stream.delivered);
  EXPECT_EQ(summary.stream.delivered, kept.successes());
  EXPECT_EQ(summary.stream.latency.count(), kept.stream.latency.count());
  EXPECT_EQ(summary.stream.latency.mean(), kept.stream.latency.mean());
  EXPECT_EQ(summary.stream.accesses.mean(), kept.stream.accesses.mean());
}

}  // namespace
}  // namespace crmd::sim
