// Tests for the γ-slack feasibility checkers: EDF vs Hall cross-validation
// (parameterized property sweep) plus hand-built cases.

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

namespace crmd::workload {
namespace {

TEST(Feasibility, EmptyInstanceIsFeasible) {
  const Instance inst;
  EXPECT_TRUE(edf_feasible(inst, 1));
  EXPECT_TRUE(hall_feasible(inst, 1));
}

TEST(Feasibility, SingleJobExactFit) {
  Instance inst;
  inst.jobs = {{0, 4}};
  EXPECT_TRUE(edf_feasible(inst, 4));
  EXPECT_FALSE(edf_feasible(inst, 5));
  EXPECT_TRUE(hall_feasible(inst, 4));
  EXPECT_FALSE(hall_feasible(inst, 5));
}

TEST(Feasibility, TwoJobsSharedWindow) {
  Instance inst;
  inst.jobs = {{0, 8}, {0, 8}};
  EXPECT_TRUE(edf_feasible(inst, 4));
  EXPECT_FALSE(edf_feasible(inst, 5));
}

TEST(Feasibility, OverloadedIntervalDetected) {
  // Three unit jobs squeezed into two slots.
  Instance inst;
  inst.jobs = {{0, 2}, {0, 2}, {0, 2}};
  EXPECT_FALSE(edf_feasible(inst, 1));
  EXPECT_FALSE(hall_feasible(inst, 1));
}

TEST(Feasibility, StaggeredReleasesNeedEdfOrder) {
  // Classic EDF case: later-released job with earlier deadline must preempt.
  Instance inst;
  inst.jobs = {{0, 10}, {2, 4}};
  EXPECT_TRUE(edf_feasible(inst, 2));
  EXPECT_TRUE(hall_feasible(inst, 2));
}

TEST(Feasibility, WindowSmallerThanLengthInfeasible) {
  Instance inst;
  inst.jobs = {{0, 3}};
  EXPECT_FALSE(edf_feasible(inst, 4));
}

TEST(Feasibility, SlackWrapsInflation) {
  Instance inst;
  inst.jobs = {{0, 8}, {0, 8}};
  EXPECT_TRUE(is_slack_feasible(inst, 0.5));        // L=2, demand 4 <= 8
  EXPECT_FALSE(is_slack_feasible(inst, 1.0 / 5));   // L=5, demand 10 > 8
}

TEST(Feasibility, MaxInflationBinarySearch) {
  Instance inst;
  inst.jobs = {{0, 12}, {0, 12}, {0, 12}};
  // Three jobs in 12 slots: max length 4.
  EXPECT_EQ(max_inflation(inst), 4);

  Instance single;
  single.jobs = {{0, 7}};
  EXPECT_EQ(max_inflation(single), 7);

  Instance overloaded;
  overloaded.jobs = {{0, 1}, {0, 1}};
  EXPECT_EQ(max_inflation(overloaded), 0);

  EXPECT_EQ(max_inflation(Instance{}), 0);
}

// Property sweep: EDF and Hall must agree on random instances for several
// inflation lengths.
class FeasibilityAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityAgreement, EdfMatchesHallOnRandomInstances) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int rep = 0; rep < 30; ++rep) {
    Instance inst;
    const int n = static_cast<int>(rng.range(1, 12));
    for (int i = 0; i < n; ++i) {
      const Slot r = rng.range(0, 30);
      const Slot w = rng.range(1, 20);
      inst.jobs.push_back(JobSpec{r, r + w});
    }
    for (const std::int64_t len : {1, 2, 3, 5}) {
      EXPECT_EQ(edf_feasible(inst, len), hall_feasible(inst, len))
          << "seed=" << seed << " rep=" << rep << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibilityAgreement,
                         ::testing::Range(1, 9));

TEST(Feasibility, GeneratorInstancesPassBothCheckers) {
  util::Rng rng(2024);
  AlignedConfig config;
  config.min_class = 5;
  config.max_class = 8;
  config.gamma = 1.0 / 4;
  config.horizon = 1 << 10;
  for (int rep = 0; rep < 5; ++rep) {
    const Instance inst = gen_aligned(config, rng);
    if (inst.size() > 60) {
      continue;  // keep the O(n^3) Hall check cheap
    }
    const auto len = static_cast<std::int64_t>(1.0 / config.gamma);
    EXPECT_TRUE(edf_feasible(inst, len));
    EXPECT_TRUE(hall_feasible(inst, len));
  }
}

}  // namespace
}  // namespace crmd::workload
