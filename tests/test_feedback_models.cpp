// Tests for the pluggable channel feedback models (sim/channel.hpp,
// DESIGN.md §6f): ternary bit-identity, no-CD indistinguishability,
// noisy-model determinism, and capability round-trips through the
// registry and the simulator.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/runner.hpp"
#include "core/aligned/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "core/registry.hpp"
#include "core/uniform.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace crmd {
namespace {

/// One perceived slot: the outcome plus whether a payload arrived.
struct Perceived {
  sim::SlotOutcome outcome;
  bool has_message;

  friend bool operator==(const Perceived&, const Perceived&) = default;
};

/// Transmits its data message at the given offsets-since-release and logs
/// every perceived feedback. Never gives up on its own.
class RecordingProtocol final : public sim::Protocol {
 public:
  RecordingProtocol(std::vector<Slot> offsets,
                    std::shared_ptr<std::vector<Perceived>> log)
      : offsets_(std::move(offsets)), log_(std::move(log)) {}

  void on_activate(const sim::JobInfo& info) override { info_ = info; }

  sim::SlotAction on_slot(const sim::SlotView& view) override {
    sim::SlotAction action;
    for (const Slot o : offsets_) {
      if (o == view.since_release) {
        action.transmit = true;
        action.message = sim::make_data(info_.id);
        action.declared_prob = 1.0;
      }
    }
    return action;
  }

  void on_feedback(const sim::SlotView&, const sim::SlotFeedback& fb) override {
    log_->push_back({fb.outcome, fb.message.has_value()});
  }

  [[nodiscard]] bool done() const override { return false; }

 private:
  std::vector<Slot> offsets_;
  std::shared_ptr<std::vector<Perceived>> log_;
  sim::JobInfo info_;
};

/// Captures the ChannelCaps the simulator hands to on_activate.
class CapsProbeProtocol final : public sim::Protocol {
 public:
  explicit CapsProbeProtocol(std::shared_ptr<sim::ChannelCaps> out)
      : out_(std::move(out)) {}
  void on_activate(const sim::JobInfo& info) override { *out_ = info.caps; }
  sim::SlotAction on_slot(const sim::SlotView&) override { return {}; }
  void on_feedback(const sim::SlotView&, const sim::SlotFeedback&) override {}
  [[nodiscard]] bool done() const override { return false; }

 private:
  std::shared_ptr<sim::ChannelCaps> out_;
};

/// Three-job fixture: jobs 0 and 1 collide in slot 0, job 0 transmits
/// alone in slot 2, job 2 only listens. Slots 1 and 3 are empty. Returns
/// (listener log, job-0 transmitter log, result).
struct ScenarioLogs {
  std::shared_ptr<std::vector<Perceived>> listener =
      std::make_shared<std::vector<Perceived>>();
  std::shared_ptr<std::vector<Perceived>> transmitter =
      std::make_shared<std::vector<Perceived>>();
  sim::SimResult result;
};

ScenarioLogs run_scenario(const sim::FeedbackModel& model) {
  ScenarioLogs logs;
  workload::Instance instance;
  instance.jobs = {{0, 4}, {0, 4}, {0, 4}};
  const sim::ProtocolFactory factory = [&](const sim::JobInfo& info,
                                           util::Rng) {
    if (info.id == 0) {
      return std::unique_ptr<sim::Protocol>(std::make_unique<
          RecordingProtocol>(std::vector<Slot>{0, 2}, logs.transmitter));
    }
    if (info.id == 1) {
      // Second collider; its own perceptions are not asserted on.
      return std::unique_ptr<sim::Protocol>(std::make_unique<
          RecordingProtocol>(std::vector<Slot>{0},
                             std::make_shared<std::vector<Perceived>>()));
    }
    return std::unique_ptr<sim::Protocol>(
        std::make_unique<RecordingProtocol>(std::vector<Slot>{},
                                            logs.listener));
  };
  sim::SimConfig config;
  config.seed = 7;
  config.feedback = model;
  logs.result = sim::run(instance, factory, config);
  return logs;
}

// ---------------------------------------------------------------------------
// Ternary bit-identity
// ---------------------------------------------------------------------------

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].success, b.jobs[i].success) << "job " << i;
    EXPECT_EQ(a.jobs[i].success_slot, b.jobs[i].success_slot) << "job " << i;
    EXPECT_EQ(a.jobs[i].transmissions, b.jobs[i].transmissions)
        << "job " << i;
  }
  EXPECT_EQ(a.metrics.slots_simulated, b.metrics.slots_simulated);
  EXPECT_EQ(a.metrics.silent_slots, b.metrics.silent_slots);
  EXPECT_EQ(a.metrics.success_slots, b.metrics.success_slots);
  EXPECT_EQ(a.metrics.noise_slots, b.metrics.noise_slots);
  EXPECT_EQ(a.metrics.feedback_flips, b.metrics.feedback_flips);
}

sim::SimResult run_aligned_batch(const sim::SimConfig& config) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 9;
  return sim::run(workload::gen_batch(24, 512, 0),
                  core::aligned::make_aligned_factory(params), config);
}

TEST(TernaryBitIdentity, ExplicitTernaryMatchesDefault) {
  sim::SimConfig defaults;
  defaults.seed = 20260806;
  sim::SimConfig explicit_ternary = defaults;
  explicit_ternary.feedback = sim::FeedbackModel::ternary();
  expect_identical(run_aligned_batch(defaults),
                   run_aligned_batch(explicit_ternary));
}

TEST(TernaryBitIdentity, NoisyWithZeroEpsMatchesTernary) {
  // eps = 0 never draws from the flip stream, so the trajectories — not
  // just the aggregates — match the ternary run exactly.
  sim::SimConfig defaults;
  defaults.seed = 20260806;
  sim::SimConfig noisy0 = defaults;
  noisy0.feedback = sim::FeedbackModel::noisy(0.0);
  const auto a = run_aligned_batch(defaults);
  const auto b = run_aligned_batch(noisy0);
  expect_identical(a, b);
  EXPECT_EQ(b.metrics.feedback_flips, 0);
}

TEST(TernaryBitIdentity, RunOptionsFormMatchesPositionalForm) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  const auto factory = core::aligned::make_aligned_factory(params);
  const analysis::InstanceGen gen = [](util::Rng&) {
    return workload::gen_batch(16, 256, 0);
  };
  const auto legacy = analysis::run_replications(gen, factory, 3, 11);
  analysis::RunOptions options;  // default ternary feedback
  const auto via_options =
      analysis::run_replications(gen, factory, 3, 11, options);
  EXPECT_EQ(legacy.outcomes.overall().successes(),
            via_options.outcomes.overall().successes());
  EXPECT_EQ(legacy.outcomes.overall().trials(),
            via_options.outcomes.overall().trials());
  EXPECT_EQ(legacy.channel.slots_simulated,
            via_options.channel.slots_simulated);
  EXPECT_EQ(legacy.channel.noise_slots, via_options.channel.noise_slots);
  EXPECT_EQ(legacy.replications, via_options.replications);
}

// ---------------------------------------------------------------------------
// No-CD indistinguishability
// ---------------------------------------------------------------------------

TEST(CollisionAsSilence, EmptyAndCollidedSlotsIndistinguishable) {
  const auto logs = run_scenario(sim::FeedbackModel::collision_as_silence());
  // Slot 0 collided on the channel; slot 1 (and 3) were empty.
  EXPECT_EQ(logs.result.metrics.noise_slots, 1);
  const auto& listener = *logs.listener;
  ASSERT_GE(listener.size(), 4u);
  // A listener provably cannot tell the collided slot from an empty one:
  // the *entire perceived feedback* is equal, not just the outcome.
  EXPECT_EQ(listener[0], listener[1]);
  EXPECT_EQ(listener[0].outcome, sim::SlotOutcome::kSilence);
  EXPECT_FALSE(listener[0].has_message);
  // The success is still delivered to listeners.
  EXPECT_EQ(listener[2].outcome, sim::SlotOutcome::kSuccess);
  EXPECT_TRUE(listener[2].has_message);
}

TEST(CollisionAsSilence, TransmittersGetNoFailureCue) {
  const auto logs = run_scenario(sim::FeedbackModel::collision_as_silence());
  const auto& tx = *logs.transmitter;
  // Job 0 transmitted into the slot-0 collision: while transmitting it
  // cannot listen, so the failure reads as silence — no ACK channel.
  ASSERT_GE(tx.size(), 3u);
  EXPECT_EQ(tx[0].outcome, sim::SlotOutcome::kSilence);
  EXPECT_FALSE(tx[0].has_message);
  // Its solo transmission in slot 2 is still perceived as its success.
  EXPECT_EQ(tx[2].outcome, sim::SlotOutcome::kSuccess);
  // True successes are credited from the channel, not from perception.
  EXPECT_TRUE(logs.result.jobs[0].success);
}

TEST(BinaryAck, ListenersHearNothingTransmittersKeepAck) {
  const auto logs = run_scenario(sim::FeedbackModel::binary_ack());
  const auto& listener = *logs.listener;
  ASSERT_GE(listener.size(), 4u);
  // Pure listeners perceive silence in every slot — even the successful
  // broadcast in slot 2 never reaches them.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(listener[i].outcome, sim::SlotOutcome::kSilence) << "slot " << i;
    EXPECT_FALSE(listener[i].has_message) << "slot " << i;
  }
  // Transmitters keep the true outcome: failure ACK in slot 0, own
  // success in slot 2.
  const auto& tx = *logs.transmitter;
  ASSERT_GE(tx.size(), 3u);
  EXPECT_EQ(tx[0].outcome, sim::SlotOutcome::kNoise);
  EXPECT_EQ(tx[2].outcome, sim::SlotOutcome::kSuccess);
}

TEST(Ternary, ScenarioPerceivedExactly) {
  const auto logs = run_scenario(sim::FeedbackModel::ternary());
  const auto& listener = *logs.listener;
  ASSERT_GE(listener.size(), 4u);
  EXPECT_EQ(listener[0].outcome, sim::SlotOutcome::kNoise);
  EXPECT_EQ(listener[1].outcome, sim::SlotOutcome::kSilence);
  EXPECT_EQ(listener[2].outcome, sim::SlotOutcome::kSuccess);
  EXPECT_TRUE(listener[2].has_message);
}

// ---------------------------------------------------------------------------
// Noisy model determinism
// ---------------------------------------------------------------------------

sim::SimResult run_noisy(std::uint64_t seed, double eps) {
  sim::SimConfig config;
  config.seed = seed;
  config.feedback = sim::FeedbackModel::noisy(eps);
  core::Params params;
  return sim::run(workload::gen_batch(32, 256, 0),
                  core::make_uniform_factory(params), config);
}

TEST(NoisyModel, DeterministicFromSeedAndEps) {
  const auto a = run_noisy(21, 0.2);
  const auto b = run_noisy(21, 0.2);
  expect_identical(a, b);
  // ~20% of 256 slots flip; the run is long enough that zero flips would
  // mean the stream is not being drawn at all.
  EXPECT_GT(a.metrics.feedback_flips, 0);
  EXPECT_LT(a.metrics.feedback_flips, a.metrics.slots_simulated);
}

TEST(NoisyModel, EpsOneFlipsEverySlot) {
  const auto r = run_noisy(3, 1.0);
  EXPECT_EQ(r.metrics.feedback_flips, r.metrics.slots_simulated);
}

TEST(NoisyModel, FlipStreamVariesWithSeed) {
  // Different seeds produce different flip patterns. Comparing flip slots
  // via counts alone could collide, so compare against several seeds: at
  // least one must differ (all-equal would require a constant stream).
  const auto base = run_noisy(100, 0.3);
  bool any_different = false;
  for (std::uint64_t seed : {101, 102, 103}) {
    const auto other = run_noisy(seed, 0.3);
    if (other.metrics.feedback_flips != base.metrics.feedback_flips ||
        other.metrics.success_slots != base.metrics.success_slots ||
        other.metrics.noise_slots != base.metrics.noise_slots) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// Capability round-trips
// ---------------------------------------------------------------------------

TEST(Capabilities, CapsMatchModelSemantics) {
  const auto ternary = sim::FeedbackModel::ternary().caps();
  EXPECT_TRUE(ternary.collision_detection);
  EXPECT_TRUE(ternary.listener_success_visible);
  EXPECT_TRUE(ternary.transmitter_ack);
  EXPECT_TRUE(ternary.reliable);

  const auto ack = sim::FeedbackModel::binary_ack().caps();
  EXPECT_FALSE(ack.collision_detection);
  EXPECT_FALSE(ack.listener_success_visible);
  EXPECT_TRUE(ack.transmitter_ack);
  EXPECT_TRUE(ack.reliable);

  const auto no_cd = sim::FeedbackModel::collision_as_silence().caps();
  EXPECT_FALSE(no_cd.collision_detection);
  EXPECT_TRUE(no_cd.listener_success_visible);
  EXPECT_FALSE(no_cd.transmitter_ack);
  EXPECT_TRUE(no_cd.reliable);

  const auto noisy = sim::FeedbackModel::noisy(0.1).caps();
  EXPECT_TRUE(noisy.collision_detection);
  EXPECT_FALSE(noisy.reliable);
}

TEST(Capabilities, ParseRoundTripsEveryModel) {
  const sim::FeedbackModel models[] = {
      sim::FeedbackModel::ternary(),
      sim::FeedbackModel::binary_ack(),
      sim::FeedbackModel::collision_as_silence(),
      sim::FeedbackModel::noisy(0.05),
  };
  for (const auto& model : models) {
    const auto parsed = sim::parse_feedback_model(model.spec());
    ASSERT_TRUE(parsed.has_value()) << model.spec();
    EXPECT_EQ(*parsed, model) << model.spec();
  }
  // Bare "noisy" defaults eps.
  const auto bare = sim::parse_feedback_model("noisy");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->kind, sim::FeedbackKind::kNoisy);
  EXPECT_DOUBLE_EQ(bare->eps, 0.05);
}

TEST(Capabilities, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(sim::parse_feedback_model("").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("bogus").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("ternary:0.5").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("noisy:").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("noisy:abc").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("noisy:0.5x").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("noisy:1.5").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("noisy:-0.1").has_value());
}

TEST(Capabilities, ValidateRejectsBadEps) {
  EXPECT_THROW(sim::FeedbackModel::noisy(1.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(sim::FeedbackModel::noisy(-0.1).validate(),
               std::invalid_argument);
  sim::FeedbackModel stray;
  stray.eps = 0.3;  // eps on a non-noisy kind
  EXPECT_THROW(stray.validate(), std::invalid_argument);
  EXPECT_NO_THROW(sim::FeedbackModel::noisy(0.5).validate());
  EXPECT_NO_THROW(sim::FeedbackModel::ternary().validate());
}

TEST(Capabilities, LegacyAblationOnlyComposesWithTernary) {
  sim::SimConfig config;
  config.collision_detection = false;
  EXPECT_NO_THROW(config.validate());
  config.feedback = sim::FeedbackModel::binary_ack();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.collision_detection = true;
  EXPECT_NO_THROW(config.validate());
}

TEST(Capabilities, SimulatorAdvertisesModelCaps) {
  for (const auto& model : {sim::FeedbackModel::ternary(),
                            sim::FeedbackModel::binary_ack(),
                            sim::FeedbackModel::collision_as_silence(),
                            sim::FeedbackModel::noisy(0.1)}) {
    auto seen = std::make_shared<sim::ChannelCaps>();
    workload::Instance instance;
    instance.jobs = {{0, 2}};
    const sim::ProtocolFactory factory = [&](const sim::JobInfo&, util::Rng) {
      return std::unique_ptr<sim::Protocol>(
          std::make_unique<CapsProbeProtocol>(seen));
    };
    sim::SimConfig config;
    config.feedback = model;
    (void)sim::run(instance, factory, config);
    EXPECT_EQ(*seen, model.caps()) << model.spec();
  }
}

TEST(Capabilities, RegistryCatalogRoundTrips) {
  const auto names = core::protocol_names();
  const auto catalog = core::protocol_catalog();
  ASSERT_EQ(names.size(), catalog.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(catalog[i].name, names[i]);
    const auto info = core::protocol_info(names[i]);
    ASSERT_TRUE(info.has_value()) << names[i];
    EXPECT_EQ(info->name, catalog[i].name);
    EXPECT_EQ(info->needs_collision_detection,
              catalog[i].needs_collision_detection);
  }
  EXPECT_FALSE(core::protocol_info("nonesuch").has_value());

  const auto aligned = core::protocol_info("aligned");
  ASSERT_TRUE(aligned.has_value());
  EXPECT_TRUE(aligned->needs_collision_detection);
  EXPECT_TRUE(aligned->adapts_to_degraded_channel);
  EXPECT_TRUE(aligned->supports(sim::FeedbackModel::ternary().caps()));
  EXPECT_FALSE(aligned->supports(sim::FeedbackModel::binary_ack().caps()));

  const auto uniform = core::protocol_info("uniform");
  ASSERT_TRUE(uniform.has_value());
  EXPECT_FALSE(uniform->needs_collision_detection);
  EXPECT_TRUE(uniform->supports(
      sim::FeedbackModel::collision_as_silence().caps()));
}

// ---------------------------------------------------------------------------
// Degraded-mode fallbacks
// ---------------------------------------------------------------------------

TEST(DegradedMode, AlignedFallsBackToBlindSchedule) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  core::aligned::AlignedProtocol proto(params, util::Rng(5));
  sim::JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = 256;
  info.caps = sim::FeedbackModel::binary_ack().caps();
  proto.on_activate(info);
  EXPECT_TRUE(proto.degraded());
  // Blind mode transmits with the anarchist probability and never gives
  // up: silence forever must not trip the truncation give-up.
  bool declared_positive = false;
  for (Slot t = 0; t < 256; ++t) {
    const auto action = proto.on_slot({t, t});
    declared_positive |= action.declared_prob > 0.0;
    proto.on_feedback({t, t}, {});
    ASSERT_FALSE(proto.done()) << "slot " << t;
  }
  EXPECT_TRUE(declared_positive);
  EXPECT_EQ(proto.stage(), core::aligned::AlignedProtocol::Stage::kRunning);
}

TEST(DegradedMode, FloorFormulaIsDeadlineAware) {
  core::Params params;
  const Slot w = 1 << 10;
  // Full laxity reproduces the anarchist schedule exactly.
  EXPECT_DOUBLE_EQ(params.degraded_floor_tx_prob(w, w),
                   params.anarchist_tx_prob(w));
  EXPECT_DOUBLE_EQ(params.degraded_floor_tx_prob(w, w + 99),
                   params.anarchist_tx_prob(w));
  // Shrinking laxity only ever raises the probability (monotone aging)...
  double prev = 0.0;
  for (Slot remaining = w; remaining >= 1; --remaining) {
    const double p = params.degraded_floor_tx_prob(w, remaining);
    EXPECT_GE(p, prev) << "remaining=" << remaining;
    prev = p;
  }
  // ...up to the global cap, never beyond.
  EXPECT_DOUBLE_EQ(params.degraded_floor_tx_prob(w, 1), params.max_tx_prob);
}

TEST(DegradedMode, AlignedBlindScheduleRampsTowardDeadline) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  core::aligned::AlignedProtocol proto(params, util::Rng(5));
  sim::JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = 256;
  info.caps = sim::FeedbackModel::collision_as_silence().caps();
  proto.on_activate(info);
  ASSERT_TRUE(proto.degraded());
  std::vector<double> declared;
  for (Slot t = 0; t < 256; ++t) {
    declared.push_back(proto.on_slot({t, t}).declared_prob);
    proto.on_feedback({t, t}, {});
  }
  // Slot 0 is the plain anarchist schedule; the last slot has ramped to
  // the cap; the ramp never decreases in between.
  EXPECT_DOUBLE_EQ(declared.front(), params.anarchist_tx_prob(256));
  EXPECT_DOUBLE_EQ(declared.back(), params.max_tx_prob);
  for (std::size_t i = 1; i < declared.size(); ++i) {
    EXPECT_GE(declared[i], declared[i - 1]) << "slot " << i;
  }
}

TEST(DegradedMode, PunctualNoCdDesperateRampsButTinyWindowStaysFlat) {
  core::Params params;
  // The no-CD desperate flavor uses the deadline-aware floor...
  {
    core::punctual::PunctualProtocol proto(params, util::Rng(5));
    sim::JobInfo info;
    info.id = 0;
    info.release = 0;
    info.deadline = 1 << 12;
    info.caps = sim::FeedbackModel::collision_as_silence().caps();
    proto.on_activate(info);
    ASSERT_EQ(proto.stage(),
              core::punctual::PunctualProtocol::Stage::kDesperate);
    const double early = proto.on_slot({0, 0}).declared_prob;
    proto.on_feedback({0, 0}, {});
    const double late =
        proto.on_slot({(1 << 12) - 1, (1 << 12) - 1}).declared_prob;
    EXPECT_DOUBLE_EQ(early, params.anarchist_tx_prob(1 << 12));
    EXPECT_DOUBLE_EQ(late, params.max_tx_prob);
  }
  // ...while the tiny-window desperate flavor keeps the flat anarchist
  // schedule (its ternary trajectory is digest-pinned).
  {
    core::punctual::PunctualProtocol proto(params, util::Rng(5));
    sim::JobInfo info;
    info.id = 0;
    info.release = 0;
    info.deadline = 32;  // below punctual_min_window
    proto.on_activate(info);
    ASSERT_EQ(proto.stage(),
              core::punctual::PunctualProtocol::Stage::kDesperate);
    const double early = proto.on_slot({0, 0}).declared_prob;
    proto.on_feedback({0, 0}, {});
    const double late = proto.on_slot({31, 31}).declared_prob;
    EXPECT_DOUBLE_EQ(early, params.anarchist_tx_prob(32));
    EXPECT_DOUBLE_EQ(late, early);
  }
}

TEST(DegradedMode, AlignedStillValidatesWindowAlignment) {
  core::Params params;
  core::aligned::AlignedProtocol proto(params, util::Rng(5));
  sim::JobInfo info;
  info.release = 3;  // not aligned to the window size
  info.deadline = 3 + 256;
  info.caps = sim::FeedbackModel::binary_ack().caps();
  EXPECT_THROW(proto.on_activate(info), std::invalid_argument);
}

TEST(DegradedMode, PunctualEntersDesperateWithoutCollisionDetection) {
  core::Params params;
  core::punctual::PunctualProtocol proto(params, util::Rng(5));
  sim::JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = 1 << 12;  // far above punctual_min_window
  info.caps = sim::FeedbackModel::collision_as_silence().caps();
  proto.on_activate(info);
  EXPECT_EQ(proto.stage(), core::punctual::PunctualProtocol::Stage::kDesperate);
  EXPECT_TRUE(proto.was_anarchist());
}

TEST(DegradedMode, FullChannelKeepsFullMachinery) {
  core::Params params;
  core::punctual::PunctualProtocol proto(params, util::Rng(5));
  sim::JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = 1 << 12;
  info.caps = sim::FeedbackModel::noisy(0.1).caps();  // CD present
  proto.on_activate(info);
  EXPECT_NE(proto.stage(), core::punctual::PunctualProtocol::Stage::kDesperate);

  core::Params aparams;
  aparams.min_class = 8;
  core::aligned::AlignedProtocol aproto(aparams, util::Rng(5));
  sim::JobInfo ainfo;
  ainfo.release = 0;
  ainfo.deadline = 256;
  aproto.on_activate(ainfo);  // default caps: full ternary
  EXPECT_FALSE(aproto.degraded());
}

// ---------------------------------------------------------------------------
// Capture model (DESIGN.md §6i)
// ---------------------------------------------------------------------------

TEST(Capture, ParseRoundTripsAndDefaults) {
  const auto half = sim::parse_feedback_model("capture:0.5");
  ASSERT_TRUE(half.has_value());
  EXPECT_EQ(half->kind, sim::FeedbackKind::kCapture);
  EXPECT_DOUBLE_EQ(half->alpha, 0.5);
  EXPECT_EQ(*sim::parse_feedback_model(half->spec()), *half);

  const auto bare = sim::parse_feedback_model("capture");
  ASSERT_TRUE(bare.has_value());
  EXPECT_DOUBLE_EQ(bare->alpha, 0.5);
}

TEST(Capture, ParseRejectsMalformedCaptureSpecs) {
  EXPECT_FALSE(sim::parse_feedback_model("capture:").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("capture:-1").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("capture:1.5").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("capture:1.5:junk").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("capture:0.5:junk").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("capture:junk").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("capture:0.5x").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("noisy:capture").has_value());
  EXPECT_FALSE(sim::parse_feedback_model("ternary:capture").has_value());
}

TEST(Capture, ParseSpecDiagnosesOnFailureOnly) {
  // The CLI-facing wrapper: same acceptance as parse_feedback_model, plus
  // a one-line diagnostic naming the spec and the usage string.
  std::ostringstream quiet;
  const auto good = sim::parse_feedback_spec("capture:0.25", quiet);
  ASSERT_TRUE(good.has_value());
  EXPECT_DOUBLE_EQ(good->alpha, 0.25);
  EXPECT_TRUE(quiet.str().empty());

  std::ostringstream diag;
  EXPECT_FALSE(sim::parse_feedback_spec("capture:2", diag).has_value());
  EXPECT_NE(diag.str().find("bad --feedback spec 'capture:2'"),
            std::string::npos);
  EXPECT_NE(diag.str().find("capture[:alpha]"), std::string::npos);
}

TEST(Capture, ParseCollisionCost) {
  std::ostringstream quiet;
  const auto three = sim::parse_collision_cost("3", quiet);
  ASSERT_TRUE(three.has_value());
  EXPECT_EQ(*three, 3);
  EXPECT_EQ(*sim::parse_collision_cost("1", quiet), 1);
  EXPECT_TRUE(quiet.str().empty());

  for (const char* bad : {"0", "-2", "abc", "2x", "", "1.5"}) {
    std::ostringstream diag;
    EXPECT_FALSE(sim::parse_collision_cost(bad, diag).has_value()) << bad;
    EXPECT_NE(diag.str().find("bad --collision-cost"), std::string::npos)
        << bad;
  }
}

TEST(Capture, ValidateRejectsBadAlpha) {
  EXPECT_THROW(sim::FeedbackModel::capture(1.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(sim::FeedbackModel::capture(-0.1).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(sim::FeedbackModel::capture(0.0).validate());
  EXPECT_NO_THROW(sim::FeedbackModel::capture(1.0).validate());
  sim::FeedbackModel stray;
  stray.alpha = 0.3;  // alpha on a non-capture kind
  EXPECT_THROW(stray.validate(), std::invalid_argument);
}

TEST(Capture, CapsMatchTernaryAtZeroAlphaAndFlagCaptureAbove) {
  // alpha == 0 *is* the ternary channel; the advertised caps must not
  // nudge protocols into a different mode for an identical radio.
  EXPECT_EQ(sim::FeedbackModel::capture(0.0).caps(),
            sim::FeedbackModel::ternary().caps());
  const auto caps = sim::FeedbackModel::capture(0.5).caps();
  EXPECT_TRUE(caps.capture);
  EXPECT_TRUE(caps.collision_detection);
  EXPECT_TRUE(caps.reliable);
  EXPECT_FALSE(sim::FeedbackModel::ternary().caps().capture);
}

TEST(Capture, AlphaZeroScenarioIdenticalToTernary) {
  const auto ternary = run_scenario(sim::FeedbackModel::ternary());
  const auto capture0 = run_scenario(sim::FeedbackModel::capture(0.0));
  expect_identical(ternary.result, capture0.result);
  EXPECT_EQ(*ternary.listener, *capture0.listener);
  EXPECT_EQ(*ternary.transmitter, *capture0.transmitter);
  EXPECT_EQ(capture0.result.metrics.capture_wins, 0);
}

TEST(Capture, AlphaOneAlwaysLeaksAWinner) {
  // p_win = 1^(k-1) = 1: the slot-0 collision deterministically delivers
  // one of jobs {0, 1}; listeners perceive the captured broadcast.
  const auto logs = run_scenario(sim::FeedbackModel::capture(1.0));
  EXPECT_EQ(logs.result.metrics.capture_wins, 1);
  const auto& listener = *logs.listener;
  ASSERT_GE(listener.size(), 3u);
  EXPECT_EQ(listener[0].outcome, sim::SlotOutcome::kSuccess);
  EXPECT_TRUE(listener[0].has_message);
  // Whoever lost slot 0 perceived noise, not the winner's broadcast; job 0
  // retries alone in slot 2, so it succeeds either way.
  EXPECT_TRUE(logs.result.jobs[0].success);
  const bool job1_won = logs.result.jobs[1].success;
  const auto& tx = *logs.transmitter;
  ASSERT_GE(tx.size(), 1u);
  if (job1_won) {
    EXPECT_EQ(tx[0].outcome, sim::SlotOutcome::kNoise);
    EXPECT_FALSE(tx[0].has_message);
    EXPECT_EQ(logs.result.jobs[0].success_slot, 2);
  } else {
    EXPECT_EQ(tx[0].outcome, sim::SlotOutcome::kSuccess);
    EXPECT_EQ(logs.result.jobs[0].success_slot, 0);
  }
}

TEST(Capture, SoloTransmitterNeverNeedsCapture) {
  // k = 1 succeeds unconditionally — never billed as a capture win.
  const auto logs = run_scenario(sim::FeedbackModel::capture(0.5));
  EXPECT_TRUE(logs.result.jobs[0].success);
  const auto solo = run_scenario(sim::FeedbackModel::capture(1.0));
  // Slot 2 is job 0 alone: a plain channel success in both runs.
  EXPECT_GE(solo.result.metrics.success_slots, 1);
}

TEST(CollisionCost, FreezeBurnsExactlyCostSlotsAndWastesAttempts) {
  // Jobs 0 and 1 collide in slot 0 with cost = 3: slots 1-2 are frozen.
  // Job 0's retry in slot 2 lands inside the freeze — a full-price
  // transmission forced to noise — and its slot-4 retry succeeds, which
  // also proves a frozen slot does not re-arm the freeze.
  auto log0 = std::make_shared<std::vector<Perceived>>();
  workload::Instance instance;
  instance.jobs = {{0, 8}, {0, 8}};
  const sim::ProtocolFactory factory = [&](const sim::JobInfo& info,
                                           util::Rng) {
    if (info.id == 0) {
      return std::unique_ptr<sim::Protocol>(std::make_unique<
          RecordingProtocol>(std::vector<Slot>{0, 2, 4}, log0));
    }
    return std::unique_ptr<sim::Protocol>(std::make_unique<
        RecordingProtocol>(std::vector<Slot>{0},
                           std::make_shared<std::vector<Perceived>>()));
  };
  sim::SimConfig config;
  config.seed = 7;
  config.collision_cost = 3;
  const auto result = sim::run(instance, factory, config);

  EXPECT_EQ(result.metrics.collision_cost_slots, 2);
  ASSERT_GE(log0->size(), 5u);
  EXPECT_EQ((*log0)[0].outcome, sim::SlotOutcome::kNoise);  // the collision
  EXPECT_EQ((*log0)[1].outcome, sim::SlotOutcome::kNoise);  // frozen
  EXPECT_EQ((*log0)[2].outcome, sim::SlotOutcome::kNoise);  // frozen; wasted tx
  EXPECT_EQ((*log0)[3].outcome, sim::SlotOutcome::kSilence);
  EXPECT_EQ((*log0)[4].outcome, sim::SlotOutcome::kSuccess);
  EXPECT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].success_slot, 4);
  EXPECT_EQ(result.jobs[0].transmissions, 3);  // the frozen attempt billed
  // Cost slots are a subset of noise slots, never double-counted.
  EXPECT_GE(result.metrics.noise_slots, result.metrics.collision_cost_slots);
}

TEST(CollisionCost, CostOneIsTheDefaultChannel) {
  auto run_with_cost = [](int cost) {
    sim::SimConfig config;
    config.seed = 20260808;
    config.collision_cost = cost;
    core::Params params;
    return sim::run(workload::gen_batch(32, 256, 0),
                    core::make_uniform_factory(params), config);
  };
  const auto base = run_with_cost(1);
  expect_identical(base, run_with_cost(1));
  EXPECT_EQ(base.metrics.collision_cost_slots, 0);
}

TEST(CollisionCost, ValidateRejectsNonPositiveCost) {
  sim::SimConfig config;
  config.collision_cost = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.collision_cost = -3;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.collision_cost = 1;
  EXPECT_NO_THROW(config.validate());
}

TEST(Capture, SimulatorAdvertisesCaptureCaps) {
  auto seen = std::make_shared<sim::ChannelCaps>();
  workload::Instance instance;
  instance.jobs = {{0, 2}};
  const sim::ProtocolFactory factory = [&](const sim::JobInfo&, util::Rng) {
    return std::unique_ptr<sim::Protocol>(
        std::make_unique<CapsProbeProtocol>(seen));
  };
  sim::SimConfig config;
  config.feedback = sim::FeedbackModel::capture(0.7);
  (void)sim::run(instance, factory, config);
  EXPECT_TRUE(seen->capture);
  EXPECT_EQ(*seen, sim::FeedbackModel::capture(0.7).caps());
}

TEST(Capture, RegistryFlagsCollisionCountingEstimators) {
  // ALIGNED and PUNCTUAL size contention from collision counts; capture
  // biases those samples, and harnesses annotate sweeps from this flag.
  const auto aligned = core::protocol_info("aligned");
  const auto punctual = core::protocol_info("punctual");
  const auto uniform = core::protocol_info("uniform");
  ASSERT_TRUE(aligned && punctual && uniform);
  EXPECT_TRUE(aligned->estimates_from_collisions);
  EXPECT_TRUE(punctual->estimates_from_collisions);
  EXPECT_FALSE(uniform->estimates_from_collisions);
}

}  // namespace
}  // namespace crmd
