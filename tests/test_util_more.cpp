// Supplementary utility tests: Args::keys, CSV file round-trips, stats
// formatting, histogram edges, and RNG stream-independence properties.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace crmd::util {
namespace {

TEST(ArgsMore, KeysListsAllFlags) {
  const char* argv[] = {"prog", "--b=2", "--a=1", "--flag"};
  Args args(4, argv);
  const auto keys = args.keys();
  ASSERT_EQ(keys.size(), 3u);
  // std::map ordering: sorted.
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "flag");
}

TEST(ArgsMore, EmptyValue) {
  const char* argv[] = {"prog", "--x="};
  Args args(2, argv);
  EXPECT_TRUE(args.has("x"));
  EXPECT_EQ(args.get("x", "zzz"), "");
}

TEST(TableMore, SaveCsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "x,y"});
  const std::string path = "/tmp/crmd_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(TableMore, SaveCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.save_csv("/no-such-dir/t.csv"));
}

TEST(StatsMore, MergeIntoEmpty) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  // Merging an empty accumulator is a no-op.
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
}

TEST(StatsMore, SingleObservation) {
  RunningStats s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(StatsMore, WilsonOnEmptyAndExtremes) {
  SuccessCounter empty;
  const auto [lo0, hi0] = empty.wilson95();
  EXPECT_DOUBLE_EQ(lo0, 0.0);
  EXPECT_DOUBLE_EQ(hi0, 1.0);

  SuccessCounter all;
  all.add_many(50, 50);
  const auto [lo1, hi1] = all.wilson95();
  EXPECT_GT(lo1, 0.9);
  EXPECT_DOUBLE_EQ(hi1, 1.0);

  SuccessCounter none;
  none.add_many(0, 50);
  const auto [lo2, hi2] = none.wilson95();
  EXPECT_NEAR(lo2, 0.0, 1e-12);
  EXPECT_LT(hi2, 0.1);
}

TEST(StatsMore, HistogramSingleBin) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.2);
  h.add(0.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 0u) << "out-of-range bin index reads as zero";
}

TEST(RngMore, ManyChildStreamsAreDistinct) {
  const Rng master(123);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    firsts.insert(Rng(master.child(s)).next_u64());
  }
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(RngMore, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(RngMore, RangeSingleton) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.range(7, 7), 7);
  }
}

TEST(SplitMix, ReferenceSequenceAdvances) {
  // SplitMix64 is deterministic; two runs from the same state agree and
  // the state genuinely advances.
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  const auto a1 = splitmix64(s1);
  const auto a2 = splitmix64(s2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(s1, s2);
  const auto b1 = splitmix64(s1);
  EXPECT_NE(a1, b1);
}

}  // namespace
}  // namespace crmd::util
