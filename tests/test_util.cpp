// Unit tests for the utility layer: RNG, math helpers, statistics, table
// rendering, and CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace crmd::util {
namespace {

// ---------------------------------------------------------------- RNG ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildStreamsAreStable) {
  const Rng master(7);
  Rng c1 = master.child(3);
  Rng c2 = master.child(3);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ChildStreamsAreIndependent) {
  const Rng master(7);
  Rng c1 = master.child(0);
  Rng c2 = master.child(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (c1.next_u64() == c2.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(19);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, SlotInHalfOpen) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const Slot s = rng.slot_in(10, 20);
    EXPECT_GE(s, 10);
    EXPECT_LT(s, 20);
  }
}

// --------------------------------------------------------------- math ------

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2((1LL << 40) + 5), 40);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Math, Pow2RoundTrips) {
  for (int k = 0; k < 62; ++k) {
    EXPECT_EQ(floor_log2(pow2(k)), k);
    EXPECT_TRUE(is_pow2(pow2(k)));
  }
}

TEST(Math, Pow2FloorCeil) {
  EXPECT_EQ(pow2_floor(5), 4);
  EXPECT_EQ(pow2_ceil(5), 8);
  EXPECT_EQ(pow2_floor(8), 8);
  EXPECT_EQ(pow2_ceil(8), 8);
}

TEST(Math, AlignDownUp) {
  EXPECT_EQ(align_down(13, 4), 12);
  EXPECT_EQ(align_down(12, 4), 12);
  EXPECT_EQ(align_up(13, 4), 16);
  EXPECT_EQ(align_up(12, 4), 12);
  EXPECT_EQ(align_down(0, 8), 0);
  EXPECT_EQ(align_up(1, 8), 8);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(Math, Log2AtLeast) {
  EXPECT_DOUBLE_EQ(log2_at_least(8.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(log2_at_least(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(log2_at_least(0.5, 2.0), 2.0);
}

// -------------------------------------------------------------- stats ------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    ((i % 2 == 0) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SuccessCounter, RatesAndMerge) {
  SuccessCounter c;
  c.add(true);
  c.add(false);
  c.add(true);
  c.add(true);
  EXPECT_EQ(c.successes(), 3u);
  EXPECT_EQ(c.trials(), 4u);
  EXPECT_DOUBLE_EQ(c.rate(), 0.75);
  EXPECT_DOUBLE_EQ(c.failure_rate(), 0.25);

  SuccessCounter d;
  d.add_many(1, 4);
  c.merge(d);
  EXPECT_DOUBLE_EQ(c.rate(), 0.5);
}

TEST(SuccessCounter, Wilson95BracketsRate) {
  SuccessCounter c;
  c.add_many(70, 100);
  const auto [lo, hi] = c.wilson95();
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, 0.7);
  EXPECT_GT(lo, 0.55);
  EXPECT_LT(hi, 0.82);
}

TEST(Percentile, InterpolatesAndClamps) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(15.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.ascii().empty());
}

// -------------------------------------------------------------- table ------

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream out;
  t.print(out, "demo");
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"k"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream out;
  t.write_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableFormat, Numbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1000), "-1,000");
  EXPECT_EQ(fmt_count(1), "1");
  EXPECT_NE(fmt_sci(0.001, 2).find("e-"), std::string::npos);
}

// ---------------------------------------------------------------- cli ------

TEST(Args, ParsesAllForms) {
  const char* argv[] = {"prog", "--a=1", "--b=2", "--flag", "pos1",
                        "--c=text"};
  Args args(6, argv);
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_EQ(args.get_int("b", 0), 2);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get("c"), "text");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, Fallbacks) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get_int("missing", 5), 5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 0.25), 0.25);
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_TRUE(args.get_bool("missing", true));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(Args, MalformedNumbersThrow) {
  const char* argv[] = {"prog", "--x=12abc"};
  Args args(2, argv);
  EXPECT_THROW((void)args.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("x", 0), std::invalid_argument);
}

TEST(Args, BoolValueForms) {
  const char* argv[] = {"prog", "--on=1", "--off=0", "--yes=yes"};
  Args args(4, argv);
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
  EXPECT_TRUE(args.get_bool("yes", false));
}

}  // namespace
}  // namespace crmd::util
