// Executable check of Lemma 11: for a window W of size w, the sum of the
// size estimates produced by W and all windows nested inside it is at most
// 2τ²·N̂_W + 2w/w₀ (w.h.p.), where N̂_W counts the jobs in those windows
// and w₀ is the smallest window size.
//
// The harness steps ALIGNED over laminar instances, captures every class
// window's estimate the moment its estimation completes (via the
// own_estimate hook of a job in that window), and compares the nested sums
// against the bound.

#include <gtest/gtest.h>

#include <map>

#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "workload/generators.hpp"

namespace crmd::core::aligned {
namespace {

class Lemma11Sums : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma11Sums, NestedEstimateSumsRespectTheBound) {
  const std::uint64_t seed = GetParam();
  Params p;
  p.lambda = 2;
  p.tau = 8;
  p.min_class = 9;

  workload::AlignedConfig config;
  config.min_class = 9;
  config.max_class = 12;
  config.gamma = 1.0 / 32;
  config.fill = 0.5;
  config.horizon = 1 << 14;
  util::Rng rng(seed);
  const workload::Instance instance = workload::gen_aligned(config, rng);
  if (instance.empty()) {
    GTEST_SKIP();
  }

  // True job counts per (level, window start).
  std::map<std::pair<int, Slot>, std::int64_t> true_counts;
  for (const auto& job : instance.jobs) {
    const int level = util::floor_log2(job.window());
    ++true_counts[{level, job.release}];
  }

  // Observed estimates per (level, window start): sample own_estimate from
  // any live job of that window once it becomes known.
  std::map<std::pair<int, Slot>, std::int64_t> estimates;
  sim::SimConfig sc;
  sc.seed = seed;
  sim::Simulation sim(instance, make_aligned_factory(p), sc);
  std::vector<Slot> releases;
  for (const auto& j : instance.jobs) {
    releases.push_back(j.release);
  }
  while (!sim.finished()) {
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(id));
      if (proto == nullptr) {
        continue;
      }
      const std::int64_t est = proto->own_estimate();
      if (est >= 0) {
        estimates.emplace(
            std::make_pair(proto->level(), releases[id]), est);
      }
    }
    if (!sim.step()) {
      break;
    }
  }
  sim.finish();
  ASSERT_FALSE(estimates.empty());

  // Every observed estimate must respect Lemma 8's per-window bracket
  // (this is the w.h.p. event the sums build on).
  for (const auto& [key, est] : estimates) {
    const auto it = true_counts.find(key);
    const std::int64_t n_hat = it == true_counts.end() ? 0 : it->second;
    ASSERT_GT(n_hat, 0) << "an estimate was produced for an empty window";
    EXPECT_GE(est, 2 * n_hat) << "level " << key.first;
    EXPECT_LE(est, p.tau * p.tau * n_hat) << "level " << key.first;
  }

  // Lemma 11's aggregated form for each top-level window W.
  const Slot w0 = util::pow2(config.min_class);
  const Slot w_top = util::pow2(config.max_class);
  for (Slot start = 0; start + w_top <= config.horizon; start += w_top) {
    std::int64_t sum_estimates = 0;
    std::int64_t n_nested = 0;
    for (const auto& [key, est] : estimates) {
      const Slot wstart = key.second;
      const Slot wsize = util::pow2(key.first);
      if (wstart >= start && wstart + wsize <= start + w_top) {
        sum_estimates += est;
      }
    }
    for (const auto& [key, count] : true_counts) {
      const Slot wstart = key.second;
      const Slot wsize = util::pow2(key.first);
      if (wstart >= start && wstart + wsize <= start + w_top) {
        n_nested += count;
      }
    }
    const std::int64_t bound =
        2 * p.tau * p.tau * n_nested + 2 * w_top / w0;
    EXPECT_LE(sum_estimates, bound)
        << "window [" << start << ", " << start + w_top << ") with "
        << n_nested << " nested jobs";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma11Sums,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace crmd::core::aligned
