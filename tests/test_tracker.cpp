// Tests for the replicated pecking-order tracker: boundary resets, the
// smallest-incomplete-class priority rule, empty-class bookkeeping, and
// completion accounting.
//
// Class levels in these tests respect the schedulability constraint the
// paper's Lemma 12 encodes: a class ℓ can only make progress if its
// estimation cost λℓ² (plus nested smaller classes) fits inside its window
// 2^ℓ. With λ=1 that means ℓ >= 5 for the class itself and ℓ >= 8 for
// healthy multi-class progressions.

#include <gtest/gtest.h>

#include "core/aligned/tracker.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace crmd::core::aligned {
namespace {

Params test_params(int lambda = 1) {
  Params p;
  p.lambda = lambda;
  p.tau = 64;
  return p;
}

// Drives a tracker over silent slots [from, from+count).
void run_silent(Tracker& tracker, Slot from, Slot count) {
  for (Slot t = from; t < from + count; ++t) {
    tracker.begin_slot(t);
    tracker.end_slot(sim::SlotOutcome::kSilence);
  }
}

TEST(Tracker, SmallestClassIsActiveFirst) {
  const Params p = test_params();
  Tracker tracker(p, /*min_class=*/2, /*own_class=*/4);
  tracker.begin_slot(0);
  EXPECT_EQ(tracker.active_class(), 2);
}

TEST(Tracker, EmptyClassConsumesEstimationThenCompletes) {
  const Params p = test_params();
  Tracker tracker(p, /*min_class=*/5, /*own_class=*/6);
  // Class 5's estimation is λℓ² = 25 silent steps; estimate resolves to 0
  // and the (empty) class completes with no broadcast stage.
  run_silent(tracker, 0, 25);
  tracker.begin_slot(25);
  EXPECT_TRUE(tracker.view(5).complete);
  EXPECT_EQ(tracker.view(5).estimate, 0);
  EXPECT_EQ(tracker.active_class(), 6);
}

TEST(Tracker, WindowBoundaryResetsCompletedClass) {
  const Params p = test_params();
  Tracker tracker(p, 5, 6);
  run_silent(tracker, 0, 32);  // class 5 completes at step 25, class 6 runs
  // t=32 is a class-5 boundary: its next window starts fresh and takes
  // priority again.
  tracker.begin_slot(32);
  EXPECT_EQ(tracker.active_class(), 5);
  EXPECT_FALSE(tracker.view(5).complete);
}

TEST(Tracker, StarvedClassNeverRuns) {
  // With λ=1 a class-4 window (16 slots) is exactly consumed by its own
  // estimation (16 steps): every boundary restarts it, so class 5 never
  // gets an active step. This is the degenerate regime Lemma 12's "small
  // enough γ" assumption excludes.
  const Params p = test_params();
  Tracker tracker(p, 4, 5);
  for (Slot t = 0; t < 64; ++t) {
    tracker.begin_slot(t);
    EXPECT_EQ(tracker.active_class(), 4) << "slot " << t;
    tracker.end_slot(sim::SlotOutcome::kSilence);
  }
}

TEST(Tracker, ClassesCompleteInPeckingOrder) {
  // Classes 8, 9, 10 with λ=1 (empty, all-silent): class 8 completes its 64
  // estimation steps first, class 9 (81 steps) runs t=64..144, class 10
  // starts at t=145.
  const Params p = test_params();
  Tracker tracker(p, 8, 10);
  Slot first_active_9 = -1;
  Slot first_active_10 = -1;
  for (Slot t = 0; t < 250; ++t) {
    tracker.begin_slot(t);
    const int active = tracker.active_class();
    if (active == 9 && first_active_9 < 0) {
      first_active_9 = t;
    }
    if (active == 10 && first_active_10 < 0) {
      first_active_10 = t;
    }
    tracker.end_slot(sim::SlotOutcome::kSilence);
  }
  EXPECT_EQ(first_active_9, 64);
  EXPECT_EQ(first_active_10, 64 + 81);
}

TEST(Tracker, SuccessesFeedTheActiveClassEstimate) {
  // Single class 7 with τ=2 so estimation+broadcast fit inside the window:
  // estimation 49 steps; a phase-1 success yields estimate τ·2 = 4 and a
  // broadcast stage of λ(2·4−2) + λ·7² = 55 steps; total 104 < 128.
  Params p = test_params();
  p.tau = 2;
  Tracker tracker(p, 7, 7);
  const std::int64_t est_steps = p.estimation_steps(7);
  Slot t = 0;
  for (; t < est_steps; ++t) {
    tracker.begin_slot(t);
    EXPECT_EQ(tracker.active_class(), 7);
    tracker.end_slot(t == 0 ? sim::SlotOutcome::kSuccess
                            : sim::SlotOutcome::kSilence);
  }
  // Estimation finished; the broadcast layout is now known.
  tracker.begin_slot(t);
  const auto view = tracker.view(7);
  EXPECT_FALSE(view.estimating);
  EXPECT_EQ(view.estimate, 4);
  EXPECT_FALSE(view.complete);
  ASSERT_NE(view.broadcast, nullptr);
  EXPECT_EQ(view.broadcast->total_steps(), 55);
  tracker.end_slot(sim::SlotOutcome::kSilence);
  ++t;

  // Drive the remaining broadcast steps to completion.
  for (std::int64_t step = 1; step < 55; ++step, ++t) {
    tracker.begin_slot(t);
    EXPECT_EQ(tracker.active_class(), 7);
    tracker.end_slot(sim::SlotOutcome::kSilence);
  }
  tracker.begin_slot(t);
  EXPECT_TRUE(tracker.view(7).complete);
  EXPECT_EQ(tracker.active_class(), -1);
  EXPECT_EQ(t, 104) << "total active steps must match Lemma 6's count";
}

TEST(Tracker, NoiseCountsAsStepButNotSuccess) {
  Params p = test_params();
  p.tau = 2;
  Tracker tracker(p, 7, 7);
  for (Slot t = 0; t < p.estimation_steps(7); ++t) {
    tracker.begin_slot(t);
    tracker.end_slot(sim::SlotOutcome::kNoise);
  }
  tracker.begin_slot(p.estimation_steps(7));
  EXPECT_EQ(tracker.view(7).estimate, 0);
  EXPECT_TRUE(tracker.view(7).complete);
}

TEST(Tracker, TwoReplicasAgreeUnderIdenticalObservations) {
  const Params p = test_params(2);
  Tracker a(p, 2, 5);
  Tracker b(p, 2, 5);
  util::Rng rng(555);
  for (Slot t = 0; t < 200; ++t) {
    a.begin_slot(t);
    b.begin_slot(t);
    ASSERT_EQ(a.active_class(), b.active_class()) << "slot " << t;
    const double roll = rng.next_double();
    const sim::SlotOutcome outcome =
        roll < 0.2   ? sim::SlotOutcome::kSuccess
        : roll < 0.5 ? sim::SlotOutcome::kNoise
                     : sim::SlotOutcome::kSilence;
    a.end_slot(outcome);
    b.end_slot(outcome);
  }
}

TEST(Tracker, LateArrivalAgreesWithEarlierReplica) {
  // Replica `early` tracks from t=0 (own class 5). Replica `late` joins at
  // t=32 (a class-5 boundary). From t=32 on they must agree on every
  // class's activity — the crux of Lemma 7.
  const Params p = test_params();
  Tracker early(p, 2, 5);
  Tracker late(p, 2, 5);
  util::Rng rng(77);
  for (Slot t = 0; t < 96; ++t) {
    early.begin_slot(t);
    if (t >= 32) {
      late.begin_slot(t);
      ASSERT_EQ(early.active_class(), late.active_class()) << "slot " << t;
    }
    const sim::SlotOutcome outcome = rng.bernoulli(0.3)
                                         ? sim::SlotOutcome::kSuccess
                                         : sim::SlotOutcome::kSilence;
    early.end_slot(outcome);
    if (t >= 32) {
      late.end_slot(outcome);
    }
  }
}

}  // namespace
}  // namespace crmd::core::aligned
