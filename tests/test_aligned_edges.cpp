// Edge-case and failure-injection tests for the ALIGNED protocol: the
// estimate-0 give-up path, stage transitions, the last_step diagnostic
// hook, the pecking-order ablation switch, and behaviour under blanket
// jamming.

#include <gtest/gtest.h>

#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "workload/generators.hpp"

namespace crmd::core::aligned {
namespace {

Params fast_params() {
  Params p;
  p.lambda = 1;
  p.tau = 4;
  p.min_class = 10;
  return p;
}

TEST(AlignedEdges, BlanketJamForcesEstimateZeroAndGiveUp) {
  // p_jam = 1 turns every slot into noise: estimation sees zero successes,
  // the class resolves to estimate 0, and the job gives up right after the
  // estimation stage instead of broadcasting into a dead channel.
  Params p = fast_params();
  p.min_class = 11;
  sim::SimConfig config;
  config.seed = 4;
  const auto result =
      sim::run(workload::gen_batch(1, 1 << 11, 0), make_aligned_factory(p),
               config, sim::make_blanket_jammer(1.0));
  EXPECT_FALSE(result.jobs[0].success);
  // Estimation is λℓ² = 121 steps; the job gives up right after it (zero
  // broadcast steps for a believed-empty class), so only ~121 of the 2048
  // window slots are ever simulated.
  EXPECT_LE(result.metrics.slots_simulated, p.estimation_steps(11) + 2);
  EXPECT_GE(result.metrics.slots_simulated, p.estimation_steps(11));
}

TEST(AlignedEdges, StageIsSucceededAfterDelivery) {
  Params p = fast_params();
  p.min_class = 11;
  sim::SimConfig config;
  config.seed = 5;
  sim::Simulation sim(workload::gen_batch(1, 1 << 11, 0),
                      make_aligned_factory(p), config);
  AlignedProtocol::Stage final_stage = AlignedProtocol::Stage::kRunning;
  while (sim.step()) {
    auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(0));
    if (proto != nullptr) {
      final_stage = proto->stage();
      if (proto->done()) {
        break;
      }
    }
  }
  // The simulator retires on delivery; we may only observe the last live
  // stage. The job's result is what counts.
  const auto result = sim.finish();
  EXPECT_TRUE(result.jobs[0].success);
  (void)final_stage;
}

TEST(AlignedEdges, LastStepHookTracksEstimationThenBroadcast) {
  Params p = fast_params();
  p.min_class = 11;
  sim::SimConfig config;
  config.seed = 6;
  sim::Simulation sim(workload::gen_batch(2, 1 << 11, 0),
                      make_aligned_factory(p), config);
  bool saw_estimating = false;
  bool saw_broadcasting = false;
  Slot first_broadcast_step = kNoSlot;
  while (sim.step()) {
    auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(0));
    if (proto == nullptr || !proto->last_step().valid) {
      continue;
    }
    if (proto->last_step().active_class == proto->level()) {
      if (proto->last_step().estimating) {
        saw_estimating = true;
        EXPECT_EQ(first_broadcast_step, kNoSlot)
            << "estimation must precede broadcast";
      } else {
        saw_broadcasting = true;
        if (first_broadcast_step == kNoSlot) {
          // After step(), now() points one past the slot last_step
          // describes.
          first_broadcast_step = sim.now() - 1;
        }
      }
    }
  }
  sim.finish();
  EXPECT_TRUE(saw_estimating);
  EXPECT_TRUE(saw_broadcasting);
  // Broadcast starts exactly after λℓ² estimation steps.
  EXPECT_EQ(first_broadcast_step, p.estimation_steps(11));
}

TEST(AlignedEdges, PeckingOrderOffTracksOnlyOwnClass) {
  Params p = fast_params();
  p.pecking_order = false;
  sim::SimConfig config;
  config.seed = 7;
  // A large job above small-class windows: with the ablation it never
  // waits for the small class.
  auto instance = workload::merge(workload::gen_batch(1, 1 << 13, 0),
                                  workload::gen_batch(2, 1 << 10, 0));
  sim::Simulation sim(instance, make_aligned_factory(p), config);
  while (sim.step()) {
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(id));
      if (proto == nullptr) {
        continue;
      }
      if (proto->level() == 13) {
        // Own class is the only tracked class, so whenever it is
        // incomplete it is active.
        EXPECT_EQ(proto->tracker().min_class(), 13);
        const int active = proto->active_class();
        EXPECT_TRUE(active == 13 || active == -1);
      }
    }
  }
  sim.finish();
}

TEST(AlignedEdges, SecondWindowStartsFreshAlgorithm) {
  // Two consecutive windows of the same class: the second must restart
  // estimation from scratch (critical-time reset), not inherit state.
  Params p = fast_params();
  p.min_class = 11;
  auto instance = workload::merge(workload::gen_batch(3, 1 << 11, 0),
                                  workload::gen_batch(3, 1 << 11, 1 << 11));
  sim::SimConfig config;
  config.seed = 8;
  sim::Simulation sim(instance, make_aligned_factory(p), config);
  bool second_window_estimating = false;
  while (sim.step()) {
    if (sim.now() <= (1 << 11)) {
      continue;
    }
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(id));
      if (proto != nullptr && proto->last_step().valid &&
          proto->last_step().estimating) {
        second_window_estimating = true;
      }
    }
  }
  const auto result = sim.finish();
  EXPECT_TRUE(second_window_estimating);
  EXPECT_EQ(result.successes(), 6);
}

TEST(AlignedEdges, DataJammerOnlyDelaysDelivery) {
  // Jamming half of all data successes roughly doubles the drain time but
  // the batch still completes inside a roomy window.
  Params p = fast_params();
  p.lambda = 2;
  p.min_class = 13;
  sim::SimConfig config;
  config.seed = 9;
  const auto clean = sim::run(workload::gen_batch(8, 1 << 13, 0),
                              make_aligned_factory(p), config);
  const auto jammed = sim::run(workload::gen_batch(8, 1 << 13, 0),
                               make_aligned_factory(p), config,
                               sim::make_data_jammer(0.5));
  EXPECT_EQ(clean.successes(), 8);
  EXPECT_EQ(jammed.successes(), 8);
  Slot clean_last = 0;
  Slot jammed_last = 0;
  for (const auto& job : clean.jobs) {
    clean_last = std::max(clean_last, job.success_slot);
  }
  for (const auto& job : jammed.jobs) {
    jammed_last = std::max(jammed_last, job.success_slot);
  }
  EXPECT_GT(jammed_last, clean_last);
}

TEST(AlignedEdges, OwnEstimateVisibleOnceEstimationCompletes) {
  Params p = fast_params();
  p.min_class = 11;
  sim::SimConfig config;
  config.seed = 10;
  sim::Simulation sim(workload::gen_batch(4, 1 << 11, 0),
                      make_aligned_factory(p), config);
  std::int64_t first_seen_estimate = -1;
  Slot seen_at = kNoSlot;
  while (sim.step()) {
    auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(0));
    if (proto == nullptr) {
      continue;
    }
    if (first_seen_estimate < 0 && proto->own_estimate() >= 0) {
      first_seen_estimate = proto->own_estimate();
      seen_at = sim.now();
    }
  }
  sim.finish();
  ASSERT_GE(first_seen_estimate, 0);
  // τ times a power of two, available right after estimation.
  EXPECT_EQ(first_seen_estimate % p.tau, 0);
  EXPECT_EQ(seen_at, p.estimation_steps(11));
}

}  // namespace
}  // namespace crmd::core::aligned
